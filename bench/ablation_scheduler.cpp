// Ablations beyond the paper's headline plots, over the design choices
// DESIGN.md calls out: partition granularity (§7.2.2's latency/accuracy
// trade-off discussion), the T_L deadline slack, Algorithm 2's decay gamma,
// and outright node failure (s_k -> 0).
//
// All on VGG16 with 8 Pi-class nodes unless stated.
#include "bench_common.hpp"

using namespace adcnn;

namespace {

sim::AdcnnSimConfig base_cfg(const arch::ArchSpec& spec) {
  return bench::adcnn_config(spec, 8, /*deep=*/true);
}

}  // namespace

int main() {
  const auto spec = arch::vgg16();
  const int images = 60;

  bench::header("Ablation A — partition granularity (latency side of "
                "§7.2.2's trade-off)");
  std::printf("%-8s %8s %14s %16s\n", "grid", "tiles", "latency (ms)",
              "tile bytes (in)");
  bench::rule();
  for (const auto grid : {core::TileGrid{2, 2}, core::TileGrid{3, 3},
                          core::TileGrid{4, 4}, core::TileGrid{4, 8},
                          core::TileGrid{8, 8}, core::TileGrid{16, 16}}) {
    auto cfg = base_cfg(spec);
    cfg.grid = grid;
    const auto result = sim::simulate_adcnn(spec, cfg, images);
    std::printf("%lldx%-6lld %8lld %14.1f %16lld\n",
                static_cast<long long>(grid.rows),
                static_cast<long long>(grid.cols),
                static_cast<long long>(grid.count()),
                result.mean_latency_s * 1e3,
                static_cast<long long>(spec.cin * spec.hin * spec.win /
                                       grid.count()));
  }
  std::printf("(finer grids shrink the straggler quantum; Figure 10 shows "
              "the accuracy cost of going finer)\n");

  bench::header("Ablation B — straggler slack & T_L under degradation "
                "(nodes 5-8 throttled at t=2s)");
  std::printf("%-8s %6s | %12s %12s %12s\n", "slack", "T_L", "latency (ms)",
              "zero-filled", "settled x_8");
  bench::rule();
  for (const double slack : {1.1, 1.25, 1.5, 2.0, 4.0}) {
    auto cfg = base_cfg(spec);
    cfg.straggler_slack = slack;
    for (int k = 4; k < 8; ++k)
      cfg.nodes[static_cast<std::size_t>(k)].trace = {{2.0, 0.3}};
    const auto result = sim::simulate_adcnn(spec, cfg, images);
    std::printf("%-8.2f %6.0f | %12.1f %12lld %12lld\n", slack,
                cfg.t_l * 1e3, result.mean_latency_s * 1e3,
                static_cast<long long>(result.zero_filled_total),
                static_cast<long long>(result.images.back().assigned[7]));
  }
  std::printf("(tight slack reacts faster but zero-fills more tiles — an "
              "accuracy cost the paper leaves implicit)\n");

  bench::header("Ablation C — Algorithm 2 decay gamma (adaptation speed)");
  std::printf("%-8s | %-18s %-18s\n", "gamma", "latency 0-2s (ms)",
              "latency last 20 (ms)");
  bench::rule();
  for (const double gamma : {0.1, 0.5, 0.9, 0.99}) {
    auto cfg = base_cfg(spec);
    cfg.gamma = gamma;
    for (int k = 4; k < 8; ++k)
      cfg.nodes[static_cast<std::size_t>(k)].trace = {{2.0, 0.3}};
    const auto result = sim::simulate_adcnn(spec, cfg, images);
    double early = 0.0, late = 0.0;
    int early_n = 0;
    for (const auto& rec : result.images) {
      if (rec.partition_start < 2.0) {
        early += rec.latency;
        ++early_n;
      }
    }
    for (int i = images - 20; i < images; ++i)
      late += result.images[static_cast<std::size_t>(i)].latency;
    std::printf("%-8.2f | %18.1f %18.1f\n", gamma,
                early_n ? early / early_n * 1e3 : 0.0, late / 20 * 1e3);
  }
  std::printf("(the paper's gamma=0.9 weights fresh counts heavily: fast "
              "adaptation, settled latency close to optimal)\n");

  bench::header("Ablation D — node failure (a Conv node dies mid-run)");
  {
    auto cfg = base_cfg(spec);
    cfg.nodes[3].trace = {{2.0, 0.0}};  // node 4 stops completely
    const auto result = sim::simulate_adcnn(spec, cfg, images);
    std::printf("node 4 dies at t=2s: mean latency %.1f ms, zero-filled "
                "%lld tiles\n",
                result.mean_latency_s * 1e3,
                static_cast<long long>(result.zero_filled_total));
    std::printf("assignment image 0:   ");
    for (const auto tiles : result.images[0].assigned)
      std::printf(" %lld", static_cast<long long>(tiles));
    std::printf("\nassignment image %d: ", images - 1);
    for (const auto tiles : result.images.back().assigned)
      std::printf(" %lld", static_cast<long long>(tiles));
    std::printf("   <- dead node starved of tiles (s_k -> 0)\n");
  }
  return 0;
}
