// Shared helpers for the per-table/figure benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "runtime/central_node.hpp"
#include "sim/adcnn_sim.hpp"

namespace adcnn::bench {

/// ADCNN_FULL=1 switches the training-based harnesses from the compact
/// default sweeps to the paper's full grids (minutes -> tens of minutes on
/// one core).
inline bool full_mode() {
  const char* env = std::getenv("ADCNN_FULL");
  return env && std::strcmp(env, "0") != 0;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Pi-class device used everywhere (see sim/device.hpp for calibration).
inline sim::DeviceSpec pi_device() { return sim::DeviceSpec{}; }

/// The paper's testbed WiFi.
inline sim::LinkSpec testbed_link() {
  return sim::LinkSpec{.bandwidth_bps = 87.72e6, .latency_s = 0.0005};
}

/// Default 8-node ADCNN simulation at the paper's settings; `deep` selects
/// the deep partition (suffix = head only) the testbed numbers imply.
inline sim::AdcnnSimConfig adcnn_config(const arch::ArchSpec& spec,
                                        int nodes, bool deep) {
  auto cfg = sim::AdcnnSimConfig::uniform(nodes, pi_device());
  cfg.link = testbed_link();
  if (spec.hin == 1) cfg.grid = core::TileGrid{1, 8};  // 1-D models
  if (deep) cfg.separable_override = sim::deep_partition_blocks(spec);
  return cfg;
}

/// Persist a telemetry export (InferStats::to_json report lines, a Chrome
/// trace from obs::TraceRecorder, a CSV timeline, a metrics snapshot) next
/// to the bench's stdout tables.
inline bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "bench: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

/// Aggregate a run of per-inference reports into one JSON summary (mean
/// stage timings + totals) — the breakdown benches' structured output, in
/// the same schema family as InferStats::to_json.
inline std::string stage_summary_json(
    const std::vector<runtime::InferStats>& runs) {
  runtime::StageTimings mean;
  double elapsed = 0.0;
  std::int64_t tiles = 0, missing = 0;
  for (const auto& r : runs) {
    mean.partition_s += r.stages.partition_s;
    mean.allocate_s += r.stages.allocate_s;
    mean.scatter_s += r.stages.scatter_s;
    mean.gather_s += r.stages.gather_s;
    mean.zero_fill_s += r.stages.zero_fill_s;
    mean.suffix_s += r.stages.suffix_s;
    elapsed += r.elapsed_s;
    tiles += r.tiles_total;
    missing += r.tiles_missing;
  }
  const double n = runs.empty() ? 1.0 : static_cast<double>(runs.size());
  obs::JsonWriter w;
  w.begin_object();
  w.kv("images", static_cast<std::int64_t>(runs.size()));
  w.kv("tiles_total", tiles);
  w.kv("tiles_missing", missing);
  w.kv("mean_elapsed_s", elapsed / n);
  w.key("mean_stages").begin_object();
  w.kv("partition_s", mean.partition_s / n);
  w.kv("allocate_s", mean.allocate_s / n);
  w.kv("scatter_s", mean.scatter_s / n);
  w.kv("gather_s", mean.gather_s / n);
  w.kv("zero_fill_s", mean.zero_fill_s / n);
  w.kv("suffix_s", mean.suffix_s / n);
  w.end_object();
  w.end_object();
  return w.take();
}

inline const std::vector<std::string>& five_models() {
  static const std::vector<std::string> models{"vgg16", "resnet34", "yolo",
                                               "fcn", "charcnn"};
  return models;
}

}  // namespace adcnn::bench
