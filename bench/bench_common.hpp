// Shared helpers for the per-table/figure benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/adcnn_sim.hpp"

namespace adcnn::bench {

/// ADCNN_FULL=1 switches the training-based harnesses from the compact
/// default sweeps to the paper's full grids (minutes -> tens of minutes on
/// one core).
inline bool full_mode() {
  const char* env = std::getenv("ADCNN_FULL");
  return env && std::strcmp(env, "0") != 0;
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Pi-class device used everywhere (see sim/device.hpp for calibration).
inline sim::DeviceSpec pi_device() { return sim::DeviceSpec{}; }

/// The paper's testbed WiFi.
inline sim::LinkSpec testbed_link() {
  return sim::LinkSpec{.bandwidth_bps = 87.72e6, .latency_s = 0.0005};
}

/// Default 8-node ADCNN simulation at the paper's settings; `deep` selects
/// the deep partition (suffix = head only) the testbed numbers imply.
inline sim::AdcnnSimConfig adcnn_config(const arch::ArchSpec& spec,
                                        int nodes, bool deep) {
  auto cfg = sim::AdcnnSimConfig::uniform(nodes, pi_device());
  cfg.link = testbed_link();
  if (spec.hin == 1) cfg.grid = core::TileGrid{1, 8};  // 1-D models
  if (deep) cfg.separable_override = sim::deep_partition_blocks(spec);
  return cfg;
}

inline const std::vector<std::string>& five_models() {
  static const std::vector<std::string> models{"vgg16", "resnet34", "yolo",
                                               "fcn", "charcnn"};
  return models;
}

}  // namespace adcnn::bench
