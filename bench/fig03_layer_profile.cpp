// Figure 3: per-layer-block execution time and ifmap size on a Pi-class
// edge device, for VGG16, ResNet18, FCN and CharCNN.
//
// Expected shape (paper): time and ifmap size peak in the early blocks and
// fall off sharply; the first four VGG16 blocks carry ~40% of total time;
// the FC block is a small fraction of compute.
#include "bench_common.hpp"
#include "sim/cost_model.hpp"

using namespace adcnn;

namespace {

void profile_model(const char* name) {
  const arch::ArchSpec spec = arch::by_name(name);
  const sim::DeviceSpec dev = bench::pi_device();
  std::printf("\n%s (input %lldx%lldx%lld, %.1f GFLOPs total)\n", name,
              static_cast<long long>(spec.cin),
              static_cast<long long>(spec.hin),
              static_cast<long long>(spec.win),
              static_cast<double>(spec.total_flops()) * 1e-9);
  std::printf("  %-8s %12s %14s %10s\n", "block", "time (ms)", "ifmap (KB)",
              "separable");
  double total = 0.0;
  std::vector<double> times;
  for (int b = 0; b < static_cast<int>(spec.blocks.size()); ++b) {
    double t = 0.0;
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers)
      t += sim::layer_seconds(l, dev);
    times.push_back(t);
    total += t;
  }
  for (int b = 0; b < static_cast<int>(spec.blocks.size()); ++b) {
    const auto& block = spec.blocks[static_cast<std::size_t>(b)];
    std::printf("  %-8s %12.2f %14.1f %10s\n", block.name.c_str(),
                times[static_cast<std::size_t>(b)] * 1e3,
                static_cast<double>(block.in_bytes()) / 1024.0,
                b < spec.separable_blocks ? "yes" : "");
  }
  double early = 0.0;
  const int four = std::min(4, static_cast<int>(times.size()));
  for (int b = 0; b < four; ++b) early += times[static_cast<std::size_t>(b)];
  std::printf("  total %.1f ms; first four blocks: %.1f%% of time; "
              "FC/head block: %.1f%%\n",
              total * 1e3, 100.0 * early / total,
              100.0 * times.back() / total);
}

}  // namespace

int main() {
  bench::header("Figure 3 — layer-block execution time & ifmap size "
                "(Pi-class device model)");
  for (const char* name : {"vgg16", "resnet18", "fcn", "charcnn"})
    profile_model(name);
  return 0;
}
