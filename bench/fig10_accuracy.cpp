// Figure 10: accuracy of the original CNN vs the FDSP-partitioned,
// clipped-ReLU + 4-bit-quantized, progressively retrained CNN, across
// partition grids.
//
// Paper scope: VGG16/ResNet34/YOLO/FCN/CharCNN on ImageNet-class corpora,
// grids 2x2 / 3x3 / 4x4 / 4x8 / 8x8, degradation <= ~1.3%. This harness
// runs the mini-model substitution (DESIGN.md §3) on synthetic tasks.
// Expected shape: retrained accuracy tracks the original closely at coarse
// grids and degrades gracefully at the finest grids.
//
// Default: 3 families x 3 grids (a few minutes on one core).
// ADCNN_FULL=1: all 5 families x all 5 grids.
#include "retrain_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 10 — original vs progressively retrained accuracy");
  const auto sizes = bench::retrain_sizes();
  const bool full = bench::full_mode();
  const std::vector<std::string> families =
      full ? std::vector<std::string>{"vgg", "resnet", "yolo", "fcn",
                                      "charcnn"}
           : std::vector<std::string>{"vgg", "resnet", "charcnn"};
  struct GridChoice {
    core::TileGrid grid;
    std::int64_t image;
  };
  const std::vector<GridChoice> grids =
      full ? std::vector<GridChoice>{{{2, 2}, 32},
                                     {{3, 3}, 48},
                                     {{4, 4}, 32},
                                     {{4, 8}, 32},
                                     {{8, 8}, 32}}
           : std::vector<GridChoice>{{{2, 2}, 32}, {{4, 4}, 32}, {{8, 8}, 32}};
  std::printf("mode: %s (set ADCNN_FULL=1 for the paper's full grid)\n",
              full ? "full" : "compact");

  std::printf("\n%-9s %-6s %10s %10s %10s\n", "model", "grid", "original",
              "retrained", "delta");
  bench::rule();
  for (const auto& family : families) {
    // One trained original per (family, image size).
    for (std::int64_t image : {std::int64_t{32}, std::int64_t{48}}) {
      bool used = false;
      for (const auto& choice : grids)
        used |= (choice.image == image);
      if (!used || (family == "charcnn" && image != 32)) continue;

      const auto setup = bench::make_family(family, image, sizes);
      nn::Model original = bench::train_original(setup, sizes);
      const double base =
          train::evaluate(original, setup.test_set).accuracy;

      for (const auto& choice : grids) {
        if (choice.image != image && family != "charcnn") continue;
        if (family == "charcnn" && choice.image != 32) continue;
        const core::TileGrid grid =
            bench::family_grid(family, choice.grid);
        const auto result =
            bench::retrain(setup, original, grid, sizes);
        const double retrained = result.stages.back().accuracy;
        std::printf("%-9s %lldx%-4lld %9.1f%% %9.1f%% %+9.1f%%\n",
                    family.c_str(),
                    static_cast<long long>(choice.grid.rows),
                    static_cast<long long>(choice.grid.cols), 100.0 * base,
                    100.0 * retrained, 100.0 * (retrained - base));
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n(paper: <=1%% degradation for VGG16/ResNet34/CharCNN, "
              "<=1.3%% for FCN, ~1.2%% mAP for YOLO)\n");
  return 0;
}
