// Figure 11: end-to-end inference latency of ADCNN (8 Conv nodes) vs the
// single-device and remote-cloud schemes, with 95% confidence intervals
// over 100 input samples.
//
// Expected shape (paper): ADCNN lowest on all five CNNs; 6.68x mean
// speedup vs single device, 4.42x vs remote cloud. Both the paper's stated
// separable-block counts and the deep partition its testbed numbers imply
// are reported (EXPERIMENTS.md discusses the reconciliation).
#include "bench_common.hpp"
#include "sim/baseline_sim.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 11 — latency vs single-device and remote-cloud "
                "(8 Conv nodes, 87.72 Mbps edge / 61.30 Mbps WAN)");
  const int images = 100;
  std::printf("%-9s | %-19s | %-19s | %15s | %15s\n", "model",
              "ADCNN stated (ms)", "ADCNN deep (ms)", "single (ms)",
              "cloud (ms)");
  bench::rule();
  double speedup_single = 0.0, speedup_cloud = 0.0;
  for (const auto& name : bench::five_models()) {
    const auto spec = arch::by_name(name);
    auto stated = bench::adcnn_config(spec, 8, false);
    auto deep = bench::adcnn_config(spec, 8, true);
    const auto r_stated = sim::simulate_adcnn(spec, stated, images);
    const auto r_deep = sim::simulate_adcnn(spec, deep, images);
    const auto single =
        sim::simulate_single_device(spec, bench::pi_device(), 0.03, 5, images);
    const auto cloud =
        sim::simulate_remote_cloud(spec, sim::CloudConfig{}, 0.03, 5, images);
    std::printf("%-9s | %9.1f +-%6.1f | %9.1f +-%6.1f | %8.1f +-%4.1f | "
                "%8.1f +-%4.1f\n",
                name.c_str(), r_stated.mean_latency_s * 1e3,
                r_stated.ci95_s * 1e3, r_deep.mean_latency_s * 1e3,
                r_deep.ci95_s * 1e3, single.mean_latency_s * 1e3,
                single.ci95_s * 1e3, cloud.mean_latency_s * 1e3,
                cloud.ci95_s * 1e3);
    speedup_single += single.mean_latency_s / r_deep.mean_latency_s;
    speedup_cloud += cloud.mean_latency_s / r_deep.mean_latency_s;
  }
  const double n = static_cast<double>(bench::five_models().size());
  std::printf("\nmean speedup (deep partition): %.2fx vs single device, "
              "%.2fx vs remote cloud\n(paper: 6.68x and 4.42x)\n",
              speedup_single / n, speedup_cloud / n);
  return 0;
}
