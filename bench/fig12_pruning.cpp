// Figure 12: effect of pruning (clipped ReLU + quantization + RLE) on
// inference latency at two transmission rates (87.72 and 12.66 Mbps).
//
// Expected shape (paper): pruning cuts latency by ~10.7% at 87.72 Mbps and
// ~31.2% at 12.66 Mbps — the benefit grows as bandwidth shrinks.
#include "bench_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 12 — latency with/without pruning vs bandwidth "
                "(8 Conv nodes, deep partition)");
  const int images = 60;
  std::printf("%-9s | %10s | %12s | %12s | %9s\n", "model", "bw (Mbps)",
              "pruned (ms)", "raw (ms)", "savings");
  bench::rule();
  for (const double mbps : {87.72, 12.66}) {
    double savings_sum = 0.0;
    for (const auto& name : bench::five_models()) {
      const auto spec = arch::by_name(name);
      auto cfg = bench::adcnn_config(spec, 8, /*deep=*/true);
      cfg.link.bandwidth_bps = mbps * 1e6;
      // Wide straggler slack: with a tight deadline the raw variant would
      // zero-fill instead of slowing down, trading accuracy for time.
      cfg.straggler_slack = 50.0;
      auto raw_cfg = cfg;
      raw_cfg.compress = false;
      const double pruned =
          sim::simulate_adcnn(spec, cfg, images).mean_latency_s;
      const double raw =
          sim::simulate_adcnn(spec, raw_cfg, images).mean_latency_s;
      const double savings = 100.0 * (raw - pruned) / raw;
      savings_sum += savings;
      std::printf("%-9s | %10.2f | %12.1f | %12.1f | %8.1f%%\n", name.c_str(),
                  mbps, pruned * 1e3, raw * 1e3, savings);
    }
    std::printf("%-9s | %10.2f | mean savings %.1f%%\n", "(mean)", mbps,
                savings_sum / static_cast<double>(bench::five_models().size()));
    bench::rule();
  }
  std::printf("(paper: 10.73%% at 87.72 Mbps, 31.2%% at 12.66 Mbps)\n");
  return 0;
}
