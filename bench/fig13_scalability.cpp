// Figure 13: scalability — latency/speedup with 2..8 Conv nodes (left
// plot), and per-node energy & memory vs the single-device scheme (right
// plot), on VGG16.
//
// Expected shape (paper): speedup grows from 1.8x (2 nodes) to 6.2x
// (8 nodes) with diminishing returns; per-node energy and memory fall as
// nodes are added.
#include "bench_common.hpp"
#include "sim/baseline_sim.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 13 — scalability, energy and memory on VGG16");
  const auto spec = arch::vgg16();
  const int images = 60;
  const auto single =
      sim::simulate_single_device(spec, bench::pi_device(), 0.03, 5, images);

  // Single-device reference for energy/memory.
  const auto& power = bench::pi_device().power;
  const double single_energy =
      power.active_w * single.mean_latency_s;  // busy the whole time
  const std::int64_t single_memory =
      spec.total_param_bytes() + spec.input_bytes();

  std::printf("%-7s %12s %9s %18s %18s\n", "nodes", "latency(ms)", "speedup",
              "energy/node (J)", "memory/node (MB)");
  bench::rule();
  std::printf("%-7s %12.1f %9s %18.2f %18.1f\n", "single",
              single.mean_latency_s * 1e3, "1.0x", single_energy,
              static_cast<double>(single_memory) / 1e6);
  for (int nodes = 2; nodes <= 8; ++nodes) {
    auto cfg = bench::adcnn_config(spec, nodes, /*deep=*/true);
    const auto result = sim::simulate_adcnn(spec, cfg, images);
    // Energy per image per node; node_energy_j covers the whole run.
    double energy = 0.0;
    for (const double e : result.node_energy_j) energy += e;
    energy /= static_cast<double>(nodes) * images;
    const std::int64_t tiles_per_node =
        cfg.grid.count() / nodes + (cfg.grid.count() % nodes ? 1 : 0);
    arch::ArchSpec deep = spec;
    deep.separable_blocks = sim::deep_partition_blocks(spec);
    const std::int64_t memory =
        sim::conv_node_memory_bytes(deep, cfg.grid, tiles_per_node);
    std::printf("%-7d %12.1f %8.1fx %18.2f %18.1f\n", nodes,
                result.mean_latency_s * 1e3,
                single.mean_latency_s / result.mean_latency_s, energy,
                static_cast<double>(memory) / 1e6);
  }
  std::printf("\n(paper: speedup 1.8x..6.2x from 2..8 nodes; energy and "
              "memory per node decrease monotonically)\n");
  return 0;
}
