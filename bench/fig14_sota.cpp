// Figure 14: ADCNN vs Neurosurgeon vs AOFL on YOLO, VGG16 and ResNet34.
//
// Expected shape (paper): ADCNN fastest everywhere; on average 1.6x faster
// than AOFL and 2.8x than Neurosurgeon. Neurosurgeon cuts early (its WAN
// upload dominates); AOFL fuses many early layers.
#include "baselines/aofl.hpp"
#include "baselines/neurosurgeon.hpp"
#include "bench_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 14 — ADCNN vs Neurosurgeon vs AOFL");
  const int images = 100;
  std::printf("%-9s | %-17s | %-24s | %-26s\n", "model", "ADCNN (ms)",
              "AOFL (ms, fused blocks)", "Neurosurgeon (ms, cut, tx%)");
  bench::rule();
  double r_aofl = 0.0, r_neuro = 0.0;
  for (const char* name : {"yolo", "vgg16", "resnet34"}) {
    const auto spec = arch::by_name(name);
    auto cfg = bench::adcnn_config(spec, 8, /*deep=*/true);
    const auto adcnn = sim::simulate_adcnn(spec, cfg, images);
    const auto aofl = baselines::aofl_plan(
        spec, core::TileGrid{2, 4}, bench::pi_device(), bench::testbed_link());
    const auto neuro = baselines::neurosurgeon_plan(spec, bench::pi_device(),
                                                    sim::CloudConfig{});
    std::printf("%-9s | %7.1f +-%5.1f | %14.1f  f=%-7d | %12.1f cut=%-3d "
                "%4.0f%%\n",
                name, adcnn.mean_latency_s * 1e3, adcnn.ci95_s * 1e3,
                aofl.latency_s * 1e3, aofl.fused_blocks(), neuro.latency_s * 1e3,
                neuro.cut, 100.0 * neuro.tx_s / neuro.latency_s);
    r_aofl += aofl.latency_s / adcnn.mean_latency_s;
    r_neuro += neuro.latency_s / adcnn.mean_latency_s;
  }
  std::printf("\nmean: AOFL %.2fx, Neurosurgeon %.2fx slower than ADCNN "
              "(paper: 1.6x and 2.8x)\n", r_aofl / 3.0, r_neuro / 3.0);
  return 0;
}
