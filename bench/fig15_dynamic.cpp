// Figure 15: adaptation to runtime node-performance degradation.
//
// Mid-run (while processing a stream of VGG16 inputs at an 8x8 partition
// over 8 nodes), nodes 5-6 lose ~55% of their CPU and nodes 7-8 lose ~76%
// (the paper's CPUlimit experiment). Expected shape: per-image latency
// spikes at the degradation, then Algorithm 2's statistics pull tiles away
// from the slow nodes (Algorithm 3) and latency partially recovers; tile
// assignments shift from 8 per node to more on the healthy nodes and ~5/3
// on the throttled ones.
#include "bench_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Figure 15 — adaptation to node performance degradation "
                "(VGG16, 8x8, 8 nodes)");
  const auto spec = arch::vgg16();
  auto cfg = bench::adcnn_config(spec, 8, /*deep=*/true);
  const int images = 100;

  // Degrade after ~image 50: estimate its start time from a clean run.
  const double t50 =
      sim::simulate_adcnn(spec, cfg, 51).images.back().partition_start;
  for (int k = 4; k < 6; ++k)
    cfg.nodes[static_cast<std::size_t>(k)].trace = {{t50, 0.45}};
  for (int k = 6; k < 8; ++k)
    cfg.nodes[static_cast<std::size_t>(k)].trace = {{t50, 0.24}};

  const auto result = sim::simulate_adcnn(spec, cfg, images);

  std::printf("(a) CPU availability: nodes 1-4 100%%; nodes 5-6 -> 45%%, "
              "nodes 7-8 -> 24%% at t=%.2fs (image ~50)\n\n", t50);

  std::printf("(b) per-image latency (ms), every 5th image:\n  ");
  for (int i = 0; i < images; i += 5)
    std::printf("%6.0f", result.images[static_cast<std::size_t>(i)].latency *
                             1e3);
  std::printf("\n");
  double before = 0.0, spike = 0.0, after = 0.0;
  for (int i = 30; i < 48; ++i)
    before += result.images[static_cast<std::size_t>(i)].latency;
  before /= 18.0;
  for (int i = 50; i < 56; ++i)
    spike = std::max(spike,
                     result.images[static_cast<std::size_t>(i)].latency);
  for (int i = 80; i < 100; ++i)
    after += result.images[static_cast<std::size_t>(i)].latency;
  after /= 20.0;
  std::printf("  steady before: %.0f ms; peak at degradation: %.0f ms; "
              "steady after adaptation: %.0f ms\n",
              before * 1e3, spike * 1e3, after * 1e3);
  std::printf("  (paper: 241 ms -> 392 ms spike -> 351 ms settled)\n");

  std::printf("\n(c) tile assignment per node:\n");
  auto print_assign = [&](int i) {
    std::printf("  image %3d:", i);
    for (const auto tiles :
         result.images[static_cast<std::size_t>(i)].assigned)
      std::printf(" %3lld", static_cast<long long>(tiles));
    std::printf("   (zero-filled: %lld)\n",
                static_cast<long long>(
                    result.images[static_cast<std::size_t>(i)].zero_filled));
  };
  for (const int i : {0, 45, 52, 60, 75, 99}) print_assign(i);
  std::printf("  (paper: 8 each -> 12,12,12,12,5,5,3,3 after adaptation)\n");
  return 0;
}
