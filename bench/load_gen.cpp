// Trace-driven load generator for the dynamic batcher: replays Poisson,
// diurnal and bursty arrival schedules (deterministic seed, thousands of
// simulated clients) against a StreamingServer and reports what multi-
// tenant batched serving actually achieves.
//
//   load_gen [--smoke] [--json=PATH]
//
// Emits BENCH_batch.json:
//   - unbatched depth-4 baseline vs batched (max_batch=4) images/sec with
//     p50/p99/p999 in-system latency per run,
//   - the achieved batch-size distribution (batch.size_q via the windowed
//     quantile plane) and batcher occupancy,
//   - per-tenant submitted/delivered/shed + latency percentiles and the
//     slo.tenant.* monitor verdicts under deliberate overload.
//
// Hard gate (exit 1): every delivered batched output must be bit-identical
// to a sequential infer() oracle on the same image. The >= 1.5x batched
// speedup gate is enforced only when the host has more than one core —
// on a single-core box the threaded runs measure oversubscription, so the
// JSON carries speedup_gate_enforced=false instead of a fake pass.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fdsp.hpp"
#include "net/cluster.hpp"
#include "net/worker.hpp"
#include "nn/models_mini.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"
#include "runtime/pipeline.hpp"

#ifndef ADCNN_WORKER_BIN
#define ADCNN_WORKER_BIN ""
#endif

namespace {

using namespace adcnn;
using Clock = std::chrono::steady_clock;

// --- deterministic trace RNG (std distributions are not portable) -------

struct SplitMix64 {
  std::uint64_t state;
  explicit SplitMix64(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  double uniform() {  // (0, 1]
    return (static_cast<double>(next() >> 11) + 1.0) / 9007199254740992.0;
  }
  double exponential(double rate) { return -std::log(uniform()) / rate; }
  int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
};

// --- arrival schedules --------------------------------------------------

struct TraceEvent {
  double t_s = 0.0;
  int tenant = 0;
  int client = 0;
};

struct TraceSpec {
  int num_tenants = 1;
  int num_clients = 2000;
  std::uint64_t seed = 1;
  /// Tenant share of traffic, cumulative-sampled; sized num_tenants.
  std::vector<double> tenant_share;
};

int sample_tenant(const TraceSpec& spec, SplitMix64& rng) {
  if (spec.tenant_share.empty()) return rng.pick(spec.num_tenants);
  const double u = rng.uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < spec.tenant_share.size(); ++i) {
    acc += spec.tenant_share[i];
    if (u <= acc) return static_cast<int>(i);
  }
  return spec.num_tenants - 1;
}

void finish_event(const TraceSpec& spec, SplitMix64& rng, double t,
                  std::vector<TraceEvent>* out) {
  out->push_back(TraceEvent{t, sample_tenant(spec, rng),
                            rng.pick(spec.num_clients)});
}

/// Homogeneous Poisson arrivals at `rate` events/sec for `duration_s`.
std::vector<TraceEvent> make_poisson(const TraceSpec& spec, double rate,
                                     double duration_s) {
  SplitMix64 rng(spec.seed);
  std::vector<TraceEvent> events;
  for (double t = rng.exponential(rate); t < duration_s;
       t += rng.exponential(rate)) {
    finish_event(spec, rng, t, &events);
  }
  return events;
}

/// Sinusoidally modulated rate (one "day" = the trace duration): thinning
/// of a Poisson stream at the peak rate.
std::vector<TraceEvent> make_diurnal(const TraceSpec& spec, double base_rate,
                                     double duration_s) {
  SplitMix64 rng(spec.seed ^ 0xd1a7ull);
  const double depth = 0.8;  // valley = 0.2x base, peak = 1.8x base
  const double peak = base_rate * (1.0 + depth);
  std::vector<TraceEvent> events;
  for (double t = rng.exponential(peak); t < duration_s;
       t += rng.exponential(peak)) {
    const double phase = 2.0 * 3.14159265358979323846 * t / duration_s;
    const double rate_t = base_rate * (1.0 + depth * std::sin(phase));
    if (rng.uniform() <= rate_t / peak) finish_event(spec, rng, t, &events);
  }
  return events;
}

/// On/off bursts: `burst_len` back-to-back arrivals, then an exponential
/// quiet gap — the worst case for a time-or-size batcher (full batches
/// during bursts, lone stragglers after).
std::vector<TraceEvent> make_bursty(const TraceSpec& spec, int burst_len,
                                    double gap_s, double duration_s) {
  SplitMix64 rng(spec.seed ^ 0xb5757ull);
  std::vector<TraceEvent> events;
  double t = 0.0;
  while (t < duration_s) {
    for (int i = 0; i < burst_len && t < duration_s; ++i) {
      finish_event(spec, rng, t, &events);
      t += 0.0002;  // back-to-back within the burst
    }
    t += rng.exponential(1.0 / gap_s);
  }
  return events;
}

// --- cluster / server construction --------------------------------------

core::PartitionedModel make_model() {
  Rng rng(31);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{2, 2};
  opt.clipped_relu = true;
  opt.clip_lower = 0.0f;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  return core::apply_fdsp(nn::make_mini("vgg", rng, nn::MiniOptions{}), opt);
}

runtime::ClusterConfig make_cluster_config(bool realtime, bool node_batching) {
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.bandwidth_bps = 20e6;
  cfg.latency_s = 0.0005;
  cfg.time_scale = realtime ? 1.0 : 0.0;
  if (node_batching) cfg.node_batching = runtime::NodeBatchConfig{4, 200};
  return cfg;
}

std::vector<Tensor> make_images(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> images;
  images.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    images.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
  }
  return images;
}

// --- replay -------------------------------------------------------------

struct TenantStats {
  std::int64_t submitted = 0;
  std::int64_t delivered = 0;
  std::int64_t shed = 0;  // admission + deadline
  std::vector<double> latencies_s;
};

struct ReplayResult {
  double wall_s = 0.0;
  std::int64_t delivered = 0;
  std::int64_t shed = 0;
  std::vector<double> latencies_s;  // delivered images only
  /// Delivered outputs by event index (shed events have no entry).
  std::map<std::size_t, Tensor> outputs;
  std::vector<TenantStats> tenants;
};

/// Replay `events` against `server` in real time: sleep to each arrival,
/// try_submit for the event's tenant, then redeem every ticket. A nullopt
/// admission or a "shed:" wait error counts as a shed for that tenant.
ReplayResult replay(runtime::StreamingServer& server,
                    const std::vector<TraceEvent>& events,
                    const std::vector<Tensor>& images, int num_tenants) {
  ReplayResult r;
  r.tenants.resize(static_cast<std::size_t>(num_tenants));
  std::vector<std::pair<std::size_t, std::int64_t>> tickets;  // event, ticket
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(ev.t_s)));
    TenantStats& ts = r.tenants[static_cast<std::size_t>(ev.tenant)];
    ++ts.submitted;
    const auto ticket = server.try_submit(ev.tenant, images[i]);
    if (!ticket) {
      ++ts.shed;
      ++r.shed;
      continue;
    }
    tickets.emplace_back(i, *ticket);
  }
  for (const auto& [event_idx, ticket] : tickets) {
    TenantStats& ts =
        r.tenants[static_cast<std::size_t>(events[event_idx].tenant)];
    try {
      double latency_s = 0.0;
      Tensor out = server.wait(ticket, nullptr, &latency_s);
      r.outputs.emplace(event_idx, std::move(out));
      r.latencies_s.push_back(latency_s);
      ts.latencies_s.push_back(latency_s);
      ++ts.delivered;
      ++r.delivered;
    } catch (const std::runtime_error& e) {
      if (std::strncmp(e.what(), "shed:", 5) != 0) throw;
      ++ts.shed;
      ++r.shed;
    }
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  return r;
}

struct Percentiles {
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;
};

Percentiles percentiles_ms(std::vector<double> latencies_s) {
  Percentiles p;
  if (latencies_s.empty()) return p;
  std::sort(latencies_s.begin(), latencies_s.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_s.size() - 1) + 0.5);
    return latencies_s[std::min(idx, latencies_s.size() - 1)] * 1e3;
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  p.p999 = at(0.999);
  return p;
}

/// Bitwise check of every delivered output against the sequential oracle.
bool check_outputs(const ReplayResult& r, const std::vector<Tensor>& oracle) {
  for (const auto& [event_idx, out] : r.outputs) {
    if (Tensor::max_abs_diff(out, oracle[event_idx]) != 0.0f) {
      std::printf("FAIL: event %zu output differs from sequential oracle\n",
                  event_idx);
      return false;
    }
  }
  return true;
}

void write_run(obs::JsonWriter& w, const char* key, const ReplayResult& r) {
  const Percentiles p = percentiles_ms(r.latencies_s);
  w.key(key).begin_object();
  w.kv("delivered", r.delivered);
  w.kv("shed", r.shed);
  w.kv("wall_s", r.wall_s);
  w.kv("images_per_s", static_cast<double>(r.delivered) / r.wall_s);
  w.kv("p50_ms", p.p50).kv("p99_ms", p.p99).kv("p999_ms", p.p999);
  w.end_object();
}

void write_batch_plane(obs::JsonWriter& w, const obs::MetricsSnapshot& snap) {
  w.key("batch").begin_object();
  const auto q = snap.quantiles.find("batch.size_q");
  if (q != snap.quantiles.end()) {
    const auto& t = q->second.total;
    w.kv("dispatches", t.count);
    w.kv("size_mean", t.mean());
    w.kv("size_p50", t.p50).kv("size_p90", t.p90).kv("size_p99", t.p99);
    w.kv("size_max", t.max);
  }
  const auto occ = snap.gauges.find("batch.occupancy");
  if (occ != snap.gauges.end()) w.kv("last_occupancy", occ->second);
  const auto wait = snap.quantiles.find("batch.wait_q");
  if (wait != snap.quantiles.end()) {
    w.kv("assemble_p99_s", wait->second.total.p99);
  }
  w.end_object();
}

/// --sockets: the same batched multi-tenant server over a real
/// multi-process cluster — 4 spawned adcnn_conv_worker processes behind
/// the CRC-framed TCP transport (DESIGN.md §13). The oracle is an
/// in-process EdgeCluster over the identical ModelSpec (same codec path),
/// so the bitwise gate carries across the wire.
std::optional<ReplayResult> run_socket_trace(
    const std::vector<TraceEvent>& events,
    const std::vector<runtime::TenantConfig>& tenant_cfgs, int num_tenants,
    obs::MetricsRegistry* metrics, bool* gate_ok) {
  *gate_ok = true;
  if (std::strlen(ADCNN_WORKER_BIN) == 0) {
    std::printf("sockets: worker binary path not compiled in, skipping\n");
    return std::nullopt;
  }
  net::ModelSpec spec;  // vgg_mini 32x32, 4x4 grid, clipped + quantized
  const auto images = make_images(events.size(), 7);
  std::vector<Tensor> oracle;
  {
    core::PartitionedModel pm = spec.build();
    runtime::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.compress = true;
    runtime::EdgeCluster cluster(pm, cfg);
    for (const auto& image : images) oracle.push_back(cluster.infer(image));
  }

  core::PartitionedModel pm = spec.build();
  net::DistributedConfig dcfg;
  dcfg.num_nodes = 4;
  dcfg.worker_binary = ADCNN_WORKER_BIN;
  dcfg.spec = spec;
  dcfg.deadline_s = 20.0;  // generous: shared CI machines can stall
  net::DistributedCluster cluster(pm, dcfg);
  if (!cluster.wait_all_connected(15.0)) {
    std::printf("FAIL: socket workers never connected\n");
    *gate_ok = false;
    return std::nullopt;
  }
  runtime::StreamingConfig scfg;
  scfg.max_in_flight = 4;
  scfg.batching = runtime::BatchConfig{4, 2000};
  scfg.tenants = tenant_cfgs;
  scfg.telemetry.metrics = metrics;
  runtime::StreamingServer server(cluster.central(), scfg);
  ReplayResult r = replay(server, events, images, num_tenants);
  server.close();
  std::printf("sockets b=4  : %7.2f img/s  %lld delivered, %lld shed "
              "(4 worker processes)\n",
              static_cast<double>(r.delivered) / r.wall_s,
              static_cast<long long>(r.delivered),
              static_cast<long long>(r.shed));
  *gate_ok = check_outputs(r, oracle);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool sockets = false;
  std::string json_path = "BENCH_batch.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sockets") == 0) {
      sockets = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  const std::int64_t hw_cores =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  const bool enforce_speedup = hw_cores > 1;

  TraceSpec spec;
  spec.num_tenants = 3;
  spec.num_clients = smoke ? 200 : 2000;
  spec.seed = 2026021;
  spec.tenant_share = {0.6, 0.3, 0.1};

  // Arrival schedules. The Poisson trace carries the headline comparison;
  // diurnal exercises occupancy through a load swing; bursty plus tight
  // SLOs exercises admission + deadline shedding.
  const double duration = smoke ? 0.4 : 2.0;
  const double rate = smoke ? 50.0 : 80.0;
  const auto poisson = make_poisson(spec, rate, duration);
  const auto diurnal = make_diurnal(spec, rate, duration);
  const auto bursty =
      make_bursty(spec, smoke ? 8 : 16, duration / 6.0, duration);

  adcnn::bench::header("Dynamic batching load generator");
  std::set<int> clients;
  for (const auto& e : poisson) clients.insert(e.client);
  std::printf(
      "traces: poisson %zu, diurnal %zu, bursty %zu events over %.1fs "
      "(%zu distinct clients, %d tenants, seed %llu)\n",
      poisson.size(), diurnal.size(), bursty.size(), duration, clients.size(),
      spec.num_tenants,
      static_cast<unsigned long long>(spec.seed));

  const std::size_t max_events =
      std::max({poisson.size(), diurnal.size(), bursty.size()});
  const auto images = make_images(max_events, 7);

  // Sequential oracle: functional-mode cluster (no link sleeps), one
  // infer() per image. Every delivered batched output must match bitwise.
  std::vector<Tensor> oracle;
  {
    core::PartitionedModel pm = make_model();
    runtime::EdgeCluster cluster(pm, make_cluster_config(false, false));
    for (const auto& image : images) oracle.push_back(cluster.infer(image));
  }
  std::printf("oracle: %zu sequential outputs\n", oracle.size());

  const auto tenant_cfgs = [&] {
    std::vector<runtime::TenantConfig> ts(3);
    ts[0].name = "gold";
    ts[0].weight = 3.0;
    ts[1].name = "silver";
    ts[1].weight = 2.0;
    ts[2].name = "bronze";
    ts[2].weight = 1.0;
    return ts;
  }();

  // Run A: unbatched depth-4 baseline on the Poisson trace.
  ReplayResult base;
  {
    core::PartitionedModel pm = make_model();
    runtime::EdgeCluster cluster(pm, make_cluster_config(true, false));
    runtime::StreamingConfig scfg;
    scfg.max_in_flight = 4;
    scfg.tenants = tenant_cfgs;
    runtime::StreamingServer server(cluster.central(), scfg);
    base = replay(server, poisson, images, spec.num_tenants);
  }
  const Percentiles bp = percentiles_ms(base.latencies_s);
  std::printf("unbatched d=4 : %7.2f img/s  p50 %6.2f ms  p99 %6.2f ms\n",
              static_cast<double>(base.delivered) / base.wall_s, bp.p50,
              bp.p99);
  if (!check_outputs(base, oracle)) return 1;

  // Run B: batched (server max_batch=4 + worker tile coalescing), same
  // trace and tenants.
  ReplayResult batched;
  obs::MetricsRegistry batched_metrics;
  {
    core::PartitionedModel pm = make_model();
    runtime::EdgeCluster cluster(pm, make_cluster_config(true, true));
    runtime::StreamingConfig scfg;
    scfg.max_in_flight = 4;
    scfg.batching = runtime::BatchConfig{4, 2000};
    scfg.tenants = tenant_cfgs;
    scfg.telemetry.metrics = &batched_metrics;
    runtime::StreamingServer server(cluster.central(), scfg);
    batched = replay(server, poisson, images, spec.num_tenants);
  }
  const Percentiles qp = percentiles_ms(batched.latencies_s);
  const double speedup =
      (static_cast<double>(batched.delivered) / batched.wall_s) /
      (static_cast<double>(base.delivered) / base.wall_s);
  std::printf("batched  b=4 : %7.2f img/s  p50 %6.2f ms  p99 %6.2f ms  x%.2f\n",
              static_cast<double>(batched.delivered) / batched.wall_s, qp.p50,
              qp.p99, speedup);
  if (!check_outputs(batched, oracle)) return 1;

  // Run C: diurnal swing through the batched server (occupancy tracking).
  ReplayResult diurnal_run;
  obs::MetricsRegistry diurnal_metrics;
  {
    core::PartitionedModel pm = make_model();
    runtime::EdgeCluster cluster(pm, make_cluster_config(true, true));
    runtime::StreamingConfig scfg;
    scfg.max_in_flight = 4;
    scfg.batching = runtime::BatchConfig{4, 2000};
    scfg.tenants = tenant_cfgs;
    scfg.telemetry.metrics = &diurnal_metrics;
    runtime::StreamingServer server(cluster.central(), scfg);
    diurnal_run = replay(server, diurnal, images, spec.num_tenants);
  }
  if (!check_outputs(diurnal_run, oracle)) return 1;

  // Run D: bursty overload with bounded queues and tight per-tenant SLOs —
  // admission + deadline shedding must hit the overloaded tenants only,
  // and every output that IS delivered must still be exact.
  ReplayResult overload;
  obs::MetricsRegistry overload_metrics;
  {
    core::PartitionedModel pm = make_model();
    runtime::EdgeCluster cluster(pm, make_cluster_config(true, true));
    runtime::StreamingConfig scfg;
    scfg.max_in_flight = 4;
    scfg.batching = runtime::BatchConfig{4, 1000};
    auto ts = tenant_cfgs;
    for (auto& t : ts) {
      t.queue_capacity = 6;
      t.slo.target_latency_s = 0.02;
      t.slo.max_miss_rate = 0.2;
      t.slo.window = 32;
      t.slo.min_samples = 8;
      t.slo.sustain = 2;
    }
    scfg.tenants = ts;
    scfg.telemetry.metrics = &overload_metrics;
    runtime::StreamingServer server(cluster.central(), scfg);
    overload = replay(server, bursty, images, spec.num_tenants);
  }
  std::printf("overload     : %lld delivered, %lld shed\n",
              static_cast<long long>(overload.delivered),
              static_cast<long long>(overload.shed));
  if (!check_outputs(overload, oracle)) return 1;

  // Run E (--sockets): batched serving over the real multi-process
  // cluster, gated against its own in-process oracle.
  std::optional<ReplayResult> socket_run;
  obs::MetricsRegistry socket_metrics;
  if (sockets) {
    bool gate_ok = true;
    socket_run = run_socket_trace(poisson, tenant_cfgs, spec.num_tenants,
                                  &socket_metrics, &gate_ok);
    if (!gate_ok) return 1;
  }
  std::printf("all delivered outputs bit-identical to the sequential oracle\n");

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "load_gen");
  w.kv("smoke", smoke);
  w.kv("seed", static_cast<std::int64_t>(spec.seed));
  w.kv("hw_concurrency", hw_cores);
  w.kv("speedup_gate_enforced", enforce_speedup);
  w.kv("num_clients", static_cast<std::int64_t>(spec.num_clients));
  w.key("trace").begin_object();
  w.kv("duration_s", duration);
  w.kv("poisson_events", static_cast<std::int64_t>(poisson.size()));
  w.kv("diurnal_events", static_cast<std::int64_t>(diurnal.size()));
  w.kv("bursty_events", static_cast<std::int64_t>(bursty.size()));
  w.end_object();

  write_run(w, "unbatched_d4", base);
  write_run(w, "batched_b4", batched);
  w.key("batched_extras").begin_object();
  w.kv("speedup_vs_unbatched", speedup);
  w.kv("bit_identical", true);
  write_batch_plane(w, batched_metrics.snapshot());
  w.end_object();
  write_run(w, "diurnal", diurnal_run);
  w.key("diurnal_extras").begin_object();
  write_batch_plane(w, diurnal_metrics.snapshot());
  w.end_object();

  if (socket_run) {
    write_run(w, "socket_batched", *socket_run);
    w.key("socket_extras").begin_object();
    w.kv("worker_processes", 4);
    w.kv("bit_identical", true);
    write_batch_plane(w, socket_metrics.snapshot());
    w.end_object();
  }

  write_run(w, "overload", overload);
  const auto snap = overload_metrics.snapshot();
  w.key("tenants").begin_array();
  for (std::size_t i = 0; i < tenant_cfgs.size(); ++i) {
    const TenantStats& ts = overload.tenants[i];
    const Percentiles tp = percentiles_ms(ts.latencies_s);
    w.begin_object();
    w.kv("name", tenant_cfgs[i].name);
    w.kv("weight", tenant_cfgs[i].weight);
    w.kv("submitted", ts.submitted);
    w.kv("delivered", ts.delivered);
    w.kv("shed", ts.shed);
    w.kv("shed_rate", ts.submitted
                          ? static_cast<double>(ts.shed) /
                                static_cast<double>(ts.submitted)
                          : 0.0);
    w.kv("p50_ms", tp.p50).kv("p99_ms", tp.p99).kv("p999_ms", tp.p999);
    const std::string p = "slo.tenant." + tenant_cfgs[i].name;
    const auto miss = snap.gauges.find(p + ".miss_rate");
    if (miss != snap.gauges.end()) {
      w.kv("slo_miss_rate", miss->second);
      w.kv("slo_shed_rate", snap.gauges.at(p + ".shed_rate"));
      w.kv("slo_in_violation", snap.gauges.at(p + ".in_violation"));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream out(json_path, std::ios::binary);
  out << w.take() << "\n";
  if (!out) {
    std::fprintf(stderr, "load_gen: failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (enforce_speedup && speedup < 1.5) {
    std::printf("FAIL: batched speedup %.2fx < 1.5x on a %lld-core host\n",
                speedup, static_cast<long long>(hw_cores));
    return 1;
  }
  if (!enforce_speedup) {
    std::printf("note: single-core host, speedup gate not enforced "
                "(measured %.2fx)\n",
                speedup);
  }
  return 0;
}
