// Operator / codec / scheduler micro-benchmarks (google-benchmark).
#include <benchmark/benchmark.h>

#include "compress/pipeline.hpp"
#include "core/allocate.hpp"
#include "core/stats.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/tiling.hpp"
#include "sim/adcnn_sim.hpp"

namespace {

using namespace adcnn;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops(x.shape()));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  const Tensor g = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  for (auto _ : state) {
    conv.forward(x, nn::Mode::kTrain);
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_TileSplitMerge(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{1, 64, 64, 64}, rng);
  for (auto _ : state) {
    Tensor tiles = nn::TileSplit::split(x, 8, 8);
    Tensor merged = nn::TileSplit::merge(tiles, 8, 8);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4 * 2);
}
BENCHMARK(BM_TileSplitMerge);

void BM_TileCodecEncode(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(5);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < sparsity ? 0.0f
                                    : static_cast<float>(rng.uniform(0, 2));
  for (auto _ : state) {
    auto wire = codec.encode(x);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4);
}
BENCHMARK(BM_TileCodecEncode)->Arg(50)->Arg(90)->Arg(99);

void BM_TileCodecDecode(benchmark::State& state) {
  Rng rng(6);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < 0.95 ? 0.0f : 1.0f;
  const auto wire = codec.encode(x);
  for (auto _ : state) {
    Tensor y = codec.decode(wire, x.shape());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TileCodecDecode);

void BM_AllocateTiles(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  core::AllocRequest req;
  for (int k = 0; k < nodes; ++k) req.speeds.push_back(rng.uniform(0.5, 8.0));
  req.tiles = 64;
  for (auto _ : state) {
    auto x = core::allocate_tiles(req);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AllocateTiles)->Arg(4)->Arg(8)->Arg(32);

void BM_StatsCollector(benchmark::State& state) {
  core::StatsCollector collector(8, 0.9);
  const std::vector<std::int64_t> counts{8, 8, 7, 8, 6, 8, 8, 5};
  for (auto _ : state) {
    collector.record_image(counts);
    benchmark::DoNotOptimize(collector.speeds().data());
  }
}
BENCHMARK(BM_StatsCollector);

void BM_SimulateAdcnn(benchmark::State& state) {
  const auto spec = arch::vgg16();
  auto cfg = sim::AdcnnSimConfig::uniform(8, sim::DeviceSpec{});
  for (auto _ : state) {
    auto result = sim::simulate_adcnn(spec, cfg, 20);
    benchmark::DoNotOptimize(result.mean_latency_s);
  }
}
BENCHMARK(BM_SimulateAdcnn);

}  // namespace

BENCHMARK_MAIN();
