// Operator / codec / scheduler micro-benchmarks (google-benchmark), plus
// three JSON reports that replace the google-benchmark suite when requested
// (CI records the perf trajectory from the artifacts):
//   --gemm_json=PATH [--smoke]    naive vs blocked vs threaded GFLOP/s
//   --fusion_json=PATH [--smoke]  conv forward: unfused vs prepacked vs
//                                 fused-epilogue, plus BN-folding checks
//   --int8_json=PATH [--smoke]    quantized conv prefix vs fused fp32:
//                                 engine-vs-oracle bitwise, argmax
//                                 agreement, clip-derived grids, speedup
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <thread>

#include "compress/pipeline.hpp"
#include "core/allocate.hpp"
#include "core/fdsp.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/models_mini.hpp"
#include "nn/optimize.hpp"
#include "nn/tiling.hpp"
#include "obs/json.hpp"
#include "sim/adcnn_sim.hpp"

namespace {

using namespace adcnn;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm_naive(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlockedSerial(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n, nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedSerial)->Arg(64)->Arg(128)->Arg(256);

// ---------------------------------------------------------------------------
// GEMM engine report (BENCH_gemm.json).

/// Median-free simple throughput probe: run fn until min_time elapsed
/// (>= 1 iteration) and return seconds per iteration.
double time_loop(const std::function<void()>& fn, double min_time_s) {
  fn();  // warm up caches, pack buffers, pool threads
  std::int64_t iters = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_time_s);
  return elapsed / static_cast<double>(iters);
}

int run_gemm_report(const std::string& path, bool smoke) {
  const std::vector<std::int64_t> shapes =
      smoke ? std::vector<std::int64_t>{64, 128, 256}
            : std::vector<std::int64_t>{128, 256, 512};
  const double min_time = smoke ? 0.05 : 0.25;
  const std::vector<int> thread_counts{1, 2, 4};

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "gemm");
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency", core::ThreadPool::default_threads());
  // The true core count, independent of the ADCNN_THREADS override that
  // default_threads() honors: readers gate scaling claims on this.
  const std::int64_t hw_cores =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  w.kv("hw_concurrency", hw_cores);
  // On a single-core host the threaded runs just measure oversubscription
  // (scaling_vs_1t ≈ 1.0 no matter how good the kernel is), so the scaling
  // numbers are annotated as unenforceable rather than silently reported.
  w.kv("scaling_gate_enforced", hw_cores > 1);
  w.key("shapes").begin_array();
  for (const std::int64_t n : shapes) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<float> a(static_cast<std::size_t>(n * n)),
        b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const auto gflops = [&](double secs) { return flops / secs / 1e9; };

    const double naive = gflops(time_loop(
        [&] { nn::gemm_naive(a.data(), b.data(), c.data(), n, n, n); },
        min_time));
    const double blocked = gflops(time_loop(
        [&] { nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n); },
        min_time));

    w.begin_object();
    w.kv("m", n).kv("k", n).kv("n", n);
    w.kv("naive_gflops", naive);
    w.kv("blocked_1t_gflops", blocked);
    w.kv("blocked_speedup", blocked / naive);
    w.key("threaded").begin_array();
    for (const int t : thread_counts) {
      core::ThreadPool pool(t);
      const double thr = gflops(time_loop(
          [&] { nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n,
                                 &pool); },
          min_time));
      w.begin_object();
      w.kv("threads", t);
      w.kv("gflops", thr);
      w.kv("scaling_vs_1t", thr / blocked);
      w.kv("scaling_meaningful", hw_cores >= t);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("gemm %4lldx%4lld: naive %.2f GF/s, blocked %.2f GF/s "
                "(%.1fx)\n",
                static_cast<long long>(n), static_cast<long long>(n), naive,
                blocked, blocked / naive);
  }
  w.end_array();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  out << w.take() << "\n";
  if (!out) {
    std::fprintf(stderr, "micro_kernels: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Conv-forward fusion report (BENCH_fusion.json).
//
// Compares three implementations of the conv+BN+ReLU blocks that make up
// the default mini model's separable prefix:
//   unfused    blocked GEMM (weights re-packed every call) followed by the
//              real BatchNorm2d and ReLU layer forwards — the seed path,
//              including their per-call output allocations;
//   prepacked  gemm_prepacked from the packed-weight cache layout, still
//              with separate BN/ReLU layer passes;
//   fused      gemm_prepacked on BN-folded weights with bias+ReLU applied
//              in the GEMM epilogue (activations written exactly once).
// im2col runs outside the timed region: it is identical work on all three
// paths and would only dilute the comparison. The model-level section times
// the full forward_range prefix instead, which includes it.
//
// Hard-fails (exit 1) if the fused bias+ReLU epilogue is not bit-identical
// to the unfused path, or if BN folding moves the mini model's outputs
// beyond tolerance / flips a predicted class.

struct FusionShape {
  std::int64_t cin, cout, kernel, hw;  // square input, stride 1, same-pad
};

/// Reference im2col for stride-1 same-padded square kernels: col is
/// (cin*k*k) x (h*w), row-major — the layout Conv2d feeds to the GEMM.
void im2col_ref(const float* x, std::int64_t cin, std::int64_t h,
                std::int64_t w, std::int64_t k, float* col) {
  const std::int64_t pad = k / 2;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin; ++c) {
    for (std::int64_t ki = 0; ki < k; ++ki) {
      for (std::int64_t kj = 0; kj < k; ++kj, ++row) {
        float* dst = col + row * h * w;
        for (std::int64_t oy = 0; oy < h; ++oy) {
          const std::int64_t iy = oy + ki - pad;
          for (std::int64_t ox = 0; ox < w; ++ox) {
            const std::int64_t ix = ox + kj - pad;
            dst[oy * w + ox] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                   ? x[(c * h + iy) * w + ix]
                                   : 0.0f;
          }
        }
      }
    }
  }
}

/// Minimum over interleaved repetitions of each candidate: robust against
/// scheduler interference and frequency drift, which dwarf the effects
/// being measured at these ~50 us loop bodies.
std::vector<double> time_min_interleaved(
    const std::vector<std::function<void()>>& fns, double min_time_s,
    int reps) {
  std::vector<double> best(fns.size(), 1e300);
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < fns.size(); ++i) {
      best[i] = std::min(best[i], time_loop(fns[i], min_time_s));
    }
  }
  return best;
}

int run_fusion_report(const std::string& path, bool smoke) {
  using nn::Epilogue;
  // The conv shapes of make_vgg_mini's separable prefix at default options.
  const std::vector<FusionShape> shapes{{3, 16, 3, 32}, {16, 32, 3, 16}};
  const double min_time = smoke ? 0.01 : 0.05;
  const int reps = smoke ? 2 : 5;
  const std::vector<int> thread_counts{1, 2, 4};

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "fusion");
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency", core::ThreadPool::default_threads());

  bool bit_exact = true;
  double unfused_1t_total = 0.0, fused_1t_total = 0.0;

  w.key("shapes").begin_array();
  for (const FusionShape& s : shapes) {
    Rng rng(static_cast<std::uint64_t>(s.cin * 131 + s.cout));
    const std::int64_t m = s.cout, k = s.cin * s.kernel * s.kernel;
    const std::int64_t n = s.hw * s.hw;
    std::vector<float> weights(static_cast<std::size_t>(m * k));
    for (auto& v : weights) v = static_cast<float>(rng.normal() * 0.1);
    Tensor x = Tensor::randn(Shape{1, s.cin, s.hw, s.hw}, rng);
    std::vector<float> col(static_cast<std::size_t>(k * n));
    im2col_ref(x.data(), s.cin, s.hw, s.hw, s.kernel, col.data());

    // BN running stats / affine away from their init values.
    nn::BatchNorm2d bn(s.cout);
    for (std::int64_t c = 0; c < s.cout; ++c) {
      bn.gamma().value[c] = static_cast<float>(rng.uniform(0.5, 1.5));
      bn.beta().value[c] = static_cast<float>(rng.normal() * 0.2);
      bn.running_mean()[c] = static_cast<float>(rng.normal() * 0.1);
      bn.running_var()[c] = static_cast<float>(rng.uniform(0.5, 2.0));
    }
    nn::ReLU relu;

    // BN-folded weights + shift (conv has no bias here, like the model's).
    std::vector<float> folded = weights;
    std::vector<float> shift(static_cast<std::size_t>(m));
    for (std::int64_t c = 0; c < m; ++c) {
      const double invstd =
          1.0 / std::sqrt(static_cast<double>(bn.running_var()[c]) + bn.eps());
      const float a = static_cast<float>(bn.gamma().value[c] * invstd);
      shift[static_cast<std::size_t>(c)] = static_cast<float>(
          bn.beta().value[c] - bn.gamma().value[c] * bn.running_mean()[c] *
                                   invstd);
      float* row = folded.data() + c * k;
      for (std::int64_t j = 0; j < k; ++j) row[j] *= a;
    }
    const nn::PackedMatrix wp = nn::pack_lhs(weights.data(), m, k);
    const nn::PackedMatrix fp = nn::pack_lhs(folded.data(), m, k);
    Epilogue fused_epi;
    fused_epi.row_bias = shift.data();
    fused_epi.act = Epilogue::Act::kReLU;

    Tensor y(Shape{1, s.cout, s.hw, s.hw});
    Tensor yf(Shape{1, s.cout, s.hw, s.hw});

    w.begin_object();
    w.kv("cin", s.cin).kv("cout", s.cout).kv("kernel", s.kernel);
    w.kv("hw", s.hw);
    w.key("threads").begin_array();
    for (const int t : thread_counts) {
      core::ThreadPool pool(t);
      const std::vector<double> timed = time_min_interleaved(
          {[&] {
             nn::gemm_blocked(weights.data(), col.data(), y.data(), m, k, n,
                              &pool);
             Tensor z = relu.forward(bn.forward(y, nn::Mode::kEval),
                                     nn::Mode::kEval);
             benchmark::DoNotOptimize(z.data());
           },
           [&] {
             nn::gemm_prepacked(weights.data(), wp, col.data(), y.data(), m,
                                k, n, nullptr, &pool);
             Tensor z = relu.forward(bn.forward(y, nn::Mode::kEval),
                                     nn::Mode::kEval);
             benchmark::DoNotOptimize(z.data());
           },
           [&] {
             nn::gemm_prepacked(folded.data(), fp, col.data(), yf.data(), m,
                                k, n, &fused_epi, &pool);
             benchmark::DoNotOptimize(yf.data());
           }},
          min_time, reps);
      const double unfused = timed[0], prepacked = timed[1],
                   fused = timed[2];
      if (t == 1) {
        unfused_1t_total += unfused;
        fused_1t_total += fused;
      }
      w.begin_object();
      w.kv("threads", t);
      w.kv("unfused_s", unfused);
      w.kv("prepacked_s", prepacked);
      w.kv("fused_s", fused);
      w.kv("speedup_prepacked", unfused / prepacked);
      w.kv("speedup_fused", unfused / fused);
      w.end_object();
      std::printf(
          "fusion %2lld->%2lldc %lldx%lld @%d t: unfused %.1f us, prepacked "
          "%.1f us, fused %.1f us (%.2fx)\n",
          static_cast<long long>(s.cin), static_cast<long long>(s.cout),
          static_cast<long long>(s.hw), static_cast<long long>(s.hw), t,
          unfused * 1e6, prepacked * 1e6, fused * 1e6, unfused / fused);
    }
    w.end_array();

    // Bit-exactness gate: conv + bias + ReLU (no BN — BN's scale+shift is
    // tolerance-checked, not bitwise; see DESIGN.md §10). The unfused
    // reference is the seed path: blocked GEMM, explicit bias sweep, the
    // real ReLU layer. The fused path must reproduce it bit for bit.
    std::vector<float> bias_v(static_cast<std::size_t>(m));
    for (auto& v : bias_v) v = static_cast<float>(rng.normal() * 0.1);
    core::ThreadPool pool1(1);
    nn::gemm_blocked(weights.data(), col.data(), y.data(), m, k, n, &pool1);
    for (std::int64_t c = 0; c < m; ++c) {
      float* row = &y.at(0, c, 0, 0);
      for (std::int64_t j = 0; j < n; ++j)
        row[j] += bias_v[static_cast<std::size_t>(c)];
    }
    Tensor y_ref = relu.forward(y, nn::Mode::kEval);
    Epilogue bias_epi;
    bias_epi.row_bias = bias_v.data();
    bias_epi.act = Epilogue::Act::kReLU;
    nn::gemm_prepacked(weights.data(), wp, col.data(), yf.data(), m, k, n,
                       &bias_epi, &pool1);
    const bool same = std::memcmp(y_ref.data(), yf.data(),
                                  static_cast<std::size_t>(m * n) *
                                      sizeof(float)) == 0;
    bit_exact = bit_exact && same;
    w.kv("bias_relu_bit_exact", same);
    w.end_object();
  }
  w.end_array();

  const double prefix_speedup = unfused_1t_total / fused_1t_total;
  w.kv("prefix_speedup_1t", prefix_speedup);
  w.kv("speedup_ok", prefix_speedup >= 1.3);
  w.kv("bit_exact", bit_exact);

  // Model-level: optimize a copy of the default vgg_mini and compare
  // against the untouched twin — outputs within tolerance, classes
  // unchanged, and the full separable-prefix forward (im2col included)
  // measurably faster.
  nn::MiniOptions opt;
  Rng r1(2026), r2(2026);
  nn::Model m_ref = nn::make_vgg_mini(r1, opt);
  nn::Model m_opt = nn::make_vgg_mini(r2, opt);
  {
    // Move BN running stats off their init values so folding is nontrivial.
    Rng rx(7);
    for (int i = 0; i < 3; ++i) {
      Tensor xb = Tensor::randn(Shape{4, opt.channels, opt.image, opt.image},
                                rx);
      (void)m_ref.forward(xb, nn::Mode::kTrain);
    }
    nn::Model::copy_params(m_ref, m_opt);
  }
  const nn::OptimizeStats ostats = nn::optimize_for_inference(m_opt);

  Rng rx(99);
  double max_diff = 0.0;
  bool argmax_ok = true;
  const int eval_reps = smoke ? 3 : 8;
  for (int rep = 0; rep < eval_reps; ++rep) {
    Tensor xi = Tensor::randn(Shape{1, opt.channels, opt.image, opt.image},
                              rx);
    Tensor yr = m_ref.forward(xi, nn::Mode::kEval);
    Tensor yo = m_opt.forward(xi, nn::Mode::kEval);
    std::int64_t am_r = 0, am_o = 0;
    for (std::int64_t i = 0; i < yr.numel(); ++i) {
      max_diff = std::max(max_diff,
                          static_cast<double>(std::fabs(yr[i] - yo[i])));
      if (yr[i] > yr[am_r]) am_r = i;
      if (yo[i] > yo[am_o]) am_o = i;
    }
    argmax_ok = argmax_ok && am_r == am_o;
  }
  const bool tol_ok = max_diff <= 1e-4;

  Tensor xt = Tensor::randn(Shape{1, opt.channels, opt.image, opt.image}, rx);
  const int prefix_end = m_ref.separable_end_layer();
  const std::vector<double> model_timed = time_min_interleaved(
      {[&] {
         Tensor z = m_ref.forward_range(xt, 0, prefix_end);
         benchmark::DoNotOptimize(z.data());
       },
       [&] {
         Tensor z = m_opt.forward_range(xt, 0, prefix_end);
         benchmark::DoNotOptimize(z.data());
       }},
      min_time, reps);
  const double model_unfused = model_timed[0], model_fused = model_timed[1];

  w.key("model").begin_object();
  w.kv("family", "vgg");
  w.kv("bn_folded", ostats.bn_folded);
  w.kv("act_fused", ostats.act_fused);
  w.kv("prepacked", ostats.prepacked);
  w.kv("max_abs_diff", max_diff);
  w.kv("tol_ok", tol_ok);
  w.kv("argmax_ok", argmax_ok);
  w.kv("prefix_unfused_s", model_unfused);
  w.kv("prefix_fused_s", model_fused);
  w.kv("model_prefix_speedup", model_unfused / model_fused);
  w.end_object();
  w.end_object();

  std::printf("fusion prefix speedup (1t, gemm+post-ops): %.2fx; model "
              "prefix: %.2fx; max |diff| %.2e; bit_exact %s\n",
              prefix_speedup, model_unfused / model_fused, max_diff,
              bit_exact ? "yes" : "NO");

  std::ofstream out(path, std::ios::binary);
  out << w.take() << "\n";
  if (!out) {
    std::fprintf(stderr, "micro_kernels: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!bit_exact) {
    std::fprintf(stderr,
                 "micro_kernels: fused epilogue is NOT bit-identical to the "
                 "unfused bias+ReLU path\n");
    return 1;
  }
  if (!tol_ok || !argmax_ok) {
    std::fprintf(stderr,
                 "micro_kernels: optimized model diverged (max |diff| %.3e, "
                 "argmax_ok=%d)\n",
                 max_diff, argmax_ok ? 1 : 0);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// int8 inference report (BENCH_int8.json).
//
// End-to-end check of the quantized conv-prefix path (DESIGN.md §14):
//   engine oracle   gemm_s8u8 (packed, threaded) must match gemm_s8u8_ref
//                   (raw levels, serial) bit for bit — integer accumulation
//                   makes the quantized path exactly reproducible;
//   model accuracy  a calibrated vgg_mini twin must agree with the fp32
//                   optimized model on >= 99% of argmax decisions;
//   determinism     two int8 prefix forwards must be bitwise identical;
//   clip grids      an FDSP clipped-ReLU model must derive its activation
//                   grids from the clip bounds (the Algorithm 1-trained
//                   bounds), not from observed ranges;
//   throughput      the int8 separable prefix must beat the fused fp32
//                   prefix by >= 2x single-threaded (hard gate in full
//                   runs; recorded but not enforced under --smoke, where
//                   timings on shared CI runners are too noisy to gate).
// Any correctness failure exits 1.

int run_int8_report(const std::string& path, bool smoke) {
  const double min_time = smoke ? 0.01 : 0.05;
  const int reps = smoke ? 3 : 5;

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "int8");
  w.kv("smoke", smoke);
  w.kv("kernel", nn::int8_kernel_name());
  w.kv("hardware_concurrency", core::ThreadPool::default_threads());

  // --- Engine vs reference oracle, bitwise, off the 8x32 panel grid. ------
  bool gemm_bit_exact = true;
  {
    Rng rng(41);
    const std::int64_t m = 37, k = 115, n = 203;
    std::vector<float> a(static_cast<std::size_t>(m * k));
    for (auto& v : a) v = static_cast<float>(rng.normal());
    std::vector<std::int8_t> wq(static_cast<std::size_t>(m * k));
    std::vector<float> wscale(static_cast<std::size_t>(m));
    std::vector<std::int32_t> wsum(static_cast<std::size_t>(m));
    nn::quantize_weights_s8(a.data(), m, k, wq.data(), wscale.data(),
                            wsum.data());
    nn::ActQuant act;
    act.scale = 0.01f;
    act.zero_point = 17;
    std::vector<std::uint8_t> b(static_cast<std::size_t>(k * n));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
    std::vector<float> bias(static_cast<std::size_t>(m));
    for (auto& v : bias) v = static_cast<float>(rng.normal() * 0.1);
    nn::EpilogueInt8 epi;
    epi.bias = bias.data();
    epi.act = nn::Epilogue::Act::kReLU;
    const nn::PackedMatrixInt8 ap = nn::pack_lhs_s8(a.data(), m, k);
    std::vector<float> c_eng(static_cast<std::size_t>(m * n)),
        c_ref(static_cast<std::size_t>(m * n));
    core::ThreadPool pool(4);
    nn::gemm_s8u8(ap, b.data(), c_eng.data(), m, k, n, act, &epi, &pool);
    nn::gemm_s8u8_ref(wq.data(), wscale.data(), wsum.data(), b.data(),
                      c_ref.data(), m, k, n, act, &epi);
    gemm_bit_exact = std::memcmp(c_eng.data(), c_ref.data(),
                                 static_cast<std::size_t>(m * n) *
                                     sizeof(float)) == 0;
  }
  w.kv("gemm_bit_exact", gemm_bit_exact);

  // --- Calibrated vgg_mini twin vs the fp32 optimized model. --------------
  nn::MiniOptions opt;
  Rng r1(2026), r2(2026);
  nn::Model m_fp = nn::make_vgg_mini(r1, opt);
  nn::Model m_q = nn::make_vgg_mini(r2, opt);
  {
    // BN running stats off their init values so folding is nontrivial.
    Rng rx(7);
    for (int i = 0; i < 3; ++i) {
      Tensor xb = Tensor::randn(Shape{4, opt.channels, opt.image, opt.image},
                                rx);
      (void)m_fp.forward(xb, nn::Mode::kTrain);
    }
    nn::Model::copy_params(m_fp, m_q);
  }
  nn::optimize_for_inference(m_fp);
  nn::optimize_for_inference(m_q);
  std::vector<Tensor> calibration;
  {
    Rng rc(123);
    for (int i = 0; i < 8; ++i) {
      calibration.push_back(
          Tensor::randn(Shape{1, opt.channels, opt.image, opt.image}, rc));
    }
  }
  const nn::Int8Stats istats = nn::prepare_int8(m_q, calibration);
  w.key("calibration").begin_object();
  w.kv("conv_int8", istats.conv_int8);
  w.kv("linear_int8", istats.linear_int8);
  w.kv("derived_from_clip", istats.derived_from_clip);
  w.kv("observed", istats.observed);
  w.end_object();

  // Argmax agreement over fresh inputs, full model (prefix int8, suffix
  // through the same quantized linears the cluster's Central node uses).
  Rng re(99);
  const int eval_n = smoke ? 100 : 200;
  int agree = 0;
  double max_diff = 0.0;
  for (int rep = 0; rep < eval_n; ++rep) {
    Tensor xi = Tensor::randn(Shape{1, opt.channels, opt.image, opt.image},
                              re);
    Tensor yr = m_fp.forward(xi, nn::Mode::kEval);
    Tensor yq;
    {
      nn::ScopedInt8Compute int8_scope;
      yq = m_q.forward(xi, nn::Mode::kEval);
    }
    std::int64_t am_r = 0, am_q = 0;
    for (std::int64_t i = 0; i < yr.numel(); ++i) {
      max_diff = std::max(max_diff,
                          static_cast<double>(std::fabs(yr[i] - yq[i])));
      if (yr[i] > yr[am_r]) am_r = i;
      if (yq[i] > yq[am_q]) am_q = i;
    }
    if (am_r == am_q) ++agree;
  }
  const double agreement = static_cast<double>(agree) / eval_n;
  const bool agreement_ok = agreement >= 0.99;
  w.kv("eval_inputs", eval_n);
  w.kv("argmax_agreement", agreement);
  w.kv("argmax_ok", agreement_ok);
  w.kv("max_abs_diff", max_diff);

  // Determinism: two int8 prefix forwards must be bitwise identical (the
  // engine accumulates in int32, so there is nothing to drift).
  const int prefix_end = m_q.separable_end_layer();
  Tensor xt = Tensor::randn(Shape{1, opt.channels, opt.image, opt.image}, re);
  bool int8_deterministic = true;
  {
    nn::ScopedInt8Compute int8_scope;
    Tensor z1 = m_q.forward_range(xt, 0, prefix_end);
    Tensor z2 = m_q.forward_range(xt, 0, prefix_end);
    int8_deterministic =
        std::memcmp(z1.data(), z2.data(),
                    static_cast<std::size_t>(z1.numel()) * sizeof(float)) == 0;
  }
  w.kv("int8_deterministic", int8_deterministic);

  // --- Per-conv-layer and whole-prefix timings, fp32-fused vs int8. -------
  // Single-threaded via an explicit 1-thread pool is not possible through
  // the layer API (it uses the global pool), so pin the comparison by
  // running both paths on the same pool; hardware_concurrency is recorded.
  w.key("layers").begin_array();
  {
    Tensor cur = xt;
    for (int i = 0; i < prefix_end; ++i) {
      nn::Layer& layer = m_q.net.at(static_cast<std::size_t>(i));
      if (layer.is_noop()) continue;
      if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer);
          conv != nullptr && conv->int8_ready()) {
        const Tensor in = cur;
        const std::vector<double> timed = time_min_interleaved(
            {[&] {
               Tensor z = conv->forward(in, nn::Mode::kEval);
               benchmark::DoNotOptimize(z.data());
             },
             [&] {
               nn::ScopedInt8Compute int8_scope;
               Tensor z = conv->forward(in, nn::Mode::kEval);
               benchmark::DoNotOptimize(z.data());
             }},
            min_time, reps);
        w.begin_object();
        w.kv("layer", i);
        w.kv("fp32_s", timed[0]);
        w.kv("int8_s", timed[1]);
        w.kv("speedup", timed[0] / timed[1]);
        w.end_object();
        std::printf("int8 conv layer %2d: fp32 %7.1f us, int8 %7.1f us "
                    "(%.2fx)\n",
                    i, timed[0] * 1e6, timed[1] * 1e6, timed[0] / timed[1]);
      }
      cur = layer.forward(cur, nn::Mode::kEval);
    }
  }
  w.end_array();

  const std::vector<double> prefix_timed = time_min_interleaved(
      {[&] {
         Tensor z = m_q.forward_range(xt, 0, prefix_end);
         benchmark::DoNotOptimize(z.data());
       },
       [&] {
         nn::ScopedInt8Compute int8_scope;
         Tensor z = m_q.forward_range(xt, 0, prefix_end);
         benchmark::DoNotOptimize(z.data());
       }},
      min_time, reps);
  const double prefix_speedup = prefix_timed[0] / prefix_timed[1];
  const bool speedup_ok = prefix_speedup >= 2.0;
  w.kv("prefix_fp32_s", prefix_timed[0]);
  w.kv("prefix_int8_s", prefix_timed[1]);
  w.kv("prefix_speedup", prefix_speedup);
  w.kv("speedup_ok", speedup_ok);

  // --- Clip-derived grids on an FDSP clipped-ReLU model. ------------------
  // apply_fdsp installs the clip bounds Algorithm 1's progressive
  // retraining trains the network into; calibration must pick them up as
  // exact grids (scale = range/255, zp = 0) rather than observed ranges.
  int clip_derived = 0;
  int clip_agree = 0;
  const int clip_eval_n = smoke ? 50 : 100;
  {
    Rng rf(11);
    nn::MiniOptions mo;
    core::FdspOptions fo;
    fo.grid = core::TileGrid{2, 2};
    fo.clipped_relu = true;
    fo.clip_upper = 3.0f;
    fo.quantize = true;
    fo.bits = 8;
    core::PartitionedModel pm = core::apply_fdsp(nn::make_vgg_mini(rf, mo),
                                                 fo);
    nn::optimize_for_inference(pm.model);
    const nn::Int8Stats cs = nn::prepare_int8(pm.model, calibration);
    clip_derived = cs.derived_from_clip;
    Rng rg(77);
    for (int rep = 0; rep < clip_eval_n; ++rep) {
      Tensor xi = Tensor::randn(Shape{1, mo.channels, mo.image, mo.image},
                                rg);
      Tensor yr = pm.model.forward(xi, nn::Mode::kEval);
      Tensor yq;
      {
        nn::ScopedInt8Compute int8_scope;
        yq = pm.model.forward(xi, nn::Mode::kEval);
      }
      std::int64_t am_r = 0, am_q = 0;
      for (std::int64_t i = 0; i < yr.numel(); ++i) {
        if (yr[i] > yr[am_r]) am_r = i;
        if (yq[i] > yq[am_q]) am_q = i;
      }
      if (am_r == am_q) ++clip_agree;
    }
  }
  const double clip_agreement =
      static_cast<double>(clip_agree) / clip_eval_n;
  const bool clip_ok = clip_derived > 0 && clip_agreement >= 0.99;
  w.kv("clip_derived_grids", clip_derived);
  w.kv("clip_argmax_agreement", clip_agreement);
  w.kv("clip_ok", clip_ok);
  w.end_object();

  std::printf("int8 [%s]: prefix %.2fx, argmax %.1f%% (%d/%d), clip grids "
              "%d, gemm_bit_exact %s, deterministic %s\n",
              nn::int8_kernel_name(), prefix_speedup, agreement * 100.0,
              agree, eval_n, clip_derived, gemm_bit_exact ? "yes" : "NO",
              int8_deterministic ? "yes" : "NO");

  std::ofstream out(path, std::ios::binary);
  out << w.take() << "\n";
  if (!out) {
    std::fprintf(stderr, "micro_kernels: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!gemm_bit_exact) {
    std::fprintf(stderr,
                 "micro_kernels: gemm_s8u8 is NOT bit-identical to "
                 "gemm_s8u8_ref\n");
    return 1;
  }
  if (!int8_deterministic) {
    std::fprintf(stderr,
                 "micro_kernels: int8 prefix forward is not bitwise "
                 "reproducible\n");
    return 1;
  }
  if (!agreement_ok || !clip_ok) {
    std::fprintf(stderr,
                 "micro_kernels: int8 accuracy gate failed (agreement %.3f, "
                 "clip agreement %.3f, clip grids %d)\n",
                 agreement, clip_agreement, clip_derived);
    return 1;
  }
  if (!smoke && !speedup_ok) {
    std::fprintf(stderr,
                 "micro_kernels: int8 prefix speedup %.2fx below the 2x "
                 "gate\n",
                 prefix_speedup);
    return 1;
  }
  return 0;
}

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops(x.shape()));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  const Tensor g = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  for (auto _ : state) {
    conv.forward(x, nn::Mode::kTrain);
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_TileSplitMerge(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{1, 64, 64, 64}, rng);
  for (auto _ : state) {
    Tensor tiles = nn::TileSplit::split(x, 8, 8);
    Tensor merged = nn::TileSplit::merge(tiles, 8, 8);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4 * 2);
}
BENCHMARK(BM_TileSplitMerge);

void BM_TileCodecEncode(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(5);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < sparsity ? 0.0f
                                    : static_cast<float>(rng.uniform(0, 2));
  for (auto _ : state) {
    auto wire = codec.encode(x);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4);
}
BENCHMARK(BM_TileCodecEncode)->Arg(50)->Arg(90)->Arg(99);

void BM_TileCodecDecode(benchmark::State& state) {
  Rng rng(6);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < 0.95 ? 0.0f : 1.0f;
  const auto wire = codec.encode(x);
  for (auto _ : state) {
    Tensor y = codec.decode(wire, x.shape());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TileCodecDecode);

void BM_AllocateTiles(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  core::AllocRequest req;
  for (int k = 0; k < nodes; ++k) req.speeds.push_back(rng.uniform(0.5, 8.0));
  req.tiles = 64;
  for (auto _ : state) {
    auto x = core::allocate_tiles(req);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AllocateTiles)->Arg(4)->Arg(8)->Arg(32);

void BM_StatsCollector(benchmark::State& state) {
  core::StatsCollector collector(8, 0.9);
  const std::vector<std::int64_t> counts{8, 8, 7, 8, 6, 8, 8, 5};
  for (auto _ : state) {
    collector.record_image(counts);
    benchmark::DoNotOptimize(collector.speeds().data());
  }
}
BENCHMARK(BM_StatsCollector);

void BM_SimulateAdcnn(benchmark::State& state) {
  const auto spec = arch::vgg16();
  auto cfg = sim::AdcnnSimConfig::uniform(8, sim::DeviceSpec{});
  for (auto _ : state) {
    auto result = sim::simulate_adcnn(spec, cfg, 20);
    benchmark::DoNotOptimize(result.mean_latency_s);
  }
}
BENCHMARK(BM_SimulateAdcnn);

}  // namespace

int main(int argc, char** argv) {
  std::string gemm_json;
  std::string fusion_json;
  std::string int8_json;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      gemm_json = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--fusion_json=", 14) == 0) {
      fusion_json = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--int8_json=", 12) == 0) {
      int8_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (!gemm_json.empty()) return run_gemm_report(gemm_json, smoke);
  if (!fusion_json.empty()) return run_fusion_report(fusion_json, smoke);
  if (!int8_json.empty()) return run_int8_report(int8_json, smoke);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
