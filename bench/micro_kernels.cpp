// Operator / codec / scheduler micro-benchmarks (google-benchmark), plus
// the GEMM engine report: `micro_kernels --gemm_json=PATH [--smoke]` times
// naive vs blocked vs threaded GFLOP/s and writes BENCH_gemm.json instead
// of running the google-benchmark suite (CI records the perf trajectory
// from that artifact).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>

#include "compress/pipeline.hpp"
#include "core/allocate.hpp"
#include "core/stats.hpp"
#include "core/thread_pool.hpp"
#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/tiling.hpp"
#include "obs/json.hpp"
#include "sim/adcnn_sim.hpp"

namespace {

using namespace adcnn;

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm_naive(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlockedSerial(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n)),
      b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n, nullptr);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedSerial)->Arg(64)->Arg(128)->Arg(256);

// ---------------------------------------------------------------------------
// GEMM engine report (BENCH_gemm.json).

/// Median-free simple throughput probe: run fn until min_time elapsed
/// (>= 1 iteration) and return seconds per iteration.
double time_loop(const std::function<void()>& fn, double min_time_s) {
  fn();  // warm up caches, pack buffers, pool threads
  std::int64_t iters = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < min_time_s);
  return elapsed / static_cast<double>(iters);
}

int run_gemm_report(const std::string& path, bool smoke) {
  const std::vector<std::int64_t> shapes =
      smoke ? std::vector<std::int64_t>{64, 128, 256}
            : std::vector<std::int64_t>{128, 256, 512};
  const double min_time = smoke ? 0.05 : 0.25;
  const std::vector<int> thread_counts{1, 2, 4};

  obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "gemm");
  w.kv("smoke", smoke);
  w.kv("hardware_concurrency", core::ThreadPool::default_threads());
  w.key("shapes").begin_array();
  for (const std::int64_t n : shapes) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<float> a(static_cast<std::size_t>(n * n)),
        b(static_cast<std::size_t>(n * n)), c(static_cast<std::size_t>(n * n));
    for (auto& v : a) v = static_cast<float>(rng.normal());
    for (auto& v : b) v = static_cast<float>(rng.normal());
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const auto gflops = [&](double secs) { return flops / secs / 1e9; };

    const double naive = gflops(time_loop(
        [&] { nn::gemm_naive(a.data(), b.data(), c.data(), n, n, n); },
        min_time));
    const double blocked = gflops(time_loop(
        [&] { nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n); },
        min_time));

    w.begin_object();
    w.kv("m", n).kv("k", n).kv("n", n);
    w.kv("naive_gflops", naive);
    w.kv("blocked_1t_gflops", blocked);
    w.kv("blocked_speedup", blocked / naive);
    w.key("threaded").begin_array();
    for (const int t : thread_counts) {
      core::ThreadPool pool(t);
      const double thr = gflops(time_loop(
          [&] { nn::gemm_blocked(a.data(), b.data(), c.data(), n, n, n,
                                 &pool); },
          min_time));
      w.begin_object();
      w.kv("threads", t);
      w.kv("gflops", thr);
      w.kv("scaling_vs_1t", thr / blocked);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("gemm %4lldx%4lld: naive %.2f GF/s, blocked %.2f GF/s "
                "(%.1fx)\n",
                static_cast<long long>(n), static_cast<long long>(n), naive,
                blocked, blocked / naive);
  }
  w.end_array();
  w.end_object();

  std::ofstream out(path, std::ios::binary);
  out << w.take() << "\n";
  if (!out) {
    std::fprintf(stderr, "micro_kernels: failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void BM_ConvForward(benchmark::State& state) {
  const std::int64_t c = state.range(0);
  Rng rng(2);
  nn::Conv2d conv(c, c, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, c, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, nn::Mode::kEval);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * conv.flops(x.shape()));
}
BENCHMARK(BM_ConvForward)->Arg(8)->Arg(16)->Arg(32);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  const Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  const Tensor g = Tensor::randn(Shape{1, 16, 32, 32}, rng);
  for (auto _ : state) {
    conv.forward(x, nn::Mode::kTrain);
    Tensor dx = conv.backward(g);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_ConvBackward);

void BM_TileSplitMerge(benchmark::State& state) {
  Rng rng(4);
  const Tensor x = Tensor::randn(Shape{1, 64, 64, 64}, rng);
  for (auto _ : state) {
    Tensor tiles = nn::TileSplit::split(x, 8, 8);
    Tensor merged = nn::TileSplit::merge(tiles, 8, 8);
    benchmark::DoNotOptimize(merged.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4 * 2);
}
BENCHMARK(BM_TileSplitMerge);

void BM_TileCodecEncode(benchmark::State& state) {
  const double sparsity = static_cast<double>(state.range(0)) / 100.0;
  Rng rng(5);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < sparsity ? 0.0f
                                    : static_cast<float>(rng.uniform(0, 2));
  for (auto _ : state) {
    auto wire = codec.encode(x);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(state.iterations() * x.numel() * 4);
}
BENCHMARK(BM_TileCodecEncode)->Arg(50)->Arg(90)->Arg(99);

void BM_TileCodecDecode(benchmark::State& state) {
  Rng rng(6);
  compress::TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 32, 28, 28});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < 0.95 ? 0.0f : 1.0f;
  const auto wire = codec.encode(x);
  for (auto _ : state) {
    Tensor y = codec.decode(wire, x.shape());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_TileCodecDecode);

void BM_AllocateTiles(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Rng rng(7);
  core::AllocRequest req;
  for (int k = 0; k < nodes; ++k) req.speeds.push_back(rng.uniform(0.5, 8.0));
  req.tiles = 64;
  for (auto _ : state) {
    auto x = core::allocate_tiles(req);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_AllocateTiles)->Arg(4)->Arg(8)->Arg(32);

void BM_StatsCollector(benchmark::State& state) {
  core::StatsCollector collector(8, 0.9);
  const std::vector<std::int64_t> counts{8, 8, 7, 8, 6, 8, 8, 5};
  for (auto _ : state) {
    collector.record_image(counts);
    benchmark::DoNotOptimize(collector.speeds().data());
  }
}
BENCHMARK(BM_StatsCollector);

void BM_SimulateAdcnn(benchmark::State& state) {
  const auto spec = arch::vgg16();
  auto cfg = sim::AdcnnSimConfig::uniform(8, sim::DeviceSpec{});
  for (auto _ : state) {
    auto result = sim::simulate_adcnn(spec, cfg, 20);
    benchmark::DoNotOptimize(result.mean_latency_s);
  }
}
BENCHMARK(BM_SimulateAdcnn);

}  // namespace

int main(int argc, char** argv) {
  std::string gemm_json;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--gemm_json=", 12) == 0) {
      gemm_json = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (!gemm_json.empty()) return run_gemm_report(gemm_json, smoke);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
