// Streaming pipeline throughput: sequential infer() loop vs StreamingServer
// at in-flight depth 1/2/4 on a bandwidth-modelled cluster (time_scale = 1,
// so link airtime is real and can overlap compute across in-flight images).
//
//   pipeline_throughput [--smoke] [--json[=PATH]]
//
// Emits BENCH_pipeline.json (images/sec, p50/p99 in-system latency per
// mode, streaming-vs-sequential speedup, and a bit-identical check of
// every streamed output against the sequential run).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/json.hpp"
#include "runtime/cluster.hpp"
#include "runtime/pipeline.hpp"

namespace {

using namespace adcnn;
using Clock = std::chrono::steady_clock;

core::PartitionedModel make_model() {
  Rng rng(31);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{2, 2};
  opt.clipped_relu = true;
  opt.clip_lower = 0.0f;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  return core::apply_fdsp(nn::make_mini("vgg", rng, nn::MiniOptions{}), opt);
}

// Edge nodes run at a fraction of the host CPU speed (the paper's testbed
// pairs a laptop-class Central node with embedded boards). The worker
// stretches its compute phase to match, which also puts per-image compute
// time in the same regime as link airtime — the balance where pipelining
// across in-flight images pays off.
constexpr double kEdgeCpuFraction = 0.02;

runtime::ClusterConfig make_cluster_config() {
  runtime::ClusterConfig cfg;
  // One tile per node: each node's (stretched) compute overlaps the serial
  // downlink of the other tiles, so the pipeline floor is the link, not
  // the workers — the regime where in-flight depth pays.
  cfg.num_nodes = 4;
  // Real link airtime: this is what pipelining overlaps with compute on a
  // single-core host. Latency is the testbed WiFi's.
  cfg.bandwidth_bps = 20e6;
  cfg.latency_s = 0.0005;
  cfg.time_scale = 1.0;
  return cfg;
}

void throttle_nodes(runtime::EdgeCluster& cluster, int num_nodes) {
  for (int k = 0; k < num_nodes; ++k) {
    cluster.node(k).set_cpu_limit(kEdgeCpuFraction);
  }
}

std::vector<Tensor> make_images(int n) {
  Rng rng(7);
  std::vector<Tensor> images;
  for (int i = 0; i < n; ++i) {
    // The model's native input size: the gather stage decodes worker
    // results against the partitioned model's fixed tile output shape.
    images.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
  }
  return images;
}

struct RunResult {
  double wall_s = 0.0;
  double images_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<Tensor> outputs;
};

void fill_percentiles(std::vector<double> latencies_s, RunResult* r) {
  std::sort(latencies_s.begin(), latencies_s.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_s.size() - 1) + 0.5);
    return latencies_s[std::min(idx, latencies_s.size() - 1)] * 1e3;
  };
  r->p50_ms = at(0.50);
  r->p99_ms = at(0.99);
}

RunResult run_sequential(const std::vector<Tensor>& images) {
  core::PartitionedModel pm = make_model();
  runtime::EdgeCluster cluster(pm, make_cluster_config());
  throttle_nodes(cluster, make_cluster_config().num_nodes);
  RunResult r;
  std::vector<double> latencies;
  const auto t0 = Clock::now();
  for (const auto& image : images) {
    runtime::InferStats stats;
    r.outputs.push_back(cluster.infer(image, &stats));
    latencies.push_back(stats.elapsed_s);
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.images_per_s = static_cast<double>(images.size()) / r.wall_s;
  fill_percentiles(latencies, &r);
  return r;
}

RunResult run_streaming(const std::vector<Tensor>& images, int depth) {
  core::PartitionedModel pm = make_model();
  runtime::EdgeCluster cluster(pm, make_cluster_config());
  throttle_nodes(cluster, make_cluster_config().num_nodes);
  runtime::StreamingConfig scfg;
  scfg.max_in_flight = depth;
  RunResult r;
  std::vector<double> latencies;
  const auto t0 = Clock::now();
  {
    runtime::StreamingServer server(cluster.central(), scfg);
    std::vector<std::int64_t> tickets;
    for (const auto& image : images) tickets.push_back(server.submit(image));
    for (const auto ticket : tickets) {
      runtime::InferStats stats;
      r.outputs.push_back(server.wait(ticket, &stats));
      latencies.push_back(stats.elapsed_s);  // in-system, queue wait excluded
    }
  }
  r.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  r.images_per_s = static_cast<double>(images.size()) / r.wall_s;
  fill_percentiles(latencies, &r);
  return r;
}

bool bit_identical(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (Tensor::max_abs_diff(a[i], b[i]) != 0.0f) return false;
  }
  return true;
}

void print_row(const char* label, const RunResult& r, double base_ips) {
  std::printf("%-14s %8.2f img/s   p50 %7.2f ms   p99 %7.2f ms   x%.2f\n",
              label, r.images_per_s, r.p50_ms, r.p99_ms,
              r.images_per_s / base_ips);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      // bare form: keep the default BENCH_pipeline.json
    }
  }
  const int n_images = smoke ? 6 : 24;
  const std::vector<int> depths{1, 2, 4};

  adcnn::bench::header("Streaming pipeline throughput (sequential vs depths 1/2/4)");
  const auto images = make_images(n_images);
  std::printf(
      "%d images, %d nodes at %.0f%% host CPU, %.0f Mbps links (real "
      "airtime)\n\n",
      n_images, make_cluster_config().num_nodes, kEdgeCpuFraction * 100.0,
      make_cluster_config().bandwidth_bps / 1e6);

  const RunResult seq = run_sequential(images);
  print_row("sequential", seq, seq.images_per_s);

  std::vector<std::pair<int, RunResult>> streaming;
  for (const int depth : depths) {
    streaming.emplace_back(depth, run_streaming(images, depth));
    const auto& r = streaming.back().second;
    char label[32];
    std::snprintf(label, sizeof(label), "streaming d=%d", depth);
    print_row(label, r, seq.images_per_s);
    if (!bit_identical(seq.outputs, r.outputs)) {
      std::printf("FAIL: depth %d outputs differ from sequential\n", depth);
      return 1;
    }
  }
  std::printf("\nall streamed outputs bit-identical to sequential\n");

  adcnn::obs::JsonWriter w;
  w.begin_object();
  w.kv("bench", "pipeline_throughput");
  w.kv("smoke", smoke);
  w.kv("images", static_cast<std::int64_t>(n_images));
  w.kv("nodes", static_cast<std::int64_t>(make_cluster_config().num_nodes));
  w.kv("edge_cpu_fraction", kEdgeCpuFraction);
  w.key("sequential").begin_object();
  w.kv("images_per_s", seq.images_per_s);
  w.kv("p50_ms", seq.p50_ms);
  w.kv("p99_ms", seq.p99_ms);
  w.kv("wall_s", seq.wall_s);
  w.end_object();
  w.key("streaming").begin_array();
  for (const auto& [depth, r] : streaming) {
    w.begin_object();
    w.kv("depth", static_cast<std::int64_t>(depth));
    w.kv("images_per_s", r.images_per_s);
    w.kv("p50_ms", r.p50_ms);
    w.kv("p99_ms", r.p99_ms);
    w.kv("wall_s", r.wall_s);
    w.kv("speedup_vs_sequential", r.images_per_s / seq.images_per_s);
    w.kv("bit_identical", true);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(json_path);
  out << w.take() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
