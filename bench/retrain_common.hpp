// Shared machinery for the training-based harnesses (Figure 10, Tables
// 1-2): builds each mini model family with a partition-compatible synthetic
// dataset, trains the original, and runs progressive retraining.
#pragma once

#include <functional>
#include <string>

#include "bench_common.hpp"
#include "data/charseq.hpp"
#include "data/shapes.hpp"
#include "nn/models_mini.hpp"
#include "train/progressive.hpp"

namespace adcnn::bench {

struct RetrainSizes {
  std::int64_t train_count = 512;
  std::int64_t test_count = 128;
  int baseline_epochs = 6;
  int max_epochs_per_stage = 5;
};

inline RetrainSizes retrain_sizes() {
  RetrainSizes s;
  if (full_mode()) {
    s.train_count = 1024;
    s.test_count = 256;
    s.baseline_epochs = 8;
    s.max_epochs_per_stage = 6;
  }
  return s;
}

/// A mini-model family bound to its task data at a given input size.
struct FamilySetup {
  std::string family;
  nn::MiniOptions opt;
  data::Dataset train_set;
  data::Dataset test_set;

  nn::Model build(std::uint64_t seed = 77) const {
    Rng rng(seed);
    return nn::make_mini(family, rng, opt);
  }
};

/// `image` must be divisible by 4 x grid extents (pooling condition).
/// CharCNN ignores `image` (uses length 64, 1-D grids).
inline FamilySetup make_family(const std::string& family, std::int64_t image,
                               const RetrainSizes& sizes) {
  FamilySetup setup;
  setup.family = family;
  setup.opt.width_mult = 0.5;
  setup.opt.image = image;
  if (family == "charcnn") {
    data::CharSeqConfig cfg;
    cfg.count = sizes.train_count;
    cfg.seed = 21;
    setup.train_set = data::make_charseq(cfg);
    cfg.count = sizes.test_count;
    cfg.seed = 22;
    setup.test_set = data::make_charseq(cfg);
    return setup;
  }
  data::ShapesConfig cfg;
  cfg.image = image;
  cfg.count = sizes.train_count;
  cfg.seed = 21;
  if (family == "fcn") {
    setup.train_set = data::make_shapes_segmentation(cfg);
    cfg.count = sizes.test_count;
    cfg.seed = 22;
    setup.test_set = data::make_shapes_segmentation(cfg);
    setup.opt.num_classes = setup.train_set.num_classes;
  } else if (family == "yolo") {
    setup.train_set = data::make_shapes_detection(cfg, image / 8);
    cfg.count = sizes.test_count;
    cfg.seed = 22;
    setup.test_set = data::make_shapes_detection(cfg, image / 8);
    setup.opt.num_classes = setup.train_set.num_classes - 1;
  } else {
    setup.train_set = data::make_shapes_classification(cfg);
    cfg.count = sizes.test_count;
    cfg.seed = 22;
    setup.test_set = data::make_shapes_classification(cfg);
  }
  return setup;
}

/// Train the original model (M_ori) for the family.
inline nn::Model train_original(const FamilySetup& setup,
                                const RetrainSizes& sizes) {
  nn::Model model = setup.build();
  train::TrainConfig cfg;
  cfg.epochs = sizes.baseline_epochs;
  cfg.lr = 0.02;
  train::train(model, setup.train_set, setup.test_set, cfg);
  return model;
}

/// Progressive retraining for one partition grid.
inline train::ProgressiveResult retrain(const FamilySetup& setup,
                                        nn::Model& original,
                                        const core::TileGrid& grid,
                                        const RetrainSizes& sizes) {
  train::ProgressiveConfig cfg;
  cfg.grid = grid;
  const auto bounds =
      train::suggest_clip_bounds(original, setup.train_set, 0.75);
  cfg.clip_lower = bounds.first;
  cfg.clip_upper = bounds.second;
  cfg.max_epochs_per_stage = sizes.max_epochs_per_stage;
  cfg.recover_margin = 0.01;
  cfg.retrain.lr = 0.015;
  return train::progressive_retrain([&] { return setup.build(); }, original,
                                    setup.train_set, setup.test_set, cfg);
}

/// Map the paper's image grids onto CharCNN's 1-D sequences.
inline core::TileGrid family_grid(const std::string& family,
                                  const core::TileGrid& grid) {
  if (family == "charcnn") return core::TileGrid{1, grid.count() > 8 ? 8 : grid.count()};
  return grid;
}

}  // namespace adcnn::bench
