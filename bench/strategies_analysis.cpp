// §3.1 analysis: communication cost of the partitioning strategies the
// paper contrasts — batch, channel, naive spatial (halo exchange), FDSP.
//
// Expected numbers (paper): channel partitioning of VGG16 L1 across two
// devices moves 51.38 Mbit per device (~11x the input image); FDSP moves
// zero cross-tile bytes and ships a compressed separable ofmap instead
// (FCN's is 2.7x the input before compression, ~0.03x after).
#include "bench_common.hpp"
#include "core/strategies.hpp"

using namespace adcnn;

int main() {
  bench::header("§3.1 — partitioning strategy communication analysis");

  const auto vgg = arch::vgg16();
  const auto& conv1 = vgg.blocks[0].layers[0];
  const double ch2 =
      static_cast<double>(core::channel_partition_layer_bytes(conv1, 2)) *
      8e-6;
  std::printf("channel partition, VGG16 L1, 2 devices: %.2f Mbit/device "
              "(paper: 51.38; %.1fx the fp32 input image, paper: ~11x)\n",
              ch2, ch2 / (static_cast<double>(vgg.input_bytes()) * 8e-6));

  std::printf("\n%-10s %8s | %-16s %-16s %-14s\n", "model", "blocks",
              "channel K=4 (MB)", "halo 2x2 (MB)", "FDSP x-tile");
  bench::rule();
  for (const auto& name : bench::five_models()) {
    const auto spec = arch::by_name(name);
    const int blocks = spec.separable_blocks;
    std::printf("%-10s %8d | %16.1f %16.2f %14s\n", name.c_str(), blocks,
                static_cast<double>(core::channel_partition_comm_bytes(
                    spec, 4, blocks)) / 1e6,
                static_cast<double>(core::halo_exchange_comm_bytes(
                    spec, core::TileGrid{2, 2}, blocks)) / 1e6,
                "0 (by design)");
  }

  std::printf("\nFDSP to-Central traffic (uncompressed fp32 separable "
              "ofmap, vs input):\n");
  for (const auto& name : bench::five_models()) {
    const auto spec = arch::by_name(name);
    const double ofmap = static_cast<double>(core::fdsp_to_central_bytes(spec));
    std::printf("  %-9s %8.2f Mbit  (%.2fx input; ~%.3fx after §4 "
                "compression)\n",
                name.c_str(), ofmap * 8e-6,
                ofmap / static_cast<double>(spec.input_bytes()),
                ofmap * 0.032 / static_cast<double>(spec.input_bytes()));
  }

  std::printf("\nAOFL halo-recomputation overhead vs fuse depth "
              "(VGG16, 2x4 grid):\n  ");
  for (int fused : {1, 3, 5, 7, 9, 11, 13})
    std::printf("f=%d: %.2fx  ", fused,
                core::aofl_compute_overhead(vgg, core::TileGrid{2, 4}, fused));
  std::printf("\n  (grows with depth — the §7.4 trade-off)\n");
  return 0;
}
