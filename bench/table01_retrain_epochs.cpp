// Table 1: number of retraining epochs needed for each modification
// (FDSP, clipped ReLU, quantization) during progressive retraining at the
// 8x8 partition.
//
// Expected shape: a handful of epochs per stage (vs hundreds for training
// from scratch), with FDSP needing the most and quantization the least.
//
// Default: VGG16-mini + CharCNN-mini; ADCNN_FULL=1 adds ResNet/YOLO minis
// (the paper's Table 1 set).
#include "retrain_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Table 1 — epochs per modification, 8x8 partition");
  const auto sizes = bench::retrain_sizes();
  const std::vector<std::string> families =
      bench::full_mode()
          ? std::vector<std::string>{"vgg", "resnet", "yolo", "charcnn"}
          : std::vector<std::string>{"vgg", "charcnn"};

  std::printf("%-9s %6s %14s %14s %7s\n", "model", "FDSP", "ClippedReLU",
              "Quantization", "Total");
  bench::rule();
  for (const auto& family : families) {
    const auto setup = bench::make_family(family, 32, sizes);
    nn::Model original = bench::train_original(setup, sizes);
    const core::TileGrid grid =
        bench::family_grid(family, core::TileGrid{8, 8});
    const auto result = bench::retrain(setup, original, grid, sizes);
    std::printf("%-9s %6d %14d %14d %7d\n", family.c_str(),
                result.stages[0].epochs_used, result.stages[1].epochs_used,
                result.stages[2].epochs_used, result.total_epochs());
    std::fflush(stdout);
  }
  std::printf("\n(paper, full-scale: VGG16 5/3/2, ResNet34 5/3/3, "
              "YOLO 7/4/2, CharCNN 2/2/1)\n");
  return 0;
}
