// Table 2: Conv-node output size before and after pruning (clipped ReLU +
// 4-bit quantization + RLE) at the 8x8 partition.
//
// Measured on real activations: each family's mini model is trained, FDSP-
// partitioned with statistics-derived clip bounds, and its per-tile prefix
// outputs are pushed through the exact wire codec. Expected shape: one to
// two orders of magnitude reduction (the paper reports 0.011x-0.056x,
// i.e. ~33x mean).
#include "compress/pipeline.hpp"
#include "nn/tiling.hpp"
#include "retrain_common.hpp"

using namespace adcnn;

int main() {
  bench::header("Table 2 — Conv-node output bytes before/after pruning "
                "(8x8 partition)");
  const auto sizes = bench::retrain_sizes();
  const std::vector<std::string> families =
      bench::full_mode()
          ? std::vector<std::string>{"vgg", "resnet", "yolo", "fcn",
                                     "charcnn"}
          : std::vector<std::string>{"vgg", "fcn", "charcnn"};

  std::printf("%-9s %12s %12s %10s %10s\n", "model", "raw bytes",
              "wire bytes", "ratio", "sparsity");
  bench::rule();
  double ratio_sum = 0.0;
  for (const auto& family : families) {
    const auto setup = bench::make_family(family, 32, sizes);
    nn::Model original = bench::train_original(setup, sizes);
    const core::TileGrid grid =
        bench::family_grid(family, core::TileGrid{8, 8});
    auto result = bench::retrain(setup, original, grid, sizes);
    auto& pm = result.final_model;
    const compress::TileCodec codec(pm.clip_range, pm.bits);

    // Push every test tile through the prefix and the wire codec.
    const Tensor tiles = nn::TileSplit::split(
        setup.test_set.images.crop(0, 16, 0, setup.test_set.images.h(), 0,
                                   setup.test_set.images.w()),
        pm.grid.rows, pm.grid.cols);
    std::int64_t raw = 0, wire = 0, zeros = 0, elems = 0;
    for (std::int64_t t = 0; t < tiles.n(); ++t) {
      const Tensor tile = tiles.crop(t, 1, 0, tiles.h(), 0, tiles.w());
      const Tensor out =
          pm.model.forward_range(tile, pm.prefix_begin(), pm.prefix_end());
      compress::StageSizes stage;
      codec.encode(out, &stage);
      raw += stage.raw_bytes;
      wire += stage.encoded_bytes;
      zeros += out.numel() - stage.nonzeros;
      elems += out.numel();
    }
    const double ratio = static_cast<double>(wire) / static_cast<double>(raw);
    ratio_sum += ratio;
    std::printf("%-9s %12lld %12lld %9.3fx %9.1f%%\n", family.c_str(),
                static_cast<long long>(raw), static_cast<long long>(wire),
                ratio,
                100.0 * static_cast<double>(zeros) /
                    static_cast<double>(elems));
    std::fflush(stdout);
  }
  std::printf("\nmean ratio %.3fx — paper: 0.032/0.043/0.011/0.020/0.056 "
              "(VGG16/ResNet34/FCN/YOLO/CharCNN), ~33x mean reduction\n",
              ratio_sum / static_cast<double>(families.size()));
  return 0;
}
