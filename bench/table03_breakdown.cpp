// Table 3: latency breakdown (input/output transmission vs computation)
// of ADCNN, single-device and remote-cloud on VGG16.
//
// Expected shape (paper): ADCNN 37.14 ms transmission / 202.88 ms compute;
// single device all-compute 1586.53 ms; remote cloud transmission-dominated
// (502.21 ms vs 98.94 ms).
#include "bench_common.hpp"
#include "sim/baseline_sim.hpp"

using namespace adcnn;

int main() {
  bench::header("Table 3 — latency breakdown on VGG16");
  const auto spec = arch::vgg16();
  const int images = 100;

  auto cfg = bench::adcnn_config(spec, 8, /*deep=*/true);
  const auto adcnn = sim::simulate_adcnn(spec, cfg, images);
  const auto single =
      sim::simulate_single_device(spec, bench::pi_device(), 0.03, 5, images);
  const auto cloud =
      sim::simulate_remote_cloud(spec, sim::CloudConfig{}, 0.03, 5, images);

  std::printf("%-14s %26s %16s\n", "scheme", "input/output tx (ms)",
              "compute (ms)");
  bench::rule();
  std::printf("%-14s %26.2f %16.2f\n", "ADCNN",
              adcnn.mean_transmission_s * 1e3, adcnn.mean_compute_s * 1e3);
  std::printf("%-14s %26.2f %16.2f\n", "single-device",
              single.transmission_s * 1e3, single.compute_s * 1e3);
  std::printf("%-14s %26.2f %16.2f\n", "remote-cloud",
              cloud.transmission_s * 1e3, cloud.compute_s * 1e3);
  std::printf("\n(paper: ADCNN 37.14/202.88, single 0/1586.53, "
              "cloud 502.21/98.94)\n");
  return 0;
}
