file(REMOVE_RECURSE
  "CMakeFiles/fig03_layer_profile.dir/fig03_layer_profile.cpp.o"
  "CMakeFiles/fig03_layer_profile.dir/fig03_layer_profile.cpp.o.d"
  "fig03_layer_profile"
  "fig03_layer_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_layer_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
