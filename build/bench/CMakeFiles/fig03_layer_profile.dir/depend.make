# Empty dependencies file for fig03_layer_profile.
# This may be replaced when dependencies are built.
