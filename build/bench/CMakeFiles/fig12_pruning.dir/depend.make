# Empty dependencies file for fig12_pruning.
# This may be replaced when dependencies are built.
