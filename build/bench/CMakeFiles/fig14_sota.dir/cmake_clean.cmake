file(REMOVE_RECURSE
  "CMakeFiles/fig14_sota.dir/fig14_sota.cpp.o"
  "CMakeFiles/fig14_sota.dir/fig14_sota.cpp.o.d"
  "fig14_sota"
  "fig14_sota.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
