# Empty dependencies file for fig14_sota.
# This may be replaced when dependencies are built.
