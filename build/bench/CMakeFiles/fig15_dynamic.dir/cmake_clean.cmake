file(REMOVE_RECURSE
  "CMakeFiles/fig15_dynamic.dir/fig15_dynamic.cpp.o"
  "CMakeFiles/fig15_dynamic.dir/fig15_dynamic.cpp.o.d"
  "fig15_dynamic"
  "fig15_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
