# Empty compiler generated dependencies file for fig15_dynamic.
# This may be replaced when dependencies are built.
