file(REMOVE_RECURSE
  "CMakeFiles/strategies_analysis.dir/strategies_analysis.cpp.o"
  "CMakeFiles/strategies_analysis.dir/strategies_analysis.cpp.o.d"
  "strategies_analysis"
  "strategies_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strategies_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
