# Empty compiler generated dependencies file for strategies_analysis.
# This may be replaced when dependencies are built.
