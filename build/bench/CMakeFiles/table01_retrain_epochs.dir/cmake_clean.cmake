file(REMOVE_RECURSE
  "CMakeFiles/table01_retrain_epochs.dir/table01_retrain_epochs.cpp.o"
  "CMakeFiles/table01_retrain_epochs.dir/table01_retrain_epochs.cpp.o.d"
  "table01_retrain_epochs"
  "table01_retrain_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_retrain_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
