# Empty compiler generated dependencies file for table01_retrain_epochs.
# This may be replaced when dependencies are built.
