file(REMOVE_RECURSE
  "CMakeFiles/table02_compression.dir/table02_compression.cpp.o"
  "CMakeFiles/table02_compression.dir/table02_compression.cpp.o.d"
  "table02_compression"
  "table02_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
