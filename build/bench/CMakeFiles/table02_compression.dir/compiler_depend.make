# Empty compiler generated dependencies file for table02_compression.
# This may be replaced when dependencies are built.
