file(REMOVE_RECURSE
  "CMakeFiles/table03_breakdown.dir/table03_breakdown.cpp.o"
  "CMakeFiles/table03_breakdown.dir/table03_breakdown.cpp.o.d"
  "table03_breakdown"
  "table03_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
