# Empty dependencies file for table03_breakdown.
# This may be replaced when dependencies are built.
