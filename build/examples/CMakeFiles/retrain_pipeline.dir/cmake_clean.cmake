file(REMOVE_RECURSE
  "CMakeFiles/retrain_pipeline.dir/retrain_pipeline.cpp.o"
  "CMakeFiles/retrain_pipeline.dir/retrain_pipeline.cpp.o.d"
  "retrain_pipeline"
  "retrain_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrain_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
