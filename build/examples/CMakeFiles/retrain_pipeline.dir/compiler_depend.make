# Empty compiler generated dependencies file for retrain_pipeline.
# This may be replaced when dependencies are built.
