file(REMOVE_RECURSE
  "CMakeFiles/adcnn_baselines.dir/aofl.cpp.o"
  "CMakeFiles/adcnn_baselines.dir/aofl.cpp.o.d"
  "CMakeFiles/adcnn_baselines.dir/neurosurgeon.cpp.o"
  "CMakeFiles/adcnn_baselines.dir/neurosurgeon.cpp.o.d"
  "libadcnn_baselines.a"
  "libadcnn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
