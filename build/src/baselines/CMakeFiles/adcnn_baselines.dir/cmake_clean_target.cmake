file(REMOVE_RECURSE
  "libadcnn_baselines.a"
)
