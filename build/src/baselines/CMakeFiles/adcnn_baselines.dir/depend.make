# Empty dependencies file for adcnn_baselines.
# This may be replaced when dependencies are built.
