
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/pipeline.cpp" "src/compress/CMakeFiles/adcnn_compress.dir/pipeline.cpp.o" "gcc" "src/compress/CMakeFiles/adcnn_compress.dir/pipeline.cpp.o.d"
  "/root/repo/src/compress/quantizer.cpp" "src/compress/CMakeFiles/adcnn_compress.dir/quantizer.cpp.o" "gcc" "src/compress/CMakeFiles/adcnn_compress.dir/quantizer.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/compress/CMakeFiles/adcnn_compress.dir/rle.cpp.o" "gcc" "src/compress/CMakeFiles/adcnn_compress.dir/rle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
