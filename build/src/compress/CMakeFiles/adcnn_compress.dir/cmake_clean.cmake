file(REMOVE_RECURSE
  "CMakeFiles/adcnn_compress.dir/pipeline.cpp.o"
  "CMakeFiles/adcnn_compress.dir/pipeline.cpp.o.d"
  "CMakeFiles/adcnn_compress.dir/quantizer.cpp.o"
  "CMakeFiles/adcnn_compress.dir/quantizer.cpp.o.d"
  "CMakeFiles/adcnn_compress.dir/rle.cpp.o"
  "CMakeFiles/adcnn_compress.dir/rle.cpp.o.d"
  "libadcnn_compress.a"
  "libadcnn_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
