file(REMOVE_RECURSE
  "libadcnn_compress.a"
)
