# Empty compiler generated dependencies file for adcnn_compress.
# This may be replaced when dependencies are built.
