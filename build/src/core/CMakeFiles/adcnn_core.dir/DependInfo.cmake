
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocate.cpp" "src/core/CMakeFiles/adcnn_core.dir/allocate.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/allocate.cpp.o.d"
  "/root/repo/src/core/fdsp.cpp" "src/core/CMakeFiles/adcnn_core.dir/fdsp.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/fdsp.cpp.o.d"
  "/root/repo/src/core/geometry.cpp" "src/core/CMakeFiles/adcnn_core.dir/geometry.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/geometry.cpp.o.d"
  "/root/repo/src/core/halo_reference.cpp" "src/core/CMakeFiles/adcnn_core.dir/halo_reference.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/halo_reference.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/adcnn_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/strategies.cpp" "src/core/CMakeFiles/adcnn_core.dir/strategies.cpp.o" "gcc" "src/core/CMakeFiles/adcnn_core.dir/strategies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/adcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
