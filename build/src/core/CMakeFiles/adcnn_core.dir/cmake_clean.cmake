file(REMOVE_RECURSE
  "CMakeFiles/adcnn_core.dir/allocate.cpp.o"
  "CMakeFiles/adcnn_core.dir/allocate.cpp.o.d"
  "CMakeFiles/adcnn_core.dir/fdsp.cpp.o"
  "CMakeFiles/adcnn_core.dir/fdsp.cpp.o.d"
  "CMakeFiles/adcnn_core.dir/geometry.cpp.o"
  "CMakeFiles/adcnn_core.dir/geometry.cpp.o.d"
  "CMakeFiles/adcnn_core.dir/halo_reference.cpp.o"
  "CMakeFiles/adcnn_core.dir/halo_reference.cpp.o.d"
  "CMakeFiles/adcnn_core.dir/stats.cpp.o"
  "CMakeFiles/adcnn_core.dir/stats.cpp.o.d"
  "CMakeFiles/adcnn_core.dir/strategies.cpp.o"
  "CMakeFiles/adcnn_core.dir/strategies.cpp.o.d"
  "libadcnn_core.a"
  "libadcnn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
