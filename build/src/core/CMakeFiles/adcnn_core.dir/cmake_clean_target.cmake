file(REMOVE_RECURSE
  "libadcnn_core.a"
)
