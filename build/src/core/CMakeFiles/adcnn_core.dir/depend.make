# Empty dependencies file for adcnn_core.
# This may be replaced when dependencies are built.
