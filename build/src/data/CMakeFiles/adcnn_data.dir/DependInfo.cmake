
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/charseq.cpp" "src/data/CMakeFiles/adcnn_data.dir/charseq.cpp.o" "gcc" "src/data/CMakeFiles/adcnn_data.dir/charseq.cpp.o.d"
  "/root/repo/src/data/shapes.cpp" "src/data/CMakeFiles/adcnn_data.dir/shapes.cpp.o" "gcc" "src/data/CMakeFiles/adcnn_data.dir/shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
