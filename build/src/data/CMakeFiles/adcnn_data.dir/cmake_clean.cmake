file(REMOVE_RECURSE
  "CMakeFiles/adcnn_data.dir/charseq.cpp.o"
  "CMakeFiles/adcnn_data.dir/charseq.cpp.o.d"
  "CMakeFiles/adcnn_data.dir/shapes.cpp.o"
  "CMakeFiles/adcnn_data.dir/shapes.cpp.o.d"
  "libadcnn_data.a"
  "libadcnn_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
