file(REMOVE_RECURSE
  "libadcnn_data.a"
)
