# Empty compiler generated dependencies file for adcnn_data.
# This may be replaced when dependencies are built.
