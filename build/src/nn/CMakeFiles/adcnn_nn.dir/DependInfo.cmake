
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/archspec.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/archspec.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/archspec.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/models_mini.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/models_mini.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/models_mini.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/profile.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/profile.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/profile.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/quantize.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/quantize.cpp.o.d"
  "/root/repo/src/nn/regularization.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/regularization.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/regularization.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tiling.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/tiling.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/tiling.cpp.o.d"
  "/root/repo/src/nn/upsample.cpp" "src/nn/CMakeFiles/adcnn_nn.dir/upsample.cpp.o" "gcc" "src/nn/CMakeFiles/adcnn_nn.dir/upsample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
