file(REMOVE_RECURSE
  "libadcnn_nn.a"
)
