# Empty compiler generated dependencies file for adcnn_nn.
# This may be replaced when dependencies are built.
