
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/central_node.cpp" "src/runtime/CMakeFiles/adcnn_runtime.dir/central_node.cpp.o" "gcc" "src/runtime/CMakeFiles/adcnn_runtime.dir/central_node.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/runtime/CMakeFiles/adcnn_runtime.dir/cluster.cpp.o" "gcc" "src/runtime/CMakeFiles/adcnn_runtime.dir/cluster.cpp.o.d"
  "/root/repo/src/runtime/conv_node.cpp" "src/runtime/CMakeFiles/adcnn_runtime.dir/conv_node.cpp.o" "gcc" "src/runtime/CMakeFiles/adcnn_runtime.dir/conv_node.cpp.o.d"
  "/root/repo/src/runtime/link.cpp" "src/runtime/CMakeFiles/adcnn_runtime.dir/link.cpp.o" "gcc" "src/runtime/CMakeFiles/adcnn_runtime.dir/link.cpp.o.d"
  "/root/repo/src/runtime/message.cpp" "src/runtime/CMakeFiles/adcnn_runtime.dir/message.cpp.o" "gcc" "src/runtime/CMakeFiles/adcnn_runtime.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adcnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/adcnn_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
