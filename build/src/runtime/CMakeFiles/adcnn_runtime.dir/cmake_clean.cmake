file(REMOVE_RECURSE
  "CMakeFiles/adcnn_runtime.dir/central_node.cpp.o"
  "CMakeFiles/adcnn_runtime.dir/central_node.cpp.o.d"
  "CMakeFiles/adcnn_runtime.dir/cluster.cpp.o"
  "CMakeFiles/adcnn_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/adcnn_runtime.dir/conv_node.cpp.o"
  "CMakeFiles/adcnn_runtime.dir/conv_node.cpp.o.d"
  "CMakeFiles/adcnn_runtime.dir/link.cpp.o"
  "CMakeFiles/adcnn_runtime.dir/link.cpp.o.d"
  "CMakeFiles/adcnn_runtime.dir/message.cpp.o"
  "CMakeFiles/adcnn_runtime.dir/message.cpp.o.d"
  "libadcnn_runtime.a"
  "libadcnn_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
