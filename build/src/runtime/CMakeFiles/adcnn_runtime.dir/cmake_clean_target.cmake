file(REMOVE_RECURSE
  "libadcnn_runtime.a"
)
