# Empty compiler generated dependencies file for adcnn_runtime.
# This may be replaced when dependencies are built.
