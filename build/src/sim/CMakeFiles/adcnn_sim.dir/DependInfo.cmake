
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adcnn_sim.cpp" "src/sim/CMakeFiles/adcnn_sim.dir/adcnn_sim.cpp.o" "gcc" "src/sim/CMakeFiles/adcnn_sim.dir/adcnn_sim.cpp.o.d"
  "/root/repo/src/sim/baseline_sim.cpp" "src/sim/CMakeFiles/adcnn_sim.dir/baseline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/adcnn_sim.dir/baseline_sim.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/adcnn_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/adcnn_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/sim/CMakeFiles/adcnn_sim.dir/device.cpp.o" "gcc" "src/sim/CMakeFiles/adcnn_sim.dir/device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adcnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
