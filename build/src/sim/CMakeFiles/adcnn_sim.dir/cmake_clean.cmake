file(REMOVE_RECURSE
  "CMakeFiles/adcnn_sim.dir/adcnn_sim.cpp.o"
  "CMakeFiles/adcnn_sim.dir/adcnn_sim.cpp.o.d"
  "CMakeFiles/adcnn_sim.dir/baseline_sim.cpp.o"
  "CMakeFiles/adcnn_sim.dir/baseline_sim.cpp.o.d"
  "CMakeFiles/adcnn_sim.dir/cost_model.cpp.o"
  "CMakeFiles/adcnn_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/adcnn_sim.dir/device.cpp.o"
  "CMakeFiles/adcnn_sim.dir/device.cpp.o.d"
  "libadcnn_sim.a"
  "libadcnn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
