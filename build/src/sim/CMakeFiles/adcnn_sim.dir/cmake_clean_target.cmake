file(REMOVE_RECURSE
  "libadcnn_sim.a"
)
