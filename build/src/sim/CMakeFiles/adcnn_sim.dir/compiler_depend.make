# Empty compiler generated dependencies file for adcnn_sim.
# This may be replaced when dependencies are built.
