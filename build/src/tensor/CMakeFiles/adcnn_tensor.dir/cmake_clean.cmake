file(REMOVE_RECURSE
  "CMakeFiles/adcnn_tensor.dir/rng.cpp.o"
  "CMakeFiles/adcnn_tensor.dir/rng.cpp.o.d"
  "CMakeFiles/adcnn_tensor.dir/tensor.cpp.o"
  "CMakeFiles/adcnn_tensor.dir/tensor.cpp.o.d"
  "libadcnn_tensor.a"
  "libadcnn_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
