file(REMOVE_RECURSE
  "libadcnn_tensor.a"
)
