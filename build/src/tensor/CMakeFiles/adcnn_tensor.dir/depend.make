# Empty dependencies file for adcnn_tensor.
# This may be replaced when dependencies are built.
