file(REMOVE_RECURSE
  "CMakeFiles/adcnn_train.dir/loss.cpp.o"
  "CMakeFiles/adcnn_train.dir/loss.cpp.o.d"
  "CMakeFiles/adcnn_train.dir/optimizer.cpp.o"
  "CMakeFiles/adcnn_train.dir/optimizer.cpp.o.d"
  "CMakeFiles/adcnn_train.dir/progressive.cpp.o"
  "CMakeFiles/adcnn_train.dir/progressive.cpp.o.d"
  "CMakeFiles/adcnn_train.dir/trainer.cpp.o"
  "CMakeFiles/adcnn_train.dir/trainer.cpp.o.d"
  "libadcnn_train.a"
  "libadcnn_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adcnn_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
