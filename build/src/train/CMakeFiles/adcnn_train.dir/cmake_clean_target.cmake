file(REMOVE_RECURSE
  "libadcnn_train.a"
)
