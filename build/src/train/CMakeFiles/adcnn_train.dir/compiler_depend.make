# Empty compiler generated dependencies file for adcnn_train.
# This may be replaced when dependencies are built.
