
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocate.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_allocate.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_allocate.cpp.o.d"
  "/root/repo/tests/test_archspec.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_archspec.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_archspec.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_compress.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_compress.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_compress.cpp.o.d"
  "/root/repo/tests/test_conv.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_conv.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_conv.cpp.o.d"
  "/root/repo/tests/test_data.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_data.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_data.cpp.o.d"
  "/root/repo/tests/test_e2e.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_e2e.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_e2e.cpp.o.d"
  "/root/repo/tests/test_fdsp.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_fdsp.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_fdsp.cpp.o.d"
  "/root/repo/tests/test_fdsp_families.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_fdsp_families.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_fdsp_families.cpp.o.d"
  "/root/repo/tests/test_gemm.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_gemm.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_gradcheck.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_gradcheck.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_gradcheck.cpp.o.d"
  "/root/repo/tests/test_halo_reference.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_halo_reference.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_halo_reference.cpp.o.d"
  "/root/repo/tests/test_layers.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_layers.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_layers.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_progressive.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_progressive.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_progressive.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_regularization.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_regularization.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_regularization.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_runtime_policies.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_runtime_policies.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_runtime_policies.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_properties.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_sim_properties.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_sim_properties.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strategies.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_strategies.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_train.cpp" "tests/CMakeFiles/adcnn_tests.dir/test_train.cpp.o" "gcc" "tests/CMakeFiles/adcnn_tests.dir/test_train.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/adcnn_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adcnn_data.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/adcnn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/adcnn_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adcnn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adcnn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adcnn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adcnn_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adcnn_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
