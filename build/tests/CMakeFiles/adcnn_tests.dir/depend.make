# Empty dependencies file for adcnn_tests.
# This may be replaced when dependencies are built.
