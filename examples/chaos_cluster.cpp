// Chaos engineering demo: sweep uplink drop rates over a 4-node cluster
// and compare the paper's bare zero-fill deadline against the self-healing
// gather (bounded retry/re-dispatch inside T_L).
//
// Every fault is scripted by a seeded FaultPlan, so a rerun reproduces the
// exact same drops — chaos you can bisect. The table shows the fraction of
// tiles still missing at the deadline with retry off vs on; the summary
// prints the fault-injection and self-healing counters.
#include <cstdio>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"

using namespace adcnn;

namespace {

struct SweepPoint {
  std::int64_t tiles = 0;
  std::int64_t missing = 0;
  std::int64_t retried = 0;
  std::int64_t recovered = 0;
};

SweepPoint run(core::PartitionedModel& pm, const Tensor& image,
               double drop_prob, bool retry, obs::MetricsRegistry* metrics) {
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.deadline_s = 0.25;  // T_L: ample for healthy tiles, room for retries
  cfg.retry.enabled = retry;
  cfg.fault_plan.seed = 0xC7A05;
  cfg.fault_plan.uplink.resize(4);
  for (auto& spec : cfg.fault_plan.uplink) spec.drop_prob = drop_prob;
  if (metrics) cfg.telemetry.metrics = metrics;
  runtime::EdgeCluster cluster(pm, cfg);

  SweepPoint point;
  for (int i = 0; i < 4; ++i) {
    runtime::InferStats stats;
    cluster.infer(image, &stats);
    point.tiles += stats.tiles_total;
    point.missing += stats.tiles_missing;
    point.retried += stats.tiles_retried;
    point.recovered += stats.tiles_recovered;
  }
  return point;
}

}  // namespace

int main() {
  Rng rng(11);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{4, 4};
  opt.clipped_relu = true;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm =
      core::apply_fdsp(nn::make_vgg_mini(rng, nn::MiniOptions{}), opt);
  const Tensor image = Tensor::randn(Shape{1, 3, 32, 32}, rng);

  std::printf("uplink drop | missing (zero-fill only) | missing (self-heal) "
              "| retried | recovered\n");
  obs::MetricsRegistry metrics;  // accumulated across the retry-on runs
  for (const double drop : {0.0, 0.1, 0.3, 0.5}) {
    const SweepPoint off = run(pm, image, drop, false, nullptr);
    const SweepPoint on = run(pm, image, drop, true, &metrics);
    std::printf("%10.0f%% | %11lld/%lld (%4.1f%%) | %8lld/%lld (%4.1f%%) "
                "| %7lld | %9lld\n",
                drop * 100.0, static_cast<long long>(off.missing),
                static_cast<long long>(off.tiles),
                100.0 * static_cast<double>(off.missing) /
                    static_cast<double>(off.tiles),
                static_cast<long long>(on.missing),
                static_cast<long long>(on.tiles),
                100.0 * static_cast<double>(on.missing) /
                    static_cast<double>(on.tiles),
                static_cast<long long>(on.retried),
                static_cast<long long>(on.recovered));
  }

  const auto snap = metrics.snapshot();
  if (!snap.counters.empty()) {
    const auto count = [&](const char* name) {
      const auto it = snap.counters.find(name);
      return static_cast<long long>(it == snap.counters.end() ? 0
                                                              : it->second);
    };
    std::printf("\nfault injection: %lld dropped, %lld corrupted, "
                "%lld delayed\n",
                count("faults.dropped"), count("faults.corrupted"),
                count("faults.delayed"));
    std::printf("self-healing:    %lld re-dispatched over %lld rounds, "
                "%lld recovered, %lld decode errors, %lld stale drained\n",
                count("central.retry.dispatched"),
                count("central.retry.rounds"),
                count("central.retry.recovered"),
                count("central.decode_errors"),
                count("central.stale_results"));
  }
  std::printf("\nSame seed, same drops: the only difference per row is the "
              "bounded in-window retry.\n");
  return 0;
}
