// Chaos engineering demo: sweep uplink drop rates over a 4-node cluster
// and compare the paper's bare zero-fill deadline against the self-healing
// gather (bounded retry/re-dispatch inside T_L).
//
// Every fault is scripted by a seeded FaultPlan, so a rerun reproduces the
// exact same drops — chaos you can bisect. The table shows the fraction of
// tiles still missing at the deadline with retry off vs on; the summary
// prints the fault-injection and self-healing counters.
//
// `--processes` switches to process-level chaos: a real 4-worker loopback
// TCP cluster (DistributedCluster spawning adcnn_conv_worker processes)
// with one worker SIGKILLed and another SIGSTOPped mid-stream. Every image
// must still come back bit-identical to the in-process oracle; the run
// ends with a greppable "degraded completion: OK" verdict (CI's chaos leg
// keys off it).
#include <signal.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/fdsp.hpp"
#include "net/cluster.hpp"
#include "nn/models_mini.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"

#ifndef ADCNN_WORKER_BIN
#define ADCNN_WORKER_BIN ""
#endif

using namespace adcnn;

namespace {

struct SweepPoint {
  std::int64_t tiles = 0;
  std::int64_t missing = 0;
  std::int64_t retried = 0;
  std::int64_t recovered = 0;
};

SweepPoint run(core::PartitionedModel& pm, const Tensor& image,
               double drop_prob, bool retry, obs::MetricsRegistry* metrics) {
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.deadline_s = 0.25;  // T_L: ample for healthy tiles, room for retries
  cfg.retry.enabled = retry;
  cfg.fault_plan.seed = 0xC7A05;
  cfg.fault_plan.uplink.resize(4);
  for (auto& spec : cfg.fault_plan.uplink) spec.drop_prob = drop_prob;
  if (metrics) cfg.telemetry.metrics = metrics;
  runtime::EdgeCluster cluster(pm, cfg);

  SweepPoint point;
  for (int i = 0; i < 4; ++i) {
    runtime::InferStats stats;
    cluster.infer(image, &stats);
    point.tiles += stats.tiles_total;
    point.missing += stats.tiles_missing;
    point.retried += stats.tiles_retried;
    point.recovered += stats.tiles_recovered;
  }
  return point;
}

/// Process-level chaos over real sockets: SIGKILL + SIGSTOP mid-stream,
/// assert bit-identical completion. Returns the process exit code.
int run_process_chaos() {
  if (std::strlen(ADCNN_WORKER_BIN) == 0) {
    std::printf("worker binary path not compiled in; rebuild via CMake\n");
    return 1;
  }
  const net::ModelSpec spec;  // vgg_mini, 32x32, 4x4 grid, quantized wire

  // In-process oracle: same spec, same ConvNodeWorker/codec path.
  std::vector<Tensor> images;
  {
    Rng rng(123);
    for (int i = 0; i < 6; ++i) {
      images.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
    }
  }
  std::vector<Tensor> expect;
  {
    core::PartitionedModel pm = spec.build();
    runtime::ClusterConfig cfg;
    cfg.num_nodes = 4;
    runtime::EdgeCluster oracle(pm, cfg);
    for (const Tensor& x : images) expect.push_back(oracle.infer(x));
  }

  core::PartitionedModel pm = spec.build();
  net::DistributedConfig cfg;
  cfg.num_nodes = 4;
  cfg.worker_binary = ADCNN_WORKER_BIN;
  cfg.spec = spec;
  cfg.deadline_s = 20.0;
  cfg.heartbeat_period_s = 0.05;
  cfg.liveness_timeout_s = 0.3;
  cfg.retry.at_fraction = 0.1;
  cfg.retry.max_rounds = 4;
  cfg.quarantine_after = 2;
  net::DistributedCluster cluster(pm, cfg);
  if (!cluster.wait_all_connected(15.0)) {
    std::printf("degraded completion: FAIL (workers never connected)\n");
    return 1;
  }
  std::printf("4 worker processes connected via %s\n",
              cluster.endpoint().uri().c_str());

  bool ok = true;
  std::int64_t recovered = 0;
  for (int i = 0; i < static_cast<int>(images.size()); ++i) {
    if (i == 2) {
      std::printf("chaos: SIGSTOP worker 1 (pid %d), SIGKILL worker 2 "
                  "(pid %d)\n",
                  static_cast<int>(cluster.worker_pid(1)),
                  static_cast<int>(cluster.worker_pid(2)));
      cluster.signal_worker(1, SIGSTOP);
      cluster.signal_worker(2, SIGKILL);
    }
    runtime::InferStats stats;
    const Tensor y = cluster.infer(images[static_cast<std::size_t>(i)], &stats);
    const float diff =
        Tensor::max_abs_diff(y, expect[static_cast<std::size_t>(i)]);
    const bool image_ok = diff == 0.0f && stats.tiles_missing == 0;
    ok = ok && image_ok;
    recovered += stats.tiles_recovered;
    std::printf("image %d: %s (missing %lld, retried %lld, recovered %lld, "
                "max|diff| %g)\n",
                i, image_ok ? "bit-identical" : "MISMATCH",
                static_cast<long long>(stats.tiles_missing),
                static_cast<long long>(stats.tiles_retried),
                static_cast<long long>(stats.tiles_recovered), diff);
  }
  cluster.signal_worker(1, SIGCONT);

  std::printf("transport: %lld heartbeat misses, %lld reconnects\n",
              static_cast<long long>(cluster.heartbeat_misses()),
              static_cast<long long>(cluster.reconnects()));
  std::printf("degraded completion: %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--processes") return run_process_chaos();
  }
  Rng rng(11);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{4, 4};
  opt.clipped_relu = true;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm =
      core::apply_fdsp(nn::make_vgg_mini(rng, nn::MiniOptions{}), opt);
  const Tensor image = Tensor::randn(Shape{1, 3, 32, 32}, rng);

  std::printf("uplink drop | missing (zero-fill only) | missing (self-heal) "
              "| retried | recovered\n");
  obs::MetricsRegistry metrics;  // accumulated across the retry-on runs
  for (const double drop : {0.0, 0.1, 0.3, 0.5}) {
    const SweepPoint off = run(pm, image, drop, false, nullptr);
    const SweepPoint on = run(pm, image, drop, true, &metrics);
    std::printf("%10.0f%% | %11lld/%lld (%4.1f%%) | %8lld/%lld (%4.1f%%) "
                "| %7lld | %9lld\n",
                drop * 100.0, static_cast<long long>(off.missing),
                static_cast<long long>(off.tiles),
                100.0 * static_cast<double>(off.missing) /
                    static_cast<double>(off.tiles),
                static_cast<long long>(on.missing),
                static_cast<long long>(on.tiles),
                100.0 * static_cast<double>(on.missing) /
                    static_cast<double>(on.tiles),
                static_cast<long long>(on.retried),
                static_cast<long long>(on.recovered));
  }

  const auto snap = metrics.snapshot();
  if (!snap.counters.empty()) {
    const auto count = [&](const char* name) {
      const auto it = snap.counters.find(name);
      return static_cast<long long>(it == snap.counters.end() ? 0
                                                              : it->second);
    };
    std::printf("\nfault injection: %lld dropped, %lld corrupted, "
                "%lld delayed\n",
                count("faults.dropped"), count("faults.corrupted"),
                count("faults.delayed"));
    std::printf("self-healing:    %lld re-dispatched over %lld rounds, "
                "%lld recovered, %lld decode errors, %lld stale drained\n",
                count("central.retry.dispatched"),
                count("central.retry.rounds"),
                count("central.retry.recovered"),
                count("central.decode_errors"),
                count("central.stale_results"));
  }
  std::printf("\nSame seed, same drops: the only difference per row is the "
              "bounded in-window retry.\n");
  return 0;
}
