// Compression explorer: walk an activation map through the §4 pipeline —
// clipped ReLU -> k-bit quantization -> run-length encoding — and print
// the size at every stage for several sparsity levels and bit widths.
#include <cstdio>

#include "compress/pipeline.hpp"
#include "nn/activations.hpp"

using namespace adcnn;

int main() {
  Rng rng(3);
  // A post-ReLU activation map: half-normal values, moderately sparse.
  const Shape shape{1, 64, 28, 28};
  Tensor act(shape);
  for (std::int64_t i = 0; i < act.numel(); ++i) {
    const float v = static_cast<float>(rng.normal());
    act[i] = v > 0 ? v : 0.0f;
  }
  std::printf("activation map %s: %lld values, %.1f%% zeros after ReLU\n\n",
              shape.to_string().c_str(), static_cast<long long>(act.numel()),
              100.0 * act.sparsity());

  std::printf("%-22s %10s %12s %12s %9s\n", "clipped ReLU [a,b]", "sparsity",
              "4-bit packed", "wire bytes", "ratio");
  for (const auto [lo, hi] : {std::pair{0.0f, 2.0f}, std::pair{0.2f, 2.0f},
                              std::pair{0.5f, 2.0f}, std::pair{0.8f, 1.6f}}) {
    nn::ClippedReLU clip(lo, hi);
    const Tensor clipped = clip.forward(act, nn::Mode::kEval);
    compress::TileCodec codec(clip.range(), 4);
    compress::StageSizes sizes;
    codec.encode(clipped, &sizes);
    std::printf("[%.1f, %.1f]%12.1f%% %12lld %12lld %8.3fx\n", lo, hi,
                100.0 * clipped.sparsity(),
                static_cast<long long>(sizes.quant_packed_bytes),
                static_cast<long long>(sizes.encoded_bytes),
                static_cast<double>(sizes.encoded_bytes) /
                    static_cast<double>(sizes.raw_bytes));
  }

  std::printf("\nbit-width sweep at clip [0.5, 2.0] (ablation beyond the "
              "paper's 4-bit choice):\n");
  nn::ClippedReLU clip(0.5f, 2.0f);
  const Tensor clipped = clip.forward(act, nn::Mode::kEval);
  std::printf("%6s %12s %9s %16s\n", "bits", "wire bytes", "ratio",
              "max quant error");
  for (const int bits : {2, 3, 4, 6, 8}) {
    compress::TileCodec codec(clip.range(), bits);
    compress::StageSizes sizes;
    const auto wire = codec.encode(clipped, &sizes);
    const Tensor back = codec.decode(wire, clipped.shape());
    std::printf("%6d %12lld %8.3fx %16.4f\n", bits,
                static_cast<long long>(sizes.encoded_bytes),
                static_cast<double>(sizes.encoded_bytes) /
                    static_cast<double>(sizes.raw_bytes),
                Tensor::max_abs_diff(clipped, back));
  }
  std::printf("\nLower clip bounds buy sparsity (smaller wires); fewer bits "
              "shrink literals but raise quantization error — the "
              "retraining in Algorithm 1 absorbs both.\n");
  return 0;
}
