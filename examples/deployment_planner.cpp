// Deployment planner: given a full-scale CNN and a device fleet, compare
// every execution strategy this library models — single device, remote
// cloud, Neurosurgeon, AOFL and ADCNN — and print a recommendation.
//
//   ./deployment_planner [model] [nodes] [bandwidth_mbps]
//   model in {vgg16, resnet18, resnet34, yolo, fcn, charcnn}
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/aofl.hpp"
#include "baselines/neurosurgeon.hpp"
#include "sim/adcnn_sim.hpp"
#include "sim/baseline_sim.hpp"

using namespace adcnn;

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "yolo";
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 8;
  const double mbps = argc > 3 ? std::atof(argv[3]) : 87.72;

  const arch::ArchSpec spec = arch::by_name(model);
  const sim::DeviceSpec device;
  sim::LinkSpec link;
  link.bandwidth_bps = mbps * 1e6;

  std::printf("plan for %s: %d Pi-class edge nodes, %.2f Mbps edge links\n",
              model.c_str(), nodes, mbps);
  std::printf("  %.1f GFLOPs, %.0f MB of weights, input %lldx%lldx%lld\n\n",
              static_cast<double>(spec.total_flops()) * 1e-9,
              static_cast<double>(spec.total_param_bytes()) / 1e6,
              static_cast<long long>(spec.cin),
              static_cast<long long>(spec.hin),
              static_cast<long long>(spec.win));

  struct Option {
    std::string name;
    double latency;
    std::string note;
  };
  std::vector<Option> options;

  const auto single = sim::simulate_single_device(spec, device, 0.02, 1, 30);
  options.push_back({"single-device", single.mean_latency_s, "no network"});

  const auto cloud =
      sim::simulate_remote_cloud(spec, sim::CloudConfig{}, 0.02, 1, 30);
  options.push_back({"remote-cloud", cloud.mean_latency_s,
                     "WAN-dominated (" +
                         std::to_string(static_cast<int>(
                             100 * cloud.transmission_s /
                             cloud.mean_latency_s)) +
                         "% transmission)"});

  const auto neuro =
      baselines::neurosurgeon_plan(spec, device, sim::CloudConfig{});
  options.push_back({"neurosurgeon", neuro.latency_s,
                     "cut after layer " + std::to_string(neuro.cut)});

  core::TileGrid grid{2, nodes / 2 > 0 ? nodes / 2 : 1};
  if (spec.hin == 1) grid = core::TileGrid{1, nodes};
  const auto aofl = baselines::aofl_plan(spec, grid, device, link);
  options.push_back({"aofl", aofl.latency_s,
                     std::to_string(aofl.rounds.size()) + " fused rounds"});

  auto cfg = sim::AdcnnSimConfig::uniform(nodes, device);
  cfg.link = link;
  if (spec.hin == 1) cfg.grid = core::TileGrid{1, 8};
  cfg.separable_override = sim::deep_partition_blocks(spec);
  const auto adcnn = sim::simulate_adcnn(spec, cfg, 30);
  options.push_back({"adcnn", adcnn.mean_latency_s,
                     std::to_string(cfg.grid.rows) + "x" +
                         std::to_string(cfg.grid.cols) + " FDSP tiles, " +
                         std::to_string(nodes) + " nodes"});

  std::size_t best = 0;
  for (std::size_t i = 0; i < options.size(); ++i)
    if (options[i].latency < options[best].latency) best = i;
  std::printf("  %-14s %12s  %s\n", "strategy", "latency", "notes");
  for (std::size_t i = 0; i < options.size(); ++i)
    std::printf("%s %-14s %9.1f ms  %s\n", i == best ? "->" : "  ",
                options[i].name.c_str(), options[i].latency * 1e3,
                options[i].note.c_str());
  std::printf("\nrecommendation: %s\n", options[best].name.c_str());
  return 0;
}
