// Heterogeneous / dynamic edge cluster demo (the §7.3 scenario, live on
// the threaded runtime rather than the simulator).
//
// Four Conv nodes serve an image stream; halfway through, two nodes are
// throttled CPUlimit-style. Watch Algorithm 2's throughput estimates s_k
// decay for the slow nodes and Algorithm 3 shift tiles toward the healthy
// ones, while inference keeps returning results (missing tiles are
// zero-filled at the deadline).
#include <cstdio>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"

using namespace adcnn;

int main() {
  Rng rng(11);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{8, 8};
  opt.clipped_relu = true;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm =
      core::apply_fdsp(nn::make_vgg_mini(rng, nn::MiniOptions{}), opt);

  obs::MetricsRegistry metrics;  // cluster-wide counters, no tracing
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.deadline_s = 0.06;  // T_L: tight enough to expose stragglers
  cfg.telemetry.metrics = &metrics;
  runtime::EdgeCluster cluster(pm, cfg);

  const Tensor image = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  std::printf("%5s | %-23s | %-27s | %s\n", "image", "tiles assigned (x_k)",
              "speed estimates (s_k)", "zero-filled");
  const int total_images = 24;
  for (int i = 0; i < total_images; ++i) {
    if (i == total_images / 2) {
      std::printf("--- throttling node 2 and node 3 to ~0.2%% CPU ---\n");
      cluster.node(2).set_cpu_limit(0.003);
      cluster.node(3).set_cpu_limit(0.002);
    }
    runtime::InferStats stats;
    cluster.infer(image, &stats);
    if (i % 2 == 0 || i == total_images / 2) {
      std::printf("%5d | ", i);
      for (const auto assigned : stats.assigned)
        std::printf("%5lld ", static_cast<long long>(assigned));
      std::printf("| ");
      for (const auto speed : stats.speeds)  // s_k rides in the report now
        std::printf("%6.2f ", speed);
      std::printf("| %lld\n", static_cast<long long>(stats.tiles_missing));
    }
  }
  std::printf("\nThe throttled nodes' s_k collapsed and Algorithm 3 routed "
              "the tiles to the healthy nodes.\n");

  // Cluster-wide telemetry accumulated by the metrics registry.
  const auto snap = metrics.snapshot();
  if (!snap.counters.empty()) {
    std::printf("telemetry: %lld tiles compressed %.1fx, %lld zero-filled, "
                "%llu B down / %llu B up\n",
                static_cast<long long>(snap.counters.at("codec.tiles")),
                static_cast<double>(snap.counters.at("codec.raw_bytes")) /
                    static_cast<double>(
                        snap.counters.at("codec.encoded_bytes")),
                static_cast<long long>(
                    snap.counters.at("central.tiles_missing")),
                static_cast<unsigned long long>(
                    snap.counters.at("link.downlink_bytes")),
                static_cast<unsigned long long>(
                    snap.counters.at("link.uplink_bytes")));
  }
  return 0;
}
