// Quickstart: partition a CNN with FDSP and run it distributed across a
// simulated edge cluster — the whole ADCNN pipeline in ~60 lines.
//
//   1. build a CNN (a VGG-style mini model),
//   2. apply FDSP surgery (tile grid + clipped ReLU + 4-bit quantization),
//   3. bring up an in-process edge cluster (Central node + 4 Conv-node
//      worker threads over bandwidth-modelled links),
//   4. run an inference and compare with the monolithic forward pass.
#include <cstdio>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "runtime/cluster.hpp"

using namespace adcnn;

int main() {
  // 1. A plain CNN.
  Rng rng(7);
  nn::Model plain = nn::make_vgg_mini(rng, nn::MiniOptions{});
  std::printf("model: %s, %lld parameters, %d layer blocks (%d separable)\n",
              plain.name.c_str(),
              static_cast<long long>(plain.param_count()),
              plain.num_blocks(), plain.separable_blocks);

  // 2. FDSP surgery: 4x4 tile grid, clipped ReLU [0, 3], 4-bit fake quant.
  core::FdspOptions opt;
  opt.grid = core::TileGrid{4, 4};
  opt.clipped_relu = true;
  opt.clip_lower = 0.0f;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm = core::apply_fdsp(std::move(plain), opt);
  std::printf("partitioned: %s — %lld tiles of %s\n", pm.model.name.c_str(),
              static_cast<long long>(pm.grid.count()),
              pm.tile_input_shape().to_string().c_str());

  // Reference output from the monolithic (single-process) forward pass.
  const Tensor image = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const Tensor reference = pm.model.forward(image, nn::Mode::kEval);

  // 3. Edge cluster: one Central node + 4 Conv-node worker threads.
  runtime::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = 4;
  runtime::EdgeCluster cluster(pm, cluster_cfg);

  // 4. Distributed inference.
  runtime::InferStats stats;
  const Tensor output = cluster.infer(image, &stats);

  std::printf("distributed inference: %lld tiles over %d nodes "
              "(%lld zero-filled), %.2f ms wall\n",
              static_cast<long long>(stats.tiles_total), cluster.num_nodes(),
              static_cast<long long>(stats.tiles_missing),
              stats.elapsed_s * 1e3);
  std::printf("tiles per node:");
  for (const auto assigned : stats.assigned)
    std::printf(" %lld", static_cast<long long>(assigned));
  std::printf("\nresult bytes over the uplinks:");
  for (int k = 0; k < cluster.num_nodes(); ++k)
    std::printf(" %llu",
                static_cast<unsigned long long>(cluster.uplink(k).bytes_sent()));
  std::printf("\nmax |distributed - monolithic| = %.2e\n",
              Tensor::max_abs_diff(output, reference));

  // 5. The same numbers as a structured report (stage timings, per-node
  //    outcome, Algorithm 2 speeds) — the format bench/ and the telemetry
  //    tooling consume; see examples/trace_viewer_export for full traces.
  std::printf("per-inference report:\n%s\n", stats.to_json().c_str());
  return Tensor::max_abs_diff(output, reference) < 1e-4f ? 0 : 1;
}
