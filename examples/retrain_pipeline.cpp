// Progressive retraining end to end (Algorithm 1): train a CNN on a
// synthetic shape-classification task, then recover its accuracy under
// FDSP + clipped ReLU + 4-bit quantization in three small retraining
// stages — and verify the retrained model still works when actually
// distributed over an edge cluster.
#include <cstdio>

#include "data/shapes.hpp"
#include "nn/models_mini.hpp"
#include "runtime/cluster.hpp"
#include "train/progressive.hpp"

using namespace adcnn;

int main() {
  // Synthetic task (substitutes Caltech101/ImageNet; see DESIGN.md).
  data::ShapesConfig data_cfg;
  data_cfg.count = 640;
  data_cfg.seed = 31;
  const data::Dataset train_set = data::make_shapes_classification(data_cfg);
  data_cfg.count = 160;
  data_cfg.seed = 32;
  const data::Dataset test_set = data::make_shapes_classification(data_cfg);

  // Original model M_ori.
  nn::MiniOptions mopt;
  mopt.width_mult = 0.5;
  const auto build = [&] {
    Rng rng(41);
    return nn::make_vgg_mini(rng, mopt);
  };
  nn::Model original = build();
  train::TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.lr = 0.02;
  tcfg.verbose = true;
  std::printf("== training the original CNN ==\n");
  train::train(original, train_set, test_set, tcfg);

  // Clip bounds from separable-output statistics (§7.1).
  const auto bounds = train::suggest_clip_bounds(original, train_set, 0.6);
  std::printf("\nsuggested clipped-ReLU bounds: [%.3f, %.3f]\n", bounds.first,
              bounds.second);

  // Algorithm 1.
  train::ProgressiveConfig pcfg;
  pcfg.grid = core::TileGrid{4, 4};
  pcfg.clip_lower = bounds.first;
  pcfg.clip_upper = bounds.second;
  pcfg.max_epochs_per_stage = 4;
  pcfg.retrain.lr = 0.01;
  pcfg.retrain.verbose = true;
  std::printf("\n== progressive retraining (4x4 partition) ==\n");
  auto result = train::progressive_retrain(build, original, train_set,
                                           test_set, pcfg);
  std::printf("\nbaseline accuracy: %.1f%%\n",
              100.0 * result.baseline_accuracy);
  for (const auto& stage : result.stages)
    std::printf("  after %-13s: %.1f%% (%d epoch%s)\n", stage.stage.c_str(),
                100.0 * stage.accuracy, stage.epochs_used,
                stage.epochs_used == 1 ? "" : "s");

  // Deploy the final model on a 4-node cluster and measure accuracy there.
  runtime::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  runtime::EdgeCluster cluster(result.final_model, ccfg);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test_set.size(); ++i) {
    const Tensor x = test_set.images.crop(i, 1, 0, 32, 0, 32);
    const Tensor logits = cluster.infer(x);
    std::int64_t best = 0;
    for (std::int64_t k = 1; k < logits.shape()[1]; ++k)
      if (logits[k] > logits[best]) best = k;
    correct += (static_cast<int>(best) ==
                test_set.labels[static_cast<std::size_t>(i)]);
  }
  std::printf("\ndistributed accuracy over the 4-node cluster: %.1f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(test_set.size()));
  return 0;
}
