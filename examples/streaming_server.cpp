// Streaming serving: submit a queue of images to a StreamingServer and
// overlap scatter / conv-node compute / gather / central suffix across
// in-flight images — the serving-side counterpart to quickstart's single
// infer() call.
//
//   1. partition a CNN with FDSP and bring up a simulated edge cluster,
//   2. wrap the cluster's Central node in a StreamingServer (depth 2),
//   3. submit a burst of images, then redeem the tickets in order,
//   4. self-check every output against the monolithic forward pass.
//
// Telemetry flags:
//   --prom=PATH   write Prometheus text exposition every exporter period
//   --jsonl=PATH  append one JSONL metrics sample per period
//   --slo=SECONDS enable the SLO watchdog with this latency objective
// With --smoke the demo runs a smaller burst (CI uses this).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"
#include "runtime/pipeline.hpp"

using namespace adcnn;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string prom_path, jsonl_path;
  double slo_s = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--prom=", 7) == 0) prom_path = argv[i] + 7;
    else if (std::strncmp(argv[i], "--jsonl=", 8) == 0) jsonl_path = argv[i] + 8;
    else if (std::strncmp(argv[i], "--slo=", 6) == 0) slo_s = std::atof(argv[i] + 6);
  }
  const int burst = smoke ? 4 : 12;

  // 1. Partitioned model + edge cluster (one tile per Conv node).
  Rng rng(7);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{2, 2};
  opt.clipped_relu = true;
  opt.clip_lower = 0.0f;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm =
      core::apply_fdsp(nn::make_vgg_mini(rng, nn::MiniOptions{}), opt);

  obs::MetricsRegistry metrics;
  obs::TraceRecorder tracer;
  runtime::ClusterConfig cluster_cfg;
  cluster_cfg.num_nodes = 4;
  cluster_cfg.critical_path_interval = 2;
  cluster_cfg.telemetry.metrics = &metrics;
  cluster_cfg.telemetry.trace = &tracer;
  runtime::EdgeCluster cluster(pm, cluster_cfg);

  // Monolithic references for the self-check. FDSP + the threaded runtime
  // are bit-deterministic, so the distributed outputs must match to the
  // quantization tolerance regardless of serving depth.
  std::vector<Tensor> images, references;
  for (int i = 0; i < burst; ++i) {
    images.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
    references.push_back(pm.model.forward(images.back(), nn::Mode::kEval));
  }

  // 2. Streaming server: up to 2 images in flight, bounded submit queue.
  //    While image i runs the central suffix, i+1 gathers results and
  //    i+2 scatters tiles — three stages on three threads. The background
  //    exporter publishes the shared registry on its own thread.
  runtime::StreamingConfig scfg;
  scfg.max_in_flight = 2;
  scfg.queue_capacity = 8;  // submit() blocks past this (backpressure)
  scfg.telemetry.metrics = &metrics;
  scfg.telemetry.trace = &tracer;
  scfg.exporter.period_s = 0.25;
  scfg.exporter.prometheus_path = prom_path;
  scfg.exporter.jsonl_path = jsonl_path;
  if (slo_s > 0.0) {
    scfg.slo.target_latency_s = slo_s;
    scfg.slo.max_miss_rate = 0.05;
    scfg.slo.window = 64;
    scfg.slo.min_samples = 4;
    scfg.slo.sustain = 2;
  }
  runtime::StreamingServer server(cluster.central(), scfg);
  if (server.slo()) {
    server.slo()->on_violation([](obs::SloMonitor::Event e, double rate) {
      std::printf("[slo] %s (miss rate %.1f%%)\n",
                  e == obs::SloMonitor::Event::kViolation ? "VIOLATION"
                                                          : "recovered",
                  rate * 100.0);
    });
  }

  // 3. Fire the whole burst, then redeem tickets in submission order.
  std::vector<std::int64_t> tickets;
  for (const auto& image : images) tickets.push_back(server.submit(image));
  std::printf("submitted %d images (depth %d, queue cap %zu)\n", burst,
              scfg.max_in_flight, scfg.queue_capacity);

  float worst = 0.0f;
  for (int i = 0; i < burst; ++i) {
    runtime::InferStats stats;
    double latency_s = 0.0;
    const Tensor output = server.wait(tickets[static_cast<std::size_t>(i)],
                                      &stats, &latency_s);
    const float diff =
        Tensor::max_abs_diff(output, references[static_cast<std::size_t>(i)]);
    worst = std::max(worst, diff);
    std::printf(
        "image %2d: %.2f ms end-to-end (%.2f ms in-cluster), %lld/%lld "
        "tiles, |err| %.1e\n",
        i, latency_s * 1e3, stats.elapsed_s * 1e3,
        static_cast<long long>(stats.tiles_total - stats.tiles_missing),
        static_cast<long long>(stats.tiles_total), diff);
  }
  const std::int64_t ticks =
      server.exporter() ? server.exporter()->ticks() : 0;
  server.close();  // final exporter flush happens here

  // 4. Serving metrics the pipeline maintains (gauges read at close).
  std::printf("\nserving metrics:\n%s\n", metrics.to_json().c_str());
  if (!prom_path.empty())
    std::printf("prometheus exposition -> %s (%lld ticks)\n",
                prom_path.c_str(), static_cast<long long>(ticks));
  if (!jsonl_path.empty())
    std::printf("jsonl time series     -> %s\n", jsonl_path.c_str());
  std::printf("worst |streamed - monolithic| = %.2e\n", worst);
  return worst < 1e-4f ? 0 : 1;
}
