// 1-D FDSP: distributed text classification with a CharCNN-style model.
//
// The paper's CharCNN evaluation carries over to sequences: FDSP splits
// the character axis into independent segments (a 1 x c grid), each Conv
// node extracts local n-gram features from its segment with zero padding
// at the cut points, and the Central node aggregates. This example trains
// on synthetic Markov "languages", retrains for an 8-segment partition and
// classifies over a 4-node cluster.
#include <cstdio>

#include "data/charseq.hpp"
#include "nn/models_mini.hpp"
#include "runtime/cluster.hpp"
#include "train/progressive.hpp"

using namespace adcnn;

int main() {
  data::CharSeqConfig dcfg;
  dcfg.count = 512;
  dcfg.seed = 51;
  const data::Dataset train_set = data::make_charseq(dcfg);
  dcfg.count = 128;
  dcfg.seed = 52;
  const data::Dataset test_set = data::make_charseq(dcfg);
  std::printf("task: classify %d synthetic character 'languages', "
              "sequences of %lld chars over a %lld-symbol alphabet\n",
              dcfg.num_classes, static_cast<long long>(dcfg.length),
              static_cast<long long>(dcfg.alphabet));

  nn::MiniOptions mopt;
  mopt.width_mult = 0.5;
  const auto build = [&] {
    Rng rng(61);
    return nn::make_charcnn_mini(rng, mopt);
  };
  nn::Model original = build();
  train::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.lr = 0.02;
  train::train(original, train_set, test_set, tcfg);
  std::printf("original accuracy: %.1f%%\n",
              100.0 * train::evaluate(original, test_set).accuracy);

  train::ProgressiveConfig pcfg;
  pcfg.grid = core::TileGrid{1, 8};  // 8 character segments
  const auto bounds = train::suggest_clip_bounds(original, train_set, 0.7);
  pcfg.clip_lower = bounds.first;
  pcfg.clip_upper = bounds.second;
  pcfg.max_epochs_per_stage = 4;
  pcfg.retrain.lr = 0.01;
  auto result =
      train::progressive_retrain(build, original, train_set, test_set, pcfg);
  std::printf("retrained (1x8 FDSP + clip + 4-bit quant): %.1f%% "
              "(%d extra epochs)\n",
              100.0 * result.stages.back().accuracy, result.total_epochs());

  runtime::ClusterConfig ccfg;
  ccfg.num_nodes = 4;
  runtime::EdgeCluster cluster(result.final_model, ccfg);
  std::int64_t correct = 0;
  std::uint64_t wire_bytes = 0;
  for (std::int64_t i = 0; i < test_set.size(); ++i) {
    const Tensor x = test_set.images.crop(i, 1, 0, 1, 0, 64);
    const Tensor logits = cluster.infer(x);
    std::int64_t best = 0;
    for (std::int64_t k = 1; k < logits.shape()[1]; ++k)
      if (logits[k] > logits[best]) best = k;
    correct += (static_cast<int>(best) ==
                test_set.labels[static_cast<std::size_t>(i)]);
  }
  for (int k = 0; k < 4; ++k) wire_bytes += cluster.uplink(k).bytes_sent();
  std::printf("distributed over 4 nodes: %.1f%% accuracy, %.1f compressed "
              "bytes/sequence on the uplinks\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(test_set.size()),
              static_cast<double>(wire_bytes) /
                  static_cast<double>(test_set.size()));
  return 0;
}
