// Telemetry demo: run a degraded 4-node edge cluster with full
// instrumentation and export
//
//   adcnn.trace.json         — Chrome trace_event timeline (open in
//                              chrome://tracing or https://ui.perfetto.dev)
//   adcnn.timeline.csv       — the same spans as a flat CSV
//   adcnn.report.json        — per-inference InferStats reports (JSON lines)
//   adcnn.metrics.json       — final MetricsRegistry snapshot
//   adcnn.critical_path.json — per-stage critical-path decomposition of one
//                              healthy image's causal span tree
//
// Halfway through the stream one node is throttled and another killed, so
// the trace shows tiles draining away from the degraded lanes while
// gather_wait stretches to the deadline and zero_fill kicks in.
//
// Exits nonzero if the trace is missing expected span categories / node
// lanes or a report's stage timings drift >10% from its elapsed time, so
// this doubles as an end-to-end telemetry smoke test.
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/cluster.hpp"

using namespace adcnn;

namespace {
bool dump(const char* path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::printf("wrote %-20s (%zu bytes)\n", path, text.size());
  return true;
}
}  // namespace

int main() {
  if (!obs::kEnabled) {
    std::printf("built with -DADCNN_OBS=OFF: instrumentation compiled out, "
                "nothing to export\n");
    return 0;
  }

  Rng rng(17);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{8, 8};
  opt.clipped_relu = true;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  core::PartitionedModel pm =
      core::apply_fdsp(nn::make_vgg_mini(rng, nn::MiniOptions{}), opt);

  obs::MetricsRegistry metrics;
  obs::TraceRecorder trace;
  runtime::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.deadline_s = 0.08;  // tight T_L so degradation shows as zero_fill
  cfg.telemetry = {&metrics, &trace};
  runtime::EdgeCluster cluster(pm, cfg);

  const Tensor image = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const int total_images = 12;
  std::string reports;
  int bad_sums = 0;
  for (int i = 0; i < total_images; ++i) {
    if (i == total_images / 2) {
      std::printf("--- degrading: node 2 throttled to 0.3%% CPU, "
                  "node 3 killed ---\n");
      cluster.node(2).set_cpu_limit(0.003);
      cluster.node(3).kill();
    }
    runtime::InferStats stats;
    cluster.infer(image, &stats);
    reports += stats.to_json();
    reports += '\n';
    const double drift =
        stats.elapsed_s > 0.0
            ? (stats.stages.sum() - stats.elapsed_s) / stats.elapsed_s
            : 1.0;
    if (drift > 0.10 || drift < -0.10) ++bad_sums;
    std::printf("image %2d: %5.1f ms, %2lld/%2lld tiles, slack %+6.1f ms, "
                "stage-sum drift %+5.1f%%\n",
                i, stats.elapsed_s * 1e3,
                static_cast<long long>(stats.tiles_total -
                                       stats.tiles_missing),
                static_cast<long long>(stats.tiles_total),
                stats.deadline_slack_s * 1e3, drift * 100.0);
  }

  // Causal tree + critical path over one healthy (pre-degradation) image:
  // every span carries an id/parent link, so the scatter → downlink → tile
  // chain crossing into the worker threads resolves back to the image's
  // "infer" root, and critical_path() decomposes the root's wall time into
  // the stage the image was actually waiting on at each instant.
  const std::vector<obs::Span> spans = trace.spans();
  const std::int64_t probe_image = 2;
  const auto report = obs::critical_path(spans, probe_image);
  std::printf("\ncritical path of image %lld (%.2f ms, %.1f%% attributed, "
              "dominant: %s):\n",
              static_cast<long long>(report.image_id), report.total_s * 1e3,
              report.coverage() * 100.0, report.dominant_stage.c_str());
  for (const auto& st : report.stages) {
    std::printf("  %-14s %7.3f ms  (%4.1f%%)\n", st.stage.c_str(),
                st.seconds * 1e3, st.fraction * 100.0);
  }

  if (!dump("adcnn.trace.json", trace.to_chrome_json()) ||
      !dump("adcnn.timeline.csv", trace.to_csv()) ||
      !dump("adcnn.report.json", reports) ||
      !dump("adcnn.metrics.json", metrics.to_json()) ||
      !dump("adcnn.critical_path.json", report.to_json()))
    return 1;

  // Self-check the exported trace: span taxonomy and node-lane coverage.
  std::set<std::string> cats;
  std::set<int> worker_tids;
  std::set<std::int64_t> ids;
  std::size_t linked = 0, with_id = 0;
  for (const auto& span : spans) {
    cats.insert(span.cat);
    if (span.tid > 0) worker_tids.insert(span.tid);
    if (span.id != 0) {
      ++with_id;
      ids.insert(span.id);
    }
    if (span.parent != 0) ++linked;
  }
  std::printf("\n%zu spans, %zu categories:", trace.size(), cats.size());
  for (const auto& cat : cats) std::printf(" %s", cat.c_str());
  std::printf("\nworker lanes: %zu; images with >10%% stage-sum drift: %d\n",
              worker_tids.size(), bad_sums);
  std::printf("causal links: %zu/%zu spans carry unique ids, %zu have a "
              "parent\n", ids.size(), spans.size(), linked);

  const auto snap = metrics.snapshot();
  const double ratio =
      static_cast<double>(snap.counters.at("codec.raw_bytes")) /
      static_cast<double>(snap.counters.at("codec.encoded_bytes"));
  std::printf("measured compression ratio: %.1fx over %lld tiles, "
              "%lld tiles zero-filled cluster-wide\n",
              ratio, static_cast<long long>(snap.counters.at("codec.tiles")),
              static_cast<long long>(
                  snap.counters.at("central.tiles_missing")));

  const bool ok = cats.size() >= 6 && worker_tids.size() >= 2 &&
                  bad_sums == 0 && ratio > 1.0 &&
                  ids.size() == with_id && with_id == spans.size() &&
                  linked > spans.size() / 2 && report.coverage() >= 0.95 &&
                  report.stage_seconds("conv_compute") > 0.0;
  std::printf("%s\n", ok ? "telemetry export OK"
                         : "telemetry export FAILED self-check");
  return ok ? 0 : 1;
}
