#include "baselines/aofl.hpp"

#include <limits>
#include <stdexcept>

#include "core/strategies.hpp"

namespace adcnn::baselines {

namespace {

/// One past the last block with spatial extent (fusion cannot cover the
/// FC/global-pool head).
int last_spatial_block(const arch::ArchSpec& spec) {
  int last = 0;
  for (int b = 0; b < static_cast<int>(spec.blocks.size()); ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if ((l.op == arch::Op::kConv || l.op == arch::Op::kMaxPool) && !l.aux &&
          l.wout > 1)
        last = b + 1;
    }
  }
  return last;
}

/// Bytes entering round [begin, ...): the raw image for round 0 (images
/// stream at input_bytes_per_pixel), fp32 ofmaps afterwards.
double round_input_bytes(const arch::ArchSpec& spec, int begin,
                         double input_bytes_per_pixel) {
  if (begin == 0) {
    return static_cast<double>(spec.cin * spec.hin * spec.win) *
           input_bytes_per_pixel;
  }
  return static_cast<double>(
      spec.blocks[static_cast<std::size_t>(begin - 1)].out_bytes());
}

/// Collect block b's ofmap on one device: count-1 peers each ship their
/// share.
double gather_seconds(const arch::ArchSpec& spec, const core::TileGrid& grid,
                      const sim::LinkSpec& link, int block_end) {
  if (block_end == 0) return 0.0;
  const std::int64_t bytes =
      spec.blocks[static_cast<std::size_t>(block_end - 1)].out_bytes();
  return link.transfer_s(bytes / grid.count()) *
         static_cast<double>(grid.count() - 1);
}

}  // namespace

AoflRound aofl_round(const arch::ArchSpec& spec, const core::TileGrid& grid,
                     const sim::DeviceSpec& dev, const sim::LinkSpec& link,
                     int begin, int end, double input_bytes_per_pixel) {
  if (begin < 0 || end <= begin ||
      end > static_cast<int>(spec.blocks.size())) {
    throw std::invalid_argument("aofl_round: bad block range");
  }
  AoflRound round;
  round.begin = begin;
  round.end = end;
  round.compute_overhead =
      core::aofl_compute_overhead(spec, grid, begin, end);
  const double expansion =
      core::aofl_input_expansion(spec, grid, begin, end);
  const double in_bytes =
      round_input_bytes(spec, begin, input_bytes_per_pixel);

  if (begin == 0) {
    // First round: the source device scatters every halo-extended tile.
    round.scatter_s =
        link.transfer_s(static_cast<std::int64_t>(
            in_bytes * expansion / static_cast<double>(grid.count()))) *
        static_cast<double>(grid.count());
  } else {
    // Later rounds reuse the resident tiles and only exchange the halo
    // regions with neighbours (AOFL's "data halo reuse" scheduling).
    // Exchanges are peer-to-peer between disjoint device pairs, so they
    // proceed in parallel: each device sends and receives its own halo.
    const double halo_bytes = in_bytes * (expansion - 1.0);
    round.scatter_s = 2.0 * link.transfer_s(static_cast<std::int64_t>(
                                halo_bytes / static_cast<double>(
                                                 grid.count())));
  }

  round.compute_s =
      sim::blocks_seconds(spec, begin, end, dev,
                          1.0 / static_cast<double>(grid.count())) *
      round.compute_overhead;
  // No per-round gather: the ofmap stays tiled on the devices. The final
  // collection is accounted by the plan.
  round.gather_s = 0.0;
  return round;
}

AoflPlan aofl_plan(const arch::ArchSpec& spec, const core::TileGrid& grid,
                   const sim::DeviceSpec& dev, const sim::LinkSpec& link,
                   double input_bytes_per_pixel) {
  const int spatial = last_spatial_block(spec);
  const int nblocks = static_cast<int>(spec.blocks.size());
  // DP over boundaries: best[b] = min cost to finish from block b, where
  // the options at b are (a) gather block b-1's ofmap and run the rest on
  // one device, or (b) run one more fused round [b, e).
  std::vector<double> best(static_cast<std::size_t>(spatial) + 1);
  std::vector<int> next(static_cast<std::size_t>(spatial) + 1, -1);
  for (int b = spatial; b >= 0; --b) {
    double tail = gather_seconds(spec, grid, link, b) +
                  sim::blocks_seconds(spec, b, nblocks, dev);
    best[static_cast<std::size_t>(b)] = tail;  // local tail (next = -1)
    for (int e = b + 1; e <= spatial; ++e) {
      const AoflRound round =
          aofl_round(spec, grid, dev, link, b, e, input_bytes_per_pixel);
      const double cost =
          round.total_s() + best[static_cast<std::size_t>(e)];
      if (cost < best[static_cast<std::size_t>(b)]) {
        best[static_cast<std::size_t>(b)] = cost;
        next[static_cast<std::size_t>(b)] = e;
      }
    }
    if (b == 0 && next[0] == -1) {
      // Degenerate: pure single-device execution. Keep it as the plan's
      // head for faithful reporting.
    }
  }

  AoflPlan plan;
  plan.grid = grid;
  int b = 0;
  while (b < spatial && next[static_cast<std::size_t>(b)] != -1) {
    const int e = next[static_cast<std::size_t>(b)];
    plan.rounds.push_back(
        aofl_round(spec, grid, dev, link, b, e, input_bytes_per_pixel));
    b = e;
  }
  plan.head_s = gather_seconds(spec, grid, link, b) +
                sim::blocks_seconds(spec, b, nblocks, dev);
  plan.latency_s = best[0];
  return plan;
}

AoflPlan aofl_single_round(const arch::ArchSpec& spec,
                           const core::TileGrid& grid,
                           const sim::DeviceSpec& dev,
                           const sim::LinkSpec& link, int fused,
                           double input_bytes_per_pixel) {
  const int spatial = last_spatial_block(spec);
  if (fused < 1 || fused > spatial) {
    throw std::invalid_argument("aofl_single_round: bad fuse depth");
  }
  AoflPlan plan;
  plan.grid = grid;
  plan.rounds.push_back(
      aofl_round(spec, grid, dev, link, 0, fused, input_bytes_per_pixel));
  plan.head_s = gather_seconds(spec, grid, link, fused) +
                sim::blocks_seconds(spec, fused,
                                    static_cast<int>(spec.blocks.size()), dev);
  plan.latency_s = plan.rounds[0].total_s() + plan.head_s;
  return plan;
}

}  // namespace adcnn::baselines
