// AOFL — Adaptive Optimal Fused-Layer partitioning (Zhou et al., SEC'19).
//
// The input is partitioned spatially across edge devices and executed in
// fused-layer ROUNDS: within a round, each device computes a halo-EXTENDED
// tile through the round's layer blocks (so no mid-round communication),
// then the round's ofmap is gathered, re-partitioned and scattered for the
// next round. The halo extension makes each device recompute its
// neighbours' border work — an overhead that grows with fuse depth, so the
// planner searches the round structure: a dynamic program over block
// boundaries finds the optimal fusion points (the "exhaustive search for
// the optimal fuse layer block selection" of the ADCNN paper's §7.4).
// The non-spatial head (FC / global pooling) runs on one device.
//
// Unlike ADCNN, AOFL exchanges raw fp32 ofmaps (no clipped-ReLU/quant/RLE
// compression) and re-synchronizes at every round boundary.
#pragma once

#include <vector>

#include "core/geometry.hpp"
#include "nn/archspec.hpp"
#include "sim/cost_model.hpp"

namespace adcnn::baselines {

struct AoflRound {
  int begin = 0;  // block range [begin, end)
  int end = 0;
  double scatter_s = 0.0;   // halo-extended input tiles to devices
  double compute_s = 0.0;   // per-device fused compute (max)
  double gather_s = 0.0;    // round ofmap collection (raw fp32)
  double compute_overhead = 1.0;

  double total_s() const { return scatter_s + compute_s + gather_s; }
};

struct AoflPlan {
  core::TileGrid grid;
  std::vector<AoflRound> rounds;
  double head_s = 0.0;    // trailing non-spatial blocks on one device
  double latency_s = 0.0;

  int fused_blocks() const {
    return rounds.empty() ? 0 : rounds.back().end;
  }
};

/// Cost of one round over blocks [begin, end).
AoflRound aofl_round(const arch::ArchSpec& spec, const core::TileGrid& grid,
                     const sim::DeviceSpec& dev, const sim::LinkSpec& link,
                     int begin, int end, double input_bytes_per_pixel = 1.0);

/// Optimal multi-round plan (DP over block boundaries).
AoflPlan aofl_plan(const arch::ArchSpec& spec, const core::TileGrid& grid,
                   const sim::DeviceSpec& dev, const sim::LinkSpec& link,
                   double input_bytes_per_pixel = 1.0);

/// Single-round variant: fuse exactly the first `fused` blocks, then run
/// everything else on one device (kept for ablations/tests).
AoflPlan aofl_single_round(const arch::ArchSpec& spec,
                           const core::TileGrid& grid,
                           const sim::DeviceSpec& dev,
                           const sim::LinkSpec& link, int fused,
                           double input_bytes_per_pixel = 1.0);

}  // namespace adcnn::baselines
