#include "baselines/neurosurgeon.hpp"

#include <limits>

namespace adcnn::baselines {

NeurosurgeonPlan neurosurgeon_eval(const arch::ArchSpec& spec,
                                   const sim::DeviceSpec& edge,
                                   const sim::CloudConfig& cloud, int cut) {
  const auto layers = spec.all_layers();
  NeurosurgeonPlan plan;
  plan.cut = cut;
  for (int i = 0; i < cut; ++i)
    plan.edge_s += sim::layer_seconds(layers[static_cast<std::size_t>(i)],
                                      edge);
  for (int i = cut; i < static_cast<int>(layers.size()); ++i)
    plan.cloud_s += sim::layer_seconds(layers[static_cast<std::size_t>(i)],
                                       cloud.cloud);
  if (cut == static_cast<int>(layers.size())) {
    plan.tx_bytes = cloud.result_bytes;  // everything stays on the edge
  } else if (cut == 0) {
    plan.tx_bytes = static_cast<std::int64_t>(
        static_cast<double>(spec.cin * spec.hin * spec.win) *
        cloud.input_bytes_per_pixel);
  } else {
    plan.tx_bytes = layers[static_cast<std::size_t>(cut - 1)].out_bytes();
  }
  // The WAN overhead factor scales the serialization (bandwidth) term
  // only; propagation latency is paid once per direction.
  plan.tx_s = cloud.wan.latency_s +
              static_cast<double>(plan.tx_bytes) * 8.0 /
                  cloud.wan.bandwidth_bps * cloud.wan_overhead;
  if (cut < static_cast<int>(layers.size()))
    plan.tx_s += cloud.wan.transfer_s(cloud.result_bytes);
  plan.latency_s = plan.edge_s + plan.tx_s + plan.cloud_s;
  return plan;
}

NeurosurgeonPlan neurosurgeon_plan(const arch::ArchSpec& spec,
                                   const sim::DeviceSpec& edge,
                                   const sim::CloudConfig& cloud) {
  const int L = static_cast<int>(spec.all_layers().size());
  NeurosurgeonPlan best;
  best.latency_s = std::numeric_limits<double>::infinity();
  for (int cut = 0; cut <= L; ++cut) {
    const NeurosurgeonPlan plan = neurosurgeon_eval(spec, edge, cloud, cut);
    if (plan.latency_s < best.latency_s) best = plan;
  }
  return best;
}

}  // namespace adcnn::baselines
