// Neurosurgeon (Kang et al., ASPLOS'17): layerwise edge/cloud partitioning.
//
// The network is cut at one layer boundary; the edge device computes the
// prefix, ships that layer's ofmap over the WAN, and the cloud computes the
// suffix. The planner tries every boundary and keeps the fastest — exactly
// the paper's §7.4 methodology ("we try every possible layerwise partition
// position ... and select the partition position with the minimum
// latency").
#pragma once

#include "nn/archspec.hpp"
#include "sim/baseline_sim.hpp"

namespace adcnn::baselines {

struct NeurosurgeonPlan {
  int cut = 0;             // layers [0, cut) on the edge
  double latency_s = 0.0;
  double edge_s = 0.0;
  double tx_s = 0.0;
  double cloud_s = 0.0;
  std::int64_t tx_bytes = 0;
};

/// Best cut for the given edge device and cloud configuration.
NeurosurgeonPlan neurosurgeon_plan(const arch::ArchSpec& spec,
                                   const sim::DeviceSpec& edge,
                                   const sim::CloudConfig& cloud);

/// Latency of a specific cut (exposed for tests / sweeps).
NeurosurgeonPlan neurosurgeon_eval(const arch::ArchSpec& spec,
                                   const sim::DeviceSpec& edge,
                                   const sim::CloudConfig& cloud, int cut);

}  // namespace adcnn::baselines
