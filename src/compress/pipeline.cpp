#include "compress/pipeline.hpp"

#include <cstring>
#include <stdexcept>

namespace adcnn::compress {

TileCodec::TileCodec(float range, int bits) : quant_(range, bits) {}

void TileCodec::attach_telemetry(obs::MetricsRegistry* metrics) {
  if (!metrics) {
    obs_ = CodecCounters{};
    return;
  }
  obs_.raw_bytes = &metrics->counter("codec.raw_bytes");
  obs_.quant_packed_bytes = &metrics->counter("codec.quant_packed_bytes");
  obs_.encoded_bytes = &metrics->counter("codec.encoded_bytes");
  obs_.nonzeros = &metrics->counter("codec.nonzeros");
  obs_.elements = &metrics->counter("codec.elements");
  obs_.tiles = &metrics->counter("codec.tiles");
}

std::vector<std::uint8_t> TileCodec::encode(const Tensor& t,
                                            StageSizes* sizes) const {
  const auto levels = quant_.quantize_all(t.span());
  std::vector<std::uint8_t> payload = (quant_.bits() == 4)
                                          ? rle4_encode(levels)
                                          : rle_varint_encode(levels);
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 10);
  put_varint(wire, static_cast<std::uint64_t>(levels.size()));
  put_varint(wire, static_cast<std::uint64_t>(payload.size()));
  wire.insert(wire.end(), payload.begin(), payload.end());
  if (sizes) {
    sizes->raw_bytes = t.numel() * static_cast<std::int64_t>(sizeof(float));
    sizes->nonzeros = 0;
    for (const auto level : levels) sizes->nonzeros += (level != 0);
    sizes->quant_packed_bytes =
        (static_cast<std::int64_t>(levels.size()) * quant_.bits() + 7) / 8;
    sizes->encoded_bytes = static_cast<std::int64_t>(wire.size());
  }
  if constexpr (obs::kEnabled) {
    if (obs_.tiles) {
      std::int64_t nz = 0;
      for (const auto level : levels) nz += (level != 0);
      obs_.raw_bytes->add(t.numel() *
                          static_cast<std::int64_t>(sizeof(float)));
      obs_.quant_packed_bytes->add(
          (static_cast<std::int64_t>(levels.size()) * quant_.bits() + 7) / 8);
      obs_.encoded_bytes->add(static_cast<std::int64_t>(wire.size()));
      obs_.nonzeros->add(nz);
      obs_.elements->add(static_cast<std::int64_t>(levels.size()));
      obs_.tiles->add(1);
    }
  }
  return wire;
}

Tensor TileCodec::decode(std::span<const std::uint8_t> wire,
                         const Shape& shape) const {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(wire, pos);
  const std::uint64_t payload_bytes = get_varint(wire, pos);
  if (static_cast<std::int64_t>(count) != shape.numel()) {
    throw std::invalid_argument("TileCodec::decode: count/shape mismatch");
  }
  // Compare against the remaining length — `pos + payload_bytes` could wrap
  // around on a hostile length prefix and sail past the bound.
  if (payload_bytes > wire.size() - pos) {
    throw std::invalid_argument("TileCodec::decode: truncated payload");
  }
  const auto payload = wire.subspan(pos, payload_bytes);
  const auto levels = (quant_.bits() == 4)
                          ? rle4_decode(payload, count)
                          : rle_varint_decode(payload, count);
  Tensor out(shape);
  quant_.dequantize_all(levels, out.span());
  return out;
}

std::vector<std::uint8_t> encode_raw(const Tensor& t) {
  std::vector<std::uint8_t> wire(
      static_cast<std::size_t>(t.numel()) * sizeof(float));
  std::memcpy(wire.data(), t.data(), wire.size());
  return wire;
}

Tensor decode_raw(std::span<const std::uint8_t> wire, const Shape& shape) {
  if (wire.size() != static_cast<std::size_t>(shape.numel()) * sizeof(float)) {
    throw std::invalid_argument("decode_raw: size mismatch");
  }
  Tensor out(shape);
  std::memcpy(out.data(), wire.data(), wire.size());
  return out;
}

}  // namespace adcnn::compress
