// End-to-end tile codec: clipped ReLU range -> k-bit quantization -> RLE.
//
// This is the wire format Conv nodes use to ship intermediate results to
// the Central node (Figure 6 of the paper). The quantization grid is
// identical to nn::FakeQuant, so a model retrained with the fake-quant
// layer sees exactly the values the Central node decodes.
//
// Wire layout: varint(elem_count) | varint(payload_bytes) | payload.
// Shape metadata travels in the runtime's message header, not here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/quantizer.hpp"
#include "compress/rle.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "tensor/tensor.hpp"

namespace adcnn::compress {

/// Byte sizes observed at each stage of the pipeline, for Table 2 and the
/// Figure 12 pruning study.
struct StageSizes {
  std::int64_t raw_bytes = 0;        // fp32 tensor
  std::int64_t nonzeros = 0;         // after clip (== after quantize)
  std::int64_t quant_packed_bytes = 0;  // k-bit packed, no RLE
  std::int64_t encoded_bytes = 0;    // final wire bytes (incl. header)
};

class TileCodec {
 public:
  /// `range` is the clipped-ReLU output span (b - a); `bits` the precision.
  TileCodec(float range, int bits);

  /// Encode a tensor whose values already lie in [0, range] (the separable
  /// prefix ends with ClippedReLU). Values are quantized here, so encoding
  /// is idempotent with a FakeQuant layer upstream.
  std::vector<std::uint8_t> encode(const Tensor& t,
                                   StageSizes* sizes = nullptr) const;

  /// Decode into a tensor of the given shape.
  Tensor decode(std::span<const std::uint8_t> wire, const Shape& shape) const;

  const Quantizer& quantizer() const { return quant_; }

  /// Telemetry: account every encode into `codec.*` counters (raw bytes
  /// in, k-bit packed bytes, wire bytes out, nonzero levels, elements,
  /// tiles), so the measured compression ratio is a metric rather than a
  /// bench-only number. Null detaches. Not thread-safe against concurrent
  /// encode(): attach before sharing the codec across workers.
  void attach_telemetry(obs::MetricsRegistry* metrics);

 private:
  Quantizer quant_;
  struct CodecCounters {
    obs::Counter* raw_bytes = nullptr;
    obs::Counter* quant_packed_bytes = nullptr;
    obs::Counter* encoded_bytes = nullptr;
    obs::Counter* nonzeros = nullptr;
    obs::Counter* elements = nullptr;
    obs::Counter* tiles = nullptr;
  } obs_;
};

/// Uncompressed fp32 encoding, the "without pruning" baseline of Fig. 12.
std::vector<std::uint8_t> encode_raw(const Tensor& t);
Tensor decode_raw(std::span<const std::uint8_t> wire, const Shape& shape);

}  // namespace adcnn::compress
