#include "compress/quantizer.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace adcnn::compress {

Quantizer::Quantizer(float range, int bits) : range_(range), bits_(bits) {
  // quantize() returns std::uint8_t, so more than 8 bits would silently
  // wrap levels >= 256; a non-finite or non-positive range would poison
  // step_ (NaN passes a `range <= 0` check). Each cause gets its own
  // message — "bad range/bits" made deployment typos needlessly opaque.
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("Quantizer: bits must be in [1, 8], got " +
                                std::to_string(bits));
  }
  if (!std::isfinite(range) || range <= 0.0f) {
    throw std::invalid_argument(
        "Quantizer: range must be finite and > 0, got " +
        std::to_string(range));
  }
  step_ = range_ / static_cast<float>((1 << bits_) - 1);
}

std::uint8_t Quantizer::quantize(float v) const {
  // !(v > 0) instead of v <= 0 so a NaN (e.g. from a corrupted upstream
  // payload) clamps to level 0 rather than reaching lround unspecified.
  if (!(v > 0.0f)) return 0;
  if (v >= range_) return static_cast<std::uint8_t>((1 << bits_) - 1);
  return static_cast<std::uint8_t>(std::lround(v / step_));
}

std::vector<std::uint8_t> Quantizer::quantize_all(
    std::span<const float> in) const {
  std::vector<std::uint8_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = quantize(in[i]);
  return out;
}

void Quantizer::dequantize_all(std::span<const std::uint8_t> levels,
                               std::span<float> out) const {
  if (levels.size() != out.size()) {
    throw std::invalid_argument("Quantizer::dequantize_all: size mismatch");
  }
  for (std::size_t i = 0; i < levels.size(); ++i)
    out[i] = dequantize(levels[i]);
}

std::vector<std::uint8_t> pack_nibbles(std::span<const std::uint8_t> levels) {
  std::vector<std::uint8_t> out((levels.size() + 1) / 2, 0);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const std::uint8_t v = static_cast<std::uint8_t>(levels[i] & 0x0F);
    if (i % 2 == 0) {
      out[i / 2] = v;
    } else {
      out[i / 2] = static_cast<std::uint8_t>(out[i / 2] | (v << 4));
    }
  }
  return out;
}

std::vector<std::uint8_t> unpack_nibbles(std::span<const std::uint8_t> packed,
                                         std::size_t count) {
  // count/2 + count%2 == ceil(count/2) without the (count + 1) overflow:
  // the old check wrapped to 0 at count == SIZE_MAX and accepted any
  // buffer, then read (and the caller allocated) far past the end.
  if (count / 2 + count % 2 > packed.size()) {
    throw std::invalid_argument(
        "unpack_nibbles: " + std::to_string(packed.size()) +
        "-byte buffer holds fewer than " + std::to_string(count) +
        " nibbles");
  }
  std::vector<std::uint8_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t byte = packed[i / 2];
    out[i] = (i % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
  }
  return out;
}

}  // namespace adcnn::compress
