// k-bit uniform quantizer over [0, range] (§4.2 of the paper).
//
// Values are mapped to integer levels 0 .. 2^bits-1 with level 0 reserved
// for exact zero on dequantization — the clipped ReLU guarantees inputs are
// non-negative, and zeros are what the RLE stage elides. The quantization
// grid matches nn::FakeQuant exactly, so what the retraining graph saw is
// bit-for-bit what travels over the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adcnn::compress {

class Quantizer {
 public:
  Quantizer(float range, int bits);

  int bits() const { return bits_; }
  float range() const { return range_; }
  float step() const { return step_; }
  int levels() const { return (1 << bits_); }

  /// Nearest-level quantization with clamping to [0, range].
  std::uint8_t quantize(float v) const;
  float dequantize(std::uint8_t level) const {
    return static_cast<float>(level) * step_;
  }

  std::vector<std::uint8_t> quantize_all(std::span<const float> in) const;
  void dequantize_all(std::span<const std::uint8_t> levels,
                      std::span<float> out) const;

 private:
  float range_;
  int bits_;
  float step_;
};

/// Pack 4-bit levels two-per-byte (low nibble first). Odd counts leave the
/// final high nibble zero.
std::vector<std::uint8_t> pack_nibbles(std::span<const std::uint8_t> levels);
std::vector<std::uint8_t> unpack_nibbles(std::span<const std::uint8_t> packed,
                                         std::size_t count);

}  // namespace adcnn::compress
