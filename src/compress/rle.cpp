#include "compress/rle.hpp"

#include <stdexcept>

namespace adcnn::compress {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos >= in.size() || shift > 63) {
      throw std::invalid_argument("get_varint: truncated/overlong varint");
    }
    const std::uint8_t byte = in[pos++];
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return v;
    shift += 7;
  }
}

std::vector<std::uint8_t> rle4_encode(std::span<const std::uint8_t> levels) {
  std::vector<std::uint8_t> out;
  std::size_t run = 0;
  for (const std::uint8_t level : levels) {
    if (level == 0) {
      ++run;
      continue;
    }
    if (level > 0x0F) {
      throw std::invalid_argument("rle4_encode: level exceeds 4 bits");
    }
    while (run > 14) {
      const std::size_t chunk = run > 16 ? 16 : run;
      out.push_back(static_cast<std::uint8_t>((chunk - 1) << 4));  // lo == 0
      run -= chunk;
    }
    out.push_back(static_cast<std::uint8_t>((run << 4) | level));
    run = 0;
  }
  // Trailing zeros are implicit.
  return out;
}

std::vector<std::uint8_t> rle4_decode(std::span<const std::uint8_t> payload,
                                      std::size_t count) {
  std::vector<std::uint8_t> out;
  out.reserve(count);
  for (const std::uint8_t token : payload) {
    const std::uint8_t lo = token & 0x0F;
    const std::uint8_t hi = token >> 4;
    if (lo == 0) {
      out.insert(out.end(), static_cast<std::size_t>(hi) + 1, 0);
    } else {
      out.insert(out.end(), hi, 0);
      out.push_back(lo);
    }
    if (out.size() > count) {
      throw std::invalid_argument("rle4_decode: payload overruns count");
    }
  }
  out.resize(count, 0);  // implicit trailing zeros
  return out;
}

std::vector<std::uint8_t> rle_varint_encode(
    std::span<const std::uint8_t> levels) {
  std::vector<std::uint8_t> out;
  std::uint64_t run = 0;
  for (const std::uint8_t level : levels) {
    if (level == 0) {
      ++run;
      continue;
    }
    put_varint(out, run);
    out.push_back(level);
    run = 0;
  }
  return out;
}

std::vector<std::uint8_t> rle_varint_decode(
    std::span<const std::uint8_t> payload, std::size_t count) {
  std::vector<std::uint8_t> out;
  out.reserve(count);
  std::size_t pos = 0;
  while (pos < payload.size()) {
    const std::uint64_t run = get_varint(payload, pos);
    if (pos >= payload.size()) {
      throw std::invalid_argument("rle_varint_decode: missing value byte");
    }
    // Bound the run BEFORE materializing it: an adversarial varint can
    // encode a run of ~2^64 zeros, which must not become an allocation.
    // (out.size() <= count holds here, so the subtraction cannot wrap.)
    if (run > count - out.size()) {
      throw std::invalid_argument("rle_varint_decode: payload overruns count");
    }
    out.insert(out.end(), static_cast<std::size_t>(run), 0);
    out.push_back(payload[pos++]);
    if (out.size() > count) {
      throw std::invalid_argument("rle_varint_decode: payload overruns count");
    }
  }
  out.resize(count, 0);
  return out;
}

}  // namespace adcnn::compress
