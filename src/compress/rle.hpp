// Zero-run run-length encoding (§4.3 of the paper).
//
// Two codecs over a stream of quantization levels (zeros dominate after the
// clipped ReLU):
//
// * rle4 — for 4-bit levels (the paper's setting). One byte per token:
//     lo nibble != 0:  emit `hi` zeros, then the value `lo` (1..15)
//     lo nibble == 0:  emit `hi + 1` zeros (a zero-run extension, 1..16)
//   Trailing zeros need no tokens: the decoder zero-fills up to the caller-
//   provided element count.
//
// * rle_varint — for any level width up to 8 bits: each nonzero value is
//   encoded as varint(zero_run_before) followed by the raw level byte.
//
// Both are exact (lossless on the level stream) and decode requires the
// original element count, which the tile header carries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adcnn::compress {

std::vector<std::uint8_t> rle4_encode(std::span<const std::uint8_t> levels);
std::vector<std::uint8_t> rle4_decode(std::span<const std::uint8_t> payload,
                                      std::size_t count);

std::vector<std::uint8_t> rle_varint_encode(
    std::span<const std::uint8_t> levels);
std::vector<std::uint8_t> rle_varint_decode(
    std::span<const std::uint8_t> payload, std::size_t count);

/// LEB128-style varint helpers (used by the tile header as well).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t& pos);

}  // namespace adcnn::compress
