#include "core/allocate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace adcnn::core {

namespace {

void validate(const AllocRequest& req) {
  if (req.speeds.empty() || req.tiles < 0) {
    throw std::invalid_argument("allocate_tiles: empty request");
  }
  if (!req.capacity_tiles.empty() &&
      req.capacity_tiles.size() != req.speeds.size()) {
    throw std::invalid_argument("allocate_tiles: capacity size mismatch");
  }
}

std::int64_t capacity(const AllocRequest& req, std::size_t k) {
  return req.capacity_tiles.empty()
             ? std::numeric_limits<std::int64_t>::max()
             : req.capacity_tiles[k];
}

}  // namespace

double makespan(const std::vector<std::int64_t>& x,
                const std::vector<double>& speeds) {
  double worst = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    if (x[k] == 0) continue;
    if (speeds[k] <= 0.0) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, static_cast<double>(x[k]) / speeds[k]);
  }
  return worst;
}

std::vector<std::int64_t> allocate_tiles(const AllocRequest& req, Rng* rng) {
  validate(req);
  const std::size_t K = req.speeds.size();
  std::vector<std::int64_t> x(K, 0);
  std::vector<std::size_t> best;
  std::vector<double> vals(K);
  for (std::int64_t t = 0; t < req.tiles; ++t) {
    const double current = makespan(x, req.speeds);
    // Pass 1: the true minimum. Folding the epsilon into this pass let the
    // tie set keep candidates strictly worse than the running best (an
    // improvement inside the epsilon never updated best_val, so later
    // entries were admitted against a stale bound).
    double best_val = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < K; ++k) {
      vals[k] = std::numeric_limits<double>::infinity();
      if (req.speeds[k] <= 0.0) continue;         // dead node (s_k == 0)
      if (x[k] + 1 > capacity(req, k)) continue;  // storage bound
      vals[k] =
          std::max(current, static_cast<double>(x[k] + 1) / req.speeds[k]);
      best_val = std::min(best_val, vals[k]);
    }
    // Pass 2: tie membership, epsilon measured from the true minimum only.
    best.clear();
    if (std::isfinite(best_val)) {
      for (std::size_t k = 0; k < K; ++k) {
        if (vals[k] <= best_val + 1e-12) best.push_back(k);
      }
    }
    if (best.empty()) {
      throw std::runtime_error(
          "allocate_tiles: no node with positive speed and spare capacity");
    }
    const std::size_t pick =
        (rng && best.size() > 1)
            ? best[static_cast<std::size_t>(rng->uniform_int(best.size()))]
            : best.front();
    ++x[pick];
  }
  return x;
}

namespace {

void search(const AllocRequest& req, std::size_t k, std::int64_t remaining,
            std::vector<std::int64_t>& x, double& best_val,
            std::vector<std::int64_t>& best_x) {
  const std::size_t K = req.speeds.size();
  if (k + 1 == K) {
    if (remaining > capacity(req, k)) return;
    if (remaining > 0 && req.speeds[k] <= 0.0) return;
    x[k] = remaining;
    const double val = makespan(x, req.speeds);
    if (val < best_val) {
      best_val = val;
      best_x = x;
    }
    return;
  }
  const std::int64_t max_here =
      std::min<std::int64_t>(remaining, capacity(req, k));
  for (std::int64_t give = 0; give <= max_here; ++give) {
    if (give > 0 && req.speeds[k] <= 0.0) break;
    x[k] = give;
    search(req, k + 1, remaining - give, x, best_val, best_x);
  }
  x[k] = 0;
}

}  // namespace

std::vector<std::int64_t> allocate_tiles_bruteforce(const AllocRequest& req) {
  validate(req);
  std::vector<std::int64_t> x(req.speeds.size(), 0), best_x;
  double best_val = std::numeric_limits<double>::infinity();
  search(req, 0, req.tiles, x, best_val, best_x);
  if (best_x.empty()) {
    throw std::runtime_error("allocate_tiles_bruteforce: infeasible");
  }
  return best_x;
}

}  // namespace adcnn::core
