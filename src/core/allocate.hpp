// Algorithm 3: greedy input-tile allocation.
//
// Minimizes max_k x_k / s_k subject to sum x_k = D and the per-node storage
// bound M * x_k <= H_k — a uniform-machines makespan problem. The greedy
// places one tile at a time on the node whose resulting max ratio is
// smallest (ties broken uniformly at random when an Rng is supplied, first
// index otherwise). A brute-force reference solver bounds the greedy's gap
// in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"

namespace adcnn::core {

struct AllocRequest {
  std::vector<double> speeds;                 // s_k from Algorithm 2
  std::vector<std::int64_t> capacity_tiles;   // floor(H_k / M); empty = inf
  std::int64_t tiles = 0;                     // D
};

/// Tiles assigned per node (x_k). Throws if no node has positive speed and
/// spare capacity, or if capacities cannot hold D tiles.
std::vector<std::int64_t> allocate_tiles(const AllocRequest& req,
                                         Rng* rng = nullptr);

/// Exhaustive optimum (exponential; for small test instances only).
std::vector<std::int64_t> allocate_tiles_bruteforce(const AllocRequest& req);

/// max_k x_k / s_k for a given assignment (the objective of Eq. 1).
double makespan(const std::vector<std::int64_t>& x,
                const std::vector<double>& speeds);

}  // namespace adcnn::core
