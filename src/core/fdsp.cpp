#include "core/fdsp.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/quantize.hpp"
#include "nn/tiling.hpp"

namespace adcnn::core {

Shape PartitionedModel::tile_input_shape() const {
  return Shape{model.input_shape[0], model.input_shape[1] / grid.rows,
               model.input_shape[2] / grid.cols};
}

Shape PartitionedModel::tile_output_shape() {
  Shape cur{1, model.input_shape[0], model.input_shape[1] / grid.rows,
            model.input_shape[2] / grid.cols};
  for (int i = prefix_begin(); i < prefix_end(); ++i)
    cur = model.net.at(static_cast<std::size_t>(i)).out_shape(cur);
  return cur;
}

PartitionedModel apply_fdsp(nn::Model&& m, const FdspOptions& opt) {
  if (m.separable_blocks < 1) {
    throw std::invalid_argument("apply_fdsp: model has no separable blocks");
  }
  if (opt.clipped_relu && opt.clip_lower < 0.0f) {
    throw std::invalid_argument("apply_fdsp: clip_lower must be >= 0");
  }
  if (opt.quantize && !opt.clipped_relu) {
    throw std::invalid_argument(
        "apply_fdsp: quantization requires the clipped ReLU (it defines the "
        "quantizer range)");
  }
  if (m.input_shape[1] % opt.grid.rows != 0 ||
      m.input_shape[2] % opt.grid.cols != 0) {
    throw std::invalid_argument("apply_fdsp: input not divisible by grid");
  }

  const int sep_end = m.separable_end_layer();
  auto old_layers = m.net.take_layers();

  PartitionedModel out;
  out.grid = opt.grid;
  out.bits = opt.bits;
  out.model.name = m.name + "_fdsp" + std::to_string(opt.grid.rows) + "x" +
                   std::to_string(opt.grid.cols);
  out.model.input_shape = m.input_shape;
  out.model.separable_blocks = m.separable_blocks;

  nn::Sequential net("fdsp_net");
  net.emplace<nn::TileSplit>(opt.grid.rows, opt.grid.cols);
  out.split_index = 0;
  for (int i = 0; i < sep_end; ++i)
    net.add(std::move(old_layers[static_cast<std::size_t>(i)]));
  int extras = 0;
  if (opt.clipped_relu) {
    net.emplace<nn::ClippedReLU>(opt.clip_lower, opt.clip_upper, "clip");
    out.clip_range = opt.clip_upper - opt.clip_lower;
    ++extras;
  }
  if (opt.quantize) {
    net.emplace<nn::FakeQuant>(opt.clip_upper - opt.clip_lower, opt.bits,
                               "quant");
    ++extras;
  }
  out.merge_index = 1 + sep_end + extras;
  net.emplace<nn::TileMerge>(opt.grid.rows, opt.grid.cols);
  for (std::size_t i = static_cast<std::size_t>(sep_end); i < old_layers.size();
       ++i)
    net.add(std::move(old_layers[i]));
  out.model.net = std::move(net);

  // Recompute block boundaries: TileSplit joins block 1; the clipped ReLU,
  // fake-quant and TileMerge join the last separable block.
  out.model.block_ends.reserve(m.block_ends.size());
  for (std::size_t b = 0; b < m.block_ends.size(); ++b) {
    int end = m.block_ends[b] + 1;  // TileSplit shift
    if (static_cast<int>(b) >= m.separable_blocks - 1) end += extras + 1;
    out.model.block_ends.push_back(end);
  }

  // Force full shape validation (divisibility through pools/strides).
  const Shape probe{1, out.model.input_shape[0], out.model.input_shape[1],
                    out.model.input_shape[2]};
  (void)out.model.net.out_shape(probe);
  return out;
}

}  // namespace adcnn::core
