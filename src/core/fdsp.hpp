// FDSP model surgery: turn a plain CNN into the paper's partitioned form.
//
//   input -> TileSplit(r,c) -> separable layer blocks (on the tile batch)
//         -> [ClippedReLU] -> [FakeQuant] -> TileMerge -> later blocks
//
// The resulting Model is a single differentiable graph, so progressive
// retraining (Algorithm 1) trains it directly; the distributed runtime
// executes the prefix range on Conv nodes and the suffix on the Central
// node (both via Model::forward_range).
#pragma once

#include "core/geometry.hpp"
#include "nn/model.hpp"

namespace adcnn::core {

struct FdspOptions {
  TileGrid grid;
  /// Insert a clipped ReLU on the separable-region output (§4.1). Lower
  /// bound must be >= 0 (it follows a ReLU, so this is without loss).
  bool clipped_relu = false;
  float clip_lower = 0.0f;
  float clip_upper = 6.0f;
  /// Insert fake quantization after the clipped ReLU (§4.2).
  bool quantize = false;
  int bits = 4;
};

struct PartitionedModel {
  nn::Model model;
  int split_index = 0;   // TileSplit position in model.net
  int merge_index = 0;   // TileMerge position in model.net
  TileGrid grid;
  /// Wire codec parameters (0 range = compression disabled).
  float clip_range = 0.0f;
  int bits = 4;
  /// Default compute precision for the Conv-node prefix: 0 = fp32, 1 =
  /// int8 (the model must have been calibrated via nn::prepare_int8).
  /// Folded into the net handshake digest so a deployment mixing int8 and
  /// fp32 builds of "the same" model is rejected before any tile flows.
  int precision = 0;

  /// Layer range Conv nodes execute per tile: (split_index, merge_index).
  int prefix_begin() const { return split_index + 1; }
  int prefix_end() const { return merge_index; }
  /// Layer range the Central node executes after stitching.
  int suffix_begin() const { return merge_index + 1; }
  int suffix_end() const { return static_cast<int>(model.net.size()); }

  /// Shape of one input tile {C, th, tw} and of one tile's prefix output.
  Shape tile_input_shape() const;
  Shape tile_output_shape();
};

/// Rebuild `m` with the FDSP graph. Throws if the input/grid geometry is
/// incompatible (non-divisible extents, pooling straddling tiles, ...).
PartitionedModel apply_fdsp(nn::Model&& m, const FdspOptions& opt);

}  // namespace adcnn::core
