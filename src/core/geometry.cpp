#include "core/geometry.hpp"

#include <stdexcept>

namespace adcnn::core {

std::vector<TileRect> tile_rects(std::int64_t h, std::int64_t w,
                                 const TileGrid& grid) {
  if (grid.rows < 1 || grid.cols < 1 || grid.rows > h || grid.cols > w) {
    throw std::invalid_argument("tile_rects: grid does not fit map");
  }
  std::vector<TileRect> out;
  out.reserve(static_cast<std::size_t>(grid.count()));
  const std::int64_t base_h = h / grid.rows, rem_h = h % grid.rows;
  const std::int64_t base_w = w / grid.cols, rem_w = w % grid.cols;
  std::int64_t y = 0;
  for (std::int64_t r = 0; r < grid.rows; ++r) {
    const std::int64_t th = base_h + (r < rem_h ? 1 : 0);
    std::int64_t x = 0;
    for (std::int64_t c = 0; c < grid.cols; ++c) {
      const std::int64_t tw = base_w + (c < rem_w ? 1 : 0);
      out.push_back(TileRect{r, c, y, x, th, tw});
      x += tw;
    }
    y += th;
  }
  return out;
}

std::int64_t total_stride(std::span<const SpatialOp> chain) {
  std::int64_t s = 1;
  for (const auto& op : chain) s *= op.stride;
  return s;
}

std::int64_t required_input(std::span<const SpatialOp> chain,
                            std::int64_t out) {
  std::int64_t extent = out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it)
    extent = (extent - 1) * it->stride + it->k;
  return extent;
}

std::int64_t halo_width(std::span<const SpatialOp> chain) {
  // Dependency span of one output element, centred: (required(1) - 1) / 2
  // per side after accounting for stride placement. We use the standard
  // receptive-field formulation.
  const std::int64_t rf = required_input(chain, 1);
  return (rf - total_stride(chain)) / 2;
}

std::vector<std::int64_t> extended_extents(std::span<const SpatialOp> chain,
                                           std::int64_t tile_out) {
  std::vector<std::int64_t> extents(chain.size() + 1);
  std::int64_t extent = tile_out;
  extents[chain.size()] = extent;
  for (std::size_t i = chain.size(); i-- > 0;) {
    extent = (extent - 1) * chain[i].stride + chain[i].k;
    extents[i] = extent;
  }
  extents.pop_back();  // keep only the extents *entering* each op
  return extents;
}

bool fdsp_compatible(std::span<const SpatialOp> chain, std::int64_t tile_h,
                     std::int64_t tile_w) {
  std::int64_t h = tile_h, w = tile_w;
  for (const auto& op : chain) {
    if (op.stride > 1) {
      if (h % op.stride != 0 || w % op.stride != 0) return false;
      h /= op.stride;
      w /= op.stride;
    }
    if (h < 1 || w < 1) return false;
  }
  return true;
}

}  // namespace adcnn::core
