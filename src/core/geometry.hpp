// Tile geometry and receptive-field / halo arithmetic (§3 of the paper).
//
// These helpers answer the questions every partitioning strategy hinges on:
// which pixels does a tile's output depend on (data halos, Figure 4), how
// much extra input AOFL-style halo-grown tiles must carry, and whether a
// tile grid stays integral through a stack of strided ops (the FDSP
// pooling-receptive-field condition of §3.2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace adcnn::core {

struct TileGrid {
  std::int64_t rows = 1;
  std::int64_t cols = 1;

  std::int64_t count() const { return rows * cols; }
  bool operator==(const TileGrid&) const = default;
};

/// A tile's position and extent, in pixels of the map being partitioned.
struct TileRect {
  std::int64_t row = 0, col = 0;  // grid coordinates
  std::int64_t h0 = 0, w0 = 0;    // top-left pixel
  std::int64_t th = 0, tw = 0;    // extent
};

/// Partition an HxW map into grid.rows x grid.cols tiles. Supports uneven
/// extents (remainder spread over the leading rows/cols) — an extension
/// over the paper, which assumes exact divisibility.
std::vector<TileRect> tile_rects(std::int64_t h, std::int64_t w,
                                 const TileGrid& grid);

/// One spatial operator of a layer chain, as needed for dependency math.
struct SpatialOp {
  std::int64_t k = 1;       // kernel extent
  std::int64_t stride = 1;
};

/// Cumulative downsampling factor of the chain.
std::int64_t total_stride(std::span<const SpatialOp> chain);

/// Input extent required to compute `out` output elements exactly (valid
/// semantics) through the chain.
std::int64_t required_input(std::span<const SpatialOp> chain,
                            std::int64_t out);

/// One-sided halo width in input pixels: how far beyond its own tile a
/// tile's exact output depends, i.e. (required_input - out*total_stride)/2.
std::int64_t halo_width(std::span<const SpatialOp> chain);

/// Per-layer input extents a device computes when it holds a halo-extended
/// tile producing `tile_out` outputs after the whole chain (AOFL's scheme):
/// element i is the extent entering chain op i. Front element equals
/// required_input(chain, tile_out).
std::vector<std::int64_t> extended_extents(std::span<const SpatialOp> chain,
                                           std::int64_t tile_out);

/// FDSP compatibility (§3.2): tile extents must stay integral through every
/// strided op so pooling receptive fields never straddle tiles.
bool fdsp_compatible(std::span<const SpatialOp> chain, std::int64_t tile_h,
                     std::int64_t tile_w);

}  // namespace adcnn::core
