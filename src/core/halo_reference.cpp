#include "core/halo_reference.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/pooling.hpp"

namespace adcnn::core {

namespace {

/// Direct convolution of `ext` (already halo-extended, so no padding) with
/// the layer's weights; output extent is implied by the extended input.
Tensor direct_conv(const nn::Conv2d& conv, const Tensor& ext) {
  const Tensor& w = const_cast<nn::Conv2d&>(conv).weight().value;
  const std::int64_t C = ext.c(), H = ext.h(), W = ext.w();
  const std::int64_t F = w.n(), kh = w.h(), kw = w.w();
  const std::int64_t sh = conv.stride_h(), sw = conv.stride_w();
  const std::int64_t HO = (H - kh) / sh + 1, WO = (W - kw) / sw + 1;
  Tensor y(Shape{1, F, HO, WO});
  for (std::int64_t f = 0; f < F; ++f) {
    const float bias =
        conv.has_bias()
            ? const_cast<nn::Conv2d&>(conv).bias().value[f]
            : 0.0f;
    for (std::int64_t oh = 0; oh < HO; ++oh)
      for (std::int64_t ow = 0; ow < WO; ++ow) {
        double acc = bias;
        for (std::int64_t c = 0; c < C; ++c)
          for (std::int64_t dh = 0; dh < kh; ++dh)
            for (std::int64_t dw = 0; dw < kw; ++dw)
              acc += static_cast<double>(
                         ext.at(0, c, oh * sh + dh, ow * sw + dw)) *
                     w.at(f, c, dh, dw);
        y.at(0, f, oh, ow) = static_cast<float>(acc);
      }
  }
  return y;
}

/// Crop [h0,h1) x [w0,w1) from `map` with zero padding outside the map.
Tensor padded_crop(const Tensor& map, std::int64_t h0, std::int64_t h1,
                   std::int64_t w0, std::int64_t w1) {
  const std::int64_t C = map.c(), H = map.h(), W = map.w();
  Tensor out = Tensor::zeros(Shape{1, C, h1 - h0, w1 - w0});
  const std::int64_t ch0 = std::max<std::int64_t>(h0, 0);
  const std::int64_t ch1 = std::min(h1, H);
  const std::int64_t cw0 = std::max<std::int64_t>(w0, 0);
  const std::int64_t cw1 = std::min(w1, W);
  if (ch0 < ch1 && cw0 < cw1) {
    out.paste(map.crop(0, 1, ch0, ch1 - ch0, cw0, cw1 - cw0), 0, ch0 - h0,
              cw0 - w0);
  }
  return out;
}

/// Count the cells of [h0,h1) x [w0,w1) that lie inside the map but
/// OUTSIDE the owner's tile rectangle — the neurons that must be received
/// from neighbouring devices.
std::int64_t halo_cells(std::int64_t h0, std::int64_t h1, std::int64_t w0,
                        std::int64_t w1, std::int64_t H, std::int64_t W,
                        const TileRect& own) {
  std::int64_t count = 0;
  for (std::int64_t h = std::max<std::int64_t>(h0, 0);
       h < std::min(h1, H); ++h)
    for (std::int64_t w = std::max<std::int64_t>(w0, 0);
         w < std::min(w1, W); ++w) {
      const bool inside_own = h >= own.h0 && h < own.h0 + own.th &&
                              w >= own.w0 && w < own.w0 + own.tw;
      if (!inside_own) ++count;
    }
  return count;
}

}  // namespace

HaloExchangeResult run_with_halo_exchange(nn::Model& model, int begin,
                                          int end, const Tensor& input,
                                          const TileGrid& grid) {
  if (input.n() != 1) {
    throw std::invalid_argument("run_with_halo_exchange: batch must be 1");
  }
  HaloExchangeResult result;
  Tensor cur = input;
  for (int li = begin; li < end; ++li) {
    nn::Layer& layer = model.net.at(static_cast<std::size_t>(li));
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      const Shape os = conv->out_shape(cur.shape());
      const std::int64_t HO = os[2], WO = os[3];
      if (HO % grid.rows != 0 || WO % grid.cols != 0) {
        throw std::invalid_argument(
            "run_with_halo_exchange: output not divisible by grid at " +
            layer.name());
      }
      const auto out_rects = tile_rects(HO, WO, grid);
      const auto in_rects = tile_rects(cur.h(), cur.w(), grid);
      Tensor out(os);
      for (std::size_t t = 0; t < out_rects.size(); ++t) {
        const TileRect& orect = out_rects[t];
        // Input region this output tile depends on.
        const std::int64_t ih0 =
            orect.h0 * conv->stride_h() - conv->pad_h();
        const std::int64_t ih1 = (orect.h0 + orect.th - 1) * conv->stride_h() -
                                 conv->pad_h() + conv->kernel_h();
        const std::int64_t iw0 =
            orect.w0 * conv->stride_w() - conv->pad_w();
        const std::int64_t iw1 = (orect.w0 + orect.tw - 1) * conv->stride_w() -
                                 conv->pad_w() + conv->kernel_w();
        const std::int64_t halo =
            halo_cells(ih0, ih1, iw0, iw1, cur.h(), cur.w(), in_rects[t]);
        if (halo > 0) {
          result.exchanged_bytes +=
              halo * cur.c() * static_cast<std::int64_t>(sizeof(float));
          ++result.exchanges;
        }
        const Tensor ext = padded_crop(cur, ih0, ih1, iw0, iw1);
        out.paste(direct_conv(*conv, ext), 0, orect.h0, orect.w0);
      }
      cur = std::move(out);
    } else if (dynamic_cast<nn::BatchNorm2d*>(&layer) ||
               dynamic_cast<nn::ReLU*>(&layer) ||
               dynamic_cast<nn::ClippedReLU*>(&layer)) {
      // Elementwise: each device applies it to its own tile; no traffic.
      cur = layer.forward(cur, nn::Mode::kEval);
    } else if (auto* pool = dynamic_cast<nn::MaxPool2d*>(&layer)) {
      // Receptive fields stay within tiles when extents divide (the same
      // condition FDSP imposes); then pooling needs no communication.
      const std::int64_t th = cur.h() / grid.rows, tw = cur.w() / grid.cols;
      if (cur.h() % grid.rows != 0 || cur.w() % grid.cols != 0 ||
          th % pool->kernel_h() != 0 || tw % pool->kernel_w() != 0) {
        throw std::invalid_argument(
            "run_with_halo_exchange: pooling straddles tiles");
      }
      cur = layer.forward(cur, nn::Mode::kEval);
    } else {
      throw std::invalid_argument(
          "run_with_halo_exchange: unsupported layer " + layer.name());
    }
  }
  result.output = std::move(cur);
  return result;
}

}  // namespace adcnn::core
