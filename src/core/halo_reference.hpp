// Exact spatial partitioning with data-halo exchange (Figure 4(c) of the
// paper) — the scheme FDSP is defined against.
//
// Each tile is processed on its own "device", but before every convolution
// the neurons inside the data halo are fetched from the neighbouring tiles
// (modelled by cropping the neighbour regions), so the result is
// bit-identical to the monolithic network. The runner counts every byte
// that crosses a tile boundary: exactly the communication FDSP eliminates
// by zero-padding instead.
//
// Supports the layer types of a separable prefix: Conv2d, BatchNorm2d,
// ReLU, ClippedReLU, MaxPool2d. Tile extents must stay integral through
// strided ops (same condition as FDSP).
#pragma once

#include "core/geometry.hpp"
#include "nn/model.hpp"

namespace adcnn::core {

struct HaloExchangeResult {
  Tensor output;                   // identical to the monolithic forward
  std::int64_t exchanged_bytes = 0;  // cross-tile halo traffic (fp32)
  std::int64_t exchanges = 0;        // number of halo fetch operations
};

/// Run layers [begin, end) of `model` over a tile grid with exact halo
/// exchange. Throws std::invalid_argument for unsupported layers or
/// incompatible geometry.
HaloExchangeResult run_with_halo_exchange(nn::Model& model, int begin,
                                          int end, const Tensor& input,
                                          const TileGrid& grid);

}  // namespace adcnn::core
