#include "core/stats.hpp"

#include <stdexcept>

namespace adcnn::core {

namespace {
// Validate before the vector is sized: a negative count must surface as
// invalid_argument, not the vector's length_error.
std::size_t checked_node_count(int num_nodes) {
  if (num_nodes < 1) {
    throw std::invalid_argument("StatsCollector: bad num_nodes/gamma");
  }
  return static_cast<std::size_t>(num_nodes);
}
}  // namespace

StatsCollector::StatsCollector(int num_nodes, double gamma, double initial)
    : s_(checked_node_count(num_nodes), initial), gamma_(gamma) {
  if (gamma <= 0.0 || gamma > 1.0) {
    throw std::invalid_argument("StatsCollector: bad num_nodes/gamma");
  }
}

void StatsCollector::record_image(
    const std::vector<std::int64_t>& results_within_deadline) {
  if (results_within_deadline.size() != s_.size()) {
    throw std::invalid_argument("StatsCollector::record_image: size mismatch");
  }
  for (std::size_t k = 0; k < s_.size(); ++k)
    s_[k] = (1.0 - gamma_) * s_[k] +
            gamma_ * static_cast<double>(results_within_deadline[k]);
  ++updates_;
}

void StatsCollector::record_node(int node, std::int64_t count) {
  auto& s = s_.at(static_cast<std::size_t>(node));
  s = (1.0 - gamma_) * s + gamma_ * static_cast<double>(count);
  ++updates_;
}

double StatsCollector::total_speed() const {
  double total = 0.0;
  for (const auto s : s_) total += s;
  return total;
}

}  // namespace adcnn::core
