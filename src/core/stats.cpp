#include "core/stats.hpp"

#include <stdexcept>

namespace adcnn::core {

StatsCollector::StatsCollector(int num_nodes, double gamma, double initial)
    : s_(static_cast<std::size_t>(num_nodes), initial), gamma_(gamma) {
  if (num_nodes < 1 || gamma <= 0.0 || gamma > 1.0) {
    throw std::invalid_argument("StatsCollector: bad num_nodes/gamma");
  }
}

void StatsCollector::record_image(
    const std::vector<std::int64_t>& results_within_deadline) {
  if (results_within_deadline.size() != s_.size()) {
    throw std::invalid_argument("StatsCollector::record_image: size mismatch");
  }
  for (std::size_t k = 0; k < s_.size(); ++k)
    s_[k] = (1.0 - gamma_) * s_[k] +
            gamma_ * static_cast<double>(results_within_deadline[k]);
}

void StatsCollector::record_node(int node, std::int64_t count) {
  auto& s = s_.at(static_cast<std::size_t>(node));
  s = (1.0 - gamma_) * s + gamma_ * static_cast<double>(count);
}

}  // namespace adcnn::core
