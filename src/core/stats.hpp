// Algorithm 2: statistics collection at the Central node.
//
// After each input image, the Central node counts how many intermediate
// results each Conv node returned within the deadline T_L and folds the
// count into an exponential moving average s_k = (1-gamma)*s_k + gamma*n_k.
// s_k is the runtime throughput estimate Algorithm 3 allocates against; a
// dead node's s_k decays to zero and it stops receiving tiles.
#pragma once

#include <cstdint>
#include <vector>

namespace adcnn::core {

class StatsCollector {
 public:
  /// `initial` seeds every s_k so the first image is spread evenly.
  StatsCollector(int num_nodes, double gamma = 0.9, double initial = 1.0);

  int num_nodes() const { return static_cast<int>(s_.size()); }
  double gamma() const { return gamma_; }

  /// Fold in one image's per-node result counts (n_k^i, k = 0..K-1).
  void record_image(const std::vector<std::int64_t>& results_within_deadline);

  /// Fold in a single node's count (incremental form used by the threaded
  /// runtime).
  void record_node(int node, std::int64_t count);

  double speed(int node) const { return s_[static_cast<std::size_t>(node)]; }
  const std::vector<double>& speeds() const { return s_; }

  /// Sum of all s_k — the cluster-wide throughput estimate (tiles per
  /// deadline window). Telemetry exports it as a gauge.
  double total_speed() const;

  /// Number of EMA folds applied so far (record_image counts once;
  /// record_node once per call). Lets reports state how warmed-up s_k is.
  std::int64_t updates() const { return updates_; }

 private:
  std::vector<double> s_;
  double gamma_;
  std::int64_t updates_ = 0;
};

}  // namespace adcnn::core
