#include "core/strategies.hpp"

#include <algorithm>
#include <stdexcept>

namespace adcnn::core {

std::int64_t channel_partition_layer_bytes(const arch::LayerSpec& conv,
                                           int devices) {
  if (devices < 2) return 0;
  // Each device holds cout/devices channels of the ofmap and needs the
  // remaining (devices-1)/devices fraction from its peers.
  return conv.out_bytes() * (devices - 1) / devices;
}

std::int64_t channel_partition_comm_bytes(const arch::ArchSpec& spec,
                                          int devices, int blocks) {
  std::int64_t total = 0;
  for (int b = 0; b < blocks && b < static_cast<int>(spec.blocks.size());
       ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if (l.op == arch::Op::kConv && !l.aux)
        total += channel_partition_layer_bytes(l, devices);
    }
  }
  return total;
}

std::int64_t halo_exchange_comm_bytes(const arch::ArchSpec& spec,
                                      const TileGrid& grid, int blocks) {
  std::int64_t total = 0;
  for (int b = 0; b < blocks && b < static_cast<int>(spec.blocks.size());
       ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if (l.op != arch::Op::kConv || l.aux || l.k <= 1) continue;
      // k-1 border lines cross each internal boundary (both directions
      // combined), across all input channels.
      const std::int64_t internal_h = (grid.rows - 1) * l.win;  // horizontal cuts
      const std::int64_t internal_v = (grid.cols - 1) * l.hin;  // vertical cuts
      total += l.cin * (l.k - 1) * (internal_h + internal_v) * 4;
    }
  }
  return total;
}

std::int64_t fdsp_to_central_bytes(const arch::ArchSpec& spec) {
  return spec.separable_out_bytes();
}

double aofl_compute_overhead(const arch::ArchSpec& spec, const TileGrid& grid,
                             int begin, int end) {
  std::vector<arch::LayerSpec> chain_specs;
  for (int b = begin; b < end && b < static_cast<int>(spec.blocks.size());
       ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if (l.aux) continue;
      if (l.op == arch::Op::kConv || l.op == arch::Op::kMaxPool)
        chain_specs.push_back(l);
    }
  }
  std::vector<SpatialOp> chain;
  chain.reserve(chain_specs.size());
  for (const auto& l : chain_specs) chain.push_back(SpatialOp{l.k, l.stride});

  std::int64_t out_h = 0, out_w = 0;
  // Output extents of the fused region (from the last spatial op's dims).
  if (chain_specs.empty()) return 1.0;
  out_h = chain_specs.back().hout;
  out_w = chain_specs.back().wout;
  if (out_h % grid.rows != 0 || out_w % grid.cols != 0) {
    // Uneven output tiles: use the ceiling tile (worst device).
    out_h = (out_h + grid.rows - 1) / grid.rows;
    out_w = (out_w + grid.cols - 1) / grid.cols;
  } else {
    out_h /= grid.rows;
    out_w /= grid.cols;
  }

  const auto ext_h = extended_extents(chain, out_h);
  const auto ext_w = extended_extents(chain, out_w);

  // Accumulate conv FLOPs for the halo-extended tile vs the exact share.
  double extended = 0.0, exact = 0.0;
  std::size_t op_idx = 0;
  for (const auto& l : chain_specs) {
    if (l.op == arch::Op::kConv) {
      // Outputs computed by this device at this layer: derived from the
      // extended input extent under valid-conv semantics, capped by the
      // full map (boundary tiles compute less; we model the interior
      // worst case).
      const std::int64_t ho = std::min(
          l.hout, (ext_h[op_idx] - l.k) / l.stride + 1);
      const std::int64_t wo = std::min(
          l.wout, (ext_w[op_idx] - l.k) / l.stride + 1);
      extended += 2.0 * static_cast<double>(l.cout) * static_cast<double>(ho) *
                  static_cast<double>(wo) * static_cast<double>(l.cin) *
                  static_cast<double>(l.k) * static_cast<double>(l.k);
      exact += static_cast<double>(l.flops) /
               static_cast<double>(grid.count());
    }
    ++op_idx;
  }
  if (exact <= 0.0) return 1.0;
  return std::max(1.0, extended / exact);
}

double aofl_input_expansion(const arch::ArchSpec& spec, const TileGrid& grid,
                            int begin, int end) {
  std::vector<SpatialOp> chain;
  std::int64_t out_h = 0, out_w = 0, in_h = 0, in_w = 0;
  bool first = true;
  for (int b = begin; b < end && b < static_cast<int>(spec.blocks.size());
       ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if (l.aux) continue;
      if (l.op != arch::Op::kConv && l.op != arch::Op::kMaxPool) continue;
      if (first) {
        in_h = l.hin;
        in_w = l.win;
        first = false;
      }
      chain.push_back(SpatialOp{l.k, l.stride});
      out_h = l.hout;
      out_w = l.wout;
    }
  }
  if (chain.empty()) return 1.0;
  const std::int64_t tile_oh = (out_h + grid.rows - 1) / grid.rows;
  const std::int64_t tile_ow = (out_w + grid.cols - 1) / grid.cols;
  const std::int64_t ext_h =
      std::min(in_h, required_input(chain, tile_oh));
  const std::int64_t ext_w =
      std::min(in_w, required_input(chain, tile_ow));
  const double tile_area = static_cast<double>((in_h / grid.rows) *
                                               (in_w / grid.cols));
  if (tile_area <= 0.0) return 1.0;
  return std::max(1.0, static_cast<double>(ext_h * ext_w) / tile_area);
}

}  // namespace adcnn::core
