// Communication/computation analysis of the partitioning strategies the
// paper contrasts in §3.1: batch, channel, naive spatial (halo exchange)
// and FDSP. All quantities derive from full-scale ArchSpecs.
#pragma once

#include <cstdint>

#include "core/geometry.hpp"
#include "nn/archspec.hpp"

namespace adcnn::core {

/// Channel partitioning across K devices: after every conv layer each
/// device must gather the other devices' partial ofmaps. Returns the bytes
/// RECEIVED BY ONE DEVICE at one layer boundary — for VGG16 L1 with K=2
/// this is the paper's 51.38 Mbit example.
std::int64_t channel_partition_layer_bytes(const arch::LayerSpec& conv,
                                           int devices);

/// Total per-device gather traffic over the first `blocks` blocks.
std::int64_t channel_partition_comm_bytes(const arch::ArchSpec& spec,
                                          int devices, int blocks);

/// Naive spatial partitioning with exact halo exchange (Figure 4(c)):
/// total bytes crossing internal tile boundaries over the first `blocks`
/// blocks (every conv with k > 1 exchanges k-1 border lines per internal
/// boundary).
std::int64_t halo_exchange_comm_bytes(const arch::ArchSpec& spec,
                                      const TileGrid& grid, int blocks);

/// FDSP cross-tile traffic is zero by construction; what remains is the
/// tile results sent to the Central node. Returns the raw (uncompressed)
/// bytes of the separable-region output, to be scaled by the measured
/// compression ratio.
std::int64_t fdsp_to_central_bytes(const arch::ArchSpec& spec);

/// AOFL-style halo-grown tiles: the factor (>= 1) by which per-device
/// compute over blocks [begin, end) exceeds a perfect 1/tiles split, for an
/// interior tile (worst case). Grows with fuse depth — the paper's §7.4
/// observation.
double aofl_compute_overhead(const arch::ArchSpec& spec, const TileGrid& grid,
                             int begin, int end);

/// Overhead of fusing the first `blocks` blocks.
inline double aofl_compute_overhead(const arch::ArchSpec& spec,
                                    const TileGrid& grid, int blocks) {
  return aofl_compute_overhead(spec, grid, 0, blocks);
}

/// Area expansion of the halo-extended INPUT tile a device needs to compute
/// its output tile through blocks [begin, end) without communication
/// (>= 1). The excess over 1 is what neighbouring devices must ship at a
/// fused-round boundary.
double aofl_input_expansion(const arch::ArchSpec& spec, const TileGrid& grid,
                            int begin, int end);

}  // namespace adcnn::core
