#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace adcnn::core {

namespace {
thread_local bool tl_in_chunk = false;
}  // namespace

// Shared completion state for one parallel_for call. Lives on the caller's
// stack; tasks only touch it before count_down reaches the caller's wait.
struct ThreadPool::ForState {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t chunk_size = 0;
  std::int64_t chunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::int64_t remaining = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int threads) {
  const int spawn = std::max(0, threads - 1);
  workers_.reserve(static_cast<std::size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::in_worker() { return tl_in_chunk; }

void ThreadPool::run_chunk(ForState& state, std::int64_t chunk) {
  const std::int64_t b = state.begin + chunk * state.chunk_size;
  const std::int64_t e = std::min(state.end, b + state.chunk_size);
  const bool was = tl_in_chunk;
  tl_in_chunk = true;
  try {
    if (b < e) (*state.fn)(b, e);
  } catch (...) {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.error) state.error = std::current_exception();
  }
  tl_in_chunk = was;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    --state.remaining;
    if (state.remaining == 0) state.done_cv.notify_all();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  const std::int64_t range = end - begin;
  if (range <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t max_chunks = std::min<std::int64_t>(
      threads(), (range + grain - 1) / grain);
  // Single lane, single chunk, or a nested call from inside a pool chunk:
  // run inline. Note the nested case keeps tl_in_chunk set, so the whole
  // subtree stays serial.
  if (max_chunks <= 1 || tl_in_chunk) {
    fn(begin, end);
    return;
  }

  ForState state;
  state.begin = begin;
  state.end = end;
  state.chunks = max_chunks;
  state.chunk_size = (range + max_chunks - 1) / max_chunks;
  state.fn = &fn;
  state.remaining = max_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::int64_t c = 1; c < max_chunks; ++c) {
      queue_.emplace_back([&state, c] { run_chunk(state, c); });
    }
  }
  cv_.notify_all();
  run_chunk(state, 0);  // the caller is one of the lanes
  {
    std::unique_lock<std::mutex> lock(state.mu);
    state.done_cv.wait(lock, [&state] { return state.remaining == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("ADCNN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

}  // namespace adcnn::core
