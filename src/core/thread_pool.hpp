// Shared worker pool for the compute engine (GEMM row panels, Conv2d batch
// loops). One process-wide pool, sized by ADCNN_THREADS (default:
// hardware_concurrency), keeps total compute threads bounded no matter how
// many ConvNodeWorker threads call into it: callers submit chunks and help
// execute their own share, and a parallel_for issued from inside a pool
// task runs serially (nested parallelism never fans out), so the runtime's
// per-node worker threads compose with the pool without oversubscription.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adcnn::core {

class ThreadPool {
 public:
  /// `threads` is the total parallelism (caller lane included); the pool
  /// spawns `threads - 1` workers. `threads <= 1` means fully inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(chunk_begin, chunk_end) over [begin, end) split into at most
  /// threads() contiguous chunks of at least `grain` items. Blocks until
  /// every chunk finished; rethrows the first chunk exception. Chunks are
  /// disjoint, so fn may write to per-index output without locking. Called
  /// from inside a pool task (or another caller-executed chunk), the whole
  /// range runs inline on the current thread — nested parallelism is
  /// serialized rather than fanned out.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// True while the current thread is executing a pool chunk (used to
  /// serialize nested parallel_for calls).
  static bool in_worker();

  /// Process-wide pool, sized by ADCNN_THREADS (default
  /// hardware_concurrency, min 1). Built on first use.
  static ThreadPool& global();

  /// The size global() would be built with (env var already applied).
  static int default_threads();

 private:
  struct ForState;
  void worker_loop();
  static void run_chunk(ForState& state, std::int64_t chunk);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace adcnn::core
