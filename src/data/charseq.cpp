#include "data/charseq.hpp"

#include <stdexcept>

namespace adcnn::data {

Dataset make_charseq(const CharSeqConfig& cfg) {
  if (cfg.num_classes < 2 || cfg.alphabet < 4) {
    throw std::invalid_argument("CharSeqConfig: need >=2 classes, >=4 chars");
  }
  Rng rng(cfg.seed);
  Dataset ds;
  ds.task = Task::kClassify;
  ds.num_classes = cfg.num_classes;
  ds.images = Tensor(Shape{cfg.count, cfg.alphabet, 1, cfg.length});
  ds.labels.resize(static_cast<std::size_t>(cfg.count));
  for (std::int64_t n = 0; n < cfg.count; ++n) {
    const int cls = static_cast<int>(
        rng.uniform_int(static_cast<std::uint64_t>(cfg.num_classes)));
    ds.labels[static_cast<std::size_t>(n)] = cls;
    std::int64_t ch = static_cast<std::int64_t>(
        rng.uniform_int(static_cast<std::uint64_t>(cfg.alphabet)));
    for (std::int64_t t = 0; t < cfg.length; ++t) {
      ds.images.at(n, ch, 0, t) = 1.0f;
      // Class-k chain prefers the transition ch -> (ch + k + 1) mod A.
      if (rng.uniform() < cfg.signal) {
        ch = (ch + cls + 1) % cfg.alphabet;
      } else {
        ch = static_cast<std::int64_t>(
            rng.uniform_int(static_cast<std::uint64_t>(cfg.alphabet)));
      }
    }
  }
  return ds;
}

}  // namespace adcnn::data
