// Synthetic character-sequence classification (substitutes AG-news for the
// CharCNN experiments). Each class is a distinct first-order Markov chain
// over the alphabet; sequences are one-hot encoded as (N, alphabet, 1, L).
// Local bigram statistics separate the classes, which is precisely what
// 1-D convolutions detect.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace adcnn::data {

struct CharSeqConfig {
  std::int64_t alphabet = 16;
  std::int64_t length = 64;
  int num_classes = 4;
  std::int64_t count = 512;
  /// Probability mass on each class's preferred transition (the rest is
  /// uniform noise). Higher = easier task.
  double signal = 0.55;
  std::uint64_t seed = 42;
};

Dataset make_charseq(const CharSeqConfig& cfg);

}  // namespace adcnn::data
