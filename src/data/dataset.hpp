// In-memory dataset container shared by the synthetic generators and the
// trainer. Substitutes the paper's ImageNet / Caltech101 / VOC / CamVid /
// AG-news corpora (see DESIGN.md §3): the retraining experiments need a
// *learnable task flowing through the same code path*, not those specific
// pixels.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace adcnn::data {

enum class Task {
  kClassify,   // one label per sample
  kDense,      // a label per spatial cell (segmentation masks,
               // detection grids)
};

struct Dataset {
  Tensor images;             // (N, C, H, W)
  std::vector<int> labels;   // kClassify: N entries
  std::vector<int> dense;    // kDense: N * dense_h * dense_w entries
  std::int64_t dense_h = 0;
  std::int64_t dense_w = 0;
  int num_classes = 0;
  Task task = Task::kClassify;

  std::int64_t size() const { return images.n(); }

  /// Copy samples [begin, begin+count) into a contiguous batch.
  Dataset slice(std::int64_t begin, std::int64_t count) const;
};

}  // namespace adcnn::data
