#include "data/shapes.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace adcnn::data {

namespace {

/// True if pixel (y, x) is inside shape `kind` centred at (cy, cx) with
/// radius r.
bool inside_shape(int kind, double y, double x, double cy, double cx,
                  double r) {
  const double dy = y - cy, dx = x - cx;
  switch (kind) {
    case 0:  // circle
      return dy * dy + dx * dx <= r * r;
    case 1:  // square
      return std::fabs(dy) <= r && std::fabs(dx) <= r;
    case 2:  // triangle (upward)
      return dy >= -r && dy <= r && std::fabs(dx) <= (dy + r) * 0.5;
    case 3:  // cross
      return (std::fabs(dy) <= r * 0.35 && std::fabs(dx) <= r) ||
             (std::fabs(dx) <= r * 0.35 && std::fabs(dy) <= r);
    case 4:  // diamond
      return std::fabs(dy) + std::fabs(dx) <= r;
    case 5:  // ring
      return dy * dy + dx * dx <= r * r &&
             dy * dy + dx * dx >= (0.5 * r) * (0.5 * r);
    default:
      return false;
  }
}

struct Placed {
  int kind;
  double cy, cx, r;
};

/// Render `shapes` into sample n of `images` with background noise.
void render(Tensor& images, std::int64_t n, const std::vector<Placed>& shapes,
            const std::vector<std::array<float, 3>>& colors, double noise,
            Rng& rng) {
  const std::int64_t S = images.h();
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t y = 0; y < S; ++y)
      for (std::int64_t x = 0; x < S; ++x)
        images.at(n, c, y, x) =
            static_cast<float>(rng.normal(0.0, noise));
  for (std::size_t s = 0; s < shapes.size(); ++s) {
    const Placed& p = shapes[s];
    for (std::int64_t y = 0; y < S; ++y)
      for (std::int64_t x = 0; x < S; ++x)
        if (inside_shape(p.kind, static_cast<double>(y),
                         static_cast<double>(x), p.cy, p.cx, p.r))
          for (std::int64_t c = 0; c < 3; ++c)
            images.at(n, c, y, x) = colors[s][static_cast<std::size_t>(c)];
  }
}

std::array<float, 3> random_color(Rng& rng) {
  // Bright colours distinct from the ~0 background.
  return {static_cast<float>(rng.uniform(0.5, 1.0)),
          static_cast<float>(rng.uniform(0.5, 1.0)),
          static_cast<float>(rng.uniform(0.5, 1.0))};
}

void check(const ShapesConfig& cfg) {
  if (cfg.num_shapes < 2 || cfg.num_shapes > 6) {
    throw std::invalid_argument("ShapesConfig.num_shapes must be in [2,6]");
  }
  if (cfg.image < 16) {
    throw std::invalid_argument("ShapesConfig.image must be >= 16");
  }
}

}  // namespace

Dataset make_shapes_classification(const ShapesConfig& cfg) {
  check(cfg);
  Rng rng(cfg.seed);
  Dataset ds;
  ds.task = Task::kClassify;
  ds.num_classes = cfg.num_shapes;
  ds.images = Tensor(Shape{cfg.count, 3, cfg.image, cfg.image});
  ds.labels.resize(static_cast<std::size_t>(cfg.count));
  const double S = static_cast<double>(cfg.image);
  for (std::int64_t n = 0; n < cfg.count; ++n) {
    const int kind = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(cfg.num_shapes)));
    const double r = rng.uniform(S * 0.15, S * 0.3);
    const Placed p{kind, rng.uniform(r, S - r), rng.uniform(r, S - r), r};
    render(ds.images, n, {p}, {random_color(rng)}, cfg.noise, rng);
    ds.labels[static_cast<std::size_t>(n)] = kind;
  }
  return ds;
}

Dataset make_shapes_segmentation(const ShapesConfig& cfg) {
  check(cfg);
  Rng rng(cfg.seed);
  Dataset ds;
  ds.task = Task::kDense;
  ds.num_classes = cfg.num_shapes + 1;
  ds.dense_h = cfg.image;
  ds.dense_w = cfg.image;
  ds.images = Tensor(Shape{cfg.count, 3, cfg.image, cfg.image});
  ds.dense.assign(static_cast<std::size_t>(cfg.count * cfg.image * cfg.image),
                  0);
  const double S = static_cast<double>(cfg.image);
  for (std::int64_t n = 0; n < cfg.count; ++n) {
    const int kind = static_cast<int>(rng.uniform_int(
        static_cast<std::uint64_t>(cfg.num_shapes)));
    const double r = rng.uniform(S * 0.15, S * 0.3);
    const Placed p{kind, rng.uniform(r, S - r), rng.uniform(r, S - r), r};
    render(ds.images, n, {p}, {random_color(rng)}, cfg.noise, rng);
    for (std::int64_t y = 0; y < cfg.image; ++y)
      for (std::int64_t x = 0; x < cfg.image; ++x)
        if (inside_shape(kind, static_cast<double>(y), static_cast<double>(x),
                         p.cy, p.cx, p.r))
          ds.dense[static_cast<std::size_t>((n * cfg.image + y) * cfg.image +
                                            x)] = kind + 1;
  }
  return ds;
}

Dataset make_shapes_detection(const ShapesConfig& cfg, std::int64_t grid) {
  check(cfg);
  if (cfg.image % grid != 0) {
    throw std::invalid_argument("detection grid must divide image size");
  }
  Rng rng(cfg.seed);
  Dataset ds;
  ds.task = Task::kDense;
  ds.num_classes = cfg.num_shapes + 1;
  ds.dense_h = grid;
  ds.dense_w = grid;
  ds.images = Tensor(Shape{cfg.count, 3, cfg.image, cfg.image});
  ds.dense.assign(static_cast<std::size_t>(cfg.count * grid * grid), 0);
  const double cell = static_cast<double>(cfg.image) / static_cast<double>(grid);
  for (std::int64_t n = 0; n < cfg.count; ++n) {
    const int count = 1 + static_cast<int>(rng.uniform_int(3));
    std::vector<Placed> shapes;
    std::vector<std::array<float, 3>> colors;
    std::vector<std::int64_t> cells;  // occupied grid cells, no duplicates
    for (int s = 0; s < count; ++s) {
      const int kind = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(cfg.num_shapes)));
      // Centre the shape inside a random free grid cell so the cell label
      // is unambiguous.
      std::int64_t gy = 0, gx = 0, key = 0;
      for (int attempt = 0; attempt < 16; ++attempt) {
        gy = static_cast<std::int64_t>(rng.uniform_int(
            static_cast<std::uint64_t>(grid)));
        gx = static_cast<std::int64_t>(rng.uniform_int(
            static_cast<std::uint64_t>(grid)));
        key = gy * grid + gx;
        if (std::find(cells.begin(), cells.end(), key) == cells.end()) break;
      }
      if (std::find(cells.begin(), cells.end(), key) != cells.end()) continue;
      cells.push_back(key);
      const double cy = (static_cast<double>(gy) + 0.5) * cell;
      const double cx = (static_cast<double>(gx) + 0.5) * cell;
      const double r = rng.uniform(cell * 0.3, cell * 0.48);
      shapes.push_back(Placed{kind, cy, cx, r});
      colors.push_back(random_color(rng));
      ds.dense[static_cast<std::size_t>(n * grid * grid + key)] = kind + 1;
    }
    render(ds.images, n, shapes, colors, cfg.noise, rng);
  }
  return ds;
}

Dataset Dataset::slice(std::int64_t begin, std::int64_t count) const {
  Dataset out;
  out.task = task;
  out.num_classes = num_classes;
  out.dense_h = dense_h;
  out.dense_w = dense_w;
  out.images = images.crop(begin, count, 0, images.h(), 0, images.w());
  if (task == Task::kClassify) {
    out.labels.assign(labels.begin() + begin, labels.begin() + begin + count);
  } else {
    const std::int64_t per = dense_h * dense_w;
    out.dense.assign(dense.begin() + begin * per,
                     dense.begin() + (begin + count) * per);
  }
  return out;
}

}  // namespace adcnn::data
