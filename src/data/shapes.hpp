// Procedural shape-image datasets.
//
// Images contain one (classification / segmentation) or several (detection)
// geometric shapes — circle, square, triangle, cross, diamond, ring — at a
// random position, scale and colour over a noisy background. The tasks are
// easy enough for the mini CNNs to reach high accuracy in a few epochs yet
// sensitive to FDSP's zero-padded tile boundaries, which is exactly the
// trade-off the paper's Figure 10 probes.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace adcnn::data {

struct ShapesConfig {
  std::int64_t image = 32;  // H == W
  int num_shapes = 4;       // classes drawn from the 6 shape kinds
  std::int64_t count = 512;
  double noise = 0.15;      // background noise stddev
  std::uint64_t seed = 42;
};

/// One shape per image; label = shape kind. num_classes = num_shapes.
Dataset make_shapes_classification(const ShapesConfig& cfg);

/// One shape per image; per-pixel labels: 0 = background, k+1 = shape k.
/// num_classes = num_shapes + 1.
Dataset make_shapes_segmentation(const ShapesConfig& cfg);

/// 1-3 shapes per image; per-grid-cell labels on a grid x grid map:
/// 0 = empty cell, k+1 = a shape of kind k centred in the cell.
/// num_classes = num_shapes + 1.
Dataset make_shapes_detection(const ShapesConfig& cfg, std::int64_t grid);

}  // namespace adcnn::data
