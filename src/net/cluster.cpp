#include "net/cluster.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "nn/optimize.hpp"
#include "runtime/message.hpp"

namespace adcnn::net {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::vector<std::uint8_t> encode_ns(std::uint64_t ns) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((ns >> (8 * i)) & 0xFF);
  }
  return out;
}

std::uint64_t decode_ns(std::span<const std::uint8_t> in) {
  std::uint64_t ns = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(in.size()); ++i) {
    ns |= static_cast<std::uint64_t>(in[static_cast<std::size_t>(i)])
          << (8 * i);
  }
  return ns;
}

Clock::duration dsec(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

}  // namespace

DistributedCluster::DistributedCluster(core::PartitionedModel& model,
                                       const DistributedConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.num_nodes < 1) {
    throw std::invalid_argument(
        "DistributedCluster: need at least one Conv node");
  }
  // int8 forces the optimized graph on both sides — workers mirror this
  // in run_worker, and the digest (which covers the folded weights and
  // the precision flag) rejects a half-migrated deployment at handshake.
  if (cfg_.optimize_model || cfg_.spec.int8) {
    nn::optimize_for_inference(model.model);
  }
  if (cfg_.spec.int8) {
    nn::prepare_int8(model.model, calibration_inputs(cfg_.spec));
    model.precision = 1;
  }
  if (cfg_.compress && model.clip_range <= 0.0f) {
    throw std::invalid_argument(
        "DistributedCluster: compression requires a clipped-ReLU range on "
        "the model (apply_fdsp with clipped_relu=true)");
  }
  if (cfg_.compress) codec_.emplace(model.clip_range, model.bits);
  digest_ = model_digest(model);
  if (!cfg_.fault_plan.trivial()) {
    faults_ = std::make_unique<runtime::FaultInjector>(cfg_.fault_plan,
                                                       cfg_.telemetry);
  }

  obs::Counter* link_bytes = nullptr;
  obs::Counter* link_transfers = nullptr;
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      // Logical payload accounting (same instrument family as the
      // in-process cluster) plus the wire-level net.* plane.
      link_bytes = &m->counter("link.downlink_bytes");
      link_transfers = &m->counter("link.downlink_transfers");
      obs_.bytes_tx = &m->counter("net.bytes_tx");
      obs_.bytes_rx = &m->counter("net.bytes_rx");
      obs_.frames_tx = &m->counter("net.frames_tx");
      obs_.frames_rx = &m->counter("net.frames_rx");
      obs_.connects = &m->counter("net.connects");
      obs_.reconnects = &m->counter("net.reconnects");
      obs_.heartbeat_misses = &m->counter("net.heartbeat_misses");
      obs_.tx_dropped = &m->counter("net.tx_dropped");
      obs_.rx_decode_errors = &m->counter("net.rx_decode_errors");
      obs::QuantileHistogram::Config rtt_cfg;
      rtt_cfg.min_value = 1e-6;  // seconds; loopback RTTs sit near 1e-5
      rtt_cfg.max_value = 10.0;
      obs_.rtt_q = &m->quantile_histogram("net.rtt_q", rtt_cfg);
      if (codec_) codec_->attach_telemetry(m);
    }
  }

  listener_ = std::make_unique<Listener>(cfg_.listen);

  std::vector<runtime::Channel<runtime::TileTask>*> inbox_ptrs;
  std::vector<runtime::Transport*> downlink_ptrs;
  for (int k = 0; k < cfg_.num_nodes; ++k) {
    auto node = std::make_unique<Node>();
    node->id = k;
    node->inbox = std::make_unique<runtime::Channel<runtime::TileTask>>();
    node->link.attach_telemetry(link_bytes, link_transfers);
    if (faults_) {
      node->link.attach_faults(faults_.get(),
                               runtime::FaultInjector::Direction::kDownlink, k);
    }
    inbox_ptrs.push_back(node->inbox.get());
    downlink_ptrs.push_back(&node->link);
    nodes_.push_back(std::move(node));
  }

  runtime::CentralConfig central_cfg;
  central_cfg.deadline_s = cfg_.deadline_s;
  central_cfg.gamma = cfg_.gamma;
  central_cfg.initial_speed = cfg_.initial_speed;
  central_cfg.capacity_tiles = cfg_.capacity_tiles;
  central_cfg.probe_interval = cfg_.probe_interval;
  central_cfg.retry = cfg_.retry;
  central_cfg.quarantine_after = cfg_.quarantine_after;
  central_cfg.critical_path_interval = cfg_.critical_path_interval;
  central_cfg.telemetry = cfg_.telemetry;
  const compress::TileCodec* codec = codec_ ? &*codec_ : nullptr;
  central_ = std::make_unique<runtime::CentralNode>(
      model, codec, inbox_ptrs, &results_, downlink_ptrs, central_cfg);

  if (!cfg_.worker_binary.empty()) {
    for (auto& node : nodes_) spawn_worker(*node);
    monitor_thread_ = std::thread([this] { monitor_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  for (auto& node : nodes_) {
    Node* n = node.get();
    n->tx = std::thread([this, n] { tx_loop(*n); });
    n->rx = std::thread([this, n] { rx_loop(*n); });
  }

  if constexpr (obs::kEnabled) {
    if (cfg_.telemetry.metrics && cfg_.exporter.period_s > 0.0 &&
        (!cfg_.exporter.prometheus_path.empty() ||
         !cfg_.exporter.jsonl_path.empty())) {
      exporter_ = std::make_unique<obs::TelemetryExporter>(
          *cfg_.telemetry.metrics, cfg_.exporter);
    }
  }
}

DistributedCluster::~DistributedCluster() {
  exporter_.reset();  // final flush while instruments are alive
  stop_.store(true);
  // Best-effort goodbye so idle workers exit instead of reconnecting.
  for (auto& node : nodes_) {
    if (auto conn = node->link.conn()) {
      conn->send_frame(FrameType::kShutdown, {},
                       std::chrono::milliseconds(200));
    }
  }
  for (auto& node : nodes_) {
    node->inbox->close();
    if (auto conn = node->link.conn()) conn->shutdown();
    node->cv.notify_all();
  }
  results_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  for (auto& node : nodes_) {
    if (node->tx.joinable()) node->tx.join();
    if (node->rx.joinable()) node->rx.join();
  }
  // Reap spawned workers: resume the stopped, terminate the polite, then
  // escalate to SIGKILL for anything still standing.
  std::vector<pid_t> pids;
  for (auto& node : nodes_) {
    const pid_t pid = node->pid.load();
    if (pid > 0) {
      ::kill(pid, SIGCONT);
      ::kill(pid, SIGTERM);
      pids.push_back(pid);
    }
  }
  const auto kill_deadline = Clock::now() + std::chrono::seconds(2);
  for (pid_t pid : pids) {
    for (;;) {
      const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
      if (r == pid || (r == -1 && errno != EINTR)) break;
      if (Clock::now() >= kill_deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void DistributedCluster::count_tx(std::size_t wire_bytes) {
  if constexpr (obs::kEnabled) {
    if (obs_.bytes_tx)
      obs_.bytes_tx->add(static_cast<std::int64_t>(wire_bytes));
    if (obs_.frames_tx) obs_.frames_tx->add(1);
  }
}

void DistributedCluster::count_rx(std::size_t wire_bytes) {
  if constexpr (obs::kEnabled) {
    if (obs_.bytes_rx)
      obs_.bytes_rx->add(static_cast<std::int64_t>(wire_bytes));
    if (obs_.frames_rx) obs_.frames_rx->add(1);
  }
}

void DistributedCluster::spawn_worker(Node& node) {
  std::vector<std::string> args;
  args.push_back(cfg_.worker_binary);
  args.push_back("--connect=" + listener_->bound().uri());
  args.push_back("--node=" + std::to_string(node.id));
  for (auto& a : cfg_.spec.to_args()) args.push_back(std::move(a));
  args.push_back("--compress=" + std::to_string(cfg_.compress ? 1 : 0));
  args.push_back("--optimize=" + std::to_string(cfg_.optimize_model ? 1 : 0));
  args.push_back("--parent=" + std::to_string(::getpid()));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("DistributedCluster: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child (multithreaded parent: only async-signal-safe work before exec).
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }
  node.pid.store(pid);
  node.spawned = true;
}

void DistributedCluster::accept_loop() {
  while (!stop_.load()) {
    auto sock = listener_->accept(Clock::now() + std::chrono::milliseconds(200));
    if (!sock) continue;
    auto conn = std::make_shared<FramedConn>(std::move(*sock));

    // Server side of the handshake. The wait is bounded so one stalled
    // client cannot wedge the accept thread for long.
    const auto hs_deadline = Clock::now() + std::chrono::seconds(3);
    std::optional<Frame> hello_frame;
    while (!(hello_frame = conn->recv_frame(hs_deadline))) {
      if (!conn->alive() || Clock::now() >= hs_deadline || stop_.load()) break;
    }
    if (!hello_frame || hello_frame->type != FrameType::kHello) continue;
    Hello hello;
    try {
      hello = decode_hello(hello_frame->payload);
    } catch (const FrameError&) {
      continue;
    }
    HelloAck ack;
    ack.digest = digest_;
    ack.accepted = static_cast<int>(hello.node_id) >= 0 &&
                   static_cast<int>(hello.node_id) < cfg_.num_nodes &&
                   hello.digest == digest_ && hello.compress == cfg_.compress;
    conn->send_frame(FrameType::kHelloAck, encode_hello_ack(ack));
    if (!ack.accepted) {
      conn->shutdown();
      continue;
    }

    Node& node = *nodes_[static_cast<std::size_t>(hello.node_id)];
    const bool again = node.ever_connected.exchange(true);
    node.link.adopt(std::move(conn));
    if (again) {
      reconnects_.fetch_add(1);
      if constexpr (obs::kEnabled) {
        if (obs_.reconnects) obs_.reconnects->add(1);
      }
    } else if constexpr (obs::kEnabled) {
      if (obs_.connects) obs_.connects->add(1);
    }
    central_->mark_node_up(node.id);
    node.cv.notify_all();
  }
}

void DistributedCluster::monitor_loop() {
  while (!stop_.load()) {
    for (auto& node : nodes_) {
      const pid_t pid = node->pid.load();
      if (pid > 0) {
        // A SIGSTOP'd worker does not report here (no WUNTRACED): it stays
        // "running" and is handled by liveness, not respawn.
        const pid_t r = ::waitpid(pid, nullptr, WNOHANG);
        if (r == pid) {
          node->pid.store(-1);
          node->respawn_attempts++;
          node->respawn_due =
              Clock::now() +
              dsec(cfg_.reconnect.backoff_s(
                  node->respawn_attempts - 1,
                  static_cast<std::uint64_t>(node->id) + 1));
        }
      } else if (node->spawned && cfg_.respawn_dead_workers &&
                 Clock::now() >= node->respawn_due) {
        try {
          spawn_worker(*node);
        } catch (const std::exception&) {
          node->respawn_due = Clock::now() + dsec(cfg_.reconnect.backoff_cap_s);
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void DistributedCluster::tx_loop(Node& node) {
  const auto hb_period = dsec(cfg_.heartbeat_period_s);
  auto next_hb = Clock::now() + hb_period;
  while (!stop_.load()) {
    const auto wake =
        std::min(next_hb, Clock::now() + std::chrono::milliseconds(100));
    auto task = node.inbox->receive_until(wake);
    if (task) {
      auto conn = node.link.conn();
      const std::vector<std::uint8_t> wire = runtime::serialize(*task);
      if (conn && conn->send_frame(FrameType::kTileTask, wire)) {
        count_tx(kFrameHeaderBytes + wire.size());
      } else {
        // Disconnected (or the send killed the conn): the tile is lost on
        // the wire; the central's retry/zero-fill machinery recovers it.
        if (conn) node.link.drop(conn);
        if constexpr (obs::kEnabled) {
          if (obs_.tx_dropped) obs_.tx_dropped->add(1);
        }
      }
      continue;  // drain the inbox before considering heartbeats
    }
    if (node.inbox->closed()) return;
    const auto now = Clock::now();
    if (now >= next_hb) {
      next_hb = now + hb_period;
      if (auto conn = node.link.conn()) {
        const auto ping = encode_ns(steady_ns());
        if (conn->send_frame(FrameType::kHeartbeat, ping,
                             std::chrono::milliseconds(500))) {
          count_tx(kFrameHeaderBytes + ping.size());
        } else {
          node.link.drop(conn);
        }
      }
    }
  }
}

void DistributedCluster::rx_loop(Node& node) {
  const auto liveness = dsec(cfg_.liveness_timeout_s);
  std::uint64_t seen_gen = 0;
  auto last_rx = Clock::now();
  while (!stop_.load()) {
    auto conn = node.link.conn();
    if (!conn || !conn->alive()) {
      if (conn) node.link.drop(conn);
      std::unique_lock lock(node.mu);
      node.cv.wait_for(lock, std::chrono::milliseconds(100));
      continue;
    }
    if (node.link.generation() != seen_gen) {
      seen_gen = node.link.generation();
      last_rx = Clock::now();  // fresh connection, fresh liveness window
    }
    const auto frame = conn->recv_frame(
        std::min(Clock::now() + std::chrono::milliseconds(100),
                 last_rx + liveness));
    if (!frame) {
      const bool dead = !conn->alive();
      const bool stalled = Clock::now() >= last_rx + liveness;
      if (!dead && !stalled) continue;
      if (stalled && !dead) {
        heartbeat_misses_.fetch_add(1);
        if constexpr (obs::kEnabled) {
          if (obs_.heartbeat_misses) obs_.heartbeat_misses->add(1);
        }
      }
      node.link.drop(conn);
      // Only quarantine if no newer connection raced in behind us.
      if (!node.link.connected()) central_->mark_node_down(node.id);
      continue;
    }
    last_rx = Clock::now();
    count_rx(kFrameHeaderBytes + frame->payload.size());
    switch (frame->type) {
      case FrameType::kTileResult: {
        try {
          results_.send(runtime::deserialize_result(frame->payload));
        } catch (const std::exception&) {
          // CRC passed but the payload is still malformed (buggy/hostile
          // peer): count and drop; retry/zero-fill covers the tile.
          if constexpr (obs::kEnabled) {
            if (obs_.rx_decode_errors) obs_.rx_decode_errors->add(1);
          }
        }
        break;
      }
      case FrameType::kHeartbeatAck: {
        const std::uint64_t sent = decode_ns(frame->payload);
        const std::uint64_t now = steady_ns();
        if (now > sent) {
          if constexpr (obs::kEnabled) {
            if (obs_.rtt_q) {
              obs_.rtt_q->observe(static_cast<double>(now - sent) * 1e-9);
            }
          }
        }
        break;
      }
      default:
        break;  // unexpected frame types are ignored
    }
  }
}

bool DistributedCluster::wait_all_connected(double timeout_s) {
  const auto deadline = Clock::now() + dsec(timeout_s);
  for (;;) {
    bool all = true;
    for (auto& node : nodes_) {
      if (!node->link.connected()) all = false;
    }
    if (all) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

pid_t DistributedCluster::worker_pid(int k) const {
  if (k < 0 || k >= static_cast<int>(nodes_.size())) return -1;
  return nodes_[static_cast<std::size_t>(k)]->pid.load();
}

bool DistributedCluster::signal_worker(int k, int sig) {
  const pid_t pid = worker_pid(k);
  if (pid <= 0) return false;
  return ::kill(pid, sig) == 0;
}

bool DistributedCluster::node_connected(int k) const {
  if (k < 0 || k >= static_cast<int>(nodes_.size())) return false;
  return nodes_[static_cast<std::size_t>(k)]->link.connected();
}

}  // namespace adcnn::net
