// DistributedCluster: the Figure 1(b) architecture over real sockets —
// one Central node in this process, N Conv-node worker *processes*
// connected via TCP or Unix-domain sockets.
//
// The cluster reuses the whole in-process runtime unchanged: the same
// CentralNode drives partition/allocate/scatter/gather/suffix against
// per-node Channel<TileTask> inboxes, and per-node pump threads bridge
// those channels onto framed socket connections (net/frame.hpp). Failure
// handling is layered:
//
//   * liveness: the central sends heartbeats every heartbeat_period_s; a
//     connection with no inbound frame for liveness_timeout_s (SIGSTOP'd
//     peer, half-open TCP) is declared dead (net.heartbeat_misses).
//   * a dead connection immediately quarantines the node
//     (CentralNode::mark_node_down), so Algorithm 3 re-allocates the next
//     image to the remaining nodes and in-window retries avoid the corpse;
//     tiles already lost on the dead link are recovered by the existing
//     bounded retry or zero-filled at T_L.
//   * reconnect: workers reconnect with capped exponential backoff +
//     jitter; a SIGKILL'd worker process is respawned (optional) with the
//     same backoff. A successful re-handshake lifts the quarantine and the
//     recovery-probe path rebuilds the node's Algorithm 2 speed.
//
// Tile computation is bit-identical to the threaded EdgeCluster: workers
// rebuild the same weights from the ModelSpec (digest-checked at
// handshake) and run the identical ConvNodeWorker/codec path.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_link.hpp"
#include "net/worker.hpp"
#include "obs/exporter.hpp"
#include "runtime/central_node.hpp"
#include "runtime/channel.hpp"

namespace adcnn::net {

struct DistributedConfig {
  /// Where to listen. TCP port 0 binds an ephemeral port (resolved in
  /// endpoint()); UDS paths must fit sockaddr_un (~100 chars).
  Endpoint listen;
  int num_nodes = 4;
  /// Path to the adcnn_conv_worker binary. Empty = spawn nothing and wait
  /// for externally started workers to connect (adoption mode).
  std::string worker_binary;
  /// Recipe spawned workers rebuild; must describe the model passed to the
  /// constructor (digest-checked at handshake).
  ModelSpec spec;
  bool compress = true;
  bool optimize_model = false;

  double heartbeat_period_s = 0.1;
  /// No inbound frame on a connection for this long = dead peer.
  double liveness_timeout_s = 0.5;
  /// Respawn a spawned worker whose process exited (e.g. SIGKILL).
  bool respawn_dead_workers = true;
  /// Paces respawns via RetryPolicy::backoff_s (backoff_base_s etc.).
  runtime::RetryPolicy reconnect{
      .backoff_base_s = 0.05, .backoff_cap_s = 1.0, .jitter = 0.2};

  // --- Central-node knobs (ClusterConfig analogues). ----------------------
  double deadline_s = 5.0;
  double gamma = 0.9;
  double initial_speed = 1.0;
  std::int64_t capacity_tiles = std::numeric_limits<std::int64_t>::max();
  int probe_interval = 8;
  runtime::RetryPolicy retry;
  int quarantine_after = 3;
  int critical_path_interval = 0;
  /// Central-side fault injection on the downlink transports (the uplink
  /// and node specs of a plan live in worker processes and are ignored
  /// here — process-level chaos uses signal_worker instead).
  runtime::FaultPlan fault_plan;
  obs::Telemetry telemetry;
  obs::ExporterConfig exporter;
};

class DistributedCluster {
 public:
  DistributedCluster(core::PartitionedModel& model,
                     const DistributedConfig& cfg);
  ~DistributedCluster();

  DistributedCluster(const DistributedCluster&) = delete;
  DistributedCluster& operator=(const DistributedCluster&) = delete;

  Tensor infer(const Tensor& image, runtime::InferStats* stats = nullptr) {
    return central_->infer(image, stats);
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  runtime::CentralNode& central() { return *central_; }
  /// The bound endpoint (ephemeral TCP port resolved) — hand its uri() to
  /// externally launched workers.
  const Endpoint& endpoint() const { return listener_->bound(); }

  /// Block until every node has a live connection; false on timeout.
  bool wait_all_connected(double timeout_s);

  // --- Chaos/testing hooks -------------------------------------------------
  /// Process id of the spawned worker for node k; -1 if not running.
  pid_t worker_pid(int k) const;
  /// kill(2) the spawned worker (SIGKILL, SIGSTOP, SIGCONT, ...).
  bool signal_worker(int k, int sig);
  bool node_connected(int k) const;

  /// Successful (re-)handshakes beyond each node's first connection —
  /// mirrors the net.reconnects metric for obs-off builds.
  std::int64_t reconnects() const { return reconnects_.load(); }
  std::int64_t heartbeat_misses() const { return heartbeat_misses_.load(); }

 private:
  struct Node {
    int id = 0;
    SocketLink link;
    std::unique_ptr<runtime::Channel<runtime::TileTask>> inbox;
    std::thread tx;
    std::thread rx;
    std::atomic<pid_t> pid{-1};
    bool spawned = false;  // launched by us at least once
    int respawn_attempts = 0;
    Clock::time_point respawn_due{};
    std::atomic<bool> ever_connected{false};
    std::mutex mu;               // guards cv waits on (re)connection
    std::condition_variable cv;  // notified when a new conn is adopted
  };

  void spawn_worker(Node& node);
  void accept_loop();
  void monitor_loop();
  void tx_loop(Node& node);
  void rx_loop(Node& node);
  void count_tx(std::size_t wire_bytes);
  void count_rx(std::size_t wire_bytes);

  DistributedConfig cfg_;
  std::optional<compress::TileCodec> codec_;
  std::unique_ptr<runtime::FaultInjector> faults_;
  std::uint64_t digest_ = 0;
  std::unique_ptr<Listener> listener_;
  std::vector<std::unique_ptr<Node>> nodes_;
  runtime::Channel<runtime::TileResult> results_;
  std::unique_ptr<runtime::CentralNode> central_;
  std::unique_ptr<obs::TelemetryExporter> exporter_;
  std::thread accept_thread_;
  std::thread monitor_thread_;
  std::atomic<bool> stop_{false};

  // Plain mirrors of the net.* metrics so obs-off builds (and tests) can
  // still assert transport behavior.
  std::atomic<std::int64_t> reconnects_{0};
  std::atomic<std::int64_t> heartbeat_misses_{0};

  struct NetMetrics {
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* frames_tx = nullptr;
    obs::Counter* frames_rx = nullptr;
    obs::Counter* connects = nullptr;
    obs::Counter* reconnects = nullptr;
    obs::Counter* heartbeat_misses = nullptr;
    obs::Counter* tx_dropped = nullptr;
    obs::Counter* rx_decode_errors = nullptr;
    obs::QuantileHistogram* rtt_q = nullptr;
  } obs_;
};

}  // namespace adcnn::net
