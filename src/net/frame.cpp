#include "net/frame.hpp"

#include <array>
#include <cstring>

namespace adcnn::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t pos) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  return v;
}

struct Header {
  std::uint8_t version = 0;
  FrameType type = FrameType::kHeartbeat;
  std::uint32_t length = 0;
  std::uint32_t crc = 0;
};

/// Validate a complete 16-byte header. Every field is checked before the
/// length can drive an allocation or the type a dispatch.
Header decode_header(std::span<const std::uint8_t> h) {
  if (get_u32(h, 0) != kFrameMagic) throw FrameError("frame: bad magic");
  Header out;
  out.version = h[4];
  if (out.version != kProtocolVersion) {
    throw FrameError("frame: unsupported protocol version " +
                     std::to_string(out.version));
  }
  const std::uint8_t type = h[5];
  if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
      type > static_cast<std::uint8_t>(FrameType::kShutdown)) {
    throw FrameError("frame: unknown type " + std::to_string(type));
  }
  out.type = static_cast<FrameType>(type);
  if (h[6] != 0 || h[7] != 0) throw FrameError("frame: nonzero flags");
  out.length = get_u32(h, 8);
  if (out.length > kMaxFrameBytes) {
    throw FrameError("frame: length " + std::to_string(out.length) +
                     " exceeds bound");
  }
  out.crc = get_u32(h, 12);
  return out;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw FrameError("encode_frame: payload exceeds kMaxFrameBytes");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // flags
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameReassembler::push(std::span<const std::uint8_t> bytes) {
  check();
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  // Peel off every complete frame; keep the (single) trailing partial one.
  for (;;) {
    if (buf_.size() < kFrameHeaderBytes) return;
    Header h;
    try {
      h = decode_header(std::span(buf_).first(kFrameHeaderBytes));
    } catch (const FrameError&) {
      poisoned_ = true;
      throw;
    }
    const std::size_t total = kFrameHeaderBytes + h.length;
    if (buf_.size() < total) return;
    const auto payload =
        std::span(buf_).subspan(kFrameHeaderBytes, h.length);
    if (crc32(payload) != h.crc) {
      poisoned_ = true;
      throw FrameError("frame: CRC mismatch");
    }
    Frame f;
    f.type = h.type;
    f.payload.assign(payload.begin(), payload.end());
    ready_.push_back(std::move(f));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(total));
  }
}

std::optional<Frame> FrameReassembler::next() {
  check();
  if (ready_.empty()) return std::nullopt;
  Frame f = std::move(ready_.front());
  ready_.pop_front();
  return f;
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(hello.node_id));
  put_u64(out, hello.digest);
  out.push_back(hello.compress ? 1 : 0);
  return out;
}

Hello decode_hello(std::span<const std::uint8_t> payload) {
  if (payload.size() != 13) throw FrameError("hello: bad payload size");
  Hello h;
  h.node_id = static_cast<std::int32_t>(get_u32(payload, 0));
  h.digest = get_u64(payload, 4);
  h.compress = payload[12] != 0;
  return h;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack) {
  std::vector<std::uint8_t> out;
  out.push_back(ack.accepted ? 1 : 0);
  put_u64(out, ack.digest);
  return out;
}

HelloAck decode_hello_ack(std::span<const std::uint8_t> payload) {
  if (payload.size() != 9) throw FrameError("hello_ack: bad payload size");
  HelloAck a;
  a.accepted = payload[0] != 0;
  a.digest = get_u64(payload, 1);
  return a;
}

}  // namespace adcnn::net
