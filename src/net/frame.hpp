// Wire framing for the socket transport (DESIGN.md §13).
//
// Every frame is a fixed 16-byte little-endian header followed by the
// payload:
//
//   offset  size  field
//        0     4  magic   "ADCN"
//        4     1  version (kProtocolVersion)
//        5     1  type    (FrameType)
//        6     2  flags   (reserved, must be 0)
//        8     4  length  (payload bytes, <= kMaxFrameBytes)
//       12     4  crc32   (IEEE CRC-32 of the payload)
//
// The header is validated before a single payload byte is trusted and the
// CRC after the payload arrives, so a torn TCP stream, a half-written
// frame from a SIGKILL'd peer, or hostile bytes surface as a recoverable
// error (FrameError) — never as a crash or an over-allocation. Payloads
// for kTileTask/kTileResult are exactly the runtime/message.hpp
// serializations, which carry their own adversarial-input bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace adcnn::net {

inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::uint32_t kFrameMagic = 0x4E434441u;  // "ADCN" LE
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard payload bound: larger than any tile message the repo can produce,
/// small enough that a hostile length prefix cannot drive an allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

enum class FrameType : std::uint8_t {
  kHello = 1,         // worker -> central: node id + model digest + flags
  kHelloAck = 2,      // central -> worker: accept byte + central digest
  kTileTask = 3,      // central -> worker: serialize(TileTask)
  kTileResult = 4,    // worker -> central: serialize(TileResult)
  kHeartbeat = 5,     // central -> worker: 8-byte steady-clock ns echo token
  kHeartbeatAck = 6,  // worker -> central: the token, unchanged
  kShutdown = 7,      // central -> worker: drain and exit
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

/// Recoverable wire-protocol violation (bad magic/version/length/CRC).
/// Callers drop the connection and reconnect; they never crash.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what) : std::runtime_error(what) {}
};

/// IEEE 802.3 CRC-32 (polynomial 0xEDB88320), the usual table-driven form.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Header + payload, ready for a single write.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Incremental frame decoder: push() arbitrary received chunks (a socket
/// read returns whatever the kernel has), next() pops completed frames.
/// Both the production read loop (net/socket.cpp) and the split-read sweep
/// test drive this one class, so the tested path is the served path.
/// Throws FrameError on a protocol violation; the reassembler is then
/// poisoned (every later call throws) because a byte stream that lost
/// framing cannot be resynchronized — the connection must be dropped.
class FrameReassembler {
 public:
  void push(std::span<const std::uint8_t> bytes);
  std::optional<Frame> next();

  /// Bytes buffered toward the next incomplete frame.
  std::size_t pending_bytes() const { return buf_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  void check() const {
    if (poisoned_) throw FrameError("frame stream poisoned by earlier error");
  }

  std::vector<std::uint8_t> buf_;
  std::deque<Frame> ready_;
  bool poisoned_ = false;
};

// --- Handshake payloads ----------------------------------------------------

/// kHello: the worker introduces itself. `digest` fingerprints the model
/// weights + partition geometry + codec parameters (see net/worker.hpp's
/// model_digest) so a worker built from a different spec is rejected at
/// handshake instead of producing silently wrong tiles.
struct Hello {
  std::int32_t node_id = -1;
  std::uint64_t digest = 0;
  bool compress = true;
};

struct HelloAck {
  bool accepted = false;
  std::uint64_t digest = 0;  // central's digest, for the worker's own check
};

std::vector<std::uint8_t> encode_hello(const Hello& hello);
Hello decode_hello(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encode_hello_ack(const HelloAck& ack);
HelloAck decode_hello_ack(std::span<const std::uint8_t> payload);

}  // namespace adcnn::net
