#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace adcnn::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining poll budget in ms, clamped to [0, 100]. The 100 ms cap keeps
/// every wait loop responsive to shutdown()/stop flags even when the
/// caller passed a far deadline.
int poll_budget_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  return static_cast<int>(std::min<long long>(left.count(), 100));
}

/// Poll one fd for `events`; true when ready. EINTR retries inside the
/// deadline; POLLERR/POLLHUP report as ready so the subsequent read/write
/// observes the real error.
bool poll_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int budget = poll_budget_ms(deadline);
    const int rc = ::poll(&p, 1, budget);
    if (rc > 0) return true;
    if (rc < 0 && errno != EINTR && errno != EAGAIN) return false;
    if (Clock::now() >= deadline) return false;
  }
}

bool make_tcp_addr(const Endpoint& ep, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  return ::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1;
}

bool make_uds_addr(const Endpoint& ep, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr.sun_path)) return false;
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return true;
}

}  // namespace

std::string Endpoint::uri() const {
  if (kind == Kind::kUds) return "uds:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& uri) {
  Endpoint ep;
  if (uri.rfind("uds:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUds;
    ep.path = uri.substr(4);
    if (ep.path.empty()) throw std::invalid_argument("endpoint: empty path");
    return ep;
  }
  if (uri.rfind("tcp:", 0) == 0) {
    const std::string rest = uri.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      throw std::invalid_argument("endpoint: want tcp:host:port");
    }
    ep.kind = Endpoint::Kind::kTcp;
    ep.host = rest.substr(0, colon);
    ep.port = std::stoi(rest.substr(colon + 1));
    if (ep.port < 0 || ep.port > 65535) {
      throw std::invalid_argument("endpoint: port out of range");
    }
    return ep;
  }
  throw std::invalid_argument("endpoint: unknown scheme in '" + uri + "'");
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    // EINTR on close is not retried (POSIX leaves the fd state
    // unspecified; retrying risks closing a reused descriptor).
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_rw() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

IoStatus write_all(int fd, std::span<const std::uint8_t> bytes,
                   Clock::time_point deadline) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (Clock::now() >= deadline) return IoStatus::kTimeout;
      if (!poll_until(fd, POLLOUT, deadline)) {
        if (Clock::now() >= deadline) return IoStatus::kTimeout;
        return IoStatus::kError;
      }
      continue;
    }
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                 : IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus read_some(int fd, std::vector<std::uint8_t>& out,
                   Clock::time_point deadline) {
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      out.insert(out.end(), chunk, chunk + n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Clock::now() >= deadline) return IoStatus::kTimeout;
      if (!poll_until(fd, POLLIN, deadline)) {
        if (Clock::now() >= deadline) return IoStatus::kTimeout;
        return IoStatus::kError;
      }
      continue;
    }
    return errno == ECONNRESET ? IoStatus::kClosed : IoStatus::kError;
  }
}

Socket connect_to(const Endpoint& ep, Clock::time_point deadline,
                  std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    return Socket();
  };

  const int family = ep.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  Socket sock(::socket(family, SOCK_STREAM, 0));
  if (!sock.valid()) return fail("socket");
  set_nonblocking(sock.fd());

  int rc;
  if (ep.kind == Endpoint::Kind::kTcp) {
    sockaddr_in addr;
    if (!make_tcp_addr(ep, addr)) return fail("inet_pton");
    do {
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  } else {
    sockaddr_un addr;
    if (!make_uds_addr(ep, addr)) return fail("uds path");
    do {
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    return fail("connect");
  }
  if (rc < 0) {
    // Non-blocking connect in flight: wait for writability, then read the
    // final verdict from SO_ERROR.
    if (!poll_until(sock.fd(), POLLOUT, deadline)) {
      errno = ETIMEDOUT;
      return fail("connect (timeout)");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &soerr, &len) < 0) {
      return fail("getsockopt");
    }
    if (soerr != 0) {
      errno = soerr;
      return fail("connect");
    }
  }
  if (ep.kind == Endpoint::Kind::kTcp) set_nodelay(sock.fd());
  return sock;
}

Listener::Listener(const Endpoint& ep) {
  const int family = ep.kind == Endpoint::Kind::kTcp ? AF_INET : AF_UNIX;
  sock_ = Socket(::socket(family, SOCK_STREAM, 0));
  if (!sock_.valid()) {
    throw std::runtime_error(std::string("Listener: socket: ") +
                             std::strerror(errno));
  }
  bound_ = ep;
  if (ep.kind == Endpoint::Kind::kTcp) {
    int one = 1;
    ::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    if (!make_tcp_addr(ep, addr)) {
      throw std::runtime_error("Listener: bad host " + ep.host);
    }
    if (::bind(sock_.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw std::runtime_error(std::string("Listener: bind: ") +
                               std::strerror(errno));
    }
    // Resolve the ephemeral port so workers can be pointed at it.
    socklen_t len = sizeof(addr);
    if (::getsockname(sock_.fd(), reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      bound_.port = ntohs(addr.sin_port);
    }
  } else {
    ::unlink(ep.path.c_str());  // a stale socket file from a killed run
    sockaddr_un addr;
    if (!make_uds_addr(ep, addr)) {
      throw std::runtime_error("Listener: bad uds path " + ep.path);
    }
    if (::bind(sock_.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw std::runtime_error(std::string("Listener: bind: ") +
                               std::strerror(errno));
    }
  }
  if (::listen(sock_.fd(), 64) < 0) {
    throw std::runtime_error(std::string("Listener: listen: ") +
                             std::strerror(errno));
  }
  set_nonblocking(sock_.fd());
}

Listener::~Listener() {
  if (bound_.kind == Endpoint::Kind::kUds) ::unlink(bound_.path.c_str());
}

std::optional<Socket> Listener::accept(Clock::time_point deadline) {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      set_nonblocking(fd);
      if (bound_.kind == Endpoint::Kind::kTcp) set_nodelay(fd);
      return sock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (Clock::now() >= deadline) return std::nullopt;
      if (!poll_until(sock_.fd(), POLLIN, deadline) &&
          Clock::now() >= deadline) {
        return std::nullopt;
      }
      continue;
    }
    return std::nullopt;  // accept error (e.g. listener closed)
  }
}

bool FramedConn::send_frame(FrameType type,
                            std::span<const std::uint8_t> payload,
                            std::chrono::milliseconds timeout) {
  if (!alive()) return false;
  const auto wire = encode_frame(type, payload);
  std::lock_guard lock(send_mu_);
  const IoStatus st = write_all(sock_.fd(), wire, Clock::now() + timeout);
  if (st != IoStatus::kOk) {
    alive_.store(false, std::memory_order_release);
    return false;
  }
  bytes_tx_.fetch_add(wire.size(), std::memory_order_relaxed);
  return true;
}

std::optional<Frame> FramedConn::recv_frame(Clock::time_point deadline) {
  if (auto f = rx_.next()) return f;
  while (alive()) {
    std::vector<std::uint8_t> chunk;
    const IoStatus st = read_some(sock_.fd(), chunk, deadline);
    if (st == IoStatus::kTimeout) return std::nullopt;
    if (st != IoStatus::kOk) {
      alive_.store(false, std::memory_order_release);
      return std::nullopt;
    }
    bytes_rx_.fetch_add(chunk.size(), std::memory_order_relaxed);
    try {
      rx_.push(chunk);
    } catch (const FrameError&) {
      // Torn or hostile framing: the stream cannot be resynchronized.
      alive_.store(false, std::memory_order_release);
      return std::nullopt;
    }
    if (auto f = rx_.next()) return f;
  }
  return std::nullopt;
}

void FramedConn::shutdown() {
  alive_.store(false, std::memory_order_release);
  // Wake a blocked reader/writer with EOF; the descriptor itself is only
  // released by the FramedConn destructor, after its threads let go.
  sock_.shutdown_rw();
}

}  // namespace adcnn::net
