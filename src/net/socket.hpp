// POSIX socket plumbing for the transport layer: RAII descriptors,
// non-blocking connect with a deadline, poll-based read/write that is
// EINTR- and partial-transfer-correct, TCP and Unix-domain listeners, and
// FramedConn — one established connection carrying length-prefixed frames
// (net/frame.hpp).
//
// Every descriptor is non-blocking; all waiting happens in poll() with an
// explicit deadline, so a stalled peer (SIGSTOP'd process, full socket
// buffer, half-open connection) surfaces as a timeout the caller can turn
// into a liveness decision instead of a thread wedged in read().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace adcnn::net {

using Clock = std::chrono::steady_clock;

/// Where to listen/connect. `uri()` round-trips through parse_endpoint, so
/// a resolved endpoint (e.g. an ephemeral TCP port after bind) can be
/// handed to a worker process on its command line.
struct Endpoint {
  enum class Kind { kTcp, kUds };
  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  // TCP
  int port = 0;                    // TCP; 0 = ephemeral (resolved at bind)
  std::string path;                // UDS

  std::string uri() const;
};

/// Parse "tcp:host:port" or "uds:/path". Throws std::invalid_argument.
Endpoint parse_endpoint(const std::string& uri);

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  /// shutdown(2) both directions without releasing the descriptor: wakes a
  /// reader/writer blocked in poll on another thread without the fd-reuse
  /// race that closing a polled descriptor invites.
  void shutdown_rw();

 private:
  int fd_ = -1;
};

/// Outcome of a timed I/O step.
enum class IoStatus { kOk, kTimeout, kClosed, kError };

/// Write the whole buffer before `deadline`: poll for writability, retry
/// EINTR, resume after partial sends. Safe against SIGPIPE (MSG_NOSIGNAL).
IoStatus write_all(int fd, std::span<const std::uint8_t> bytes,
                   Clock::time_point deadline);

/// Read whatever the kernel has (>= 1 byte) before `deadline` into `out`.
/// kClosed on orderly EOF, kTimeout if nothing arrived in time.
IoStatus read_some(int fd, std::vector<std::uint8_t>& out,
                   Clock::time_point deadline);

/// Connect with a deadline (non-blocking connect + poll + SO_ERROR).
/// Invalid socket on failure; `error` (optional) receives a description.
Socket connect_to(const Endpoint& ep, Clock::time_point deadline,
                  std::string* error = nullptr);

/// Listening socket (TCP with SO_REUSEADDR, or UDS unlinking a stale
/// path). The bound endpoint — with the ephemeral port resolved — is
/// available as bound().
class Listener {
 public:
  explicit Listener(const Endpoint& ep);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one connection, waiting at most until `deadline`.
  std::optional<Socket> accept(Clock::time_point deadline);

  const Endpoint& bound() const { return bound_; }

 private:
  Socket sock_;
  Endpoint bound_;
};

/// One established, framed, bidirectional connection.
///
/// Thread contract: send_frame() is internally serialized (many senders —
/// a task pump and a heartbeat/ack writer may share the connection);
/// recv_frame() must be called from a single reader thread. shutdown()
/// may be called from any thread to unblock both sides.
class FramedConn {
 public:
  explicit FramedConn(Socket sock) : sock_(std::move(sock)) {}

  /// False once the connection failed (error, EOF, protocol violation,
  /// or shutdown()); it never recovers — reconnect instead.
  bool alive() const { return alive_.load(std::memory_order_acquire); }

  /// Sends a whole frame or kills the connection; false = dead. A send
  /// that cannot complete within `timeout` (peer stopped draining and the
  /// socket buffer filled) also kills it — a transport with an unbounded
  /// backlog would undo the runtime's backpressure story.
  bool send_frame(FrameType type, std::span<const std::uint8_t> payload,
                  std::chrono::milliseconds timeout =
                      std::chrono::milliseconds(2000));

  /// Next frame, waiting at most until `deadline`. nullopt + alive() means
  /// timeout (caller applies its liveness policy); nullopt + !alive()
  /// means the connection died (EOF, I/O error, or torn/hostile framing).
  std::optional<Frame> recv_frame(Clock::time_point deadline);

  /// Bytes moved on the wire (header + payload), for net.bytes_{tx,rx}.
  std::uint64_t bytes_tx() const { return bytes_tx_.load(); }
  std::uint64_t bytes_rx() const { return bytes_rx_.load(); }

  /// Close the underlying socket, waking a blocked reader/writer.
  void shutdown();

 private:
  Socket sock_;
  std::mutex send_mu_;
  FrameReassembler rx_;
  std::atomic<bool> alive_{true};
  std::atomic<std::uint64_t> bytes_tx_{0};
  std::atomic<std::uint64_t> bytes_rx_{0};
};

}  // namespace adcnn::net
