#include "net/socket_link.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace adcnn::net {

runtime::FaultInjector::LinkFate SocketLink::transmit_message(
    std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
    std::int32_t attempt, std::vector<std::uint8_t>* payload) {
  runtime::FaultInjector::LinkFate fate;
  if (faults_) {
    fate = faults_->link_fate(fault_dir_, fault_node_, image_id, tile_id,
                              attempt);
  }
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  transfers_.fetch_add(1, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    if (obs_bytes_) obs_bytes_->add(static_cast<std::int64_t>(bytes));
    if (obs_transfers_) obs_transfers_->add(1);
  }
  if (fate.corrupt && payload) {
    faults_->corrupt_payload(*payload, fault_dir_, fault_node_, image_id,
                             tile_id, attempt);
  }
  if (fate.delay_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(fate.delay_s));
  }
  return fate;
}

void SocketLink::check_quiescent(const char* what) const {
  if (transfers_.load() != 0) {
    throw std::logic_error(std::string("SocketLink::") + what +
                           ": attach after the link carried traffic "
                           "(attach hooks before first transmit)");
  }
}

void SocketLink::attach_faults(runtime::FaultInjector* injector,
                               runtime::FaultInjector::Direction dir,
                               int node) {
  check_quiescent("attach_faults");
  faults_ = injector;
  fault_dir_ = dir;
  fault_node_ = node;
}

void SocketLink::attach_telemetry(obs::Counter* bytes,
                                  obs::Counter* transfers) {
  check_quiescent("attach_telemetry");
  obs_bytes_ = bytes;
  obs_transfers_ = transfers;
}

void SocketLink::adopt(std::shared_ptr<FramedConn> conn) {
  std::shared_ptr<FramedConn> old;
  {
    std::lock_guard lock(mu_);
    old = std::move(conn_);
    conn_ = std::move(conn);
    generation_.fetch_add(1, std::memory_order_release);
  }
  if (old) old->shutdown();
}

void SocketLink::drop(const std::shared_ptr<FramedConn>& conn) {
  std::shared_ptr<FramedConn> old;
  {
    std::lock_guard lock(mu_);
    if (conn_ != conn) return;  // a newer generation already took over
    old = std::move(conn_);
    conn_.reset();
  }
  if (old) old->shutdown();
}

std::shared_ptr<FramedConn> SocketLink::conn() const {
  std::lock_guard lock(mu_);
  return conn_;
}

bool SocketLink::connected() const {
  std::lock_guard lock(mu_);
  return conn_ && conn_->alive();
}

}  // namespace adcnn::net
