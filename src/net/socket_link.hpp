// SocketLink: the socket-backed runtime::Transport for one peer.
//
// A SocketLink is the *stable identity* of the link to one node — the
// CentralNode (and a worker's ConvNodeWorker) hold a raw Transport
// pointer/reference across the peer's whole lifetime — while the
// underlying FramedConn is *generational*: adopt() installs a freshly
// handshaken connection after a reconnect, drop() retires a dead one, and
// the I/O pump threads snapshot the current generation per operation.
//
// Transport::transmit_message() performs exactly what SimulatedLink does —
// logical byte accounting plus fault injection — so a seeded FaultPlan
// produces the same drops/corruptions whether the cluster runs on threads
// or on sockets; the physical frame write is the caller's job (it honours
// fate.drop by not sending).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "net/socket.hpp"
#include "runtime/link.hpp"

namespace adcnn::net {

class SocketLink : public runtime::Transport {
 public:
  SocketLink() = default;

  // --- Transport ----------------------------------------------------------
  runtime::FaultInjector::LinkFate transmit_message(
      std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
      std::int32_t attempt,
      std::vector<std::uint8_t>* payload = nullptr) override;

  void attach_faults(runtime::FaultInjector* injector,
                     runtime::FaultInjector::Direction dir, int node) override;
  void attach_telemetry(obs::Counter* bytes, obs::Counter* transfers) override;

  std::uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  std::uint64_t transfers() const override { return transfers_.load(); }

  // --- Connection lifecycle ----------------------------------------------
  /// Install a new live connection (handshake already done), retiring and
  /// shutting down any previous one. Bumps the generation.
  void adopt(std::shared_ptr<FramedConn> conn);

  /// Retire the current connection if it is still `conn` (a stale drop
  /// from a slow thread must not kill a newer generation).
  void drop(const std::shared_ptr<FramedConn>& conn);

  /// Snapshot the current connection (null when disconnected).
  std::shared_ptr<FramedConn> conn() const;

  bool connected() const;
  /// Incremented by every adopt(); lets pumps detect reconnects.
  std::uint64_t generation() const { return generation_.load(); }

 private:
  void check_quiescent(const char* what) const;

  mutable std::mutex mu_;
  std::shared_ptr<FramedConn> conn_;
  std::atomic<std::uint64_t> generation_{0};

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> transfers_{0};
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_transfers_ = nullptr;
  runtime::FaultInjector* faults_ = nullptr;
  runtime::FaultInjector::Direction fault_dir_ =
      runtime::FaultInjector::Direction::kDownlink;
  int fault_node_ = -1;
};

}  // namespace adcnn::net
