#include "net/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>

#include "compress/pipeline.hpp"
#include "net/socket_link.hpp"
#include "nn/models_mini.hpp"
#include "nn/optimize.hpp"
#include "runtime/central_node.hpp"  // RetryPolicy::backoff_s
#include "runtime/conv_node.hpp"
#include "runtime/message.hpp"

namespace adcnn::net {

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

bool parent_gone(std::int64_t parent_pid) {
  if (parent_pid <= 0) return false;
  return ::kill(static_cast<pid_t>(parent_pid), 0) != 0 && errno == ESRCH;
}

}  // namespace

core::PartitionedModel ModelSpec::build() const {
  Rng rng(seed);
  nn::MiniOptions mini;
  mini.image = image;
  mini.channels = channels;
  mini.num_classes = classes;
  mini.width_mult = width_mult;
  core::FdspOptions opt;
  opt.grid = core::TileGrid{grid_rows, grid_cols};
  opt.clipped_relu = clipped_relu;
  opt.clip_upper = clip_upper;
  opt.quantize = quantize;
  opt.bits = bits;
  return core::apply_fdsp(nn::make_mini(family, rng, mini), opt);
}

std::vector<Tensor> calibration_inputs(const ModelSpec& spec) {
  // Seeded off the spec (not wall-clock, not node id): central and every
  // worker must derive identical activation grids or the digests diverge.
  Rng rng(spec.seed ^ 0x1B8ull);
  std::vector<Tensor> inputs;
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(
        Tensor::randn(Shape{1, spec.channels, spec.image, spec.image}, rng));
  }
  return inputs;
}

std::vector<std::string> ModelSpec::to_args() const {
  return {
      "--family=" + family,
      "--seed=" + std::to_string(seed),
      "--image=" + std::to_string(image),
      "--channels=" + std::to_string(channels),
      "--classes=" + std::to_string(classes),
      "--width=" + std::to_string(width_mult),
      "--grid=" + std::to_string(grid_rows) + "x" + std::to_string(grid_cols),
      "--clipped_relu=" + std::to_string(clipped_relu ? 1 : 0),
      "--clip_upper=" + std::to_string(clip_upper),
      "--quantize=" + std::to_string(quantize ? 1 : 0),
      "--bits=" + std::to_string(bits),
      "--int8=" + std::to_string(int8 ? 1 : 0),
  };
}

std::uint64_t model_digest(core::PartitionedModel& pm) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  const std::vector<float> state = pm.model.state();
  h = fnv1a(h, state.data(), state.size() * sizeof(float));
  const std::int64_t geom[] = {pm.grid.rows, pm.grid.cols,
                               pm.prefix_begin(), pm.prefix_end(),
                               pm.suffix_begin(), pm.suffix_end(),
                               static_cast<std::int64_t>(pm.bits),
                               static_cast<std::int64_t>(pm.precision)};
  h = fnv1a(h, geom, sizeof(geom));
  h = fnv1a(h, &pm.clip_range, sizeof(pm.clip_range));
  return h;
}

WorkerOptions parse_worker_args(int argc, char** argv) {
  WorkerOptions opt;
  const auto want = [](const std::string& arg, const char* key,
                       std::string* value) {
    const std::string prefix = std::string(key) + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    *value = arg.substr(prefix.size());
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (want(arg, "--connect", &v)) {
      opt.connect_uri = v;
    } else if (want(arg, "--node", &v)) {
      opt.node_id = std::stoi(v);
    } else if (want(arg, "--family", &v)) {
      opt.spec.family = v;
    } else if (want(arg, "--seed", &v)) {
      opt.spec.seed = std::stoull(v);
    } else if (want(arg, "--image", &v)) {
      opt.spec.image = std::stoll(v);
    } else if (want(arg, "--channels", &v)) {
      opt.spec.channels = std::stoll(v);
    } else if (want(arg, "--classes", &v)) {
      opt.spec.classes = std::stoi(v);
    } else if (want(arg, "--width", &v)) {
      opt.spec.width_mult = std::stod(v);
    } else if (want(arg, "--grid", &v)) {
      const std::size_t x = v.find('x');
      if (x == std::string::npos) {
        throw std::invalid_argument("--grid wants RxC");
      }
      opt.spec.grid_rows = std::stoi(v.substr(0, x));
      opt.spec.grid_cols = std::stoi(v.substr(x + 1));
    } else if (want(arg, "--clipped_relu", &v)) {
      opt.spec.clipped_relu = std::stoi(v) != 0;
    } else if (want(arg, "--clip_upper", &v)) {
      opt.spec.clip_upper = std::stof(v);
    } else if (want(arg, "--quantize", &v)) {
      opt.spec.quantize = std::stoi(v) != 0;
    } else if (want(arg, "--bits", &v)) {
      opt.spec.bits = std::stoi(v);
    } else if (want(arg, "--int8", &v)) {
      opt.spec.int8 = std::stoi(v) != 0;
    } else if (want(arg, "--compress", &v)) {
      opt.compress = std::stoi(v) != 0;
    } else if (want(arg, "--optimize", &v)) {
      opt.optimize = std::stoi(v) != 0;
    } else if (want(arg, "--liveness", &v)) {
      opt.liveness_timeout_s = std::stod(v);
    } else if (want(arg, "--max_connect_attempts", &v)) {
      opt.max_connect_attempts = std::stoi(v);
    } else if (want(arg, "--parent", &v)) {
      opt.parent_pid = std::stoll(v);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      throw std::invalid_argument("unknown worker argument: " + arg);
    }
  }
  if (opt.connect_uri.empty()) {
    throw std::invalid_argument("worker needs --connect=<tcp:host:port|uds:/path>");
  }
  if (opt.node_id < 0) throw std::invalid_argument("worker needs --node >= 0");
  return opt;
}

namespace {

/// One connected session: handshake, serve tiles until the connection
/// dies or a shutdown frame arrives. Returns true to reconnect, false to
/// exit the process.
bool serve_connection(const WorkerOptions& opt, core::PartitionedModel& pm,
                      const compress::TileCodec* codec, std::uint64_t digest,
                      std::shared_ptr<FramedConn> conn, int* exit_code) {
  using runtime::Channel;
  using runtime::TileResult;
  using runtime::TileTask;

  // --- Handshake: introduce ourselves, wait for the verdict. --------------
  Hello hello;
  hello.node_id = opt.node_id;
  hello.digest = digest;
  hello.compress = opt.compress;
  if (!conn->send_frame(FrameType::kHello, encode_hello(hello))) return true;
  const auto ack_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(5.0));
  std::optional<Frame> ack_frame;
  while (!(ack_frame = conn->recv_frame(ack_deadline))) {
    if (!conn->alive() || Clock::now() >= ack_deadline) return true;
  }
  if (ack_frame->type != FrameType::kHelloAck) return true;
  HelloAck ack;
  try {
    ack = decode_hello_ack(ack_frame->payload);
  } catch (const FrameError&) {
    return true;
  }
  if (!ack.accepted || ack.digest != digest) {
    // Spec mismatch is a deployment error, not a transient fault: running
    // a different network would return silently wrong tiles. Exit loudly.
    std::fprintf(stderr,
                 "adcnn_conv_worker[%d]: model digest mismatch with central "
                 "(ours %016llx, theirs %016llx) — check --family/--seed/"
                 "--grid flags\n",
                 opt.node_id, static_cast<unsigned long long>(digest),
                 static_cast<unsigned long long>(ack.digest));
    *exit_code = 2;
    return false;
  }

  // --- Bridge the socket onto the in-process worker machinery. ------------
  Channel<TileTask> inbox;
  Channel<TileResult> outbox;
  SocketLink uplink;
  uplink.adopt(conn);
  runtime::ConvNodeWorker worker(opt.node_id, pm, codec, inbox, outbox,
                                 uplink, {}, nullptr,
                                 opt.spec.int8 ? nn::Precision::kInt8
                                               : nn::Precision::kFp32);

  // Result pump: computed tiles back onto the wire.
  std::thread tx([&] {
    while (auto result = outbox.receive()) {
      if (!conn->send_frame(FrameType::kTileResult, serialize(*result))) {
        return;  // connection died; the main loop notices via alive()
      }
    }
  });

  const auto liveness = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(opt.liveness_timeout_s));
  bool reconnect = true;
  auto last_rx = Clock::now();
  while (conn->alive()) {
    const auto frame =
        conn->recv_frame(std::min(Clock::now() + std::chrono::milliseconds(100),
                                  last_rx + liveness));
    if (!frame) {
      if (!conn->alive()) break;
      if (Clock::now() >= last_rx + liveness) break;  // stalled central
      if (parent_gone(opt.parent_pid)) {
        reconnect = false;
        break;
      }
      continue;
    }
    last_rx = Clock::now();
    switch (frame->type) {
      case FrameType::kTileTask: {
        try {
          inbox.send(runtime::deserialize_task(frame->payload));
        } catch (const std::exception&) {
          // Torn/corrupted task payload: drop it — the central node's
          // retry/zero-fill covers the tile. (The CRC already rejects
          // transport damage; this guards a hostile/buggy peer.)
        }
        break;
      }
      case FrameType::kHeartbeat:
        conn->send_frame(FrameType::kHeartbeatAck, frame->payload);
        break;
      case FrameType::kShutdown:
        reconnect = false;
        conn->shutdown();
        break;
      default:
        break;  // kHello/kHelloAck/kHeartbeatAck are unexpected; ignore
    }
  }

  // Teardown order matters: the worker's dtor closes the inbox and joins
  // the compute thread (so no further outbox sends), then closing the
  // outbox releases the tx pump.
  worker.kill();
  inbox.close();
  uplink.drop(conn);
  conn->shutdown();
  outbox.close();
  if (tx.joinable()) tx.join();
  return reconnect;
}

}  // namespace

int run_worker(const WorkerOptions& opt) {
  ::signal(SIGPIPE, SIG_IGN);

  core::PartitionedModel pm = opt.spec.build();
  // int8 implies the optimized graph on both sides: calibration reads the
  // fused clipped-ReLU bounds, and the folded weights must match central's
  // for the digests to agree.
  if (opt.optimize || opt.spec.int8) nn::optimize_for_inference(pm.model);
  if (opt.spec.int8) {
    nn::prepare_int8(pm.model, calibration_inputs(opt.spec));
    pm.precision = 1;
  }
  const std::uint64_t digest = model_digest(pm);
  std::optional<compress::TileCodec> codec;
  if (opt.compress) {
    if (pm.clip_range <= 0.0f) {
      std::fprintf(stderr,
                   "adcnn_conv_worker[%d]: --compress=1 needs a clipped-ReLU "
                   "model (--clipped_relu=1)\n",
                   opt.node_id);
      return 2;
    }
    codec.emplace(pm.clip_range, pm.bits);
  }
  const Endpoint ep = parse_endpoint(opt.connect_uri);

  runtime::RetryPolicy backoff;
  backoff.backoff_base_s = opt.backoff_base_s;
  backoff.backoff_cap_s = opt.backoff_cap_s;
  backoff.jitter = 0.2;

  int attempts = 0;
  int exit_code = 0;
  for (;;) {
    if (parent_gone(opt.parent_pid)) return 0;
    std::string error;
    Socket sock = connect_to(ep, Clock::now() + std::chrono::seconds(2),
                             &error);
    if (!sock.valid()) {
      ++attempts;
      if (opt.max_connect_attempts > 0 &&
          attempts >= opt.max_connect_attempts) {
        std::fprintf(stderr, "adcnn_conv_worker[%d]: giving up: %s\n",
                     opt.node_id, error.c_str());
        return 1;
      }
      const double sleep_s = backoff.backoff_s(
          attempts - 1,
          static_cast<std::uint64_t>(opt.node_id) * 0x9E37ull + now_ns() % 7);
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(sleep_s, 0.01)));
      continue;
    }
    attempts = 0;
    if (opt.verbose) {
      std::fprintf(stderr, "adcnn_conv_worker[%d]: connected to %s\n",
                   opt.node_id, opt.connect_uri.c_str());
    }
    auto conn = std::make_shared<FramedConn>(std::move(sock));
    if (!serve_connection(opt, pm, codec ? &*codec : nullptr, digest, conn,
                          &exit_code)) {
      return exit_code;
    }
    // Connection lost: pace the reconnect so a flapping central is not
    // hammered by synchronized workers.
    std::this_thread::sleep_for(std::chrono::duration<double>(
        backoff.backoff_s(0, static_cast<std::uint64_t>(opt.node_id) +
                                 now_ns() % 13) +
        0.01));
  }
}

}  // namespace adcnn::net
