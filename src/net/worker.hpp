// Conv-node worker process: the Figure 1(b) edge device as a real OS
// process, connected to the Central node over TCP or a Unix-domain socket.
//
// The central process and every worker rebuild the *same* partitioned
// model from a shared ModelSpec (deterministic seeded init), and the
// handshake carries a digest of weights + partition geometry + codec
// parameters so a spec drift is rejected before any tile is computed on
// the wrong network. Inside the process the tile path is exactly the
// in-process runtime — the same ConvNodeWorker, codec and wire messages —
// so a socket cluster is bit-identical to the threaded EdgeCluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fdsp.hpp"
#include "net/socket.hpp"

namespace adcnn::net {

/// Recipe both sides use to build the identical partitioned model.
struct ModelSpec {
  std::string family = "vgg";  // nn::make_mini family name
  std::uint64_t seed = 11;
  std::int64_t image = 32;
  std::int64_t channels = 3;
  int classes = 4;
  double width_mult = 1.0;
  int grid_rows = 4;
  int grid_cols = 4;
  bool clipped_relu = true;
  float clip_upper = 3.0f;
  bool quantize = true;
  int bits = 4;
  /// Run the Conv-node prefix through the int8 engine: both sides build
  /// the optimized graph, calibrate it on the spec-seeded calibration set
  /// (see calibration_inputs) and mark the model int8, so the handshake
  /// digest rejects a worker built at the other precision.
  bool int8 = false;

  core::PartitionedModel build() const;

  /// Command-line fragments a worker parses back into the same spec.
  std::vector<std::string> to_args() const;
};

/// Deterministic int8 calibration set for `spec`: every process that
/// builds the spec derives the same tensors (seeded off spec.seed), so the
/// activation grids — and therefore the quantized tile outputs — are
/// bit-identical across central and workers.
std::vector<Tensor> calibration_inputs(const ModelSpec& spec);

/// FNV-1a over the weight snapshot, partition geometry and codec
/// parameters: equal digests mean bit-identical tile computation.
std::uint64_t model_digest(core::PartitionedModel& pm);

struct WorkerOptions {
  std::string connect_uri;  // tcp:host:port or uds:/path
  int node_id = 0;
  ModelSpec spec;
  bool compress = true;
  /// Run nn::optimize_for_inference before serving (must match central).
  bool optimize = false;
  /// No frame from the central node (heartbeats included) for this long
  /// means the connection is dead: drop it and reconnect.
  double liveness_timeout_s = 2.0;
  /// Reconnect pacing: capped exponential with jitter (attempt-keyed).
  double backoff_base_s = 0.05;
  double backoff_cap_s = 1.0;
  /// Give up after this many consecutive failed connect attempts; 0 =
  /// retry forever (until the parent disappears or SIGTERM).
  int max_connect_attempts = 0;
  /// When > 0, exit once this process id stops existing — a worker must
  /// not outlive the central process that spawned it.
  std::int64_t parent_pid = 0;
  bool verbose = false;
};

/// Parse worker command-line arguments (see to_args()/worker_main.cpp).
/// Throws std::invalid_argument on malformed input.
WorkerOptions parse_worker_args(int argc, char** argv);

/// Run the worker until kShutdown, SIGTERM, parent death, or (when
/// bounded) connect exhaustion. Returns the process exit code.
int run_worker(const WorkerOptions& opt);

}  // namespace adcnn::net
