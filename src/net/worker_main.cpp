// adcnn_conv_worker: one Conv node as a standalone process.
//
//   adcnn_conv_worker --connect=tcp:127.0.0.1:4224 --node=0
//       --family=vgg --seed=11 --grid=4x4 [--compress=1] [--parent=<pid>]
//
// The worker rebuilds the partitioned model from the spec flags
// (deterministic seeded init), connects to the central process, proves
// weight/geometry identity via the handshake digest, then serves tiles
// until a shutdown frame, SIGTERM, or the parent process disappears. A
// lost connection is retried with capped exponential backoff.
#include <cstdio>
#include <exception>

#include "net/worker.hpp"

int main(int argc, char** argv) {
  try {
    const adcnn::net::WorkerOptions opt =
        adcnn::net::parse_worker_args(argc, argv);
    return adcnn::net::run_worker(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adcnn_conv_worker: %s\n", e.what());
    return 2;
  }
}
