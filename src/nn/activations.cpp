#include "nn/activations.hpp"

#include <cassert>
#include <stdexcept>

namespace adcnn::nn {

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const bool train = (mode == Mode::kTrain);
  if (train) mask_.assign(static_cast<std::size_t>(x.numel()), 0);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = x[i] > 0.0f;
    y[i] = pos ? x[i] : 0.0f;
    if (train) mask_[static_cast<std::size_t>(i)] = pos;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  assert(static_cast<std::int64_t>(mask_.size()) == dy.numel());
  Tensor dx(dy.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i)
    dx[i] = mask_[static_cast<std::size_t>(i)] ? dy[i] : 0.0f;
  return dx;
}

ClippedReLU::ClippedReLU(float lower, float upper, std::string name)
    : lower_(lower), upper_(upper), name_(std::move(name)) {
  if (!(upper > lower)) {
    throw std::invalid_argument("ClippedReLU: upper must exceed lower");
  }
}

Tensor ClippedReLU::forward(const Tensor& x, Mode mode) {
  Tensor y(x.shape());
  const bool train = (mode == Mode::kTrain);
  if (train) mask_.assign(static_cast<std::size_t>(x.numel()), 0);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float v = x[i];
    if (v < lower_) {
      y[i] = 0.0f;
    } else if (v > upper_) {
      y[i] = upper_ - lower_;
    } else {
      y[i] = v - lower_;
      if (train) mask_[static_cast<std::size_t>(i)] = 1;
    }
  }
  return y;
}

Tensor ClippedReLU::backward(const Tensor& dy) {
  assert(static_cast<std::int64_t>(mask_.size()) == dy.numel());
  Tensor dx(dy.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i)
    dx[i] = mask_[static_cast<std::size_t>(i)] ? dy[i] : 0.0f;
  return dx;
}

}  // namespace adcnn::nn
