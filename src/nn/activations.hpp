// Activation layers: ReLU and the paper's clipped ReLU (§4.1).
//
// ReLU_[a,b](x) = 0 for x < a, x - a for a <= x <= b, b - a for x > b.
// The clipped variant bounds the output range to [0, b-a] (enabling fixed
// quantization grids) and, with a > 0, increases sparsity of the Conv-node
// outputs — both of which shrink the transmitted intermediate results.
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<unsigned char> mask_;
};

class ClippedReLU final : public Layer {
 public:
  ClippedReLU(float lower, float upper, std::string name = "clipped_relu");

  Tensor forward(const Tensor& x, Mode mode) override;
  /// Straight-through inside the active band (a < x < b); zero outside —
  /// §4.4: full-precision gradients flow where the unit is responsive.
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }
  std::string name() const override { return name_; }

  float lower() const { return lower_; }
  float upper() const { return upper_; }
  /// Output range span (the quantizer grid is built over [0, range()]).
  float range() const { return upper_ - lower_; }

 private:
  float lower_, upper_;
  std::string name_;
  std::vector<unsigned char> mask_;
};

}  // namespace adcnn::nn
