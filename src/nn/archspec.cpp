#include "nn/archspec.hpp"

#include <stdexcept>

namespace adcnn::arch {

namespace {

/// Incrementally builds an ArchSpec, tracking the running activation shape.
class Builder {
 public:
  Builder(std::string name, std::int64_t cin, std::int64_t h, std::int64_t w) {
    spec_.name = std::move(name);
    spec_.cin = cin;
    spec_.hin = h;
    spec_.win = w;
    c_ = cin;
    h_ = h;
    w_ = w;
  }

  void begin_block(const std::string& name) {
    block_ = BlockSpec{};
    block_.name = name;
  }

  void end_block() { spec_.blocks.push_back(std::move(block_)); }

  void conv(std::int64_t cout, std::int64_t k, std::int64_t stride,
            std::int64_t pad, bool aux = false, bool one_d = false) {
    LayerSpec l;
    l.op = Op::kConv;
    l.name = block_.name + ".conv";
    l.k = k;
    l.stride = stride;
    l.pad = pad;
    l.cin = c_;
    l.hin = h_;
    l.win = w_;
    l.cout = cout;
    l.hout = one_d ? h_ : (h_ + 2 * pad - k) / stride + 1;
    l.wout = (w_ + 2 * pad - k) / stride + 1;
    const std::int64_t kh = one_d ? 1 : k;
    l.flops = 2 * l.cout * l.hout * l.wout * l.cin * kh * k;
    l.param_bytes = l.cout * l.cin * kh * k * 4;
    l.aux = aux;
    block_.layers.push_back(l);
    if (!aux) {
      c_ = l.cout;
      h_ = l.hout;
      w_ = l.wout;
    }
  }

  void bn() { elementwise(Op::kBatchNorm, ".bn", 2); }
  void relu() { elementwise(Op::kReLU, ".relu", 1); }
  void add() { elementwise(Op::kAdd, ".add", 1); }

  void pool(std::int64_t k, bool one_d = false) {
    LayerSpec l;
    l.op = Op::kMaxPool;
    l.name = block_.name + ".pool";
    l.k = k;
    l.stride = k;
    l.cin = c_;
    l.hin = h_;
    l.win = w_;
    l.cout = c_;
    l.hout = one_d ? h_ : h_ / k;
    l.wout = w_ / k;
    l.flops = l.cout * l.hout * l.wout * (one_d ? k : k * k);
    block_.layers.push_back(l);
    h_ = l.hout;
    w_ = l.wout;
  }

  void global_pool() {
    LayerSpec l;
    l.op = Op::kGlobalPool;
    l.name = block_.name + ".gap";
    l.cin = c_;
    l.hin = h_;
    l.win = w_;
    l.cout = c_;
    l.hout = 1;
    l.wout = 1;
    l.flops = c_ * h_ * w_;
    block_.layers.push_back(l);
    h_ = 1;
    w_ = 1;
  }

  void fc(std::int64_t out) {
    LayerSpec l;
    l.op = Op::kFC;
    l.name = block_.name + ".fc";
    l.cin = c_ * h_ * w_;
    l.hin = 1;
    l.win = 1;
    l.cout = out;
    l.hout = 1;
    l.wout = 1;
    l.flops = 2 * l.cin * l.cout;
    l.param_bytes = (l.cin + 1) * l.cout * 4;
    block_.layers.push_back(l);
    c_ = out;
    h_ = 1;
    w_ = 1;
  }

  void upsample(std::int64_t factor) {
    LayerSpec l;
    l.op = Op::kUpsample;
    l.name = block_.name + ".up";
    l.k = factor;
    l.cin = c_;
    l.hin = h_;
    l.win = w_;
    l.cout = c_;
    l.hout = h_ * factor;
    l.wout = w_ * factor;
    l.flops = l.cout * l.hout * l.wout;
    block_.layers.push_back(l);
    h_ = l.hout;
    w_ = l.wout;
  }

  /// Conv-BN-ReLU block (the paper's Figure 2(a)), optional trailing pool.
  void conv_block(const std::string& name, std::int64_t cout, std::int64_t k,
                  std::int64_t pool_k = 0, std::int64_t stride = 1,
                  std::int64_t pad = -1, bool one_d = false) {
    begin_block(name);
    conv(cout, k, stride, pad < 0 ? k / 2 : pad, false, one_d);
    bn();
    relu();
    if (pool_k > 1) pool(pool_k, one_d);
    end_block();
  }

  /// ResNet basic block (Figure 2(b)/(c)).
  void residual_block(const std::string& name, std::int64_t cout,
                      std::int64_t stride) {
    begin_block(name);
    const bool project = (stride != 1 || c_ != cout);
    const std::int64_t cin0 = c_, h0 = h_, w0 = w_;
    conv(cout, 3, stride, 1);
    bn();
    relu();
    conv(cout, 3, 1, 1);
    bn();
    if (project) {
      // 1x1 projection shortcut; aux keeps it off the spatial halo chain.
      LayerSpec l;
      l.op = Op::kConv;
      l.name = block_.name + ".proj";
      l.k = 1;
      l.stride = stride;
      l.pad = 0;
      l.cin = cin0;
      l.hin = h0;
      l.win = w0;
      l.cout = cout;
      l.hout = h_;
      l.wout = w_;
      l.flops = 2 * l.cout * l.hout * l.wout * l.cin;
      l.param_bytes = l.cout * l.cin * 4;
      l.aux = true;
      block_.layers.push_back(l);
    }
    add();
    relu();
    end_block();
  }

  ArchSpec take() { return std::move(spec_); }

 private:
  void elementwise(Op op, const char* suffix, std::int64_t flops_per_elem) {
    LayerSpec l;
    l.op = op;
    l.name = block_.name + suffix;
    l.cin = c_;
    l.hin = h_;
    l.win = w_;
    l.cout = c_;
    l.hout = h_;
    l.wout = w_;
    l.flops = flops_per_elem * c_ * h_ * w_;
    if (op == Op::kBatchNorm) l.param_bytes = 4 * c_ * 4;
    block_.layers.push_back(l);
  }

  ArchSpec spec_;
  BlockSpec block_;
  std::int64_t c_ = 0, h_ = 0, w_ = 0;
};

}  // namespace

std::int64_t BlockSpec::flops() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.flops;
  return total;
}

std::int64_t BlockSpec::param_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.param_bytes;
  return total;
}

std::int64_t BlockSpec::in_bytes() const {
  return layers.empty() ? 0 : layers.front().in_bytes();
}

std::int64_t BlockSpec::out_bytes() const {
  return layers.empty() ? 0 : layers.back().out_bytes();
}

bool BlockSpec::has_pool() const {
  for (const auto& l : layers)
    if (l.op == Op::kMaxPool) return true;
  return false;
}

std::int64_t ArchSpec::total_flops() const {
  std::int64_t total = 0;
  for (const auto& b : blocks) total += b.flops();
  return total;
}

std::int64_t ArchSpec::prefix_flops() const {
  std::int64_t total = 0;
  for (int i = 0; i < separable_blocks; ++i)
    total += blocks[static_cast<std::size_t>(i)].flops();
  return total;
}

std::int64_t ArchSpec::suffix_flops() const {
  return total_flops() - prefix_flops();
}

std::int64_t ArchSpec::total_param_bytes() const {
  std::int64_t total = 0;
  for (const auto& b : blocks) total += b.param_bytes();
  return total;
}

std::int64_t ArchSpec::prefix_param_bytes() const {
  std::int64_t total = 0;
  for (int i = 0; i < separable_blocks; ++i)
    total += blocks[static_cast<std::size_t>(i)].param_bytes();
  return total;
}

std::int64_t ArchSpec::suffix_param_bytes() const {
  return total_param_bytes() - prefix_param_bytes();
}

std::int64_t ArchSpec::separable_out_bytes() const {
  if (separable_blocks == 0) return input_bytes();
  return blocks[static_cast<std::size_t>(separable_blocks - 1)].out_bytes();
}

void ArchSpec::separable_out_dims(std::int64_t& c, std::int64_t& h,
                                  std::int64_t& w) const {
  if (separable_blocks == 0) {
    c = cin;
    h = hin;
    w = win;
    return;
  }
  const auto& last =
      blocks[static_cast<std::size_t>(separable_blocks - 1)].layers.back();
  c = last.cout;
  h = last.hout;
  w = last.wout;
}

std::vector<LayerSpec> ArchSpec::spatial_ops(int nblocks) const {
  std::vector<LayerSpec> ops;
  for (int b = 0; b < nblocks && b < static_cast<int>(blocks.size()); ++b) {
    for (const auto& l : blocks[static_cast<std::size_t>(b)].layers) {
      if (l.aux) continue;
      if (l.op == Op::kConv || l.op == Op::kMaxPool) ops.push_back(l);
    }
  }
  return ops;
}

std::vector<LayerSpec> ArchSpec::all_layers() const {
  std::vector<LayerSpec> out;
  for (const auto& b : blocks)
    for (const auto& l : b.layers) out.push_back(l);
  return out;
}

ArchSpec vgg16() {
  Builder b("vgg16", 3, 224, 224);
  const std::int64_t cfg[13] = {64,  64,  128, 128, 256, 256, 256,
                                512, 512, 512, 512, 512, 512};
  const bool pool_after[13] = {false, true, false, true,  false, false, true,
                               false, false, true,  false, false, true};
  for (int i = 0; i < 13; ++i) {
    b.conv_block("L" + std::to_string(i + 1), cfg[i], 3,
                 pool_after[i] ? 2 : 0);
  }
  b.begin_block("FC");
  b.fc(4096);
  b.relu();
  b.fc(4096);
  b.relu();
  b.fc(1000);
  b.end_block();
  ArchSpec spec = b.take();
  spec.separable_blocks = 7;  // paper §7.1
  return spec;
}

namespace {
ArchSpec resnet(const std::string& name, const int units[4],
                int separable_units) {
  Builder b(name, 3, 224, 224);
  b.begin_block("stem");
  b.conv(64, 7, 2, 3);
  b.bn();
  b.relu();
  b.pool(2);
  b.end_block();
  const std::int64_t widths[4] = {64, 128, 256, 512};
  int unit = 0;
  for (int stage = 0; stage < 4; ++stage) {
    for (int u = 0; u < units[stage]; ++u) {
      ++unit;
      const std::int64_t stride = (stage > 0 && u == 0) ? 2 : 1;
      b.residual_block("res" + std::to_string(unit), widths[stage], stride);
    }
  }
  b.begin_block("head");
  b.global_pool();
  b.fc(1000);
  b.end_block();
  ArchSpec spec = b.take();
  spec.separable_blocks = 1 + separable_units;  // stem + leading units
  return spec;
}
}  // namespace

ArchSpec resnet18() {
  const int units[4] = {2, 2, 2, 2};
  return resnet("resnet18", units, 5);
}

ArchSpec resnet34() {
  const int units[4] = {3, 4, 6, 3};
  // Paper: 12 partitioned layer blocks for ResNet34.
  return resnet("resnet34", units, 11);
}

ArchSpec yolov2() {
  Builder b("yolo", 3, 416, 416);
  // Darknet-19 backbone.
  b.conv_block("L1", 32, 3, 2);
  b.conv_block("L2", 64, 3, 2);
  b.conv_block("L3", 128, 3);
  b.conv_block("L4", 64, 1);
  b.conv_block("L5", 128, 3, 2);
  b.conv_block("L6", 256, 3);
  b.conv_block("L7", 128, 1);
  b.conv_block("L8", 256, 3, 2);
  b.conv_block("L9", 512, 3);
  b.conv_block("L10", 256, 1);
  b.conv_block("L11", 512, 3);
  b.conv_block("L12", 256, 1);
  b.conv_block("L13", 512, 3, 2);
  b.conv_block("L14", 1024, 3);
  b.conv_block("L15", 512, 1);
  b.conv_block("L16", 1024, 3);
  b.conv_block("L17", 512, 1);
  b.conv_block("L18", 1024, 3);
  // Detection head (5 anchors x 25 outputs on VOC).
  b.conv_block("L19", 1024, 3);
  b.conv_block("L20", 1024, 3);
  b.conv_block("head", 125, 1);
  ArchSpec spec = b.take();
  spec.separable_blocks = 12;  // paper §7.4
  return spec;
}

ArchSpec fcn32() {
  Builder b("fcn", 3, 224, 224);
  const std::int64_t cfg[13] = {64,  64,  128, 128, 256, 256, 256,
                                512, 512, 512, 512, 512, 512};
  const bool pool_after[13] = {false, true, false, true,  false, false, true,
                               false, false, true,  false, false, true};
  for (int i = 0; i < 13; ++i) {
    b.conv_block("L" + std::to_string(i + 1), cfg[i], 3,
                 pool_after[i] ? 2 : 0);
  }
  // Convolutionalized classifier + score + 32x upsample.
  b.conv_block("conv6", 1024, 7);
  b.conv_block("conv7", 1024, 1);
  b.begin_block("score");
  b.conv(21, 1, 1, 0);
  b.upsample(32);
  b.end_block();
  ArchSpec spec = b.take();
  // The separable ofmap is 28x28x512 = 25.7 Mbit, the exact figure §4
  // quotes for FCN's transmission overhead (2.7x the input image).
  spec.separable_blocks = 8;
  return spec;
}

ArchSpec charcnn() {
  Builder b("charcnn", 70, 1, 1014);
  // Zhang et al. 2015, "small" feature config: valid (pad 0) 1-D convs.
  b.conv_block("L1", 256, 7, 3, 1, 0, /*one_d=*/true);
  b.conv_block("L2", 256, 7, 3, 1, 0, /*one_d=*/true);
  b.conv_block("L3", 256, 3, 0, 1, 0, /*one_d=*/true);
  b.conv_block("L4", 256, 3, 0, 1, 0, /*one_d=*/true);
  b.conv_block("L5", 256, 3, 0, 1, 0, /*one_d=*/true);
  b.conv_block("L6", 256, 3, 3, 1, 0, /*one_d=*/true);
  b.begin_block("FC");
  b.fc(1024);
  b.relu();
  b.fc(1024);
  b.relu();
  b.fc(4);
  b.end_block();
  ArchSpec spec = b.take();
  spec.separable_blocks = 4;
  return spec;
}

ArchSpec by_name(const std::string& name) {
  if (name == "vgg16") return vgg16();
  if (name == "resnet18") return resnet18();
  if (name == "resnet34") return resnet34();
  if (name == "yolo") return yolov2();
  if (name == "fcn") return fcn32();
  if (name == "charcnn") return charcnn();
  throw std::invalid_argument("arch::by_name: unknown model '" + name + "'");
}

}  // namespace adcnn::arch
