// Full-scale architecture specifications.
//
// The paper's latency/communication experiments (Figures 3, 11-15, Tables
// 2-3) depend only on layer *dimensions* — FLOPs, activation bytes, kernel
// geometry — not on trained weights. ArchSpec describes VGG16, ResNet18/34,
// YOLOv2, FCN-32s and CharCNN layer by layer so the cost model and the
// partitioning baselines (Neurosurgeon, AOFL) can reason about the true
// full-scale networks without allocating hundreds of MB of parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adcnn::arch {

enum class Op {
  kConv,
  kBatchNorm,
  kReLU,
  kMaxPool,
  kFC,
  kAdd,        // residual elementwise add
  kUpsample,
  kGlobalPool,
};

struct LayerSpec {
  Op op = Op::kConv;
  std::string name;
  // Spatial geometry (square kernels; pools use k == stride).
  std::int64_t k = 1, stride = 1, pad = 0;
  // Shapes as {C, H, W}; 1-D models use H == 1.
  std::int64_t cin = 0, hin = 0, win = 0;
  std::int64_t cout = 0, hout = 0, wout = 0;
  std::int64_t flops = 0;
  std::int64_t param_bytes = 0;
  /// True for layers off the main spatial path (residual projections):
  /// excluded from receptive-field / halo chains.
  bool aux = false;

  std::int64_t out_bytes() const { return cout * hout * wout * 4; }
  std::int64_t in_bytes() const { return cin * hin * win * 4; }
};

struct BlockSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  std::int64_t flops() const;
  std::int64_t param_bytes() const;
  std::int64_t in_bytes() const;
  std::int64_t out_bytes() const;
  bool has_pool() const;
};

struct ArchSpec {
  std::string name;
  std::int64_t cin = 0, hin = 0, win = 0;
  std::vector<BlockSpec> blocks;
  /// Leading blocks that admit FDSP (per the paper's per-model choices).
  int separable_blocks = 0;

  std::int64_t input_bytes() const { return cin * hin * win * 4; }
  std::int64_t total_flops() const;
  std::int64_t prefix_flops() const;  // blocks [0, separable_blocks)
  std::int64_t suffix_flops() const;
  std::int64_t total_param_bytes() const;
  std::int64_t prefix_param_bytes() const;
  std::int64_t suffix_param_bytes() const;
  /// Raw (uncompressed fp32) size of the last separable block's ofmap —
  /// what Conv nodes would transmit without §4's compression.
  std::int64_t separable_out_bytes() const;
  /// {C,H,W} of the last separable block output.
  void separable_out_dims(std::int64_t& c, std::int64_t& h,
                          std::int64_t& w) const;

  /// Main-path spatial operators (conv & pool, aux excluded) of the first
  /// `nblocks` blocks — the chain AOFL's halo growth is computed over.
  std::vector<LayerSpec> spatial_ops(int nblocks) const;

  /// Flat list of all layers in all blocks (for Neurosurgeon's layerwise
  /// cut search).
  std::vector<LayerSpec> all_layers() const;
};

// --- builders ----------------------------------------------------------
ArchSpec vgg16();     // 224x224, 13 conv blocks + FC head, separable = 7
ArchSpec resnet18();  // 224x224, stem + 8 units + head
ArchSpec resnet34();  // 224x224, stem + 16 units + head, separable = 12
ArchSpec yolov2();    // 416x416 Darknet-19 detector, separable = 12
ArchSpec fcn32();     // 224x224 VGG16-backbone FCN-32s, separable = 8
ArchSpec charcnn();   // 70 x 1014 character CNN, separable = 4

/// Lookup by name ("vgg16", "resnet18", "resnet34", "yolo", "fcn",
/// "charcnn").
ArchSpec by_name(const std::string& name);

}  // namespace adcnn::arch
