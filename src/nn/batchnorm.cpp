#include "nn/batchnorm.hpp"

#include <cassert>
#include <cmath>

namespace adcnn::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, double momentum, double eps,
                         std::string name)
    : channels_(channels), momentum_(momentum), eps_(eps),
      gamma_(Tensor::full(Shape{channels}, 1.0f), name + ".gamma"),
      beta_(Tensor::zeros(Shape{channels}), name + ".beta"),
      running_mean_(Tensor::zeros(Shape{channels})),
      running_var_(Tensor::full(Shape{channels}, 1.0f)),
      name_(std::move(name)) {}

Tensor BatchNorm2d::forward(const Tensor& x, Mode mode) {
  assert(x.shape().rank() == 4 && x.c() == channels_);
  const std::int64_t N = x.n(), C = x.c(), HW = x.h() * x.w();
  Tensor y(x.shape());

  if (mode == Mode::kEval) {
    for (std::int64_t c = 0; c < C; ++c) {
      const double invstd = 1.0 / std::sqrt(running_var_[c] + eps_);
      const float a = static_cast<float>(gamma_.value[c] * invstd);
      const float b = static_cast<float>(beta_.value[c] -
                                         gamma_.value[c] * running_mean_[c] *
                                             invstd);
      for (std::int64_t n = 0; n < N; ++n) {
        const float* src = &x.at(n, c, 0, 0);
        float* dst = &y.at(n, c, 0, 0);
        for (std::int64_t i = 0; i < HW; ++i) dst[i] = a * src[i] + b;
      }
    }
    return y;
  }

  const double count = static_cast<double>(N * HW);
  cached_xhat_ = Tensor(x.shape());
  cached_invstd_.assign(static_cast<std::size_t>(C), 0.0);
  for (std::int64_t c = 0; c < C; ++c) {
    double sum = 0.0, sq = 0.0;
    for (std::int64_t n = 0; n < N; ++n) {
      const float* src = &x.at(n, c, 0, 0);
      for (std::int64_t i = 0; i < HW; ++i) {
        sum += src[i];
        sq += static_cast<double>(src[i]) * src[i];
      }
    }
    const double mean = sum / count;
    const double var = std::max(0.0, sq / count - mean * mean);
    const double invstd = 1.0 / std::sqrt(var + eps_);
    cached_invstd_[c] = invstd;
    running_mean_[c] = static_cast<float>((1.0 - momentum_) * running_mean_[c] +
                                          momentum_ * mean);
    running_var_[c] = static_cast<float>((1.0 - momentum_) * running_var_[c] +
                                         momentum_ * var);
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < N; ++n) {
      const float* src = &x.at(n, c, 0, 0);
      float* xh = &cached_xhat_.at(n, c, 0, 0);
      float* dst = &y.at(n, c, 0, 0);
      for (std::int64_t i = 0; i < HW; ++i) {
        xh[i] = static_cast<float>((src[i] - mean) * invstd);
        dst[i] = g * xh[i] + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
  assert(!cached_xhat_.empty());
  const std::int64_t N = dy.n(), C = dy.c(), HW = dy.h() * dy.w();
  const double count = static_cast<double>(N * HW);
  Tensor dx(dy.shape());
  for (std::int64_t c = 0; c < C; ++c) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < N; ++n) {
      const float* gy = &dy.at(n, c, 0, 0);
      const float* xh = &cached_xhat_.at(n, c, 0, 0);
      for (std::int64_t i = 0; i < HW; ++i) {
        sum_dy += gy[i];
        sum_dy_xhat += static_cast<double>(gy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);
    const double g = gamma_.value[c], invstd = cached_invstd_[c];
    // Standard BN backward:
    // dx = (g*invstd/m) * (m*dy - sum(dy) - xhat*sum(dy*xhat))
    const double scale = g * invstd / count;
    for (std::int64_t n = 0; n < N; ++n) {
      const float* gy = &dy.at(n, c, 0, 0);
      const float* xh = &cached_xhat_.at(n, c, 0, 0);
      float* gx = &dx.at(n, c, 0, 0);
      for (std::int64_t i = 0; i < HW; ++i) {
        gx[i] = static_cast<float>(
            scale * (count * gy[i] - sum_dy - xh[i] * sum_dy_xhat));
      }
    }
  }
  return dx;
}

void BatchNorm2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

}  // namespace adcnn::nn
