// Batch normalization over NCHW channels (Ioffe & Szegedy 2015).
//
// Training uses batch statistics and maintains running estimates; inference
// uses the running estimates, i.e. a per-channel affine map y = a*x + b —
// which is why BN is FDSP-safe (purely elementwise at inference, exactly as
// §3.2 of the paper argues).
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, double momentum = 0.1,
                       double eps = 1e-5, std::string name = "bn");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }
  std::int64_t flops(const Shape& in) const override { return 2 * in.numel(); }
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override {
    out.push_back(&running_mean_);
    out.push_back(&running_var_);
  }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  std::int64_t channels() const { return channels_; }
  double eps() const { return eps_; }

 private:
  std::int64_t channels_;
  double momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  std::string name_;

  // Cached for backward.
  Tensor cached_xhat_;
  std::vector<double> cached_invstd_;
};

}  // namespace adcnn::nn
