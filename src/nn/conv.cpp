#include "nn/conv.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace adcnn::nn {

namespace {

std::atomic<std::int64_t> g_scratch_bytes{0};
std::atomic<std::uint64_t> g_shrink_epoch{0};

/// Reusable im2col/col2im scratch. Thread-local (not a layer member)
/// because eval-mode forward runs concurrently on every ConvNodeWorker
/// thread; each thread amortizes one allocation across all layers/calls.
/// Capacity is globally accounted (scratch_bytes) and trimmed back to the
/// current need the first time a thread touches it after shrink_scratch()
/// bumps the epoch — a shrink request cannot free other threads' buffers
/// directly, so it is applied lazily where the buffer lives.
class ScratchBuffer {
 public:
  ~ScratchBuffer() {
    g_scratch_bytes.fetch_add(-accounted_, std::memory_order_relaxed);
  }

  float* acquire(std::size_t need) {
    const std::uint64_t epoch =
        g_shrink_epoch.load(std::memory_order_relaxed);
    if (epoch != epoch_) {
      epoch_ = epoch;
      if (buf_.capacity() > need) std::vector<float>().swap(buf_);
    }
    if (buf_.size() < need) {
      buf_.resize(need);
      const std::int64_t now =
          static_cast<std::int64_t>(buf_.capacity() * sizeof(float));
      g_scratch_bytes.fetch_add(now - accounted_, std::memory_order_relaxed);
      accounted_ = now;
    }
    return buf_.data();
  }

 private:
  std::vector<float> buf_;
  std::int64_t accounted_ = 0;
  std::uint64_t epoch_ = 0;
};

float* col_scratch(std::size_t need) {
  thread_local ScratchBuffer buf;
  return buf.acquire(need);
}

/// Second scratch for backward, which needs col and dcol live at once.
float* dcol_scratch(std::size_t need) {
  thread_local ScratchBuffer buf;
  return buf.acquire(need);
}

}  // namespace

void shrink_scratch() {
  g_shrink_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t scratch_bytes() {
  return g_scratch_bytes.load(std::memory_order_relaxed);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng, std::string name)
    : Conv2d(in_channels, out_channels, kernel, kernel, stride, stride, pad,
             pad, bias, rng, std::move(name)) {}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kh, std::int64_t kw, std::int64_t sh,
               std::int64_t sw, std::int64_t ph, std::int64_t pw, bool bias,
               Rng& rng, std::string name)
    : cin_(in_channels), cout_(out_channels), kh_(kh), kw_(kw), sh_(sh),
      sw_(sw), ph_(ph), pw_(pw), has_bias_(bias), name_(std::move(name)) {
  // Kaiming-normal init, the standard for ReLU networks.
  const double fan_in = static_cast<double>(cin_ * kh_ * kw_);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weight_ = Param(Tensor::randn(Shape{cout_, cin_, kh_, kw_}, rng, 0.0f,
                                stddev),
                  name_ + ".weight");
  if (has_bias_) bias_ = Param(Tensor::zeros(Shape{cout_}), name_ + ".bias");
}

Shape Conv2d::out_shape(const Shape& in) const {
  assert(in.rank() == 4);
  if (in[1] != cin_) {
    throw std::invalid_argument(name_ + ": channel mismatch, got " +
                                in.to_string());
  }
  const std::int64_t hout = (in[2] + 2 * ph_ - kh_) / sh_ + 1;
  const std::int64_t wout = (in[3] + 2 * pw_ - kw_) / sw_ + 1;
  if (hout < 1 || wout < 1) {
    // An FDSP tile smaller than the receptive field would otherwise
    // silently produce a non-positive output plane and corrupt every
    // downstream shape computation.
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " smaller than " + std::to_string(kh_) + "x" +
                                std::to_string(kw_) +
                                " kernel (padded), output would be " +
                                std::to_string(hout) + "x" +
                                std::to_string(wout));
  }
  return Shape{in[0], cout_, hout, wout};
}

std::int64_t Conv2d::flops(const Shape& in) const {
  const Shape out = out_shape(in);
  return 2 * out.numel() * cin_ * kh_ * kw_;
}

void Conv2d::im2col(const Tensor& x, std::int64_t n, float* col,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = x.h(), W = x.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        float* dst = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) {
            for (std::int64_t ow = 0; ow < wout; ++ow) dst[oh * wout + ow] = 0;
            continue;
          }
          const float* src = &x.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            dst[oh * wout + ow] = (iw >= 0 && iw < W) ? src[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, Tensor& dx, std::int64_t n,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = dx.h(), W = dx.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        const float* src = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) continue;
          float* dst = &dx.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            if (iw >= 0 && iw < W) dst[iw] += src[oh * wout + ow];
          }
        }
      }
    }
  }
}

void Conv2d::ensure_bias() {
  if (has_bias_) return;
  bias_ = Param(Tensor::zeros(Shape{cout_}), name_ + ".bias");
  has_bias_ = true;
}

void Conv2d::fuse_relu() { fused_act_ = Epilogue::Act::kReLU; }

void Conv2d::fuse_clipped_relu(float lower, float upper) {
  if (!(upper > lower)) {
    throw std::invalid_argument(name_ +
                                ": fused clip needs upper > lower");
  }
  fused_act_ = Epilogue::Act::kClip;
  clip_lo_ = lower;
  clip_hi_ = upper;
}

void Conv2d::prepack() { packed_weight(); }

const PackedMatrix& Conv2d::packed_weight() {
  return packed_.get(weight_.version, [this] {
    return pack_lhs(weight_.value.data(), cout_, cin_ * kh_ * kw_);
  });
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  const std::int64_t N = x.n(), hout = os[2], wout = os[3];
  const std::int64_t k = cin_ * kh_ * kw_;
  const std::int64_t hw = hout * wout;
  Tensor y(os);

  if (mode == Mode::kTrain) {
    if (has_fused_activation()) {
      throw std::logic_error(
          name_ + ": fused-activation conv is eval-only "
                  "(built by optimize_for_inference)");
    }
    // Training keeps the per-call packing path: the gradient checker
    // perturbs weight elements in place between forwards, which a
    // version-keyed cache would not observe.
    core::ThreadPool::global().parallel_for(
        0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
          float* col = col_scratch(static_cast<std::size_t>(k * hw));
          for (std::int64_t n = n0; n < n1; ++n) {
            im2col(x, n, col, hout, wout);
            gemm(weight_.value.data(), col, &y.at(n, 0, 0, 0), cout_, k, hw);
            if (has_bias_) {
              for (std::int64_t c = 0; c < cout_; ++c) {
                const float b = bias_.value[c];
                float* row = &y.at(n, c, 0, 0);
                for (std::int64_t i = 0; i < hw; ++i) row[i] += b;
              }
            }
          }
        });
    cached_input_ = x;
    return y;
  }

  // Eval: reuse the shared packed weights; bias and any fused activation
  // ride in the GEMM epilogue, so y is written exactly once. A pointwise
  // conv's col matrix is the input plane itself (NCHW rows are already
  // (cin) x (h*w) row-major), so 1x1/stride-1/no-pad skips im2col.
  const PackedMatrix& wp = packed_weight();
  Epilogue epi;
  epi.row_bias = has_bias_ ? bias_.value.data() : nullptr;
  epi.act = fused_act_;
  epi.clip_lo = clip_lo_;
  epi.clip_hi = clip_hi_;
  const Epilogue* e = epi.trivial() ? nullptr : &epi;
  const bool direct = kh_ == 1 && kw_ == 1 && sh_ == 1 && sw_ == 1 &&
                      ph_ == 0 && pw_ == 0;
  // Batch samples are independent row blocks of y: split them across the
  // pool. Inside a multi-sample chunk the per-sample GEMM runs serially
  // (nested parallelism is serialized by the pool); for the runtime's
  // common N == 1 tile case the GEMM's own row-panel threading kicks in
  // instead.
  core::ThreadPool::global().parallel_for(
      0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
        float* col =
            direct ? nullptr : col_scratch(static_cast<std::size_t>(k * hw));
        for (std::int64_t n = n0; n < n1; ++n) {
          const float* bmat;
          if (direct) {
            bmat = &x.at(n, 0, 0, 0);
          } else {
            im2col(x, n, col, hout, wout);
            bmat = col;
          }
          // y[n] (cout x hw) = W (cout x k) * bmat (k x hw)
          gemm_prepacked(weight_.value.data(), wp, bmat, &y.at(n, 0, 0, 0),
                         cout_, k, hw, e, &core::ThreadPool::global());
        }
      });
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const Tensor& x = cached_input_;
  assert(!x.empty() && "backward without kTrain forward");
  const std::int64_t N = x.n(), hout = dy.h(), wout = dy.w();
  const std::int64_t k = cin_ * kh_ * kw_;
  const std::size_t col_elems = static_cast<std::size_t>(k * hout * wout);
  Tensor dx = Tensor::zeros(x.shape());
  // Serial over the batch: every sample accumulates into the same
  // weight/bias gradients. The GEMMs below are pool-threaded internally.
  float* col = col_scratch(col_elems);
  float* dcol = dcol_scratch(col_elems);
  for (std::int64_t n = 0; n < N; ++n) {
    im2col(x, n, col, hout, wout);
    // dW (cout x k) += dy[n] (cout x hw) * col^T (hw x k)
    gemm_a_bt(&dy.at(n, 0, 0, 0), col, weight_.grad.data(), cout_,
              hout * wout, k);
    // dcol (k x hw) = W^T (k x cout) * dy[n] (cout x hw)
    std::fill(dcol, dcol + col_elems, 0.0f);
    gemm_at_b(weight_.value.data(), &dy.at(n, 0, 0, 0), dcol, k, cout_,
              hout * wout);
    col2im(dcol, dx, n, hout, wout);
  }
  if (has_bias_) {
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t c = 0; c < cout_; ++c) {
        const float* row = &dy.at(n, c, 0, 0);
        double acc = 0.0;
        for (std::int64_t i = 0; i < hout * wout; ++i) acc += row[i];
        bias_.grad[c] += static_cast<float>(acc);
      }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace adcnn::nn
