#include "nn/conv.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "nn/gemm.hpp"

namespace adcnn::nn {

namespace {

/// Reusable im2col/col2im scratch. Thread-local (not a layer member)
/// because eval-mode forward runs concurrently on every ConvNodeWorker
/// thread; each thread amortizes one allocation across all layers/calls.
std::vector<float>& col_scratch(std::size_t need) {
  thread_local std::vector<float> buf;
  if (buf.size() < need) buf.resize(need);
  return buf;
}

/// Second scratch for backward, which needs col and dcol live at once.
std::vector<float>& dcol_scratch(std::size_t need) {
  thread_local std::vector<float> buf;
  if (buf.size() < need) buf.resize(need);
  return buf;
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng, std::string name)
    : Conv2d(in_channels, out_channels, kernel, kernel, stride, stride, pad,
             pad, bias, rng, std::move(name)) {}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kh, std::int64_t kw, std::int64_t sh,
               std::int64_t sw, std::int64_t ph, std::int64_t pw, bool bias,
               Rng& rng, std::string name)
    : cin_(in_channels), cout_(out_channels), kh_(kh), kw_(kw), sh_(sh),
      sw_(sw), ph_(ph), pw_(pw), has_bias_(bias), name_(std::move(name)) {
  // Kaiming-normal init, the standard for ReLU networks.
  const double fan_in = static_cast<double>(cin_ * kh_ * kw_);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weight_ = Param(Tensor::randn(Shape{cout_, cin_, kh_, kw_}, rng, 0.0f,
                                stddev),
                  name_ + ".weight");
  if (has_bias_) bias_ = Param(Tensor::zeros(Shape{cout_}), name_ + ".bias");
}

Shape Conv2d::out_shape(const Shape& in) const {
  assert(in.rank() == 4);
  if (in[1] != cin_) {
    throw std::invalid_argument(name_ + ": channel mismatch, got " +
                                in.to_string());
  }
  const std::int64_t hout = (in[2] + 2 * ph_ - kh_) / sh_ + 1;
  const std::int64_t wout = (in[3] + 2 * pw_ - kw_) / sw_ + 1;
  if (hout < 1 || wout < 1) {
    // An FDSP tile smaller than the receptive field would otherwise
    // silently produce a non-positive output plane and corrupt every
    // downstream shape computation.
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " smaller than " + std::to_string(kh_) + "x" +
                                std::to_string(kw_) +
                                " kernel (padded), output would be " +
                                std::to_string(hout) + "x" +
                                std::to_string(wout));
  }
  return Shape{in[0], cout_, hout, wout};
}

std::int64_t Conv2d::flops(const Shape& in) const {
  const Shape out = out_shape(in);
  return 2 * out.numel() * cin_ * kh_ * kw_;
}

void Conv2d::im2col(const Tensor& x, std::int64_t n, float* col,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = x.h(), W = x.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        float* dst = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) {
            for (std::int64_t ow = 0; ow < wout; ++ow) dst[oh * wout + ow] = 0;
            continue;
          }
          const float* src = &x.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            dst[oh * wout + ow] = (iw >= 0 && iw < W) ? src[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, Tensor& dx, std::int64_t n,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = dx.h(), W = dx.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        const float* src = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) continue;
          float* dst = &dx.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            if (iw >= 0 && iw < W) dst[iw] += src[oh * wout + ow];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  const std::int64_t N = x.n(), hout = os[2], wout = os[3];
  const std::int64_t k = cin_ * kh_ * kw_;
  Tensor y(os);
  // Batch samples are independent row blocks of y: split them across the
  // pool. Inside a multi-sample chunk the per-sample GEMM runs serially
  // (nested parallelism is serialized by the pool); for the runtime's
  // common N == 1 tile case the GEMM's own row-panel threading kicks in
  // instead.
  core::ThreadPool::global().parallel_for(
      0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
        std::vector<float>& col =
            col_scratch(static_cast<std::size_t>(k * hout * wout));
        for (std::int64_t n = n0; n < n1; ++n) {
          im2col(x, n, col.data(), hout, wout);
          // y[n] (cout x hout*wout) = W (cout x k) * col (k x hout*wout)
          gemm(weight_.value.data(), col.data(), &y.at(n, 0, 0, 0), cout_, k,
               hout * wout);
          if (has_bias_) {
            for (std::int64_t c = 0; c < cout_; ++c) {
              const float b = bias_.value[c];
              float* row = &y.at(n, c, 0, 0);
              for (std::int64_t i = 0; i < hout * wout; ++i) row[i] += b;
            }
          }
        }
      });
  if (mode == Mode::kTrain) cached_input_ = x;
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const Tensor& x = cached_input_;
  assert(!x.empty() && "backward without kTrain forward");
  const std::int64_t N = x.n(), hout = dy.h(), wout = dy.w();
  const std::int64_t k = cin_ * kh_ * kw_;
  Tensor dx = Tensor::zeros(x.shape());
  // Serial over the batch: every sample accumulates into the same
  // weight/bias gradients. The GEMMs below are pool-threaded internally.
  std::vector<float>& col =
      col_scratch(static_cast<std::size_t>(k * hout * wout));
  std::vector<float>& dcol =
      dcol_scratch(static_cast<std::size_t>(k * hout * wout));
  for (std::int64_t n = 0; n < N; ++n) {
    im2col(x, n, col.data(), hout, wout);
    // dW (cout x k) += dy[n] (cout x hw) * col^T (hw x k)
    gemm_a_bt(&dy.at(n, 0, 0, 0), col.data(), weight_.grad.data(), cout_,
              hout * wout, k);
    // dcol (k x hw) = W^T (k x cout) * dy[n] (cout x hw)
    std::fill(dcol.begin(), dcol.end(), 0.0f);
    gemm_at_b(weight_.value.data(), &dy.at(n, 0, 0, 0), dcol.data(), k, cout_,
              hout * wout);
    col2im(dcol.data(), dx, n, hout, wout);
  }
  if (has_bias_) {
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t c = 0; c < cout_; ++c) {
        const float* row = &dy.at(n, c, 0, 0);
        double acc = 0.0;
        for (std::int64_t i = 0; i < hout * wout; ++i) acc += row[i];
        bias_.grad[c] += static_cast<float>(acc);
      }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace adcnn::nn
