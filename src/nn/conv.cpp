#include "nn/conv.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "nn/scratch.hpp"

namespace adcnn::nn {

namespace {

float* col_scratch(std::size_t need) {
  thread_local ScratchBuffer<float> buf;
  return buf.acquire(need);
}

/// Second scratch for backward, which needs col and dcol live at once.
float* dcol_scratch(std::size_t need) {
  thread_local ScratchBuffer<float> buf;
  return buf.acquire(need);
}

/// Quantized-plane and padded-image scratch for the int8 eval path; both
/// live at once, so two buffers (same lazy-shrink accounting as above).
std::uint8_t* u8_plane_scratch(std::size_t need) {
  thread_local ScratchBuffer<std::uint8_t> buf;
  return buf.acquire(need);
}

std::uint8_t* u8_image_scratch(std::size_t need) {
  thread_local ScratchBuffer<std::uint8_t> buf;
  return buf.acquire(need);
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool bias, Rng& rng, std::string name)
    : Conv2d(in_channels, out_channels, kernel, kernel, stride, stride, pad,
             pad, bias, rng, std::move(name)) {}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kh, std::int64_t kw, std::int64_t sh,
               std::int64_t sw, std::int64_t ph, std::int64_t pw, bool bias,
               Rng& rng, std::string name)
    : cin_(in_channels), cout_(out_channels), kh_(kh), kw_(kw), sh_(sh),
      sw_(sw), ph_(ph), pw_(pw), has_bias_(bias), name_(std::move(name)) {
  // Kaiming-normal init, the standard for ReLU networks.
  const double fan_in = static_cast<double>(cin_ * kh_ * kw_);
  const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
  weight_ = Param(Tensor::randn(Shape{cout_, cin_, kh_, kw_}, rng, 0.0f,
                                stddev),
                  name_ + ".weight");
  if (has_bias_) bias_ = Param(Tensor::zeros(Shape{cout_}), name_ + ".bias");
}

Shape Conv2d::out_shape(const Shape& in) const {
  assert(in.rank() == 4);
  if (in[1] != cin_) {
    throw std::invalid_argument(name_ + ": channel mismatch, got " +
                                in.to_string());
  }
  const std::int64_t hout = (in[2] + 2 * ph_ - kh_) / sh_ + 1;
  const std::int64_t wout = (in[3] + 2 * pw_ - kw_) / sw_ + 1;
  if (hout < 1 || wout < 1) {
    // An FDSP tile smaller than the receptive field would otherwise
    // silently produce a non-positive output plane and corrupt every
    // downstream shape computation.
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " smaller than " + std::to_string(kh_) + "x" +
                                std::to_string(kw_) +
                                " kernel (padded), output would be " +
                                std::to_string(hout) + "x" +
                                std::to_string(wout));
  }
  return Shape{in[0], cout_, hout, wout};
}

std::int64_t Conv2d::flops(const Shape& in) const {
  const Shape out = out_shape(in);
  return 2 * out.numel() * cin_ * kh_ * kw_;
}

void Conv2d::im2col(const Tensor& x, std::int64_t n, float* col,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = x.h(), W = x.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        float* dst = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) {
            for (std::int64_t ow = 0; ow < wout; ++ow) dst[oh * wout + ow] = 0;
            continue;
          }
          const float* src = &x.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            dst[oh * wout + ow] = (iw >= 0 && iw < W) ? src[iw] : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* col, Tensor& dx, std::int64_t n,
                    std::int64_t hout, std::int64_t wout) const {
  const std::int64_t H = dx.h(), W = dx.w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < cin_; ++c) {
    for (std::int64_t dh = 0; dh < kh_; ++dh) {
      for (std::int64_t dw = 0; dw < kw_; ++dw, ++row) {
        const float* src = col + row * hout * wout;
        for (std::int64_t oh = 0; oh < hout; ++oh) {
          const std::int64_t ih = oh * sh_ - ph_ + dh;
          if (ih < 0 || ih >= H) continue;
          float* dst = &dx.at(n, c, ih, 0);
          for (std::int64_t ow = 0; ow < wout; ++ow) {
            const std::int64_t iw = ow * sw_ - pw_ + dw;
            if (iw >= 0 && iw < W) dst[iw] += src[oh * wout + ow];
          }
        }
      }
    }
  }
}

void Conv2d::ensure_bias() {
  if (has_bias_) return;
  bias_ = Param(Tensor::zeros(Shape{cout_}), name_ + ".bias");
  has_bias_ = true;
}

void Conv2d::fuse_relu() { fused_act_ = Epilogue::Act::kReLU; }

void Conv2d::fuse_clipped_relu(float lower, float upper) {
  if (!(upper > lower)) {
    throw std::invalid_argument(name_ +
                                ": fused clip needs upper > lower");
  }
  fused_act_ = Epilogue::Act::kClip;
  clip_lo_ = lower;
  clip_hi_ = upper;
}

void Conv2d::prepack() { packed_weight(); }

void Conv2d::prepack_int8() { packed_weight_int8(); }

const PackedMatrix& Conv2d::packed_weight() {
  return packed_.get(weight_.version, [this] {
    return pack_lhs(weight_.value.data(), cout_, cin_ * kh_ * kw_);
  });
}

const PackedMatrixInt8& Conv2d::packed_weight_int8() {
  return packed_int8_.get(weight_.version, [this] {
    return pack_lhs_s8_conv(weight_.value.data(), cout_, cin_, kh_, kw_);
  });
}

void Conv2d::forward_int8(const Tensor& x, Tensor& y, std::int64_t hout,
                          std::int64_t wout) {
  const PackedMatrixInt8& wp = packed_weight_int8();
  EpilogueInt8 epi;
  epi.bias = has_bias_ ? bias_.value.data() : nullptr;
  epi.act = fused_act_;
  epi.clip_lo = clip_lo_;
  epi.clip_hi = clip_hi_;

  ConvGeomInt8 g;
  g.cin = cin_;
  g.hpad = x.h() + 2 * ph_;
  g.wpad = x.w() + 2 * pw_;
  g.kh = kh_;
  g.kw = kw_;
  g.stride_h = sh_;
  g.stride_w = sw_;
  g.hout = hout;
  g.wout = wout;
  const std::int64_t H = x.h(), W = x.w();
  const std::int64_t pix = g.cin4() * 4;
  const std::size_t plane = static_cast<std::size_t>(cin_ * H * W);
  const std::size_t image_bytes =
      static_cast<std::size_t>(g.hpad * g.wpad * pix);
  const std::uint8_t zp = static_cast<std::uint8_t>(input_quant_.zero_point);
  const std::int64_t N = x.n();

  core::ThreadPool::global().parallel_for(
      0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
        std::uint8_t* q = u8_plane_scratch(plane);
        std::uint8_t* img = u8_image_scratch(image_bytes);
        for (std::int64_t n = n0; n < n1; ++n) {
          quantize_activations_u8(&x.at(n, 0, 0, 0), plane, input_quant_, q);
          // Interleave CHW -> padded channels-last. The halo (and any
          // channel-quad padding) holds the zero-point byte: halo taps then
          // contribute (zp - zp) = 0 through the epilogue's row-sum
          // correction, and pad channels multiply zero weight bytes.
          std::memset(img, zp, image_bytes);
          std::uint8_t* const interior =
              img + (ph_ * g.wpad + pw_) * pix;
          std::int64_t c = 0;
          for (; c + 4 <= cin_; c += 4) {  // whole quads: one u32 per pixel
            const std::uint8_t* s0 = q + (c + 0) * H * W;
            const std::uint8_t* s1 = q + (c + 1) * H * W;
            const std::uint8_t* s2 = q + (c + 2) * H * W;
            const std::uint8_t* s3 = q + (c + 3) * H * W;
            std::uint8_t* const dc = interior + c;
            for (std::int64_t yy = 0; yy < H; ++yy) {
              const std::int64_t row = yy * W;
              std::uint8_t* d = dc + yy * g.wpad * pix;
              for (std::int64_t xx = 0; xx < W; ++xx) {
                const std::uint32_t v =
                    static_cast<std::uint32_t>(s0[row + xx]) |
                    (static_cast<std::uint32_t>(s1[row + xx]) << 8) |
                    (static_cast<std::uint32_t>(s2[row + xx]) << 16) |
                    (static_cast<std::uint32_t>(s3[row + xx]) << 24);
                std::memcpy(d + xx * pix, &v, 4);
              }
            }
          }
          for (; c < cin_; ++c) {  // ragged tail channels
            const std::uint8_t* s = q + c * H * W;
            std::uint8_t* const dc = interior + c;
            for (std::int64_t yy = 0; yy < H; ++yy) {
              std::uint8_t* d = dc + yy * g.wpad * pix;
              const std::uint8_t* sr = s + yy * W;
              for (std::int64_t xx = 0; xx < W; ++xx) d[xx * pix] = sr[xx];
            }
          }
          gemm_s8u8_conv(wp, img, g, &y.at(n, 0, 0, 0), input_quant_, &epi,
                         &core::ThreadPool::global());
        }
      });
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  const std::int64_t N = x.n(), hout = os[2], wout = os[3];
  const std::int64_t k = cin_ * kh_ * kw_;
  const std::int64_t hw = hout * wout;
  Tensor y(os);

  if (mode == Mode::kTrain) {
    if (has_fused_activation()) {
      throw std::logic_error(
          name_ + ": fused-activation conv is eval-only "
                  "(built by optimize_for_inference)");
    }
    // Training keeps the per-call packing path: the gradient checker
    // perturbs weight elements in place between forwards, which a
    // version-keyed cache would not observe.
    core::ThreadPool::global().parallel_for(
        0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
          float* col = col_scratch(static_cast<std::size_t>(k * hw));
          for (std::int64_t n = n0; n < n1; ++n) {
            im2col(x, n, col, hout, wout);
            gemm(weight_.value.data(), col, &y.at(n, 0, 0, 0), cout_, k, hw);
            if (has_bias_) {
              for (std::int64_t c = 0; c < cout_; ++c) {
                const float b = bias_.value[c];
                float* row = &y.at(n, c, 0, 0);
                for (std::int64_t i = 0; i < hw; ++i) row[i] += b;
              }
            }
          }
        });
    cached_input_ = x;
    return y;
  }

  // Eval, int8: threads inside a ScopedInt8Compute scope run the
  // quantized engine once the layer is calibrated. Output layout and the
  // fused bias/activation semantics match the fp32 path; values differ by
  // the quantization error the calibration/retraining harness bounds.
  if (int8_compute_enabled() && int8_ready()) {
    forward_int8(x, y, hout, wout);
    return y;
  }

  // Eval: reuse the shared packed weights; bias and any fused activation
  // ride in the GEMM epilogue, so y is written exactly once. A pointwise
  // conv's col matrix is the input plane itself (NCHW rows are already
  // (cin) x (h*w) row-major), so 1x1/stride-1/no-pad skips im2col.
  const PackedMatrix& wp = packed_weight();
  Epilogue epi;
  epi.row_bias = has_bias_ ? bias_.value.data() : nullptr;
  epi.act = fused_act_;
  epi.clip_lo = clip_lo_;
  epi.clip_hi = clip_hi_;
  const Epilogue* e = epi.trivial() ? nullptr : &epi;
  const bool direct = kh_ == 1 && kw_ == 1 && sh_ == 1 && sw_ == 1 &&
                      ph_ == 0 && pw_ == 0;
  // Batch samples are independent row blocks of y: split them across the
  // pool. Inside a multi-sample chunk the per-sample GEMM runs serially
  // (nested parallelism is serialized by the pool); for the runtime's
  // common N == 1 tile case the GEMM's own row-panel threading kicks in
  // instead.
  core::ThreadPool::global().parallel_for(
      0, N, 1, [&](std::int64_t n0, std::int64_t n1) {
        float* col =
            direct ? nullptr : col_scratch(static_cast<std::size_t>(k * hw));
        for (std::int64_t n = n0; n < n1; ++n) {
          const float* bmat;
          if (direct) {
            bmat = &x.at(n, 0, 0, 0);
          } else {
            im2col(x, n, col, hout, wout);
            bmat = col;
          }
          // y[n] (cout x hw) = W (cout x k) * bmat (k x hw)
          gemm_prepacked(weight_.value.data(), wp, bmat, &y.at(n, 0, 0, 0),
                         cout_, k, hw, e, &core::ThreadPool::global());
        }
      });
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const Tensor& x = cached_input_;
  assert(!x.empty() && "backward without kTrain forward");
  const std::int64_t N = x.n(), hout = dy.h(), wout = dy.w();
  const std::int64_t k = cin_ * kh_ * kw_;
  const std::size_t col_elems = static_cast<std::size_t>(k * hout * wout);
  Tensor dx = Tensor::zeros(x.shape());
  // Serial over the batch: every sample accumulates into the same
  // weight/bias gradients. The GEMMs below are pool-threaded internally.
  float* col = col_scratch(col_elems);
  float* dcol = dcol_scratch(col_elems);
  for (std::int64_t n = 0; n < N; ++n) {
    im2col(x, n, col, hout, wout);
    // dW (cout x k) += dy[n] (cout x hw) * col^T (hw x k)
    gemm_a_bt(&dy.at(n, 0, 0, 0), col, weight_.grad.data(), cout_,
              hout * wout, k);
    // dcol (k x hw) = W^T (k x cout) * dy[n] (cout x hw)
    std::fill(dcol, dcol + col_elems, 0.0f);
    gemm_at_b(weight_.value.data(), &dy.at(n, 0, 0, 0), dcol, k, cout_,
              hout * wout);
    col2im(dcol, dx, n, hout, wout);
  }
  if (has_bias_) {
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t c = 0; c < cout_; ++c) {
        const float* row = &dy.at(n, c, 0, 0);
        double acc = 0.0;
        for (std::int64_t i = 0; i < hout * wout; ++i) acc += row[i];
        bias_.grad[c] += static_cast<float>(acc);
      }
  }
  return dx;
}

void Conv2d::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace adcnn::nn
