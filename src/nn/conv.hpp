// 2-D convolution via im2col + GEMM, with full backward pass.
//
// Zero padding is applied per batch sample — this is the property FDSP
// exploits: running the layer on a batch of tiles is exactly the paper's
// "pad the cross-tile edge pixels with zeros".
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class Conv2d final : public Layer {
 public:
  /// Square kernels; `bias` is usually false because a BatchNorm follows.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, bool bias,
         Rng& rng, std::string name = "conv");

  /// Rectangular kernels (kh x kw) for 1-D style models (CharCNN uses
  /// kh == 1).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kh,
         std::int64_t kw, std::int64_t sh, std::int64_t sw, std::int64_t ph,
         std::int64_t pw, bool bias, Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override;
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;

  std::int64_t in_channels() const { return cin_; }
  std::int64_t out_channels() const { return cout_; }
  std::int64_t kernel_h() const { return kh_; }
  std::int64_t kernel_w() const { return kw_; }
  std::int64_t stride_h() const { return sh_; }
  std::int64_t stride_w() const { return sw_; }
  std::int64_t pad_h() const { return ph_; }
  std::int64_t pad_w() const { return pw_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

 private:
  /// Gather the input patches of sample `n` into `col` with layout
  /// (cin*kh*kw) x (hout*wout), zero-padding out-of-range pixels.
  void im2col(const Tensor& x, std::int64_t n, float* col, std::int64_t hout,
              std::int64_t wout) const;
  /// Scatter-add of a col buffer back into dx for sample `n`.
  void col2im(const float* col, Tensor& dx, std::int64_t n, std::int64_t hout,
              std::int64_t wout) const;

  std::int64_t cin_, cout_, kh_, kw_, sh_, sw_, ph_, pw_;
  bool has_bias_;
  Param weight_;  // (cout, cin, kh, kw)
  Param bias_;    // (cout)
  std::string name_;

  Tensor cached_input_;  // kTrain only
};

}  // namespace adcnn::nn
