// 2-D convolution via im2col + GEMM, with full backward pass.
//
// Zero padding is applied per batch sample — this is the property FDSP
// exploits: running the layer on a batch of tiles is exactly the paper's
// "pad the cross-tile edge pixels with zeros".
//
// Eval-mode forward runs through the packed-weight cache (weights packed
// into GEMM panels once, invalidated via Param::version) with bias and any
// fused activation applied in the GEMM epilogue; 1x1/stride-1/no-pad convs
// skip im2col entirely and multiply the input planes directly. Training
// forwards keep the original per-call path so the gradient checker may
// perturb weights in place.
#pragma once

#include "nn/gemm.hpp"
#include "nn/layer.hpp"
#include "nn/scratch.hpp"

namespace adcnn::nn {

class Conv2d final : public Layer {
 public:
  /// Square kernels; `bias` is usually false because a BatchNorm follows.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t pad, bool bias,
         Rng& rng, std::string name = "conv");

  /// Rectangular kernels (kh x kw) for 1-D style models (CharCNN uses
  /// kh == 1).
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kh,
         std::int64_t kw, std::int64_t sh, std::int64_t sw, std::int64_t ph,
         std::int64_t pw, bool bias, Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override;
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;

  std::int64_t in_channels() const { return cin_; }
  std::int64_t out_channels() const { return cout_; }
  std::int64_t kernel_h() const { return kh_; }
  std::int64_t kernel_w() const { return kw_; }
  std::int64_t stride_h() const { return sh_; }
  std::int64_t stride_w() const { return sw_; }
  std::int64_t pad_h() const { return ph_; }
  std::int64_t pad_w() const { return pw_; }

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  bool has_bias() const { return has_bias_; }

  // --- inference-graph optimizer hooks (nn/optimize.hpp) ---------------
  /// Create a zero bias if the layer has none; BN folding needs a bias
  /// tensor to fold the shift into. Changes the parameter layout (state
  /// snapshots grow), so only optimize_for_inference calls this.
  void ensure_bias();
  /// Fuse an activation into the eval GEMM epilogue. The fused layer is
  /// eval-only: a kTrain forward afterwards throws std::logic_error.
  void fuse_relu();
  void fuse_clipped_relu(float lower, float upper);
  bool has_fused_activation() const {
    return fused_act_ != Epilogue::Act::kNone;
  }
  Epilogue::Act fused_activation() const { return fused_act_; }
  /// Fused clipped-ReLU bounds (meaningful when fused_activation() is
  /// kClip); the output range [0, hi - lo] seeds int8 calibration.
  float fused_clip_lo() const { return clip_lo_; }
  float fused_clip_hi() const { return clip_hi_; }
  /// Pack the weights into the cache now instead of lazily on the first
  /// eval forward (so worker threads start from a warm, shared packing).
  void prepack();

  // --- int8 inference hooks (nn/optimize.hpp prepare_int8) -------------
  /// Install the input activation grid derived by calibration. Once set,
  /// eval forwards on threads inside a ScopedInt8Compute scope run the
  /// quantized conv engine; all other threads keep the fp32 path over the
  /// same shared layer.
  void set_input_quant(const ActQuant& q) { input_quant_ = q; }
  const ActQuant& input_quant() const { return input_quant_; }
  /// Quantize + pack the weights for the int8 engine now (version-cached).
  void prepack_int8();
  /// True when this layer can serve int8 forwards (calibrated; the direct
  /// conv entry handles rectangular strides).
  bool int8_ready() const { return input_quant_.valid(); }

 private:
  /// Gather the input patches of sample `n` into `col` with layout
  /// (cin*kh*kw) x (hout*wout), zero-padding out-of-range pixels.
  void im2col(const Tensor& x, std::int64_t n, float* col, std::int64_t hout,
              std::int64_t wout) const;
  /// Scatter-add of a col buffer back into dx for sample `n`.
  void col2im(const float* col, Tensor& dx, std::int64_t n, std::int64_t hout,
              std::int64_t wout) const;
  const PackedMatrix& packed_weight();
  const PackedMatrixInt8& packed_weight_int8();
  /// Quantized eval forward: per sample, quantize the input plane onto the
  /// calibrated u8 grid, lay it out as the zero-point-padded interleaved
  /// image and run the direct int8 conv (bias + fused activation in the
  /// requantize epilogue).
  void forward_int8(const Tensor& x, Tensor& y, std::int64_t hout,
                    std::int64_t wout);

  std::int64_t cin_, cout_, kh_, kw_, sh_, sw_, ph_, pw_;
  bool has_bias_;
  Param weight_;  // (cout, cin, kh, kw)
  Param bias_;    // (cout)
  std::string name_;

  PackedWeightCache packed_;
  PackedWeightCacheInt8 packed_int8_;
  ActQuant input_quant_;
  Epilogue::Act fused_act_ = Epilogue::Act::kNone;
  float clip_lo_ = 0.0f, clip_hi_ = 0.0f;

  Tensor cached_input_;  // kTrain only
};

}  // namespace adcnn::nn
