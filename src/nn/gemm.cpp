#include "nn/gemm.hpp"

#include <cstring>

namespace adcnn::nn {

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // sparse activations are common post-ReLU
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_accumulate(a, b, c, m, k, n);
}

void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  // C(m,n) += sum_p A(p,i) * B(p,j)
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  // C(i,j) += dot(A(i,:), B(j,:))
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += static_cast<float>(acc);
    }
  }
}

}  // namespace adcnn::nn
