#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

namespace adcnn::nn {

namespace {

// Blocking parameters. The microkernel computes an MR x NR tile of C held
// entirely in registers (8x8 floats = 8 vector accumulators with AVX2, 16
// with SSE). KC keeps one packed A panel column-block (MR*KC floats) plus
// one B panel (NR*KC) resident in L1; MC x KC is the per-thread A block
// (~64 KiB, L2); KC x NC is the shared packed B block (~256 KiB, L2/L3).
constexpr std::int64_t MR = 8;
constexpr std::int64_t NR = 8;
constexpr std::int64_t MC = 64;
constexpr std::int64_t KC = 256;
constexpr std::int64_t NC = 256;

// Matrices this small are dominated by packing overhead; the plain loop
// nest wins. The cutoff depends only on the shape, never the thread count,
// so the engine stays deterministic.
constexpr std::int64_t kSmallFlops = 2 * 24 * 24 * 24;

std::vector<float>& a_pack_buffer() {
  thread_local std::vector<float> buf;
  return buf;
}

std::vector<float>& b_pack_buffer() {
  thread_local std::vector<float> buf;
  return buf;
}

/// Pack an mc x kc block of A (rows i0.., reduction p0..) into MR-row
/// panels: panel ir holds elements [p * MR + i] for unit-stride microkernel
/// loads. Rows past mc are zero-padded so the kernel never branches.
/// `trans` reads A stored row-major as (k, m), i.e. element (i, p) at
/// a[p * lda + i]; otherwise A is (m, k) with element (i, p) at
/// a[i * lda + p].
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t i0,
            std::int64_t p0, std::int64_t mc, std::int64_t kc, float* out) {
  for (std::int64_t ir = 0; ir < mc; ir += MR) {
    const std::int64_t mr = std::min(MR, mc - ir);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t i = 0;
      if (trans) {
        const float* src = a + (p0 + p) * lda + i0 + ir;
        for (; i < mr; ++i) out[i] = src[i];
      } else {
        const float* src = a + (i0 + ir) * lda + p0 + p;
        for (; i < mr; ++i) out[i] = src[i * lda];
      }
      for (; i < MR; ++i) out[i] = 0.0f;
      out += MR;
    }
  }
}

/// Pack a kc x nc block of B (reduction p0.., cols j0..) into NR-column
/// panels, zero-padding columns past nc. `trans` reads B stored row-major
/// as (n, k), i.e. element (p, j) at b[j * ldb + p]; otherwise B is (k, n)
/// with element (p, j) at b[p * ldb + j].
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
            std::int64_t j0, std::int64_t kc, std::int64_t nc, float* out) {
  for (std::int64_t jr = 0; jr < nc; jr += NR) {
    const std::int64_t nr = std::min(NR, nc - jr);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t j = 0;
      if (trans) {
        const float* src = b + (j0 + jr) * ldb + p0 + p;
        for (; j < nr; ++j) out[j] = src[j * ldb];
      } else {
        const float* src = b + (p0 + p) * ldb + j0 + jr;
        for (; j < nr; ++j) out[j] = src[j];
      }
      for (; j < NR; ++j) out[j] = 0.0f;
      out += NR;
    }
  }
}

/// C(mr,nr) += packed-A panel * packed-B panel over kc. The accumulator
/// tile is full MR x NR (padded lanes multiply zeros); only the valid
/// mr x nr corner is written back. On GCC/Clang each accumulator row is an
/// explicit 8-float vector — the compiler's auto-vectorizer leaves the
/// scalar acc[8][8] form ~5x slower because it never register-allocates
/// the tile.
#if defined(__GNUC__) || defined(__clang__)
typedef float V8f __attribute__((vector_size(8 * sizeof(float))));

void micro_kernel(const float* ap, const float* bp, std::int64_t kc, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  static_assert(NR == 8, "accumulator rows are 8-float vectors");
  V8f acc[MR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * MR;
    V8f bv;
    __builtin_memcpy(&bv, bp + p * NR, sizeof(bv));  // unaligned load
    for (std::int64_t i = 0; i < MR; ++i) acc[i] += arow[i] * bv;
  }
  if (mr == MR && nr == NR) {
    for (std::int64_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < NR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (std::int64_t i = 0; i < mr; ++i)
      for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  }
}
#else
void micro_kernel(const float* ap, const float* bp, std::int64_t kc, float* c,
                  std::int64_t ldc, std::int64_t mr, std::int64_t nr) {
  float acc[MR][NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * MR;
    const float* brow = bp + p * NR;
    for (std::int64_t i = 0; i < MR; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::int64_t i = 0; i < mr; ++i)
    for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
}
#endif

/// Plain accumulate loop nest for shapes too small to amortize packing.
/// Per-element accumulation order (p ascending) matches the blocked path's
/// panel order, but register accumulation differs in rounding, so oracle
/// tests compare both against a double-precision reference.
void small_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n, bool a_trans,
                      bool b_trans) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a_trans ? a[p * m + i] : a[i * k + p];
      if (b_trans) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * b[j * k + p];
      } else {
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// Blocked, packed engine core: C(m,n) += op(A) * op(B), row panels
/// parallelized over `pool`. Every C element is produced by exactly one
/// thread with a fixed kc-block accumulation order, so results do not
/// depend on the thread count.
void gemm_engine(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool a_trans, bool b_trans,
                 core::ThreadPool* pool) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (2 * m * k * n <= kSmallFlops) {
    small_accumulate(a, b, c, m, k, n, a_trans, b_trans);
    return;
  }
  const std::int64_t lda = a_trans ? m : k;
  const std::int64_t ldb = b_trans ? k : n;
  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_panels = (nc + NR - 1) / NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      std::vector<float>& bbuf = b_pack_buffer();
      const std::size_t bneed =
          static_cast<std::size_t>(nc_panels * NR * kc);
      if (bbuf.size() < bneed) bbuf.resize(bneed);
      pack_b(b, ldb, b_trans, pc, jc, kc, nc, bbuf.data());
      const float* bpack = bbuf.data();

      const std::int64_t iblocks = (m + MC - 1) / MC;
      auto row_panels = [&](std::int64_t ib0, std::int64_t ib1) {
        std::vector<float>& abuf = a_pack_buffer();
        const std::size_t aneed = static_cast<std::size_t>(
            ((MC + MR - 1) / MR) * MR * kc);
        if (abuf.size() < aneed) abuf.resize(aneed);
        for (std::int64_t ib = ib0; ib < ib1; ++ib) {
          const std::int64_t ic = ib * MC;
          const std::int64_t mc = std::min(MC, m - ic);
          pack_a(a, lda, a_trans, ic, pc, mc, kc, abuf.data());
          for (std::int64_t jr = 0; jr < nc; jr += NR) {
            const float* bp = bpack + (jr / NR) * NR * kc;
            const std::int64_t nr = std::min(NR, nc - jr);
            for (std::int64_t ir = 0; ir < mc; ir += MR) {
              micro_kernel(abuf.data() + (ir / MR) * MR * kc, bp, kc,
                           c + (ic + ir) * n + jc + jr, n,
                           std::min(MR, mc - ir), nr);
            }
          }
        }
      };
      if (pool) {
        pool->parallel_for(0, iblocks, 1, row_panels);
      } else {
        row_panels(0, iblocks);
      }
    }
  }
}

}  // namespace

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, false, false, &core::ThreadPool::global());
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_engine(a, b, c, m, k, n, false, false, &core::ThreadPool::global());
}

void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, true, false, &core::ThreadPool::global());
}

void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, false, true, &core::ThreadPool::global());
}

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // sparse activations are common post-ReLU
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, core::ThreadPool* pool) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_engine(a, b, c, m, k, n, false, false, pool);
}

}  // namespace adcnn::nn
