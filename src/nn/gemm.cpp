#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace adcnn::nn {

namespace {

// Blocking parameters. The microkernel computes an MR x NR tile of C held
// entirely in registers (8x8 floats = 8 vector accumulators with AVX2, 16
// with SSE). KC keeps one packed A panel column-block (MR*KC floats) plus
// one B panel (NR*KC) resident in L1; MC x KC is the per-thread A block
// (~64 KiB, L2); KC x NC is the shared packed B block (~256 KiB, L2/L3).
constexpr std::int64_t MR = 8;
constexpr std::int64_t NR = 8;
constexpr std::int64_t MC = 64;
constexpr std::int64_t KC = 256;
constexpr std::int64_t NC = 256;

// Matrices this small are dominated by packing overhead; the plain loop
// nest wins. The cutoff depends only on the shape, never the thread count,
// so the engine stays deterministic.
constexpr std::int64_t kSmallFlops = 2 * 24 * 24 * 24;

std::atomic<std::uint64_t> g_pack_hits{0};
std::atomic<std::uint64_t> g_pack_misses{0};
std::atomic<std::uint64_t> g_pack_bytes{0};

std::vector<float>& a_pack_buffer() {
  thread_local std::vector<float> buf;
  return buf;
}

std::vector<float>& b_pack_buffer() {
  thread_local std::vector<float> buf;
  return buf;
}

/// Pack an mc x kc block of A (rows i0.., reduction p0..) into MR-row
/// panels: panel ir holds elements [p * MR + i] for unit-stride microkernel
/// loads. Rows past mc are zero-padded so the kernel never branches.
/// `trans` reads A stored row-major as (k, m), i.e. element (i, p) at
/// a[p * lda + i]; otherwise A is (m, k) with element (i, p) at
/// a[i * lda + p].
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t i0,
            std::int64_t p0, std::int64_t mc, std::int64_t kc, float* out) {
  for (std::int64_t ir = 0; ir < mc; ir += MR) {
    const std::int64_t mr = std::min(MR, mc - ir);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t i = 0;
      if (trans) {
        const float* src = a + (p0 + p) * lda + i0 + ir;
        for (; i < mr; ++i) out[i] = src[i];
      } else {
        const float* src = a + (i0 + ir) * lda + p0 + p;
        for (; i < mr; ++i) out[i] = src[i * lda];
      }
      for (; i < MR; ++i) out[i] = 0.0f;
      out += MR;
    }
  }
}

/// Pack a kc x nc block of B (reduction p0.., cols j0..) into NR-column
/// panels, zero-padding columns past nc. `trans` reads B stored row-major
/// as (n, k), i.e. element (p, j) at b[j * ldb + p]; otherwise B is (k, n)
/// with element (p, j) at b[p * ldb + j].
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
            std::int64_t j0, std::int64_t kc, std::int64_t nc, float* out) {
  for (std::int64_t jr = 0; jr < nc; jr += NR) {
    const std::int64_t nr = std::min(NR, nc - jr);
    for (std::int64_t p = 0; p < kc; ++p) {
      std::int64_t j = 0;
      if (trans) {
        const float* src = b + (j0 + jr) * ldb + p0 + p;
        for (; j < nr; ++j) out[j] = src[j * ldb];
      } else {
        const float* src = b + (p0 + p) * ldb + j0 + jr;
        for (; j < nr; ++j) out[j] = src[j];
      }
      for (; j < NR; ++j) out[j] = 0.0f;
      out += NR;
    }
  }
}

/// Applies the epilogue (contract in gemm.hpp) to the C sub-block rows
/// [i0, i0+mc) x cols [j0, j0+nc) while it is still cache-resident.
/// Per-row constants are hoisted so every inner loop is a long branch-free
/// contiguous sweep the compiler maps onto vector ops (an element-wise
/// form with the branches inside costs ~3 cycles/element — more than the
/// multiply-accumulate work itself for small-k conv GEMMs). The combined
/// scale+bias expression matches BatchNorm2d's eval `a*x + b` form, and
/// the bias/activation expressions match the separate layers' ops exactly,
/// so those fusions are bit-identical by construction.
void epilogue_block(const Epilogue& e, float* c, std::int64_t ldc,
                    std::int64_t i0, std::int64_t mc, std::int64_t j0,
                    std::int64_t nc) {
  for (std::int64_t i = 0; i < mc; ++i) {
    float* row = c + (i0 + i) * ldc + j0;
    if (e.row_scale != nullptr) {
      const float a = e.row_scale[i0 + i];
      if (e.row_bias != nullptr) {
        const float b = e.row_bias[i0 + i];
        for (std::int64_t j = 0; j < nc; ++j) row[j] = a * row[j] + b;
      } else {
        for (std::int64_t j = 0; j < nc; ++j) row[j] = a * row[j];
      }
    } else if (e.row_bias != nullptr) {
      const float b = e.row_bias[i0 + i];
      for (std::int64_t j = 0; j < nc; ++j) row[j] += b;
    }
    if (e.col_bias != nullptr) {
      const float* cb = e.col_bias + j0;
      for (std::int64_t j = 0; j < nc; ++j) row[j] += cb[j];
    }
    switch (e.act) {
      case Epilogue::Act::kNone:
        break;
      case Epilogue::Act::kReLU:
        for (std::int64_t j = 0; j < nc; ++j)
          row[j] = row[j] > 0.0f ? row[j] : 0.0f;
        break;
      case Epilogue::Act::kClip:
        for (std::int64_t j = 0; j < nc; ++j)
          row[j] = row[j] < e.clip_lo
                       ? 0.0f
                       : (row[j] > e.clip_hi ? e.clip_hi - e.clip_lo
                                             : row[j] - e.clip_lo);
        break;
    }
  }
}

/// One full pass applying the epilogue to a finished C (small-matrix path,
/// where there is no blocked write-back to piggyback on).
void epilogue_sweep(float* c, std::int64_t m, std::int64_t n,
                    const Epilogue& e) {
  epilogue_block(e, c, n, 0, m, 0, n);
}

/// C(mr,nr) += packed-A panel * packed-B panel over kc. The accumulator
/// tile is full MR x NR (padded lanes multiply zeros); only the valid
/// mr x nr corner is written back. On GCC/Clang each accumulator row is an
/// explicit 8-float vector — the compiler's auto-vectorizer leaves the
/// scalar acc[8][8] form ~5x slower because it never register-allocates
/// the tile. With `overwrite` the tile stores instead of accumulating
/// (first kc block of an overwrite-mode GEMM — C needs no zeroing pass).
#if defined(__GNUC__) || defined(__clang__)
typedef float V8f __attribute__((vector_size(8 * sizeof(float))));

void micro_kernel(const float* ap, const float* bp, std::int64_t bstride,
                  std::int64_t kc, float* c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr, bool overwrite) {
  static_assert(NR == 8, "accumulator rows are 8-float vectors");
  V8f acc[MR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * MR;
    V8f bv;
    __builtin_memcpy(&bv, bp + p * bstride, sizeof(bv));  // unaligned load
    for (std::int64_t i = 0; i < MR; ++i) acc[i] += arow[i] * bv;
  }
  if (overwrite) {
    for (std::int64_t i = 0; i < mr; ++i)
      for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  } else if (mr == MR && nr == NR) {
    for (std::int64_t i = 0; i < MR; ++i) {
      float* crow = c + i * ldc;
      for (std::int64_t j = 0; j < NR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (std::int64_t i = 0; i < mr; ++i)
      for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  }
}
#else
void micro_kernel(const float* ap, const float* bp, std::int64_t bstride,
                  std::int64_t kc, float* c, std::int64_t ldc, std::int64_t mr,
                  std::int64_t nr, bool overwrite) {
  float acc[MR][NR] = {};
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * MR;
    const float* brow = bp + p * bstride;
    for (std::int64_t i = 0; i < MR; ++i) {
      const float av = arow[i];
      for (std::int64_t j = 0; j < NR; ++j) acc[i][j] += av * brow[j];
    }
  }
  if (overwrite) {
    for (std::int64_t i = 0; i < mr; ++i)
      for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
  } else {
    for (std::int64_t i = 0; i < mr; ++i)
      for (std::int64_t j = 0; j < nr; ++j) c[i * ldc + j] += acc[i][j];
  }
}
#endif

/// Plain accumulate loop nest for shapes too small to amortize packing.
/// Per-element accumulation order (p ascending) matches the blocked path's
/// panel order, but register accumulation differs in rounding, so oracle
/// tests compare both against a double-precision reference.
void small_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                      std::int64_t k, std::int64_t n, bool a_trans,
                      bool b_trans) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a_trans ? a[p * m + i] : a[i * k + p];
      if (b_trans) {
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * b[j * k + p];
      } else {
        const float* brow = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// Blocked, packed engine core: C(m,n) += op(A) * op(B), row panels
/// parallelized over `pool`. Every C element is produced by exactly one
/// thread with a fixed kc-block accumulation order, so results do not
/// depend on the thread count. `a_pre` / `b_pre` substitute pre-packed
/// panels for the on-the-fly packers (identical layout, so identical
/// bits); `epi` is applied in the write-back of the final kc block, when
/// every element is fully reduced.
void gemm_engine(const float* a, const float* b, float* c, std::int64_t m,
                 std::int64_t k, std::int64_t n, bool a_trans, bool b_trans,
                 core::ThreadPool* pool, const PackedMatrix* a_pre = nullptr,
                 const PackedMatrix* b_pre = nullptr,
                 const Epilogue* epi = nullptr, bool overwrite = false) {
  if (epi != nullptr && epi->act == Epilogue::Act::kClip &&
      !(epi->clip_hi > epi->clip_lo)) {
    // A degenerate clip window maps every value to zero; the layers reject
    // it at fuse time (Conv2d::fuse_clipped_relu, ClippedReLU ctor), so a
    // direct Epilogue user hitting this is a construction bug — fail loudly
    // instead of emitting all-zero outputs downstream.
    throw std::invalid_argument(
        "gemm: Epilogue clip window is degenerate (clip_hi <= clip_lo)");
  }
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (epi != nullptr && epi->trivial()) epi = nullptr;
  if (2 * m * k * n <= kSmallFlops) {
    small_accumulate(a, b, c, m, k, n, a_trans, b_trans);
    if (epi != nullptr) epilogue_sweep(c, m, n, *epi);
    return;
  }
  const std::int64_t lda = a_trans ? m : k;
  const std::int64_t ldb = b_trans ? k : n;
  const std::int64_t pblocks = (k + KC - 1) / KC;
  const std::int64_t iblocks = (m + MC - 1) / MC;
  // Prepacked-A inference calls with a single row chunk sweep each packed-B
  // panel at most m/MR <= 8 times, too little to amortize copying the whole
  // im2col block into panel layout per call; stream full NR-column panels
  // straight from row-major B instead (the microkernel load is the same 8
  // floats, just strided by ldb). Only the ragged tail panel is packed, so
  // padded lanes stay zero and loads stay in bounds. Values and
  // accumulation order are unchanged — results remain bit-identical to the
  // packing path, which training/general entries keep using. Deep panels
  // (kc beyond ~64) walk too many strided cache lines per sweep and lose
  // to the contiguous packed layout, so streaming is gated per kc block.
  const bool b_direct_ok =
      a_pre != nullptr && b_pre == nullptr && !b_trans && iblocks == 1;
  constexpr std::int64_t kDirectBKcMax = 64;
  for (std::int64_t jc = 0; jc < n; jc += NC) {
    const std::int64_t nc = std::min(NC, n - jc);
    const std::int64_t nc_panels = (nc + NR - 1) / NR;
    for (std::int64_t pc = 0; pc < k; pc += KC) {
      const std::int64_t kc = std::min(KC, k - pc);
      const bool b_direct = b_direct_ok && kc <= kDirectBKcMax;
      const float* bpack = nullptr;
      if (b_pre != nullptr) {
        bpack = b_pre->data.data() +
                b_pre->block_off[static_cast<std::size_t>(
                    (jc / NC) * pblocks + pc / KC)];
      } else if (b_direct) {
        if (nc % NR != 0) {  // pack just the tail panel, zero-padded
          std::vector<float>& bbuf = b_pack_buffer();
          const std::size_t bneed = static_cast<std::size_t>(NR * kc);
          if (bbuf.size() < bneed) bbuf.resize(bneed);
          const std::int64_t jtail = nc - nc % NR;
          pack_b(b, ldb, false, pc, jc + jtail, kc, nc - jtail, bbuf.data());
          bpack = bbuf.data();
        }
      } else {
        std::vector<float>& bbuf = b_pack_buffer();
        const std::size_t bneed =
            static_cast<std::size_t>(nc_panels * NR * kc);
        if (bbuf.size() < bneed) bbuf.resize(bneed);
        pack_b(b, ldb, b_trans, pc, jc, kc, nc, bbuf.data());
        bpack = bbuf.data();
      }
      // The epilogue must see fully reduced values: sweep each mc x nc
      // sub-block right after its last kc contribution lands, while it is
      // still cache-resident. In overwrite mode the first kc block stores
      // instead of accumulating, so C needs no zeroing pass at all (exact:
      // 0 + x == x bitwise — the accumulator can never be -0, as it starts
      // at +0 and +0 + v never rounds to -0).
      const Epilogue* tile_epi = (pc + kc == k) ? epi : nullptr;
      const bool tile_overwrite = overwrite && pc == 0;

      auto row_panels = [&](std::int64_t ib0, std::int64_t ib1) {
        std::vector<float>& abuf = a_pack_buffer();
        if (a_pre == nullptr) {
          const std::size_t aneed = static_cast<std::size_t>(
              ((MC + MR - 1) / MR) * MR * kc);
          if (abuf.size() < aneed) abuf.resize(aneed);
        }
        for (std::int64_t ib = ib0; ib < ib1; ++ib) {
          const std::int64_t ic = ib * MC;
          const std::int64_t mc = std::min(MC, m - ic);
          const float* apack;
          if (a_pre != nullptr) {
            apack = a_pre->data.data() +
                    a_pre->block_off[static_cast<std::size_t>(
                        (pc / KC) * iblocks + ib)];
          } else {
            pack_a(a, lda, a_trans, ic, pc, mc, kc, abuf.data());
            apack = abuf.data();
          }
          for (std::int64_t jr = 0; jr < nc; jr += NR) {
            const std::int64_t nr = std::min(NR, nc - jr);
            const float* bp;
            std::int64_t bstride;
            if (b_direct && nr == NR) {
              bp = b + pc * ldb + jc + jr;
              bstride = ldb;
            } else if (b_direct) {
              bp = bpack;  // the packed tail panel
              bstride = NR;
            } else {
              bp = bpack + (jr / NR) * NR * kc;
              bstride = NR;
            }
            for (std::int64_t ir = 0; ir < mc; ir += MR) {
              micro_kernel(apack + (ir / MR) * MR * kc, bp, bstride, kc,
                           c + (ic + ir) * n + jc + jr, n,
                           std::min(MR, mc - ir), nr, tile_overwrite);
            }
          }
          if (tile_epi != nullptr) {
            epilogue_block(*tile_epi, c, n, ic, mc, jc, nc);
          }
        }
      };
      if (pool) {
        pool->parallel_for(0, iblocks, 1, row_panels);
      } else {
        row_panels(0, iblocks);
      }
    }
  }
}

}  // namespace

PackedMatrix pack_lhs(const float* a, std::int64_t m, std::int64_t k) {
  PackedMatrix p;
  p.lhs = true;
  p.rows = m;
  p.cols = k;
  if (m <= 0 || k <= 0) return p;
  const std::int64_t pblocks = (k + KC - 1) / KC;
  const std::int64_t iblocks = (m + MC - 1) / MC;
  p.block_off.resize(static_cast<std::size_t>(pblocks * iblocks));
  std::size_t total = 0;
  for (std::int64_t pcb = 0; pcb < pblocks; ++pcb) {
    const std::int64_t kc = std::min(KC, k - pcb * KC);
    for (std::int64_t icb = 0; icb < iblocks; ++icb) {
      const std::int64_t mc = std::min(MC, m - icb * MC);
      p.block_off[static_cast<std::size_t>(pcb * iblocks + icb)] = total;
      total += static_cast<std::size_t>(((mc + MR - 1) / MR) * MR * kc);
    }
  }
  p.data.resize(total);
  for (std::int64_t pcb = 0; pcb < pblocks; ++pcb) {
    const std::int64_t kc = std::min(KC, k - pcb * KC);
    for (std::int64_t icb = 0; icb < iblocks; ++icb) {
      const std::int64_t mc = std::min(MC, m - icb * MC);
      pack_a(a, k, false, icb * MC, pcb * KC, mc, kc,
             p.data.data() +
                 p.block_off[static_cast<std::size_t>(pcb * iblocks + icb)]);
    }
  }
  return p;
}

PackedMatrix pack_rhs(const float* b, std::int64_t k, std::int64_t n,
                      bool trans) {
  PackedMatrix p;
  p.lhs = false;
  p.rows = k;
  p.cols = n;
  if (k <= 0 || n <= 0) return p;
  const std::int64_t ldb = trans ? k : n;
  const std::int64_t pblocks = (k + KC - 1) / KC;
  const std::int64_t jblocks = (n + NC - 1) / NC;
  p.block_off.resize(static_cast<std::size_t>(jblocks * pblocks));
  std::size_t total = 0;
  for (std::int64_t jcb = 0; jcb < jblocks; ++jcb) {
    const std::int64_t nc = std::min(NC, n - jcb * NC);
    for (std::int64_t pcb = 0; pcb < pblocks; ++pcb) {
      const std::int64_t kc = std::min(KC, k - pcb * KC);
      p.block_off[static_cast<std::size_t>(jcb * pblocks + pcb)] = total;
      total += static_cast<std::size_t>(((nc + NR - 1) / NR) * NR * kc);
    }
  }
  p.data.resize(total);
  for (std::int64_t jcb = 0; jcb < jblocks; ++jcb) {
    const std::int64_t nc = std::min(NC, n - jcb * NC);
    for (std::int64_t pcb = 0; pcb < pblocks; ++pcb) {
      const std::int64_t kc = std::min(KC, k - pcb * KC);
      pack_b(b, ldb, trans, pcb * KC, jcb * NC, kc, nc,
             p.data.data() +
                 p.block_off[static_cast<std::size_t>(jcb * pblocks + pcb)]);
    }
  }
  return p;
}

void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, false, false, &core::ThreadPool::global());
}

void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_engine(a, b, c, m, k, n, false, false, &core::ThreadPool::global());
}

void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, true, false, &core::ThreadPool::global());
}

void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n) {
  gemm_engine(a, b, c, m, k, n, false, true, &core::ThreadPool::global());
}

void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;  // sparse activations are common post-ReLU
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n, core::ThreadPool* pool,
                  const Epilogue* epi) {
  std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  gemm_engine(a, b, c, m, k, n, false, false, pool, nullptr, nullptr, epi);
}

void gemm_prepacked(const float* a, const PackedMatrix& a_packed,
                    const float* b, float* c, std::int64_t m, std::int64_t k,
                    std::int64_t n, const Epilogue* epi,
                    core::ThreadPool* pool) {
  if (!a_packed.lhs || a_packed.rows != m || a_packed.cols != k) {
    throw std::invalid_argument("gemm_prepacked: packed A does not match (" +
                                std::to_string(m) + "," + std::to_string(k) +
                                ")");
  }
  // The blocked path stores (not accumulates) the first reduction block, so
  // C never needs the zeroing pass; only the small-matrix loop nest, which
  // always accumulates, still wants zeroed C.
  const bool small = 2 * m * k * n <= kSmallFlops;
  if (small) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  }
  gemm_engine(a, b, c, m, k, n, false, false, pool, &a_packed, nullptr, epi,
              /*overwrite=*/!small);
}

void gemm_a_bt_prepacked(const float* a, const float* b,
                         const PackedMatrix& b_packed, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         const Epilogue* epi, core::ThreadPool* pool) {
  if (b_packed.lhs || b_packed.rows != k || b_packed.cols != n) {
    throw std::invalid_argument(
        "gemm_a_bt_prepacked: packed B does not match (" + std::to_string(k) +
        "," + std::to_string(n) + ")");
  }
  gemm_engine(a, b, c, m, k, n, false, true, pool, nullptr, &b_packed, epi);
}

std::uint64_t gemm_pack_hits() {
  return g_pack_hits.load(std::memory_order_relaxed);
}

std::uint64_t gemm_pack_misses() {
  return g_pack_misses.load(std::memory_order_relaxed);
}

std::uint64_t gemm_pack_bytes() {
  return g_pack_bytes.load(std::memory_order_relaxed);
}

namespace detail {

void pack_cache_note_hit() {
  g_pack_hits.fetch_add(1, std::memory_order_relaxed);
}

void pack_cache_note_miss() {
  g_pack_misses.fetch_add(1, std::memory_order_relaxed);
}

void pack_cache_note_pack(std::size_t old_bytes, std::size_t new_bytes) {
  if (new_bytes >= old_bytes) {
    g_pack_bytes.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
  } else {
    g_pack_bytes.fetch_sub(old_bytes - new_bytes, std::memory_order_relaxed);
  }
}

}  // namespace detail

}  // namespace adcnn::nn
