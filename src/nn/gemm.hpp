// Single-precision GEMM compute engine used by Conv2d (im2col) and Linear.
//
// The engine is a cache-blocked, register-tiled kernel in the BLIS style:
// A and B are packed into contiguous MC x KC / KC x NC panels and multiplied
// by an 8x8 microkernel whose accumulators live in registers, so the inner
// loop is branch-free FMA work with unit-stride loads. Row panels (blocks of
// MC output rows) are farmed out to the shared core::ThreadPool; every
// element's accumulation order is independent of the thread count, so
// results are bit-identical from 1 to N threads. The pre-engine ikj loop is
// kept as gemm_naive — the oracle for tests and the baseline the
// micro-benchmarks measure speedup against.
#pragma once

#include <cstdint>

#include "core/thread_pool.hpp"

namespace adcnn::nn {

/// C(m,n) += A(m,k) * B(k,n), all row-major, no aliasing.
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C(m,n) = A(m,k) * B(k,n) (C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C(m,n) += A^T(k,m) * B(k,n): A stored row-major as (k,m).
void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// C(m,n) += A(m,k) * B^T(n,k): B stored row-major as (n,k).
void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// Reference kernel: the pre-engine ikj loop nest with the per-element
/// zero-skip branch, C overwritten. Kept as the correctness oracle and the
/// micro-benchmark baseline; never used on a hot path.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n);

/// Blocked engine with an explicit pool (C overwritten; null pool = fully
/// serial). gemm() is exactly gemm_blocked with the global pool; tests and
/// benchmarks use this entry point to pin a thread count.
void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n,
                  core::ThreadPool* pool = nullptr);

}  // namespace adcnn::nn
