// Single-precision GEMM compute engine used by Conv2d (im2col) and Linear.
//
// The engine is a cache-blocked, register-tiled kernel in the BLIS style:
// A and B are packed into contiguous MC x KC / KC x NC panels and multiplied
// by an 8x8 microkernel whose accumulators live in registers, so the inner
// loop is branch-free FMA work with unit-stride loads. Row panels (blocks of
// MC output rows) are farmed out to the shared core::ThreadPool; every
// element's accumulation order is independent of the thread count, so
// results are bit-identical from 1 to N threads. The pre-engine ikj loop is
// kept as gemm_naive — the oracle for tests and the baseline the
// micro-benchmarks measure speedup against.
//
// Two inference-time extensions (DESIGN.md §10):
//  - PackedMatrix / gemm_prepacked: a constant operand (layer weights) can
//    be packed into panel layout once and reused across calls instead of
//    being re-packed on every forward.
//  - Epilogue: a per-element transform (bias / folded-BN scale+shift /
//    ReLU / clipped ReLU) swept over each output cache block right after
//    its final reduction lands, while the block is still resident —
//    instead of re-traversing the whole tensor (and re-allocating it) in
//    separate bias/BN/activation passes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/thread_pool.hpp"

namespace adcnn::nn {

/// Per-element transform fused into the GEMM write-back. Applied to the
/// fully reduced value v of C(i, j) in this order:
///   1. v = row_scale[i] * v + row_bias[i]   (either pointer may be null;
///      the combined form mirrors BatchNorm's eval affine `a*x + b`)
///   2. v += col_bias[j]
///   3. activation: ReLU (max(v, 0)) or the paper's clipped ReLU
///      (0 below clip_lo, v - clip_lo inside, clip_hi - clip_lo above).
/// Bias and activation steps replicate the separate layers' float ops
/// exactly, so those fusions are bit-identical to the unfused path;
/// row_scale (BN folding) legitimately reassociates and is tolerance-
/// checked instead.
struct Epilogue {
  enum class Act { kNone, kReLU, kClip };

  const float* row_scale = nullptr;  // per output row (m)
  const float* row_bias = nullptr;   // per output row (m)
  const float* col_bias = nullptr;   // per output column (n)
  Act act = Act::kNone;
  float clip_lo = 0.0f;
  float clip_hi = 0.0f;

  bool trivial() const {
    return row_scale == nullptr && row_bias == nullptr &&
           col_bias == nullptr && act == Act::kNone;
  }
};

/// A matrix pre-packed into the engine's panel layout. `lhs` selects the
/// A-side layout (MR-row panels, blocked [pc][ic]) vs the B-side layout
/// (NR-column panels, blocked [jc][pc]). Packed blocks mirror exactly what
/// the engine's on-the-fly packers produce, so prepacked GEMM results are
/// bit-identical to the repacking path. Read-only after construction —
/// safe to share across ConvNodeWorker threads.
struct PackedMatrix {
  bool lhs = true;
  std::int64_t rows = 0;  // m for lhs, k for rhs
  std::int64_t cols = 0;  // k for lhs, n for rhs
  std::vector<float> data;
  std::vector<std::size_t> block_off;  // lhs: [pcb*IB + icb]; rhs: [jcb*PB + pcb]

  bool empty() const { return data.empty(); }
  std::size_t bytes() const { return data.size() * sizeof(float); }
};

/// Pack A (m x k, row-major) for use as the left operand.
PackedMatrix pack_lhs(const float* a, std::int64_t m, std::int64_t k);

/// Pack B for use as the right operand of C = A * op(B). `trans` means b
/// is stored row-major as (n, k) and used as B^T — the Linear weight case.
PackedMatrix pack_rhs(const float* b, std::int64_t k, std::int64_t n,
                      bool trans);

/// C(m,n) += A(m,k) * B(k,n), all row-major, no aliasing.
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C(m,n) = A(m,k) * B(k,n) (C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C(m,n) += A^T(k,m) * B(k,n): A stored row-major as (k,m).
void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// C(m,n) += A(m,k) * B^T(n,k): B stored row-major as (n,k).
void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// Reference kernel: the pre-engine ikj loop nest with the per-element
/// zero-skip branch, C overwritten. Kept as the correctness oracle and the
/// micro-benchmark baseline; never used on a hot path.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n);

/// Blocked engine with an explicit pool (C overwritten; null pool = fully
/// serial). gemm() is exactly gemm_blocked with the global pool; tests and
/// benchmarks use this entry point to pin a thread count. An optional
/// epilogue is applied per cache block after its final reduction.
void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n,
                  core::ThreadPool* pool = nullptr,
                  const Epilogue* epi = nullptr);

/// C(m,n) = A(m,k) * B(k,n) with A pre-packed (C overwritten). `a` must
/// point at the same data `a_packed` was built from: shapes below the
/// engine's small-matrix cutoff run the plain loop nest on the raw
/// operands (bit-identical to gemm_blocked for every shape).
void gemm_prepacked(const float* a, const PackedMatrix& a_packed,
                    const float* b, float* c, std::int64_t m, std::int64_t k,
                    std::int64_t n, const Epilogue* epi = nullptr,
                    core::ThreadPool* pool = nullptr);

/// C(m,n) += A(m,k) * B^T(n,k) with B pre-packed (the Linear weight path;
/// accumulates so callers can seed C with the bias). `b` is the raw (n,k)
/// weight data backing `b_packed`.
void gemm_a_bt_prepacked(const float* a, const float* b,
                         const PackedMatrix& b_packed, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         const Epilogue* epi = nullptr,
                         core::ThreadPool* pool = nullptr);

/// Process-wide packed-weight cache traffic: a miss is a (re)pack, a hit is
/// a forward call that reused an existing packing. Exported as the
/// gemm.pack_hits / gemm.pack_misses metrics by the streaming pipeline.
/// int8 packings (PackedWeightCacheInt8) share the same counters.
std::uint64_t gemm_pack_hits();
std::uint64_t gemm_pack_misses();
/// Bytes currently resident across every live PackedWeightCache packing
/// (the gemm.pack_bytes gauge) — the memory cost the pack cache trades for
/// its hit rate.
std::uint64_t gemm_pack_bytes();

namespace detail {
void pack_cache_note_hit();
void pack_cache_note_miss();
/// Fold a packing-size change into the process-wide resident-bytes account
/// (gemm_pack_bytes): `old_bytes` leave, `new_bytes` arrive.
void pack_cache_note_pack(std::size_t old_bytes, std::size_t new_bytes);
}  // namespace detail

/// Thread-safe lazily repacked weight holder used by Conv2d / Linear.
/// `get` repacks only when `version` (the owning Param's mutation counter)
/// differs from the cached packing's version; concurrent eval forwards on
/// ConvNodeWorker threads share the result read-only via double-checked
/// locking on an acquire/release version atomic. `Packed` is any panel
/// container with a `bytes()` accessor (PackedMatrix, PackedMatrixInt8).
template <typename Packed>
class PackedCache {
 public:
  template <typename PackFn>
  const Packed& get(std::uint64_t version, PackFn&& pack) {
    if (version_.load(std::memory_order_acquire) == version) {
      detail::pack_cache_note_hit();
      return packed_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (version_.load(std::memory_order_relaxed) != version) {
      const std::size_t old_bytes = packed_.bytes();
      packed_ = pack();
      detail::pack_cache_note_miss();
      detail::pack_cache_note_pack(old_bytes, packed_.bytes());
      version_.store(version, std::memory_order_release);
    } else {
      detail::pack_cache_note_hit();  // benign race: another thread packed
    }
    return packed_;
  }

  /// Drop the cached packing; the next get() repacks.
  void invalidate() { version_.store(kEmpty, std::memory_order_release); }

  ~PackedCache() { detail::pack_cache_note_pack(packed_.bytes(), 0); }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  Packed packed_;
  std::atomic<std::uint64_t> version_{kEmpty};
  std::mutex mu_;
};

using PackedWeightCache = PackedCache<PackedMatrix>;

// --- int8 inference path (DESIGN.md §14) -------------------------------
//
// Weights are quantized symmetrically per output channel onto signed 8-bit
// levels (scale s_w[i] = max|W[i,:]| / 127); activations onto unsigned
// 8-bit levels with a per-tensor affine grid (level = round(v / s_a) + zp,
// clamped to [0, 255] — for clip-bounded inputs s_a = range / 255 and
// zp = 0, exactly the nn::FakeQuant / compress::Quantizer grid at 8 bits).
// The GEMM accumulates the integer levels exactly in int32 (the VNNI
// microkernel and the portable fallback compute the same sums, and integer
// addition is associative), so quantized outputs are bit-identical across
// kernel variants, blockings and thread counts. The write-back epilogue
// requantizes to fp32 with the zero-point correction folded per row:
//   C(i,j) = s_a * s_w[i] * (acc(i,j) - zp * rowsum(i)) + bias[i]
// followed by the optional fused ReLU / clipped-ReLU, where rowsum(i) is
// the sum of row i's quantized weight levels.

/// Per-tensor activation quantization grid.
struct ActQuant {
  float scale = 0.0f;       // fp32 units per level; > 0 once calibrated
  std::int32_t zero_point = 0;  // level representing fp32 zero, in [0,255]

  bool valid() const { return scale > 0.0f; }
};

/// Weights pre-quantized and packed for the int8 engine's A side: MC-row
/// blocks (the thread-parallel unit, same MC as the fp32 engine), MR-row
/// panels inside, with the reduction dimension laid out in `groups` groups
/// of 4 bytes — the granule the VNNI dot-product instruction consumes.
/// Plain packings use groups = ceil(k/4) over the row-major k order; conv
/// packings (pack_lhs_s8_conv) permute k to tap-major (ky, kx, ci) with
/// each input-channel quad zero-padded, matching the interleaved image
/// layout the conv entry gathers from. Read-only after construction.
struct PackedMatrixInt8 {
  std::int64_t rows = 0;    // m (output channels)
  std::int64_t cols = 0;    // logical k
  std::int64_t groups = 0;  // 4-byte reduction groups per row
  std::vector<std::int8_t> data;
  std::vector<std::size_t> block_off;   // per MC row block
  std::vector<float> scale;             // per row: s_w
  std::vector<std::int32_t> row_sum;    // per row: sum of quantized levels

  bool empty() const { return data.empty(); }
  std::size_t bytes() const {
    return data.size() + scale.size() * sizeof(float) +
           row_sum.size() * sizeof(std::int32_t);
  }
};

using PackedWeightCacheInt8 = PackedCache<PackedMatrixInt8>;

/// Quantize an (m x k) row-major fp32 matrix onto per-row symmetric s8
/// levels. `out` holds m*k levels (row-major), `scales` and `row_sums` m
/// entries each. Shared by pack_lhs_s8 and the test oracles so every path
/// quantizes identically.
void quantize_weights_s8(const float* a, std::int64_t m, std::int64_t k,
                         std::int8_t* out, float* scales,
                         std::int32_t* row_sums);

/// Quantize `count` fp32 activations onto the u8 grid. NaN maps to the
/// zero-point (mirrors the wire codec's NaN-to-zero clamp).
void quantize_activations_u8(const float* in, std::size_t count,
                             const ActQuant& q, std::uint8_t* out);

/// Quantize + pack A (m x k, row-major) for use as the int8 left operand.
PackedMatrixInt8 pack_lhs_s8(const float* a, std::int64_t m, std::int64_t k);

/// Quantize + pack conv weights (cout x cin x kh x kw, the Conv2d layout)
/// with the k order permuted to tap-major (ky, kx, ci) and each channel
/// quad padded to 4, for use with gemm_s8u8_conv. Per-row scales/sums are
/// identical to pack_lhs_s8 of the flattened weights (integer sums are
/// order-independent).
PackedMatrixInt8 pack_lhs_s8_conv(const float* w, std::int64_t cout,
                                  std::int64_t cin, std::int64_t kh,
                                  std::int64_t kw);

/// Geometry for the direct (im2col-free) int8 conv entry. The image is the
/// quantized input in interleaved channels-last layout with the halo
/// already padded: byte (y, x, c) at [(y * wpad + x) * cin4 * 4 + c],
/// where cin4 = ceil(cin/4) and channels past cin are zero-padded (their
/// weight bytes are zero, so any pad value is exact — use the zero-point).
struct ConvGeomInt8 {
  std::int64_t cin = 0;
  std::int64_t hpad = 0, wpad = 0;  // padded input height/width
  std::int64_t kh = 0, kw = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t hout = 0, wout = 0;

  std::int64_t cin4() const { return (cin + 3) / 4; }
  std::int64_t k() const { return cin * kh * kw; }
  std::int64_t n() const { return hout * wout; }
};

/// Requantization epilogue: per-row fp32 bias and fused activation applied
/// to the dequantized value. Scales/zero-point corrections ride in the
/// packed weights + ActQuant; this struct only carries the fused tail.
struct EpilogueInt8 {
  const float* bias = nullptr;  // per output row (m); may be null
  Epilogue::Act act = Epilogue::Act::kNone;
  float clip_lo = 0.0f;
  float clip_hi = 0.0f;
};

/// C(m,n) fp32 = requantize( Wq(m,k) s8 * Bq(k,n) u8 ) with B row-major
/// quantized activations. Row blocks are farmed out to `pool` (null =
/// serial); integer accumulation makes the result bit-identical across
/// thread counts and kernel variants.
void gemm_s8u8(const PackedMatrixInt8& a, const std::uint8_t* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n,
               const ActQuant& act, const EpilogueInt8* epi = nullptr,
               core::ThreadPool* pool = nullptr);

/// C(m, hout*wout) fp32 = requantized conv of a pack_lhs_s8_conv weight
/// packing against a padded interleaved u8 image (see ConvGeomInt8) —
/// activation panels are gathered straight from the image, so no im2col
/// intermediate is ever materialized. Bit-identical to quantize + im2col +
/// gemm_s8u8_ref (integer accumulation is order-independent).
void gemm_s8u8_conv(const PackedMatrixInt8& a, const std::uint8_t* image,
                    const ConvGeomInt8& g, float* c, const ActQuant& act,
                    const EpilogueInt8* epi = nullptr,
                    core::ThreadPool* pool = nullptr);

/// Reference kernel over raw quantized levels (row-major Wq + the
/// per-row scales/sums quantize_weights_s8 produced): the correctness
/// oracle the engine must match bit-for-bit. Never used on a hot path.
void gemm_s8u8_ref(const std::int8_t* wq, const float* wscale,
                   const std::int32_t* wsum, const std::uint8_t* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n,
                   const ActQuant& act, const EpilogueInt8* epi = nullptr);

/// Which kernel the int8 engine dispatches to on this build/host:
/// "avx512-vnni" or "portable". (Both produce bit-identical results.)
const char* int8_kernel_name();

/// Compute precision selector for the distributed runtime: conv-node
/// prefixes run either the fp32 engine or the int8 path prepared by
/// nn::prepare_int8.
enum class Precision { kFp32, kInt8 };

/// Thread-local int8 compute scope. While alive on a thread, eval
/// forwards of int8-prepared Conv2d/Linear layers on that thread run the
/// quantized kernel; other threads sharing the same model are unaffected —
/// this is how a cluster selects precision per conv node over one shared
/// model. Nesting is allowed (the scope restores the previous state).
class ScopedInt8Compute {
 public:
  ScopedInt8Compute();
  ~ScopedInt8Compute();
  ScopedInt8Compute(const ScopedInt8Compute&) = delete;
  ScopedInt8Compute& operator=(const ScopedInt8Compute&) = delete;

 private:
  bool prev_;
};

/// True while a ScopedInt8Compute is alive on this thread.
bool int8_compute_enabled();

}  // namespace adcnn::nn
