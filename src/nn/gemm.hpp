// Single-precision GEMM compute engine used by Conv2d (im2col) and Linear.
//
// The engine is a cache-blocked, register-tiled kernel in the BLIS style:
// A and B are packed into contiguous MC x KC / KC x NC panels and multiplied
// by an 8x8 microkernel whose accumulators live in registers, so the inner
// loop is branch-free FMA work with unit-stride loads. Row panels (blocks of
// MC output rows) are farmed out to the shared core::ThreadPool; every
// element's accumulation order is independent of the thread count, so
// results are bit-identical from 1 to N threads. The pre-engine ikj loop is
// kept as gemm_naive — the oracle for tests and the baseline the
// micro-benchmarks measure speedup against.
//
// Two inference-time extensions (DESIGN.md §10):
//  - PackedMatrix / gemm_prepacked: a constant operand (layer weights) can
//    be packed into panel layout once and reused across calls instead of
//    being re-packed on every forward.
//  - Epilogue: a per-element transform (bias / folded-BN scale+shift /
//    ReLU / clipped ReLU) swept over each output cache block right after
//    its final reduction lands, while the block is still resident —
//    instead of re-traversing the whole tensor (and re-allocating it) in
//    separate bias/BN/activation passes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/thread_pool.hpp"

namespace adcnn::nn {

/// Per-element transform fused into the GEMM write-back. Applied to the
/// fully reduced value v of C(i, j) in this order:
///   1. v = row_scale[i] * v + row_bias[i]   (either pointer may be null;
///      the combined form mirrors BatchNorm's eval affine `a*x + b`)
///   2. v += col_bias[j]
///   3. activation: ReLU (max(v, 0)) or the paper's clipped ReLU
///      (0 below clip_lo, v - clip_lo inside, clip_hi - clip_lo above).
/// Bias and activation steps replicate the separate layers' float ops
/// exactly, so those fusions are bit-identical to the unfused path;
/// row_scale (BN folding) legitimately reassociates and is tolerance-
/// checked instead.
struct Epilogue {
  enum class Act { kNone, kReLU, kClip };

  const float* row_scale = nullptr;  // per output row (m)
  const float* row_bias = nullptr;   // per output row (m)
  const float* col_bias = nullptr;   // per output column (n)
  Act act = Act::kNone;
  float clip_lo = 0.0f;
  float clip_hi = 0.0f;

  bool trivial() const {
    return row_scale == nullptr && row_bias == nullptr &&
           col_bias == nullptr && act == Act::kNone;
  }
};

/// A matrix pre-packed into the engine's panel layout. `lhs` selects the
/// A-side layout (MR-row panels, blocked [pc][ic]) vs the B-side layout
/// (NR-column panels, blocked [jc][pc]). Packed blocks mirror exactly what
/// the engine's on-the-fly packers produce, so prepacked GEMM results are
/// bit-identical to the repacking path. Read-only after construction —
/// safe to share across ConvNodeWorker threads.
struct PackedMatrix {
  bool lhs = true;
  std::int64_t rows = 0;  // m for lhs, k for rhs
  std::int64_t cols = 0;  // k for lhs, n for rhs
  std::vector<float> data;
  std::vector<std::size_t> block_off;  // lhs: [pcb*IB + icb]; rhs: [jcb*PB + pcb]

  bool empty() const { return data.empty(); }
  std::size_t bytes() const { return data.size() * sizeof(float); }
};

/// Pack A (m x k, row-major) for use as the left operand.
PackedMatrix pack_lhs(const float* a, std::int64_t m, std::int64_t k);

/// Pack B for use as the right operand of C = A * op(B). `trans` means b
/// is stored row-major as (n, k) and used as B^T — the Linear weight case.
PackedMatrix pack_rhs(const float* b, std::int64_t k, std::int64_t n,
                      bool trans);

/// C(m,n) += A(m,k) * B(k,n), all row-major, no aliasing.
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C(m,n) = A(m,k) * B(k,n) (C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C(m,n) += A^T(k,m) * B(k,n): A stored row-major as (k,m).
void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// C(m,n) += A(m,k) * B^T(n,k): B stored row-major as (n,k).
void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// Reference kernel: the pre-engine ikj loop nest with the per-element
/// zero-skip branch, C overwritten. Kept as the correctness oracle and the
/// micro-benchmark baseline; never used on a hot path.
void gemm_naive(const float* a, const float* b, float* c, std::int64_t m,
                std::int64_t k, std::int64_t n);

/// Blocked engine with an explicit pool (C overwritten; null pool = fully
/// serial). gemm() is exactly gemm_blocked with the global pool; tests and
/// benchmarks use this entry point to pin a thread count. An optional
/// epilogue is applied per cache block after its final reduction.
void gemm_blocked(const float* a, const float* b, float* c, std::int64_t m,
                  std::int64_t k, std::int64_t n,
                  core::ThreadPool* pool = nullptr,
                  const Epilogue* epi = nullptr);

/// C(m,n) = A(m,k) * B(k,n) with A pre-packed (C overwritten). `a` must
/// point at the same data `a_packed` was built from: shapes below the
/// engine's small-matrix cutoff run the plain loop nest on the raw
/// operands (bit-identical to gemm_blocked for every shape).
void gemm_prepacked(const float* a, const PackedMatrix& a_packed,
                    const float* b, float* c, std::int64_t m, std::int64_t k,
                    std::int64_t n, const Epilogue* epi = nullptr,
                    core::ThreadPool* pool = nullptr);

/// C(m,n) += A(m,k) * B^T(n,k) with B pre-packed (the Linear weight path;
/// accumulates so callers can seed C with the bias). `b` is the raw (n,k)
/// weight data backing `b_packed`.
void gemm_a_bt_prepacked(const float* a, const float* b,
                         const PackedMatrix& b_packed, float* c,
                         std::int64_t m, std::int64_t k, std::int64_t n,
                         const Epilogue* epi = nullptr,
                         core::ThreadPool* pool = nullptr);

/// Process-wide packed-weight cache traffic: a miss is a (re)pack, a hit is
/// a forward call that reused an existing packing. Exported as the
/// gemm.pack_hits / gemm.pack_misses metrics by the streaming pipeline.
std::uint64_t gemm_pack_hits();
std::uint64_t gemm_pack_misses();
/// Bytes currently resident across every live PackedWeightCache packing
/// (the gemm.pack_bytes gauge) — the memory cost the pack cache trades for
/// its hit rate.
std::uint64_t gemm_pack_bytes();

/// Thread-safe lazily repacked weight holder used by Conv2d / Linear.
/// `get` repacks only when `version` (the owning Param's mutation counter)
/// differs from the cached packing's version; concurrent eval forwards on
/// ConvNodeWorker threads share the result read-only via double-checked
/// locking on an acquire/release version atomic.
class PackedWeightCache {
 public:
  template <typename PackFn>
  const PackedMatrix& get(std::uint64_t version, PackFn&& pack) {
    if (version_.load(std::memory_order_acquire) == version) {
      note_hit();
      return packed_;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (version_.load(std::memory_order_relaxed) != version) {
      const std::size_t old_bytes = packed_.bytes();
      packed_ = pack();
      note_miss();
      note_pack(old_bytes, packed_.bytes());
      version_.store(version, std::memory_order_release);
    } else {
      note_hit();  // lost a benign race: another thread just packed
    }
    return packed_;
  }

  /// Drop the cached packing; the next get() repacks.
  void invalidate() { version_.store(kEmpty, std::memory_order_release); }

 public:
  ~PackedWeightCache() { note_pack(packed_.bytes(), 0); }

 private:
  static void note_hit();
  static void note_miss();
  /// Fold a packing-size change into the process-wide resident-bytes
  /// account (gemm_pack_bytes): `old_bytes` leave, `new_bytes` arrive.
  static void note_pack(std::size_t old_bytes, std::size_t new_bytes);

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  PackedMatrix packed_;
  std::atomic<std::uint64_t> version_{kEmpty};
  std::mutex mu_;
};

}  // namespace adcnn::nn
