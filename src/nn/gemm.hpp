// Minimal single-precision GEMM kernels used by Conv2d (im2col) and Linear.
//
// These are deliberately simple, cache-friendly loop nests (i-k-j order with
// the innermost loop streaming contiguously) rather than a full BLAS: the
// library's experiments are about *distribution*, and the cost model, not
// peak node FLOPs. Still, the ikj order is ~an order of magnitude faster
// than the naive ijk triple loop.
#pragma once

#include <cstdint>

namespace adcnn::nn {

/// C(m,n) += A(m,k) * B(k,n), all row-major, no aliasing.
void gemm_accumulate(const float* a, const float* b, float* c, std::int64_t m,
                     std::int64_t k, std::int64_t n);

/// C(m,n) = A(m,k) * B(k,n) (C overwritten).
void gemm(const float* a, const float* b, float* c, std::int64_t m,
          std::int64_t k, std::int64_t n);

/// C(m,n) += A^T(k,m) * B(k,n): A stored row-major as (k,m).
void gemm_at_b(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

/// C(m,n) += A(m,k) * B^T(n,k): B stored row-major as (n,k).
void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t m,
               std::int64_t k, std::int64_t n);

}  // namespace adcnn::nn
