// int8 inference GEMM engine (DESIGN.md §14).
//
// Weights are per-output-channel symmetric s8, activations per-tensor
// affine u8; products accumulate exactly in int32, so — unlike the fp32
// engine, whose float accumulation forces one fixed reduction order —
// every kernel variant, blocking and thread count produces bit-identical
// quantized sums. The requantization write-back is the only float math,
// and it uses one single-rounded fma per element everywhere (AVX-512
// vector path, portable path, reference), so the fp32 outputs are
// bit-identical across all of them too.
//
// Blocking mirrors the fp32 engine's MC row blocks (the thread-parallel
// unit) and NC column blocks, but drops KC: integer accumulators cannot
// lose precision, so the full reduction stays in the register tile and no
// partial-sum staging buffer is needed. The reduction dimension is laid
// out in 4-byte groups — the granule the AVX-512 VNNI dot-product
// instruction (vpdpbusd: u8 x s8 -> i32) consumes; the portable fallback
// walks the same layout with scalar int math.
//
// The conv entry (gemm_s8u8_conv) never materializes an im2col buffer:
// the quantized input lives in an interleaved channels-last image (each
// spatial position holds its cin bytes, padded to quads), so one
// reduction group = 4 input channels at one kernel tap = 4 contiguous
// image bytes, and activation panels are gathered with single 32-bit
// moves straight from the image. Weights for this entry are packed with
// the matching tap-major k order (pack_lhs_s8_conv); integer sums are
// order-independent, so results are still bit-identical to the row-major
// reference.
//
// This translation unit is compiled with -O3 -march=native behind
// ADCNN_NATIVE_KERNELS (same treatment as gemm.cpp); all vector-typed
// code stays in the anonymous namespace so no SIMD types cross the ABI.

#include "nn/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VNNI__)
#define ADCNN_INT8_AVX512 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC's masked-intrinsic wrappers trip -Wmaybe-uninitialized on the
// undefined pass-through lanes (GCC PR 105593); the lanes are never read.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

namespace adcnn::nn {

namespace {

// MR8 x NR8 is the register tile: 8 output rows x 32 output columns of
// int32 accumulators (16 zmm registers on AVX-512, two B vectors per
// group, so each weight broadcast feeds two dot-product instructions).
// MC8 matches the fp32 engine's row-block size so the thread-parallel
// unit is the same; NC8 bounds the packed-B block resident while a row
// block sweeps it.
constexpr std::int64_t MR8 = 8;
constexpr std::int64_t NR8 = 32;
constexpr std::int64_t MC8 = 64;
constexpr std::int64_t NC8 = 256;

std::int64_t k_groups(std::int64_t k) { return (k + 3) / 4; }

thread_local bool t_int8_compute = false;

std::vector<std::uint8_t>& b8_pack_buffer() {
  thread_local std::vector<std::uint8_t> buf;
  return buf;
}

/// Single-rounded requantization — the only float op between the integer
/// accumulator and the activation. std::fma is correctly rounded both as
/// the hardware instruction and as the libm fallback, so every kernel and
/// every build flag combination produces the same bits.
inline float requantize(std::int32_t acc, std::int32_t off, float cs,
                        float bias) {
  return std::fma(cs, static_cast<float>(acc - off), bias);
}

/// Scalar activation tail, matching the fp32 epilogue's expressions
/// exactly (including NaN behavior: NaN fails both clip comparisons and
/// flows through the v - lo subtraction).
inline float apply_act(float v, Epilogue::Act act, float lo, float hi) {
  switch (act) {
    case Epilogue::Act::kNone:
      return v;
    case Epilogue::Act::kReLU:
      return v > 0.0f ? v : 0.0f;
    case Epilogue::Act::kClip:
      return v < lo ? 0.0f : (v > hi ? hi - lo : v - lo);
  }
  return v;
}

/// Pack one MR8-row panel of quantized weight bytes. `row_byte(i, g, t)`
/// supplies the s8 level of packed row i0+i, reduction group g, byte t —
/// the indirection lets the plain (row-major k) and conv (tap-major k)
/// packers share the layout: out[g * MR8 * 4 + i * 4 + t]. Rows past mr
/// are zero (0 * anything == 0 in integer math, so padding is exact).
template <typename RowByteFn>
void pack_a_panel(std::int64_t groups, std::int64_t i0, std::int64_t mr,
                  std::int8_t* out, RowByteFn&& row_byte) {
  std::memset(out, 0, static_cast<std::size_t>(groups * MR8 * 4));
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t g = 0; g < groups; ++g) {
      std::int8_t* dst = out + g * MR8 * 4 + i * 4;
      for (std::int64_t t = 0; t < 4; ++t) dst[t] = row_byte(i0 + i, g, t);
    }
  }
}

PackedMatrixInt8 finish_pack(std::vector<std::int8_t>&& wq, std::int64_t m,
                             std::int64_t k, std::int64_t groups,
                             std::vector<float>&& scales,
                             std::vector<std::int32_t>&& sums,
                             std::int64_t (*group_src)(std::int64_t, std::int64_t,
                                                       const std::int64_t*),
                             const std::int64_t* geom) {
  PackedMatrixInt8 p;
  p.rows = m;
  p.cols = k;
  p.groups = groups;
  p.scale = std::move(scales);
  p.row_sum = std::move(sums);
  const std::int64_t iblocks = (m + MC8 - 1) / MC8;
  p.block_off.resize(static_cast<std::size_t>(iblocks));
  std::size_t total = 0;
  for (std::int64_t ib = 0; ib < iblocks; ++ib) {
    const std::int64_t mc = std::min(MC8, m - ib * MC8);
    p.block_off[static_cast<std::size_t>(ib)] = total;
    total +=
        static_cast<std::size_t>(((mc + MR8 - 1) / MR8) * groups * MR8 * 4);
  }
  p.data.resize(total);
  auto row_byte = [&](std::int64_t row, std::int64_t g, std::int64_t t) {
    const std::int64_t src = group_src(g * 4 + t, k, geom);
    return src < 0 ? std::int8_t{0} : wq[static_cast<std::size_t>(row * k + src)];
  };
  for (std::int64_t ib = 0; ib < iblocks; ++ib) {
    const std::int64_t ic = ib * MC8;
    const std::int64_t mc = std::min(MC8, m - ic);
    std::int8_t* block =
        p.data.data() + p.block_off[static_cast<std::size_t>(ib)];
    for (std::int64_t ir = 0; ir < mc; ir += MR8) {
      pack_a_panel(groups, ic + ir, std::min(MR8, mc - ir),
                   block + (ir / MR8) * groups * MR8 * 4, row_byte);
    }
  }
  return p;
}

/// Plain k order: packed byte q maps to source k index q (or padding).
std::int64_t plain_group_src(std::int64_t q, std::int64_t k,
                             const std::int64_t*) {
  return q < k ? q : -1;
}

/// Conv tap-major order: packed byte q = ((ky*kw + kx) * cin4 + c4)*4 + t
/// maps to source k index ci*kh*kw + ky*kw + kx with ci = c4*4 + t.
std::int64_t conv_group_src(std::int64_t q, std::int64_t /*k*/,
                            const std::int64_t* geom) {
  const std::int64_t cin = geom[0], khw = geom[1];
  const std::int64_t cin4 = (cin + 3) / 4;
  const std::int64_t ci = q % (cin4 * 4);
  const std::int64_t tap = q / (cin4 * 4);
  if (ci >= cin) return -1;
  return ci * khw + tap;
}

/// Pack a k x nc block of row-major u8 B (cols j0..) into NR8-column
/// panels: out[g * NR8 * 4 + j * 4 + t] = B(4*g + t, j0 + j). Padded
/// k-bytes and columns are zero; the matching weight bytes are zero too,
/// so padding contributes nothing.
void pack_b_u8(const std::uint8_t* b, std::int64_t k, std::int64_t n,
               std::int64_t j0, std::int64_t nc, std::uint8_t* out) {
  const std::int64_t k4 = k_groups(k);
  for (std::int64_t jr = 0; jr < nc; jr += NR8) {
    const std::int64_t nr = std::min(NR8, nc - jr);
    std::uint8_t* panel = out + (jr / NR8) * k4 * NR8 * 4;
    std::memset(panel, 0, static_cast<std::size_t>(k4 * NR8 * 4));
    for (std::int64_t p = 0; p < k; ++p) {
      const std::uint8_t* src = b + p * n + j0 + jr;
      std::uint8_t* dst = panel + (p / 4) * NR8 * 4 + (p % 4);
      for (std::int64_t j = 0; j < nr; ++j) dst[j * 4] = src[j];
    }
  }
}

/// Gather a panel block for columns [j0, j0+nc) straight from the padded
/// interleaved image: one 32-bit move copies an input-channel quad for one
/// output pixel at one tap. Runs are split at output-row wraps so every
/// source address stays a simple stride walk.
void pack_b_conv(const std::uint8_t* img, const ConvGeomInt8& g,
                 std::int64_t j0, std::int64_t nc, std::uint8_t* out) {
  const std::int64_t cin4 = g.cin4();
  const std::int64_t groups = g.kh * g.kw * cin4;
  const std::int64_t pix = cin4 * 4;  // bytes per image position
  const std::int64_t rowbytes = g.wpad * pix;
  for (std::int64_t jr = 0; jr < nc; jr += NR8) {
    const std::int64_t nr = std::min(NR8, nc - jr);
    std::uint8_t* panel = out + (jr / NR8) * groups * NR8 * 4;
    if (nr < NR8) {
      std::memset(panel, 0, static_cast<std::size_t>(groups * NR8 * 4));
    }
    for (std::int64_t ky = 0; ky < g.kh; ++ky) {
      for (std::int64_t kx = 0; kx < g.kw; ++kx) {
        for (std::int64_t c4 = 0; c4 < cin4; ++c4) {
          const std::int64_t grp = (ky * g.kw + kx) * cin4 + c4;
          std::uint8_t* dst = panel + grp * NR8 * 4;
          std::int64_t oj = j0 + jr;
          std::int64_t done = 0;
          while (done < nr) {
            const std::int64_t oy = oj / g.wout;
            const std::int64_t ox = oj % g.wout;
            const std::int64_t run = std::min(nr - done, g.wout - ox);
            const std::uint8_t* src = img +
                                      (oy * g.stride_h + ky) * rowbytes +
                                      (ox * g.stride_w + kx) * pix + c4 * 4;
            const std::int64_t sstep = g.stride_w * pix;
            for (std::int64_t t = 0; t < run; ++t) {
              std::memcpy(dst + (done + t) * 4, src + t * sstep, 4);
            }
            oj += run;
            done += run;
          }
        }
      }
    }
  }
}

/// Per-tile requantization constants for rows [i0, i0+mr).
struct RowConsts {
  float cs[MR8];          // act.scale * w_scale[row]
  std::int32_t off[MR8];  // zero_point * row_sum[row]
  float bias[MR8];
};

inline RowConsts row_consts(const PackedMatrixInt8& a, const ActQuant& act,
                            const EpilogueInt8* epi, std::int64_t i0,
                            std::int64_t mr) {
  RowConsts rc;
  for (std::int64_t i = 0; i < mr; ++i) {
    rc.cs[i] = act.scale * a.scale[static_cast<std::size_t>(i0 + i)];
    rc.off[i] = act.zero_point * a.row_sum[static_cast<std::size_t>(i0 + i)];
    rc.bias[i] = (epi != nullptr && epi->bias != nullptr)
                     ? epi->bias[i0 + i]
                     : 0.0f;
  }
  return rc;
}

#if defined(ADCNN_INT8_AVX512)

/// C tile (mr x nr) = requantize(panel-A . panel-B): 16 zmm accumulators
/// (8 rows x two 16-lane halves), one weight broadcast feeding two
/// vpdpbusd per (row, group). The activation mirrors the scalar
/// expressions lane-for-lane (vmaxps/compare semantics match the ternary
/// forms, including NaN).
void tile_kernel(const std::int8_t* ap, const std::uint8_t* bp,
                 std::int64_t groups, float* c, std::int64_t ldc,
                 std::int64_t mr, std::int64_t nr, const RowConsts& rc,
                 Epilogue::Act act, float lo, float hi) {
  __m512i acc0[MR8], acc1[MR8];
  for (std::int64_t i = 0; i < MR8; ++i) {
    acc0[i] = _mm512_setzero_si512();
    acc1[i] = _mm512_setzero_si512();
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const __m512i bv0 = _mm512_loadu_si512(bp + g * NR8 * 4);
    const __m512i bv1 = _mm512_loadu_si512(bp + g * NR8 * 4 + 64);
    const std::int8_t* arow = ap + g * MR8 * 4;
    for (std::int64_t i = 0; i < MR8; ++i) {
      std::int32_t aw;
      std::memcpy(&aw, arow + i * 4, 4);
      const __m512i av = _mm512_set1_epi32(aw);
      acc0[i] = _mm512_dpbusd_epi32(acc0[i], bv0, av);
      acc1[i] = _mm512_dpbusd_epi32(acc1[i], bv1, av);
    }
  }
  const unsigned full = nr >= 16 ? 16u : static_cast<unsigned>(nr);
  const unsigned rest = nr > 16 ? static_cast<unsigned>(nr - 16) : 0u;
  const __mmask16 mask0 = static_cast<__mmask16>((1u << full) - 1u);
  const __mmask16 mask1 = static_cast<__mmask16>((1u << rest) - 1u);
  const __m512 vzero = _mm512_setzero_ps();
  const __m512 vlo = _mm512_set1_ps(lo);
  const __m512 vhi = _mm512_set1_ps(hi);
  const __m512 vspan = _mm512_set1_ps(hi - lo);
  for (std::int64_t i = 0; i < mr; ++i) {
    const __m512i voff = _mm512_set1_epi32(rc.off[i]);
    const __m512 vcs = _mm512_set1_ps(rc.cs[i]);
    const __m512 vbias = _mm512_set1_ps(rc.bias[i]);
    __m512 v0 = _mm512_fmadd_ps(
        vcs, _mm512_cvtepi32_ps(_mm512_sub_epi32(acc0[i], voff)), vbias);
    __m512 v1 = _mm512_fmadd_ps(
        vcs, _mm512_cvtepi32_ps(_mm512_sub_epi32(acc1[i], voff)), vbias);
    switch (act) {
      case Epilogue::Act::kNone:
        break;
      case Epilogue::Act::kReLU:
        // vmaxps returns the second operand on equal/unordered, matching
        // `v > 0 ? v : 0` for -0.0 and NaN.
        v0 = _mm512_max_ps(v0, vzero);
        v1 = _mm512_max_ps(v1, vzero);
        break;
      case Epilogue::Act::kClip: {
        const __mmask16 lo0 = _mm512_cmp_ps_mask(v0, vlo, _CMP_LT_OQ);
        const __mmask16 hi0 = _mm512_cmp_ps_mask(v0, vhi, _CMP_GT_OQ);
        const __mmask16 lo1 = _mm512_cmp_ps_mask(v1, vlo, _CMP_LT_OQ);
        const __mmask16 hi1 = _mm512_cmp_ps_mask(v1, vhi, _CMP_GT_OQ);
        __m512 r0 = _mm512_sub_ps(v0, vlo);
        __m512 r1 = _mm512_sub_ps(v1, vlo);
        r0 = _mm512_mask_blend_ps(hi0, r0, vspan);
        r1 = _mm512_mask_blend_ps(hi1, r1, vspan);
        v0 = _mm512_mask_blend_ps(lo0, r0, vzero);
        v1 = _mm512_mask_blend_ps(lo1, r1, vzero);
        break;
      }
    }
    _mm512_mask_storeu_ps(c + i * ldc, mask0, v0);
    if (rest != 0) _mm512_mask_storeu_ps(c + i * ldc + 16, mask1, v1);
  }
}

const char* kKernelName = "avx512-vnni";

#else  // portable fallback

/// Same panel layouts, scalar int32 accumulation. Integer sums are order-
/// independent and the requantize/activation expressions are shared, so
/// this produces bit-identical output to the AVX-512 kernel.
void tile_kernel(const std::int8_t* ap, const std::uint8_t* bp,
                 std::int64_t groups, float* c, std::int64_t ldc,
                 std::int64_t mr, std::int64_t nr, const RowConsts& rc,
                 Epilogue::Act act, float lo, float hi) {
  std::int32_t acc[MR8][NR8] = {};
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int8_t* arow = ap + g * MR8 * 4;
    const std::uint8_t* brow = bp + g * NR8 * 4;
    for (std::int64_t i = 0; i < MR8; ++i) {
      for (std::int64_t j = 0; j < NR8; ++j) {
        std::int32_t s = 0;
        for (std::int64_t t = 0; t < 4; ++t) {
          s += static_cast<std::int32_t>(brow[j * 4 + t]) *
               static_cast<std::int32_t>(arow[i * 4 + t]);
        }
        acc[i][j] += s;
      }
    }
  }
  for (std::int64_t i = 0; i < mr; ++i) {
    for (std::int64_t j = 0; j < nr; ++j) {
      const float v = requantize(acc[i][j], rc.off[i], rc.cs[i], rc.bias[i]);
      c[i * ldc + j] = apply_act(v, act, lo, hi);
    }
  }
}

const char* kKernelName = "portable";

#endif

/// Shared block/panel sweep over a packed weight matrix and a B-panel
/// provider: `pack_block(jc, nc, buf)` fills the NR8-column panels for
/// columns [jc, jc+nc). Row blocks go to the pool; every C element is
/// written exactly once, by one thread, from exact integer sums — output
/// is bit-identical for any thread count.
template <typename PackBlockFn>
void engine_s8u8(const PackedMatrixInt8& a, float* c, std::int64_t m,
                 std::int64_t n, const ActQuant& act, const EpilogueInt8* epi,
                 core::ThreadPool* pool, PackBlockFn&& pack_block) {
  if (!act.valid() || act.zero_point < 0 || act.zero_point > 255) {
    throw std::invalid_argument(
        "gemm_s8u8: invalid ActQuant (scale <= 0 or zero_point out of u8)");
  }
  const Epilogue::Act act_kind =
      epi != nullptr ? epi->act : Epilogue::Act::kNone;
  const float lo = epi != nullptr ? epi->clip_lo : 0.0f;
  const float hi = epi != nullptr ? epi->clip_hi : 0.0f;
  if (act_kind == Epilogue::Act::kClip && !(hi > lo)) {
    throw std::invalid_argument(
        "gemm_s8u8: Epilogue clip window is degenerate (clip_hi <= clip_lo)");
  }
  if (m <= 0 || n <= 0) return;

  const std::int64_t groups = a.groups;
  const std::int64_t iblocks = (m + MC8 - 1) / MC8;
  for (std::int64_t jc = 0; jc < n; jc += NC8) {
    const std::int64_t nc = std::min(NC8, n - jc);
    const std::int64_t nc_panels = (nc + NR8 - 1) / NR8;
    std::vector<std::uint8_t>& bbuf = b8_pack_buffer();
    const std::size_t bneed =
        static_cast<std::size_t>(nc_panels * groups * NR8 * 4);
    if (bbuf.size() < bneed) bbuf.resize(bneed);
    pack_block(jc, nc, bbuf.data());
    const std::uint8_t* bpack = bbuf.data();

    auto row_blocks = [&](std::int64_t ib0, std::int64_t ib1) {
      for (std::int64_t ib = ib0; ib < ib1; ++ib) {
        const std::int64_t ic = ib * MC8;
        const std::int64_t mc = std::min(MC8, m - ic);
        const std::int8_t* ablock =
            a.data.data() + a.block_off[static_cast<std::size_t>(ib)];
        for (std::int64_t ir = 0; ir < mc; ir += MR8) {
          const std::int64_t mr = std::min(MR8, mc - ir);
          const RowConsts rc = row_consts(a, act, epi, ic + ir, mr);
          const std::int8_t* ap = ablock + (ir / MR8) * groups * MR8 * 4;
          for (std::int64_t jr = 0; jr < nc; jr += NR8) {
            const std::int64_t nr = std::min(NR8, nc - jr);
            tile_kernel(ap, bpack + (jr / NR8) * groups * NR8 * 4, groups,
                        c + (ic + ir) * n + jc + jr, n, mr, nr, rc, act_kind,
                        lo, hi);
          }
        }
      }
    };
    if (pool) {
      pool->parallel_for(0, iblocks, 1, row_blocks);
    } else {
      row_blocks(0, iblocks);
    }
  }
}

}  // namespace

const char* int8_kernel_name() { return kKernelName; }

void quantize_weights_s8(const float* a, std::int64_t m, std::int64_t k,
                         std::int8_t* out, float* scales,
                         std::int32_t* row_sums) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* row = a + i * k;
    float amax = 0.0f;
    for (std::int64_t p = 0; p < k; ++p) {
      const float mag = std::fabs(row[p]);
      if (mag > amax) amax = mag;  // NaN fails the compare -> ignored here
    }
    // All-zero rows get scale 1 so dequantization stays finite; every
    // level is 0 so the row still contributes exactly zero.
    const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    scales[i] = scale;
    std::int32_t sum = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const float v = row[p];
      long q = (v == v) ? std::lround(v / scale) : 0;
      q = std::min<long>(127, std::max<long>(-127, q));
      out[i * k + p] = static_cast<std::int8_t>(q);
      sum += static_cast<std::int32_t>(q);
    }
    row_sums[i] = sum;
  }
}

void quantize_activations_u8(const float* in, std::size_t count,
                             const ActQuant& q, std::uint8_t* out) {
  if (!q.valid()) {
    throw std::invalid_argument(
        "quantize_activations_u8: uncalibrated ActQuant (scale <= 0)");
  }
  const float scale = q.scale;
  const std::int32_t zp = q.zero_point;
  std::size_t i = 0;
#if defined(ADCNN_INT8_AVX512)
  // Vectorized exact lround(v / scale): rint (vrndscaleps, ties-to-even)
  // plus a +-1 adjustment on exact .5 ties that rint resolved toward zero
  // — x - rint(x) is computed exactly (Sterbenz), so comparing it against
  // +-0.5 identifies ties precisely. lround rounds ties away from zero, so
  // the bump direction must follow the sign of x, not of the residual: a
  // positive tie rint already rounded up (d == -0.5, e.g. 127.5 -> 128)
  // needs no correction.
  const __m512 vscale = _mm512_set1_ps(scale);
  const __m512 vhalf = _mm512_set1_ps(0.5f);
  const __m512 vnhalf = _mm512_set1_ps(-0.5f);
  const __m512 vone = _mm512_set1_ps(1.0f);
  const __m512 vrlo = _mm512_set1_ps(-300.0f);
  const __m512 vrhi = _mm512_set1_ps(300.0f);
  const __m512i vzp = _mm512_set1_epi32(zp);
  const __m512i vzero = _mm512_setzero_si512();
  const __m512i v255 = _mm512_set1_epi32(255);
  for (; i + 16 <= count; i += 16) {
    const __m512 v = _mm512_loadu_ps(in + i);
    const __m512 x = _mm512_div_ps(v, vscale);
    __m512 r = _mm512_roundscale_ps(
        x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    const __m512 d = _mm512_sub_ps(x, r);
    const __m512 fzero = _mm512_setzero_ps();
    const __mmask16 up =
        _mm512_cmp_ps_mask(d, vhalf, _CMP_EQ_OQ) &
        _mm512_cmp_ps_mask(x, fzero, _CMP_GT_OQ);
    const __mmask16 dn =
        _mm512_cmp_ps_mask(d, vnhalf, _CMP_EQ_OQ) &
        _mm512_cmp_ps_mask(x, fzero, _CMP_LT_OQ);
    r = _mm512_mask_add_ps(r, up, r, vone);
    r = _mm512_mask_sub_ps(r, dn, r, vone);
    // Clamp in float so the int conversion cannot saturate to INT_MIN on
    // huge inputs (the final [0,255] clamp needs the sign preserved).
    r = _mm512_max_ps(_mm512_min_ps(r, vrhi), vrlo);
    __m512i level = _mm512_add_epi32(_mm512_cvtps_epi32(r), vzp);
    const __mmask16 nan = _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
    level = _mm512_mask_mov_epi32(level, nan, vzp);  // NaN -> fp32 zero
    level = _mm512_min_epi32(_mm512_max_epi32(level, vzero), v255);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm512_cvtepi32_epi8(level));
  }
#endif
  for (; i < count; ++i) {
    const float v = in[i];
    if (!(v == v)) {  // NaN represents fp32 zero, like the wire codec
      out[i] = static_cast<std::uint8_t>(zp);
      continue;
    }
    // lround(v / scale), exactly the compress::Quantizer / nn::FakeQuant
    // rounding — for the clip-derived grid (zero_point 0, scale range/255)
    // the levels match the 8-bit wire codec bit-for-bit.
    const long level = std::lround(v / scale) + zp;
    out[i] = static_cast<std::uint8_t>(
        std::min<long>(255, std::max<long>(0, level)));
  }
}

PackedMatrixInt8 pack_lhs_s8(const float* a, std::int64_t m, std::int64_t k) {
  PackedMatrixInt8 p;
  p.rows = m;
  p.cols = k;
  if (m <= 0 || k <= 0) return p;
  std::vector<std::int8_t> wq(static_cast<std::size_t>(m * k));
  std::vector<float> scales(static_cast<std::size_t>(m));
  std::vector<std::int32_t> sums(static_cast<std::size_t>(m));
  quantize_weights_s8(a, m, k, wq.data(), scales.data(), sums.data());
  return finish_pack(std::move(wq), m, k, k_groups(k), std::move(scales),
                     std::move(sums), &plain_group_src, nullptr);
}

PackedMatrixInt8 pack_lhs_s8_conv(const float* w, std::int64_t cout,
                                  std::int64_t cin, std::int64_t kh,
                                  std::int64_t kw) {
  PackedMatrixInt8 p;
  const std::int64_t k = cin * kh * kw;
  p.rows = cout;
  p.cols = k;
  if (cout <= 0 || k <= 0) return p;
  std::vector<std::int8_t> wq(static_cast<std::size_t>(cout * k));
  std::vector<float> scales(static_cast<std::size_t>(cout));
  std::vector<std::int32_t> sums(static_cast<std::size_t>(cout));
  quantize_weights_s8(w, cout, k, wq.data(), scales.data(), sums.data());
  const std::int64_t cin4 = (cin + 3) / 4;
  const std::int64_t geom[2] = {cin, kh * kw};
  return finish_pack(std::move(wq), cout, k, kh * kw * cin4,
                     std::move(scales), std::move(sums), &conv_group_src,
                     geom);
}

void gemm_s8u8(const PackedMatrixInt8& a, const std::uint8_t* b, float* c,
               std::int64_t m, std::int64_t k, std::int64_t n,
               const ActQuant& act, const EpilogueInt8* epi,
               core::ThreadPool* pool) {
  if (a.rows != m || a.cols != k || a.groups != k_groups(k)) {
    throw std::invalid_argument("gemm_s8u8: packed A does not match (" +
                                std::to_string(m) + "," + std::to_string(k) +
                                ") row-major");
  }
  if (k <= 0) return;
  engine_s8u8(a, c, m, n, act, epi, pool,
              [&](std::int64_t jc, std::int64_t nc, std::uint8_t* buf) {
                pack_b_u8(b, k, n, jc, nc, buf);
              });
}

void gemm_s8u8_conv(const PackedMatrixInt8& a, const std::uint8_t* image,
                    const ConvGeomInt8& g, float* c, const ActQuant& act,
                    const EpilogueInt8* epi, core::ThreadPool* pool) {
  if (a.rows <= 0 || a.cols != g.k() || a.groups != g.kh * g.kw * g.cin4()) {
    throw std::invalid_argument(
        "gemm_s8u8_conv: packed weights do not match conv geometry");
  }
  if (g.hout <= 0 || g.wout <= 0 || g.stride_h < 1 || g.stride_w < 1 ||
      g.hpad < (g.hout - 1) * g.stride_h + g.kh ||
      g.wpad < (g.wout - 1) * g.stride_w + g.kw) {
    throw std::invalid_argument("gemm_s8u8_conv: inconsistent geometry");
  }
  engine_s8u8(a, c, a.rows, g.n(), act, epi, pool,
              [&](std::int64_t jc, std::int64_t nc, std::uint8_t* buf) {
                pack_b_conv(image, g, jc, nc, buf);
              });
}

void gemm_s8u8_ref(const std::int8_t* wq, const float* wscale,
                   const std::int32_t* wsum, const std::uint8_t* b, float* c,
                   std::int64_t m, std::int64_t k, std::int64_t n,
                   const ActQuant& act, const EpilogueInt8* epi) {
  const Epilogue::Act act_kind =
      epi != nullptr ? epi->act : Epilogue::Act::kNone;
  const float lo = epi != nullptr ? epi->clip_lo : 0.0f;
  const float hi = epi != nullptr ? epi->clip_hi : 0.0f;
  for (std::int64_t i = 0; i < m; ++i) {
    const float cs = act.scale * wscale[i];
    const std::int32_t off = act.zero_point * wsum[i];
    const float bias =
        (epi != nullptr && epi->bias != nullptr) ? epi->bias[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(wq[i * k + p]) *
               static_cast<std::int32_t>(b[p * n + j]);
      }
      const float v = requantize(acc, off, cs, bias);
      c[i * n + j] = apply_act(v, act_kind, lo, hi);
    }
  }
}

ScopedInt8Compute::ScopedInt8Compute() : prev_(t_int8_compute) {
  t_int8_compute = true;
}

ScopedInt8Compute::~ScopedInt8Compute() { t_int8_compute = prev_; }

bool int8_compute_enabled() { return t_int8_compute; }

}  // namespace adcnn::nn
