// Layer abstraction for the CNN engine.
//
// Every operator implements forward (with train/eval modes), backward (for
// the retraining experiments of the paper), shape inference, and a FLOP
// count used by the profiler / cost model. Layers own their parameters
// (value + gradient pairs) by value — RAII everywhere, no manual memory.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace adcnn::nn {

enum class Mode { kTrain, kEval };

/// A learnable parameter: value and accumulated gradient of the same shape.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;
  /// Mutation counter for derived caches (the packed-weight cache keys its
  /// panels on this). Bumped by every library-level weight mutation —
  /// optimizer steps, load_state/copy_params, BN folding. Code that writes
  /// `value` elements directly must call mark_dirty() afterwards (the
  /// gradient checker is exempt: it only runs kTrain forwards, which never
  /// read caches).
  std::uint64_t version = 0;

  explicit Param(std::string n = "") : name(std::move(n)) {}
  Param(Tensor v, std::string n)
      : value(std::move(v)), grad(Tensor::zeros(value.shape())),
        name(std::move(n)) {}

  void zero_grad() { grad.zero(); }
  void mark_dirty() { ++version; }
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute output; in kTrain mode the layer caches whatever backward needs.
  virtual Tensor forward(const Tensor& x, Mode mode) = 0;

  /// Propagate gradient; must follow a kTrain forward. Accumulates parameter
  /// gradients and returns the gradient w.r.t. the layer input.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Output shape for a given input shape (batch included).
  virtual Shape out_shape(const Shape& in) const = 0;

  /// Multiply-accumulate style FLOP estimate (2*MACs for conv/linear) for
  /// one forward pass on input `in`.
  virtual std::int64_t flops(const Shape& in) const {
    return out_shape(in).numel();  // elementwise default
  }

  virtual std::string name() const = 0;

  /// True for stateless pass-through layers (the Identity placeholders the
  /// graph optimizer leaves behind). Containers skip no-op layers during
  /// forward — a folded layer's Tensor copy is pure overhead — while the
  /// layer itself stays in place so indices remain stable for block_ends,
  /// forward_range and FDSP surgery.
  virtual bool is_noop() const { return false; }

  /// Append pointers to this layer's parameters (empty for stateless ops).
  virtual void collect_params(std::vector<Param*>& out) { (void)out; }

  /// Append pointers to non-learnable state tensors that must survive a
  /// weight snapshot (BatchNorm running statistics).
  virtual void collect_buffers(std::vector<Tensor*>& out) { (void)out; }

  std::vector<Param*> params() {
    std::vector<Param*> out;
    collect_params(out);
    return out;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace adcnn::nn
