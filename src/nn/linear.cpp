#include "nn/linear.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/thread_pool.hpp"
#include "nn/gemm.hpp"
#include "nn/scratch.hpp"

namespace adcnn::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               std::string name)
    : in_(in_features), out_(out_features), name_(std::move(name)) {
  const float stddev =
      static_cast<float>(std::sqrt(2.0 / static_cast<double>(in_)));
  weight_ = Param(Tensor::randn(Shape{out_, in_}, rng, 0.0f, stddev),
                  name_ + ".weight");
  bias_ = Param(Tensor::zeros(Shape{out_}), name_ + ".bias");
}

Shape Linear::out_shape(const Shape& in) const {
  if (in.rank() != 2 || in[1] != in_) {
    throw std::invalid_argument(name_ + ": expected (N," +
                                std::to_string(in_) + "), got " +
                                in.to_string());
  }
  return Shape{in[0], out_};
}

void Linear::prepack() { packed_weight(); }

void Linear::prepack_int8() { packed_weight_int8(); }

const PackedMatrix& Linear::packed_weight() {
  return packed_.get(weight_.version, [this] {
    return pack_rhs(weight_.value.data(), in_, out_, /*trans=*/true);
  });
}

const PackedMatrixInt8& Linear::packed_weight_int8() {
  return packed_int8_.get(weight_.version, [this] {
    return pack_lhs_s8(weight_.value.data(), out_, in_);
  });
}

void Linear::forward_int8(const Tensor& x, Tensor& y) {
  // The int8 engine computes A(m,k) * B(k,n) with W as the packed left
  // operand, so B is the quantized input transposed: C (out, N) lands
  // per-row biased/activated and is transposed back into y (N, out). For
  // the runtime's common N == 1 the transposes are no-ops and C writes
  // straight into y.
  const std::int64_t N = x.shape()[0];
  const PackedMatrixInt8& wp = packed_weight_int8();
  EpilogueInt8 epi;
  epi.bias = bias_.value.data();
  epi.act = fused_relu_ ? Epilogue::Act::kReLU : Epilogue::Act::kNone;

  // Scratch sizes scale with the batch N, so all three buffers ride the
  // shared lazy-shrink accounting: a max_batch burst through the dynamic
  // batcher shows up in nn.scratch_bytes and is trimmed back by the
  // pipeline's shrink_scratch() between batches.
  thread_local ScratchBuffer<std::uint8_t> q_buf, bq_buf;
  const std::size_t count = static_cast<std::size_t>(N * in_);
  std::uint8_t* q = q_buf.acquire(count);
  quantize_activations_u8(x.data(), count, input_quant_, q);
  const std::uint8_t* b = q;
  if (N > 1) {
    std::uint8_t* bq = bq_buf.acquire(count);
    for (std::int64_t n = 0; n < N; ++n)
      for (std::int64_t i = 0; i < in_; ++i) bq[i * N + n] = q[n * in_ + i];
    b = bq;
  }
  if (N == 1) {
    gemm_s8u8(wp, b, y.data(), out_, in_, N, input_quant_, &epi,
              &core::ThreadPool::global());
    return;
  }
  thread_local ScratchBuffer<float> c_buf;
  const std::size_t cn = static_cast<std::size_t>(out_ * N);
  float* cbuf = c_buf.acquire(cn);
  gemm_s8u8(wp, b, cbuf, out_, in_, N, input_quant_, &epi,
            &core::ThreadPool::global());
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t o = 0; o < out_; ++o) y[n * out_ + o] = cbuf[o * N + n];
}

Tensor Linear::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  const std::int64_t N = x.shape()[0];
  Tensor y(os);
  if (mode != Mode::kTrain && int8_compute_enabled() && int8_ready()) {
    forward_int8(x, y);  // bias + fused ReLU ride the requantize epilogue
    return y;
  }
  // Seed each output row with the bias, then let the engine accumulate
  // y (N,out) += x (N,in) * W^T (in,out) on top — one pass over y instead
  // of a separate bias sweep after the GEMM. (Keeping the bias in the seed
  // rather than the epilogue preserves the exact accumulation order, so
  // eval outputs stay bit-identical to the unfused path.)
  for (std::int64_t n = 0; n < N; ++n) {
    std::memcpy(y.data() + n * out_, bias_.value.data(),
                static_cast<std::size_t>(out_) * sizeof(float));
  }
  if (mode == Mode::kTrain) {
    if (fused_relu_) {
      throw std::logic_error(
          name_ + ": fused-activation linear is eval-only "
                  "(built by optimize_for_inference)");
    }
    gemm_a_bt(x.data(), weight_.value.data(), y.data(), N, in_, out_);
    cached_input_ = x;
    return y;
  }
  const PackedMatrix& wp = packed_weight();
  Epilogue epi;
  epi.act = Epilogue::Act::kReLU;
  gemm_a_bt_prepacked(x.data(), weight_.value.data(), wp, y.data(), N, in_,
                      out_, fused_relu_ ? &epi : nullptr,
                      &core::ThreadPool::global());
  return y;
}

Tensor Linear::backward(const Tensor& dy) {
  const Tensor& x = cached_input_;
  assert(!x.empty());
  const std::int64_t N = x.shape()[0];
  // dW (out,in) += dy^T (out,N) * x (N,in)
  gemm_at_b(dy.data(), x.data(), weight_.grad.data(), out_, N, in_);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t o = 0; o < out_; ++o) bias_.grad[o] += dy[n * out_ + o];
  // dx (N,in) = dy (N,out) * W (out,in)
  Tensor dx = Tensor::zeros(x.shape());
  gemm_accumulate(dy.data(), weight_.value.data(), dx.data(), N, out_, in_);
  return dx;
}

void Linear::collect_params(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

Shape Flatten::out_shape(const Shape& in) const {
  std::int64_t rest = 1;
  for (std::int64_t i = 1; i < in.rank(); ++i) rest *= in[i];
  return Shape{in[0], rest};
}

Tensor Flatten::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return x.reshaped(out_shape(x.shape()));
}

Tensor Flatten::backward(const Tensor& dy) {
  return dy.reshaped(cached_in_shape_);
}

}  // namespace adcnn::nn
