// Fully connected layer and Flatten.
#pragma once

#include "nn/gemm.hpp"
#include "nn/layer.hpp"

namespace adcnn::nn {

/// y = x W^T + b on (N, in) inputs. Eval forwards run through the
/// packed-weight cache (weights packed as the GEMM's B^T operand once,
/// keyed on Param::version) with an optional fused ReLU epilogue.
class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         std::string name = "fc");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override {
    return 2 * in[0] * in_ * out_;
  }
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }

  // --- inference-graph optimizer hooks (nn/optimize.hpp) ---------------
  /// Fuse a following ReLU into the eval GEMM epilogue (eval-only: a
  /// kTrain forward afterwards throws std::logic_error).
  void fuse_relu() { fused_relu_ = true; }
  bool has_fused_activation() const { return fused_relu_; }
  /// Pack the weights now instead of lazily on the first eval forward.
  void prepack();

  // --- int8 inference hooks (nn/optimize.hpp prepare_int8) -------------
  /// Install the calibrated input grid; eval forwards on threads inside a
  /// ScopedInt8Compute scope then run the quantized GEMM.
  void set_input_quant(const ActQuant& q) { input_quant_ = q; }
  const ActQuant& input_quant() const { return input_quant_; }
  void prepack_int8();
  bool int8_ready() const { return input_quant_.valid(); }

 private:
  const PackedMatrix& packed_weight();
  const PackedMatrixInt8& packed_weight_int8();
  void forward_int8(const Tensor& x, Tensor& y);

  std::int64_t in_, out_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  std::string name_;
  PackedWeightCache packed_;
  PackedWeightCacheInt8 packed_int8_;
  ActQuant input_quant_;
  bool fused_relu_ = false;
  Tensor cached_input_;
};

/// (N,C,H,W) -> (N, C*H*W).
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override {
    (void)in;
    return 0;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace adcnn::nn
