#include "nn/model.hpp"

#include <stdexcept>

namespace adcnn::nn {

void Model::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::int64_t Model::param_count() {
  std::int64_t total = 0;
  for (Param* p : params()) total += p->value.numel();
  return total;
}

Tensor Model::forward_range(const Tensor& x, int begin, int end) {
  if (begin < 0 || end > static_cast<int>(net.size()) || begin > end) {
    throw std::out_of_range("Model::forward_range: bad layer range");
  }
  Tensor cur = x;
  for (int i = begin; i < end; ++i) {
    if (net.at(i).is_noop()) continue;
    cur = net.at(i).forward(cur, Mode::kEval);
  }
  return cur;
}

std::vector<Tensor*> Model::all_state_tensors() {
  std::vector<Tensor*> tensors;
  for (Param* p : params()) tensors.push_back(&p->value);
  std::vector<Tensor*> buffers;
  net.collect_buffers(buffers);
  tensors.insert(tensors.end(), buffers.begin(), buffers.end());
  return tensors;
}

std::vector<float> Model::state() {
  std::vector<float> out;
  for (Tensor* t : all_state_tensors())
    out.insert(out.end(), t->data(), t->data() + t->numel());
  return out;
}

void Model::load_state(std::span<const float> state) {
  std::size_t pos = 0;
  for (Tensor* t : all_state_tensors()) {
    const std::size_t n = static_cast<std::size_t>(t->numel());
    if (pos + n > state.size()) {
      throw std::invalid_argument("Model::load_state: state too short");
    }
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(pos),
              state.begin() + static_cast<std::ptrdiff_t>(pos + n), t->data());
    pos += n;
  }
  if (pos != state.size()) {
    throw std::invalid_argument("Model::load_state: state too long");
  }
  // The loop above wrote parameter tensors in place; packed-weight caches
  // keyed on Param::version must repack.
  for (Param* p : params()) p->mark_dirty();
}

void Model::copy_params(Model& src, Model& dst) {
  auto s = src.all_state_tensors();
  auto d = dst.all_state_tensors();
  if (s.size() != d.size()) {
    throw std::invalid_argument("Model::copy_params: state tensor count "
                                "mismatch (" + std::to_string(s.size()) +
                                " vs " + std::to_string(d.size()) + ")");
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i]->shape() != d[i]->shape()) {
      throw std::invalid_argument("Model::copy_params: shape mismatch at " +
                                  std::to_string(i));
    }
    std::copy(s[i]->data(), s[i]->data() + s[i]->numel(), d[i]->data());
  }
  for (Param* p : dst.params()) p->mark_dirty();
}

}  // namespace adcnn::nn
