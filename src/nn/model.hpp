// Model: an ordered stack of layers with the paper's layer-block structure.
//
// `block_ends[b]` is the index one-past the last layer of layer block b in
// `net`. The first `separable_blocks` blocks are the ones FDSP may
// distribute (§3.2); everything after them (later blocks + FC head) runs on
// the Central node.
//
// Thread-safety note: forward(Mode::kEval) mutates no layer state, so a
// single Model may be shared read-only by many Conv-node worker threads.
// Training (kTrain forward/backward) must be single-threaded per Model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace adcnn::nn {

struct Model {
  std::string name;
  Sequential net;
  std::vector<int> block_ends;
  int separable_blocks = 0;
  Shape input_shape;  // {C,H,W}, batch excluded

  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  Tensor forward(const Tensor& x, Mode mode) { return net.forward(x, mode); }
  Tensor backward(const Tensor& dy) { return net.backward(dy); }

  std::vector<Param*> params() { return net.params(); }
  void zero_grad();
  std::int64_t param_count();

  /// Index into `net` of the first layer *after* the separable region.
  int separable_end_layer() const {
    return separable_blocks == 0 ? 0 : block_ends[separable_blocks - 1];
  }

  /// Run only layers [begin, end) — used by the distributed runtime to
  /// execute the separable prefix on a Conv node / suffix on the Central
  /// node. Always eval mode.
  Tensor forward_range(const Tensor& x, int begin, int end);

  /// Total number of layer blocks (the FC head counts as the final block).
  int num_blocks() const { return static_cast<int>(block_ends.size()); }

  // --- weight snapshot ------------------------------------------------
  // Serializes parameters and BatchNorm running statistics (architecture
  // is NOT encoded; load into a model built by the same builder).
  std::vector<float> state();
  void load_state(std::span<const float> state);

  /// Copy parameters + BN statistics from `src` into `dst` by flattened
  /// order; shapes must match pairwise. Used by progressive retraining:
  /// stages share conv/BN/FC weights while stateless layers (clipped ReLU,
  /// fake-quant, tiling) differ.
  static void copy_params(Model& src, Model& dst);

 private:
  /// Parameters followed by BN running buffers, in layer order.
  std::vector<Tensor*> all_state_tensors();
};

}  // namespace adcnn::nn
