#include "nn/models_mini.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/upsample.hpp"

namespace adcnn::nn {

namespace {

/// Append a conv->BN->ReLU (optionally + pool) layer block and record its
/// end index.
void add_conv_block(Model& m, Rng& rng, std::int64_t cin, std::int64_t cout,
                    std::int64_t pool, const std::string& tag) {
  m.net.emplace<Conv2d>(cin, cout, 3, 1, 1, /*bias=*/false, rng, tag + ".conv");
  m.net.emplace<BatchNorm2d>(cout, 0.1, 1e-5, tag + ".bn");
  m.net.emplace<ReLU>(tag + ".relu");
  if (pool > 1) m.net.emplace<MaxPool2d>(pool, tag + ".pool");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
}

/// 1-D (height-1) conv block for CharCNN.
void add_conv1d_block(Model& m, Rng& rng, std::int64_t cin, std::int64_t cout,
                      std::int64_t pool, const std::string& tag) {
  m.net.emplace<Conv2d>(cin, cout, /*kh=*/1, /*kw=*/3, 1, 1, /*ph=*/0,
                        /*pw=*/1, /*bias=*/false, rng, tag + ".conv");
  m.net.emplace<BatchNorm2d>(cout, 0.1, 1e-5, tag + ".bn");
  m.net.emplace<ReLU>(tag + ".relu");
  if (pool > 1) m.net.emplace<MaxPool2d>(1, pool, tag + ".pool");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
}

/// Basic residual block: conv-BN-ReLU-conv-BN + shortcut, fused ReLU.
void add_residual_block(Model& m, Rng& rng, std::int64_t cin,
                        std::int64_t cout, std::int64_t stride,
                        const std::string& tag) {
  Sequential body(tag + ".body");
  body.emplace<Conv2d>(cin, cout, 3, stride, 1, false, rng, tag + ".conv1");
  body.emplace<BatchNorm2d>(cout, 0.1, 1e-5, tag + ".bn1");
  body.emplace<ReLU>(tag + ".relu1");
  body.emplace<Conv2d>(cout, cout, 3, 1, 1, false, rng, tag + ".conv2");
  body.emplace<BatchNorm2d>(cout, 0.1, 1e-5, tag + ".bn2");
  LayerPtr projection;
  if (cin != cout || stride != 1) {
    auto proj = std::make_unique<Sequential>(tag + ".proj");
    proj->emplace<Conv2d>(cin, cout, 1, stride, 0, false, rng,
                          tag + ".proj_conv");
    proj->emplace<BatchNorm2d>(cout, 0.1, 1e-5, tag + ".proj_bn");
    projection = std::move(proj);
  }
  m.net.add(std::make_unique<Residual>(std::move(body), std::move(projection),
                                       tag));
  m.block_ends.push_back(static_cast<int>(m.net.size()));
}

std::int64_t scaled(const MiniOptions& opt, std::int64_t base) {
  const std::int64_t w =
      static_cast<std::int64_t>(static_cast<double>(base) * opt.width_mult);
  return w < 4 ? 4 : w;
}

void check_image(const MiniOptions& opt, std::int64_t min_divisor) {
  if (opt.image % min_divisor != 0) {
    throw std::invalid_argument("MiniOptions.image must be divisible by " +
                                std::to_string(min_divisor));
  }
}

}  // namespace

Model make_vgg_mini(Rng& rng, const MiniOptions& opt) {
  check_image(opt, 4);
  Model m;
  m.name = "vgg_mini";
  m.input_shape = Shape{opt.channels, opt.image, opt.image};
  const std::int64_t c1 = scaled(opt, 16), c2 = scaled(opt, 32),
                     c3 = scaled(opt, 48);
  add_conv_block(m, rng, opt.channels, c1, 2, "b1");
  add_conv_block(m, rng, c1, c2, 2, "b2");
  add_conv_block(m, rng, c2, c3, 1, "b3");
  add_conv_block(m, rng, c3, c3, 1, "b4");
  m.separable_blocks = 2;
  const std::int64_t s = opt.image / 4;
  m.net.emplace<Flatten>("flatten");
  m.net.emplace<Linear>(c3 * s * s, 64, rng, "fc1");
  m.net.emplace<ReLU>("fc1.relu");
  m.net.emplace<Linear>(64, opt.num_classes, rng, "fc2");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
  return m;
}

Model make_resnet_mini(Rng& rng, const MiniOptions& opt) {
  check_image(opt, 4);
  Model m;
  m.name = "resnet_mini";
  m.input_shape = Shape{opt.channels, opt.image, opt.image};
  const std::int64_t c1 = scaled(opt, 16), c2 = scaled(opt, 32),
                     c3 = scaled(opt, 64);
  add_conv_block(m, rng, opt.channels, c1, 1, "stem");
  add_residual_block(m, rng, c1, c1, 1, "res1");
  add_residual_block(m, rng, c1, c2, 2, "res2");
  m.separable_blocks = 3;
  add_residual_block(m, rng, c2, c3, 2, "res3");
  m.net.emplace<GlobalAvgPool>("gap");
  m.net.emplace<Flatten>("flatten");
  m.net.emplace<Linear>(c3, opt.num_classes, rng, "fc");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
  return m;
}

Model make_yolo_mini(Rng& rng, const MiniOptions& opt) {
  check_image(opt, 8);
  Model m;
  m.name = "yolo_mini";
  m.input_shape = Shape{opt.channels, opt.image, opt.image};
  const std::int64_t c1 = scaled(opt, 16), c2 = scaled(opt, 32),
                     c3 = scaled(opt, 48);
  add_conv_block(m, rng, opt.channels, c1, 2, "b1");
  add_conv_block(m, rng, c1, c2, 2, "b2");
  m.separable_blocks = 2;
  add_conv_block(m, rng, c2, c3, 2, "b3");
  // Detection head: per-cell (background + classes) scores over the SxS
  // grid (S = image/8).
  m.net.emplace<Conv2d>(c3, static_cast<std::int64_t>(opt.num_classes) + 1, 1,
                        1, 0, /*bias=*/true, rng, "head");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
  return m;
}

Model make_fcn_mini(Rng& rng, const MiniOptions& opt) {
  check_image(opt, 4);
  Model m;
  m.name = "fcn_mini";
  m.input_shape = Shape{opt.channels, opt.image, opt.image};
  const std::int64_t c1 = scaled(opt, 16), c2 = scaled(opt, 32),
                     c3 = scaled(opt, 48);
  add_conv_block(m, rng, opt.channels, c1, 2, "b1");
  add_conv_block(m, rng, c1, c2, 2, "b2");
  m.separable_blocks = 2;
  add_conv_block(m, rng, c2, c3, 1, "b3");
  // Per-pixel class scores restored to input resolution.
  m.net.emplace<Conv2d>(c3, static_cast<std::int64_t>(opt.num_classes), 1, 1,
                        0, /*bias=*/true, rng, "score");
  m.net.emplace<UpsampleNearest>(4, "up4");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
  return m;
}

Model make_charcnn_mini(Rng& rng, const MiniOptions& opt) {
  if (opt.length % 4 != 0) {
    throw std::invalid_argument("MiniOptions.length must be divisible by 4");
  }
  Model m;
  m.name = "charcnn_mini";
  m.input_shape = Shape{opt.alphabet, 1, opt.length};
  const std::int64_t c1 = scaled(opt, 16), c2 = scaled(opt, 32);
  add_conv1d_block(m, rng, opt.alphabet, c1, 2, "b1");
  add_conv1d_block(m, rng, c1, c2, 2, "b2");
  m.separable_blocks = 2;
  add_conv1d_block(m, rng, c2, c2, 1, "b3");
  m.net.emplace<Flatten>("flatten");
  m.net.emplace<Linear>(c2 * (opt.length / 4), 64, rng, "fc1");
  m.net.emplace<ReLU>("fc1.relu");
  m.net.emplace<Linear>(64, opt.num_classes, rng, "fc2");
  m.block_ends.push_back(static_cast<int>(m.net.size()));
  return m;
}

Model make_mini(const std::string& family, Rng& rng, const MiniOptions& opt) {
  if (family == "vgg") return make_vgg_mini(rng, opt);
  if (family == "resnet") return make_resnet_mini(rng, opt);
  if (family == "yolo") return make_yolo_mini(rng, opt);
  if (family == "fcn") return make_fcn_mini(rng, opt);
  if (family == "charcnn") return make_charcnn_mini(rng, opt);
  throw std::invalid_argument("make_mini: unknown family '" + family + "'");
}

}  // namespace adcnn::nn
