// Trainable "mini" versions of the paper's five CNN families.
//
// The paper trains/retrains full VGG16 / ResNet34 / YOLO / FCN / CharCNN on
// ImageNet-class datasets; at laptop scale we reproduce the *topology
// families* (conv/BN/ReLU layer blocks with pooling, residual shortcuts,
// detection grid head, segmentation upsample head, 1-D text convolutions)
// at reduced width so every accuracy/retraining experiment runs in seconds.
// Full-scale dimensions are handled separately by nn/archspec for the
// latency cost model. See DESIGN.md §3 for the substitution argument.
#pragma once

#include "nn/model.hpp"

namespace adcnn::nn {

struct MiniOptions {
  std::int64_t image = 32;     // input H == W (must suit the tile grid)
  std::int64_t channels = 3;   // input channels
  int num_classes = 4;
  /// Scales every hidden channel count (min 4). Benches use 0.5 to keep
  /// single-core retraining sweeps fast; 1.0 for tests/examples.
  double width_mult = 1.0;
  // CharCNN-specific:
  std::int64_t alphabet = 16;  // one-hot input channels
  std::int64_t length = 64;    // sequence length
};

/// VGG-style: stacked conv blocks with pooling, flatten + FC head.
/// Blocks: [C3->16 P2] [16->32 P2] [32->48] [48->48] [flatten FC].
/// separable_blocks = 2 (both pooling blocks).
Model make_vgg_mini(Rng& rng, const MiniOptions& opt);

/// ResNet-style: conv stem + basic residual blocks (identity & projection
/// shortcuts, Figure 2(b)/(c) of the paper), GAP + FC head.
/// separable_blocks = 3.
Model make_resnet_mini(Rng& rng, const MiniOptions& opt);

/// YOLO-style grid detector: conv blocks downsample to an SxS cell grid;
/// a 1x1 conv head predicts a (background + classes) distribution per cell.
/// separable_blocks = 2. Output (N, classes+1, S, S).
Model make_yolo_mini(Rng& rng, const MiniOptions& opt);

/// FCN-style semantic segmentation: downsampling trunk, 1x1 class conv,
/// nearest upsample back to input resolution. separable_blocks = 2.
/// Output (N, classes, H, W).
Model make_fcn_mini(Rng& rng, const MiniOptions& opt);

/// CharCNN-style text classifier: 1-D convolutions (stored as H == 1)
/// over a one-hot character tensor (N, alphabet, 1, length).
/// separable_blocks = 2. Partition grids must be 1 x c.
Model make_charcnn_mini(Rng& rng, const MiniOptions& opt);

/// Builder lookup by family name ("vgg", "resnet", "yolo", "fcn",
/// "charcnn") — used by benches that sweep all five models.
Model make_mini(const std::string& family, Rng& rng, const MiniOptions& opt);

}  // namespace adcnn::nn
