#include "nn/optimize.hpp"

#include <cmath>
#include <memory>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"

namespace adcnn::nn {

namespace {

/// Absorb BN's eval affine into the conv: BN computes a*x + b per channel
/// with the coefficients below; scaling output channel c's weights by a_c
/// and rewriting the bias as a_c*bias_c + b_c makes conv(x) produce the
/// same map (up to float reassociation). Coefficients are computed exactly
/// as BatchNorm2d::forward(kEval) computes them (double invstd, float
/// a/b), so the only divergence is the order of multiplies inside the
/// conv's reduction.
void fold_batchnorm(Conv2d& conv, BatchNorm2d& bn) {
  conv.ensure_bias();
  Tensor& w = conv.weight().value;
  Tensor& b = conv.bias().value;
  const std::int64_t cout = conv.out_channels();
  const std::int64_t per = w.numel() / cout;
  for (std::int64_t c = 0; c < cout; ++c) {
    const double invstd = 1.0 / std::sqrt(bn.running_var()[c] + bn.eps());
    const float a = static_cast<float>(bn.gamma().value[c] * invstd);
    const float shift = static_cast<float>(
        bn.beta().value[c] -
        bn.gamma().value[c] * bn.running_mean()[c] * invstd);
    float* wrow = w.data() + c * per;
    for (std::int64_t i = 0; i < per; ++i) wrow[i] *= a;
    b[c] = a * b[c] + shift;
  }
  conv.weight().mark_dirty();
  conv.bias().mark_dirty();
}

void accumulate(OptimizeStats& into, const OptimizeStats& s) {
  into.bn_folded += s.bn_folded;
  into.act_fused += s.act_fused;
  into.prepacked += s.prepacked;
}

}  // namespace

OptimizeStats optimize_for_inference(Sequential& net) {
  OptimizeStats stats;
  auto& layers = net.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer* layer = layers[i].get();
    if (auto* seq = dynamic_cast<Sequential*>(layer)) {
      accumulate(stats, optimize_for_inference(*seq));
      continue;
    }
    if (auto* res = dynamic_cast<Residual*>(layer)) {
      accumulate(stats, optimize_for_inference(res->body()));
      if (auto* proj = dynamic_cast<Sequential*>(res->projection())) {
        accumulate(stats, optimize_for_inference(*proj));
      }
      continue;
    }
    if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      std::size_t next = i + 1;
      if (next < layers.size()) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(layers[next].get())) {
          if (bn->channels() == conv->out_channels()) {
            fold_batchnorm(*conv, *bn);
            layers[next] = std::make_unique<Identity>(bn->name() + ".folded");
            ++stats.bn_folded;
            ++next;
          }
        }
      }
      if (next < layers.size() && !conv->has_fused_activation()) {
        if (auto* relu = dynamic_cast<ReLU*>(layers[next].get())) {
          conv->fuse_relu();
          layers[next] = std::make_unique<Identity>(relu->name() + ".fused");
          ++stats.act_fused;
        } else if (auto* clip =
                       dynamic_cast<ClippedReLU*>(layers[next].get())) {
          conv->fuse_clipped_relu(clip->lower(), clip->upper());
          layers[next] = std::make_unique<Identity>(clip->name() + ".fused");
          ++stats.act_fused;
        }
      }
      conv->prepack();
      ++stats.prepacked;
      continue;
    }
    if (auto* fc = dynamic_cast<Linear*>(layer)) {
      if (i + 1 < layers.size() && !fc->has_fused_activation()) {
        if (auto* relu = dynamic_cast<ReLU*>(layers[i + 1].get())) {
          fc->fuse_relu();
          layers[i + 1] = std::make_unique<Identity>(relu->name() + ".fused");
          ++stats.act_fused;
        }
      }
      fc->prepack();
      ++stats.prepacked;
    }
  }
  return stats;
}

OptimizeStats optimize_for_inference(Model& model) {
  return optimize_for_inference(model.net);
}

}  // namespace adcnn::nn
