#include "nn/optimize.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "nn/regularization.hpp"
#include "nn/tiling.hpp"
#include "nn/upsample.hpp"

namespace adcnn::nn {

namespace {

/// Absorb BN's eval affine into the conv: BN computes a*x + b per channel
/// with the coefficients below; scaling output channel c's weights by a_c
/// and rewriting the bias as a_c*bias_c + b_c makes conv(x) produce the
/// same map (up to float reassociation). Coefficients are computed exactly
/// as BatchNorm2d::forward(kEval) computes them (double invstd, float
/// a/b), so the only divergence is the order of multiplies inside the
/// conv's reduction.
void fold_batchnorm(Conv2d& conv, BatchNorm2d& bn) {
  conv.ensure_bias();
  Tensor& w = conv.weight().value;
  Tensor& b = conv.bias().value;
  const std::int64_t cout = conv.out_channels();
  const std::int64_t per = w.numel() / cout;
  for (std::int64_t c = 0; c < cout; ++c) {
    const double invstd = 1.0 / std::sqrt(bn.running_var()[c] + bn.eps());
    const float a = static_cast<float>(bn.gamma().value[c] * invstd);
    const float shift = static_cast<float>(
        bn.beta().value[c] -
        bn.gamma().value[c] * bn.running_mean()[c] * invstd);
    float* wrow = w.data() + c * per;
    for (std::int64_t i = 0; i < per; ++i) wrow[i] *= a;
    b[c] = a * b[c] + shift;
  }
  conv.weight().mark_dirty();
  conv.bias().mark_dirty();
}

void accumulate(OptimizeStats& into, const OptimizeStats& s) {
  into.bn_folded += s.bn_folded;
  into.act_fused += s.act_fused;
  into.prepacked += s.prepacked;
}

}  // namespace

OptimizeStats optimize_for_inference(Sequential& net) {
  OptimizeStats stats;
  auto& layers = net.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    Layer* layer = layers[i].get();
    if (auto* seq = dynamic_cast<Sequential*>(layer)) {
      accumulate(stats, optimize_for_inference(*seq));
      continue;
    }
    if (auto* res = dynamic_cast<Residual*>(layer)) {
      accumulate(stats, optimize_for_inference(res->body()));
      if (auto* proj = dynamic_cast<Sequential*>(res->projection())) {
        accumulate(stats, optimize_for_inference(*proj));
      }
      continue;
    }
    if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      std::size_t next = i + 1;
      if (next < layers.size()) {
        if (auto* bn = dynamic_cast<BatchNorm2d*>(layers[next].get())) {
          if (bn->channels() == conv->out_channels()) {
            fold_batchnorm(*conv, *bn);
            layers[next] = std::make_unique<Identity>(bn->name() + ".folded");
            ++stats.bn_folded;
            ++next;
          }
        }
      }
      if (next < layers.size() && !conv->has_fused_activation()) {
        if (auto* relu = dynamic_cast<ReLU*>(layers[next].get())) {
          conv->fuse_relu();
          layers[next] = std::make_unique<Identity>(relu->name() + ".fused");
          ++stats.act_fused;
        } else if (auto* clip =
                       dynamic_cast<ClippedReLU*>(layers[next].get())) {
          conv->fuse_clipped_relu(clip->lower(), clip->upper());
          layers[next] = std::make_unique<Identity>(clip->name() + ".fused");
          ++stats.act_fused;
        }
      }
      conv->prepack();
      ++stats.prepacked;
      continue;
    }
    if (auto* fc = dynamic_cast<Linear*>(layer)) {
      if (i + 1 < layers.size() && !fc->has_fused_activation()) {
        if (auto* relu = dynamic_cast<ReLU*>(layers[i + 1].get())) {
          fc->fuse_relu();
          layers[i + 1] = std::make_unique<Identity>(relu->name() + ".fused");
          ++stats.act_fused;
        }
      }
      fc->prepack();
      ++stats.prepacked;
    }
  }
  return stats;
}

OptimizeStats optimize_for_inference(Model& model) {
  return optimize_for_inference(model.net);
}

// --- int8 calibration ---------------------------------------------------

namespace {

/// Derive a conv/linear input grid: exact [0, bound] when an upstream
/// clip/quant bound is statically known (scale = bound / 255, zero-point
/// 0 — the compress::Quantizer / nn::FakeQuant 8-bit grid), else an affine
/// grid over the calibration-observed min/max widened to include zero (so
/// zero-padding and the halo zero-point stay exact).
ActQuant derive_grid(const std::optional<float>& known_bound, float obs_min,
                     float obs_max, Int8Stats& stats) {
  ActQuant q;
  if (known_bound && *known_bound > 0.0f) {
    q.scale = *known_bound / 255.0f;
    q.zero_point = 0;
    ++stats.derived_from_clip;
    return q;
  }
  if (!(obs_min <= obs_max)) return q;  // layer never saw calibration data
  const float lo = std::min(0.0f, obs_min);
  const float hi = std::max(0.0f, obs_max);
  if (!(hi > lo)) return q;  // degenerate (all-zero) input: stay fp32
  q.scale = (hi - lo) / 255.0f;
  q.zero_point = static_cast<std::int32_t>(
      std::min(255L, std::max(0L, std::lround(-lo / q.scale))));
  ++stats.observed;
  return q;
}

/// Propagate the statically known output bound of `layer` given the known
/// input bound (both as "values lie in [0, bound]"); nullopt = unknown.
std::optional<float> propagate_bound(Layer* layer,
                                     std::optional<float> in_bound) {
  if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
    if (conv->fused_activation() == Epilogue::Act::kClip) {
      return conv->fused_clip_hi() - conv->fused_clip_lo();
    }
    return std::nullopt;  // raw / plain-ReLU conv output is unbounded
  }
  if (dynamic_cast<Linear*>(layer)) return std::nullopt;
  if (auto* clip = dynamic_cast<ClippedReLU*>(layer)) return clip->range();
  if (auto* fq = dynamic_cast<FakeQuant*>(layer)) {
    return fq->step() * static_cast<float>((1 << fq->bits()) - 1);
  }
  // Value-preserving / range-contracting layers keep the bound alive.
  if (layer->is_noop() || dynamic_cast<MaxPool2d*>(layer) ||
      dynamic_cast<AvgPool2d*>(layer) || dynamic_cast<GlobalAvgPool*>(layer) ||
      dynamic_cast<Flatten*>(layer) || dynamic_cast<UpsampleNearest*>(layer) ||
      dynamic_cast<TileSplit*>(layer) || dynamic_cast<TileMerge*>(layer) ||
      dynamic_cast<Dropout*>(layer)) {
    return in_bound;
  }
  if (dynamic_cast<ReLU*>(layer)) return in_bound;  // [0,b] stays [0,b]
  return std::nullopt;  // BN, containers, anything else: assume nothing
}

}  // namespace

Int8Stats prepare_int8(Sequential& net,
                       const std::vector<Tensor>& calibration) {
  if (calibration.empty()) {
    throw std::invalid_argument(
        "prepare_int8: need at least one calibration tensor");
  }
  auto& layers = net.layers();
  const std::size_t L = layers.size();

  // Pass 1: run the calibration set through the graph, recording each
  // conv/linear input's min/max (NaN/inf samples are skipped — the grid
  // must stay finite; the quantizer maps runtime NaNs to the zero-point).
  std::vector<float> mn(L, std::numeric_limits<float>::infinity());
  std::vector<float> mx(L, -std::numeric_limits<float>::infinity());
  for (const Tensor& x0 : calibration) {
    Tensor cur = x0;
    for (std::size_t i = 0; i < L; ++i) {
      Layer* layer = layers[i].get();
      if (dynamic_cast<Conv2d*>(layer) || dynamic_cast<Linear*>(layer)) {
        for (std::int64_t j = 0; j < cur.numel(); ++j) {
          const float v = cur[j];
          if (!std::isfinite(v)) continue;
          mn[i] = std::min(mn[i], v);
          mx[i] = std::max(mx[i], v);
        }
      }
      if (!layer->is_noop()) cur = layer->forward(cur, Mode::kEval);
    }
  }

  // Pass 2: walk again with static bound propagation, installing grids and
  // eagerly packing quantized weights.
  Int8Stats stats;
  std::optional<float> bound;  // values known to lie in [0, *bound]
  for (std::size_t i = 0; i < L; ++i) {
    Layer* layer = layers[i].get();
    if (auto* conv = dynamic_cast<Conv2d*>(layer)) {
      if (conv->stride_h() == conv->stride_w()) {
        const ActQuant q = derive_grid(bound, mn[i], mx[i], stats);
        if (q.valid()) {
          conv->set_input_quant(q);
          conv->prepack_int8();
          ++stats.conv_int8;
        }
      }
    } else if (auto* fc = dynamic_cast<Linear*>(layer)) {
      const ActQuant q = derive_grid(bound, mn[i], mx[i], stats);
      if (q.valid()) {
        fc->set_input_quant(q);
        fc->prepack_int8();
        ++stats.linear_int8;
      }
    }
    bound = propagate_bound(layer, bound);
  }
  return stats;
}

Int8Stats prepare_int8(Model& model, const std::vector<Tensor>& calibration) {
  return prepare_int8(model.net, calibration);
}

}  // namespace adcnn::nn
