// Inference-time graph optimizer (DESIGN.md §10).
//
// optimize_for_inference rewrites an eval graph in place:
//  - BatchNorm2d folding: each conv→BN pair becomes a single conv whose
//    weights/bias absorb BN's eval affine (a = gamma/sqrt(var+eps),
//    b = beta - gamma*mean/sqrt(var+eps)). Reassociates float math, so
//    outputs match to ~1e-5 relative, not bitwise.
//  - Activation fusion: a ReLU / ClippedReLU directly following a conv
//    (or a ReLU following a Linear) moves into the GEMM epilogue, so the
//    activation tensor is written exactly once. Bit-identical to the
//    separate layer by construction.
//  - Eager prepacking: every conv/linear packs its weights into the
//    shared packed-weight cache up front, so worker threads start warm.
//
// Folded/fused layers are replaced by Identity placeholders — never
// removed — so layer indices stay valid for block_ends, forward_range and
// the FDSP split/merge surgery. The optimized graph is EVAL-ONLY: fused
// layers throw on kTrain forward, and the parameter/state layout changes
// (folded convs gain a bias; folded BN params stop being collected), so
// snapshot weights BEFORE optimizing. Idempotent: a second pass finds
// nothing left to fold.
#pragma once

#include "nn/model.hpp"

namespace adcnn::nn {

/// No-op placeholder left where a folded/fused layer used to be.
class Identity final : public Layer {
 public:
  explicit Identity(std::string name = "identity") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override {
    (void)mode;
    return x;
  }
  Tensor backward(const Tensor& dy) override { return dy; }
  Shape out_shape(const Shape& in) const override { return in; }
  std::int64_t flops(const Shape& in) const override {
    (void)in;
    return 0;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
};

struct OptimizeStats {
  int bn_folded = 0;   // BatchNorm2d layers folded into a preceding conv
  int act_fused = 0;   // ReLU/ClippedReLU layers moved into GEMM epilogues
  int prepacked = 0;   // conv/linear layers whose weights were prepacked
};

/// Optimize `net` in place (recurses into nested Sequential / Residual
/// bodies and projections). Returns what was rewritten.
OptimizeStats optimize_for_inference(Sequential& net);

/// Convenience overload for whole models; block_ends / separable_blocks /
/// input_shape are untouched (layer indices stay stable by construction).
OptimizeStats optimize_for_inference(Model& model);

}  // namespace adcnn::nn
