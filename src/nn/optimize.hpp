// Inference-time graph optimizer (DESIGN.md §10).
//
// optimize_for_inference rewrites an eval graph in place:
//  - BatchNorm2d folding: each conv→BN pair becomes a single conv whose
//    weights/bias absorb BN's eval affine (a = gamma/sqrt(var+eps),
//    b = beta - gamma*mean/sqrt(var+eps)). Reassociates float math, so
//    outputs match to ~1e-5 relative, not bitwise.
//  - Activation fusion: a ReLU / ClippedReLU directly following a conv
//    (or a ReLU following a Linear) moves into the GEMM epilogue, so the
//    activation tensor is written exactly once. Bit-identical to the
//    separate layer by construction.
//  - Eager prepacking: every conv/linear packs its weights into the
//    shared packed-weight cache up front, so worker threads start warm.
//
// Folded/fused layers are replaced by Identity placeholders — never
// removed — so layer indices stay valid for block_ends, forward_range and
// the FDSP split/merge surgery. The optimized graph is EVAL-ONLY: fused
// layers throw on kTrain forward, and the parameter/state layout changes
// (folded convs gain a bias; folded BN params stop being collected), so
// snapshot weights BEFORE optimizing. Idempotent: a second pass finds
// nothing left to fold.
#pragma once

#include "nn/model.hpp"

namespace adcnn::nn {

/// No-op placeholder left where a folded/fused layer used to be.
class Identity final : public Layer {
 public:
  explicit Identity(std::string name = "identity") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override {
    (void)mode;
    return x;
  }
  Tensor backward(const Tensor& dy) override { return dy; }
  Shape out_shape(const Shape& in) const override { return in; }
  std::int64_t flops(const Shape& in) const override {
    (void)in;
    return 0;
  }
  std::string name() const override { return name_; }
  bool is_noop() const override { return true; }

 private:
  std::string name_;
};

struct OptimizeStats {
  int bn_folded = 0;   // BatchNorm2d layers folded into a preceding conv
  int act_fused = 0;   // ReLU/ClippedReLU layers moved into GEMM epilogues
  int prepacked = 0;   // conv/linear layers whose weights were prepacked
};

/// Optimize `net` in place (recurses into nested Sequential / Residual
/// bodies and projections). Returns what was rewritten.
OptimizeStats optimize_for_inference(Sequential& net);

/// Convenience overload for whole models; block_ends / separable_blocks /
/// input_shape are untouched (layer indices stay stable by construction).
OptimizeStats optimize_for_inference(Model& model);

// --- int8 calibration (DESIGN.md §14) ----------------------------------

struct Int8Stats {
  int conv_int8 = 0;    // convs given an activation grid + packed s8 weights
  int linear_int8 = 0;  // linears likewise
  /// Grids derived exactly from a clipped-ReLU / FakeQuant bound upstream
  /// (scale = range / 255, zero-point 0 — the compress::Quantizer grid).
  int derived_from_clip = 0;
  /// Grids taken from calibration-observed input min/max (affine, with a
  /// zero-point) where no exact bound was known.
  int observed = 0;
};

/// Calibration pass for the int8 inference path. Walks `net` (top-level
/// and nested plain Sequentials; Residual branches stay fp32) running the
/// calibration tensors in eval mode, derives each Conv2d/Linear input's
/// activation grid — exactly from an upstream clipped-ReLU / FakeQuant
/// bound when one is statically known, else from the observed min/max —
/// and eagerly quantizes + packs the layer's weights for the int8 engine.
/// The fp32 path is untouched: calibrated layers only run quantized on
/// threads inside a ScopedInt8Compute scope. Run optimize_for_inference
/// first so fused clip bounds are visible; requires >= 1 calibration
/// tensor. Idempotent (grids are re-derived, packs are version-cached).
Int8Stats prepare_int8(Sequential& net, const std::vector<Tensor>& calibration);

/// Whole-model overload (calibration tensors must carry the batch dim).
Int8Stats prepare_int8(Model& model, const std::vector<Tensor>& calibration);

}  // namespace adcnn::nn
