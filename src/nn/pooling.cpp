#include "nn/pooling.hpp"

#include <cassert>
#include <stdexcept>

namespace adcnn::nn {

MaxPool2d::MaxPool2d(std::int64_t kh, std::int64_t kw, std::string name)
    : kh_(kh), kw_(kw), name_(std::move(name)) {
  if (kh < 1 || kw < 1) throw std::invalid_argument("MaxPool2d: bad kernel");
}

Shape MaxPool2d::out_shape(const Shape& in) const {
  assert(in.rank() == 4);
  if (in[2] % kh_ != 0 || in[3] % kw_ != 0) {
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " not divisible by pooling kernel");
  }
  return Shape{in[0], in[1], in[2] / kh_, in[3] / kw_};
}

Tensor MaxPool2d::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  const std::int64_t N = x.n(), C = x.c(), H = x.h(), W = x.w();
  const std::int64_t HO = os[2], WO = os[3];
  Tensor y(os);
  const bool train = (mode == Mode::kTrain);
  if (train) {
    cached_in_shape_ = x.shape();
    argmax_.assign(static_cast<std::size_t>(os.numel()), 0);
  }
  if (!train) {
    // Eval fast path: hoisted row pointers instead of per-element flat-index
    // arithmetic; the window walks in the same (dh, dw) order with the same
    // strict comparison, so outputs are bit-identical to the train path.
    std::int64_t oi = 0;
    for (std::int64_t nc = 0; nc < N * C; ++nc) {
      const float* plane = x.data() + nc * H * W;
      for (std::int64_t oh = 0; oh < HO; ++oh) {
        const float* win = plane + oh * kh_ * W;
        for (std::int64_t ow = 0; ow < WO; ++ow, ++oi) {
          const float* px = win + ow * kw_;
          float best = -3.4e38f;
          for (std::int64_t dh = 0; dh < kh_; ++dh) {
            const float* row = px + dh * W;
            for (std::int64_t dw = 0; dw < kw_; ++dw) {
              if (row[dw] > best) best = row[dw];
            }
          }
          y[oi] = best;
        }
      }
    }
    return y;
  }
  std::int64_t oi = 0;
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t oh = 0; oh < HO; ++oh)
        for (std::int64_t ow = 0; ow < WO; ++ow, ++oi) {
          float best = -3.4e38f;
          std::int64_t best_idx = 0;
          for (std::int64_t dh = 0; dh < kh_; ++dh)
            for (std::int64_t dw = 0; dw < kw_; ++dw) {
              const std::int64_t ih = oh * kh_ + dh, iw = ow * kw_ + dw;
              const std::int64_t idx = ((n * C + c) * H + ih) * W + iw;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          y[oi] = best;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
  assert(static_cast<std::int64_t>(argmax_.size()) == dy.numel());
  Tensor dx = Tensor::zeros(cached_in_shape_);
  for (std::int64_t i = 0; i < dy.numel(); ++i)
    dx[argmax_[static_cast<std::size_t>(i)]] += dy[i];
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x, Mode mode) {
  const std::int64_t N = x.n(), C = x.c(), HW = x.h() * x.w();
  Tensor y(Shape{N, C, 1, 1});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const float* src = &x.at(n, c, 0, 0);
      double acc = 0.0;
      for (std::int64_t i = 0; i < HW; ++i) acc += src[i];
      y.at(n, c, 0, 0) = static_cast<float>(acc / static_cast<double>(HW));
    }
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  Tensor dx(cached_in_shape_);
  const std::int64_t N = dx.n(), C = dx.c(), HW = dx.h() * dx.w();
  const float inv = 1.0f / static_cast<float>(HW);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c) {
      const float g = dy.at(n, c, 0, 0) * inv;
      float* dst = &dx.at(n, c, 0, 0);
      for (std::int64_t i = 0; i < HW; ++i) dst[i] = g;
    }
  return dx;
}

}  // namespace adcnn::nn
