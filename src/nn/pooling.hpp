// Pooling layers. The paper notes (§3.2) that pooling stays FDSP-safe as
// long as each receptive field lies entirely within one tile — the geometry
// checks in core/geometry enforce that tile extents divide evenly.
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class MaxPool2d final : public Layer {
 public:
  /// Non-overlapping (stride == kernel) pooling, the common CNN case.
  explicit MaxPool2d(std::int64_t kernel, std::string name = "maxpool")
      : MaxPool2d(kernel, kernel, std::move(name)) {}
  MaxPool2d(std::int64_t kh, std::int64_t kw, std::string name = "maxpool");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return name_; }

  std::int64_t kernel_h() const { return kh_; }
  std::int64_t kernel_w() const { return kw_; }

 private:
  std::int64_t kh_, kw_;
  std::string name_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
};

/// Global average pooling: (N,C,H,W) -> (N,C,1,1).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override {
    return Shape{in[0], in[1], 1, 1};
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace adcnn::nn
