#include "nn/profile.hpp"

namespace adcnn::nn {

std::vector<LayerProfileEntry> profile_layers(Model& model,
                                              std::int64_t batch) {
  std::vector<LayerProfileEntry> out;
  Shape cur{batch, model.input_shape[0], model.input_shape[1],
            model.input_shape[2]};
  for (std::size_t i = 0; i < model.net.size(); ++i) {
    Layer& layer = model.net.at(i);
    LayerProfileEntry e;
    e.name = layer.name();
    e.in = cur;
    e.out = layer.out_shape(cur);
    e.flops = layer.flops(cur);
    std::vector<Param*> params;
    layer.collect_params(params);
    for (Param* p : params)
      e.param_bytes += p->value.numel() * static_cast<std::int64_t>(sizeof(float));
    e.out_bytes = e.out.numel() * static_cast<std::int64_t>(sizeof(float));
    cur = e.out;
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<BlockProfileEntry> profile_blocks(Model& model,
                                              std::int64_t batch) {
  const auto layers = profile_layers(model, batch);
  std::vector<BlockProfileEntry> out;
  int begin = 0;
  for (std::size_t b = 0; b < model.block_ends.size(); ++b) {
    const int end = model.block_ends[b];
    BlockProfileEntry e;
    bool has_pool = false;
    for (int i = begin; i < end; ++i) {
      e.flops += layers[static_cast<std::size_t>(i)].flops;
      e.param_bytes += layers[static_cast<std::size_t>(i)].param_bytes;
      if (layers[static_cast<std::size_t>(i)].name.find("pool") !=
          std::string::npos)
        has_pool = true;
    }
    e.in_bytes = layers[static_cast<std::size_t>(begin)].in.numel() *
                 static_cast<std::int64_t>(sizeof(float));
    e.out_bytes = layers[static_cast<std::size_t>(end - 1)].out_bytes;
    e.separable = static_cast<int>(b) < model.separable_blocks;
    const bool is_head = (b + 1 == model.block_ends.size());
    e.name = is_head ? "FC"
                     : "L" + std::to_string(b + 1) + (has_pool ? "(P)" : "");
    out.push_back(std::move(e));
    begin = end;
  }
  return out;
}

}  // namespace adcnn::nn
