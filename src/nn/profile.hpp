// Per-layer / per-block profiling of a Model: FLOPs, parameter bytes and
// activation bytes. Feeds the examples and tests; the full-scale cost model
// uses nn/archspec instead (which needs no weight allocation).
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"

namespace adcnn::nn {

struct LayerProfileEntry {
  std::string name;
  Shape in;
  Shape out;
  std::int64_t flops = 0;
  std::int64_t param_bytes = 0;
  std::int64_t out_bytes = 0;
};

struct BlockProfileEntry {
  std::string name;        // "L1", "L2(P)", ..., "FC"
  std::int64_t flops = 0;
  std::int64_t param_bytes = 0;
  std::int64_t in_bytes = 0;   // ifmap size entering the block
  std::int64_t out_bytes = 0;  // ofmap size leaving the block
  bool separable = false;
};

/// Profile every top-level layer for batch size `batch`.
std::vector<LayerProfileEntry> profile_layers(Model& model,
                                              std::int64_t batch = 1);

/// Aggregate the layer profile into the paper's layer blocks (Figure 3).
std::vector<BlockProfileEntry> profile_blocks(Model& model,
                                              std::int64_t batch = 1);

}  // namespace adcnn::nn
