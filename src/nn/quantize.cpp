#include "nn/quantize.hpp"

#include <cmath>
#include <stdexcept>

namespace adcnn::nn {

FakeQuant::FakeQuant(float range, int bits, std::string name)
    : range_(range), bits_(bits), name_(std::move(name)) {
  if (range <= 0.0f || bits < 1 || bits > 16) {
    throw std::invalid_argument("FakeQuant: bad range/bits");
  }
  step_ = range_ / static_cast<float>((1 << bits_) - 1);
}

float FakeQuant::quantize_value(float v) const {
  if (v <= 0.0f) return 0.0f;
  if (v >= range_) return range_;
  return std::round(v / step_) * step_;
}

Tensor FakeQuant::forward(const Tensor& x, Mode mode) {
  (void)mode;
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) y[i] = quantize_value(x[i]);
  return y;
}

}  // namespace adcnn::nn
