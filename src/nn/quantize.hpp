// Fake quantization layer (§4.2 of the paper).
//
// Simulates the k-bit uniform quantization applied to Conv-node outputs:
// values in [0, range] snap to the nearest of 2^bits levels. The backward
// pass is a straight-through estimator — §4.4: "full-precision gradients
// are used to update the weights".
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class FakeQuant final : public Layer {
 public:
  /// `range` is the full-scale value (clipped-ReLU output span b-a);
  /// `bits` the precision (the paper uses 4).
  FakeQuant(float range, int bits, std::string name = "fake_quant");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override { return dy; }  // STE
  Shape out_shape(const Shape& in) const override { return in; }
  std::string name() const override { return name_; }

  float step() const { return step_; }
  int bits() const { return bits_; }

  /// Quantize a single value (shared with the wire codec so the simulated
  /// training matches what is actually transmitted bit-for-bit).
  float quantize_value(float v) const;

 private:
  float range_;
  int bits_;
  float step_;
  std::string name_;
};

}  // namespace adcnn::nn
