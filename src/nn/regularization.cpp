#include "nn/regularization.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace adcnn::nn {

Dropout::Dropout(double p, Rng& rng, std::string name)
    : p_(p), rng_(rng.fork()), name_(std::move(name)) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

Tensor Dropout::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kEval || p_ == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_.assign(static_cast<std::size_t>(x.numel()), 0.0f);
  Tensor y(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    if (rng_.uniform() >= p_) {
      mask_[static_cast<std::size_t>(i)] = keep_scale;
      y[i] = x[i] * keep_scale;
    }
  }
  return y;
}

Tensor Dropout::backward(const Tensor& dy) {
  assert(static_cast<std::int64_t>(mask_.size()) == dy.numel());
  Tensor dx(dy.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i)
    dx[i] = dy[i] * mask_[static_cast<std::size_t>(i)];
  return dx;
}

AvgPool2d::AvgPool2d(std::int64_t kernel, std::string name)
    : k_(kernel), name_(std::move(name)) {
  if (kernel < 1) throw std::invalid_argument("AvgPool2d: bad kernel");
}

Shape AvgPool2d::out_shape(const Shape& in) const {
  if (in.rank() != 4 || in[2] % k_ != 0 || in[3] % k_ != 0) {
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " not divisible by pooling kernel");
  }
  return Shape{in[0], in[1], in[2] / k_, in[3] / k_};
}

Tensor AvgPool2d::forward(const Tensor& x, Mode mode) {
  const Shape os = out_shape(x.shape());
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  Tensor y(os);
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (std::int64_t n = 0; n < os[0]; ++n)
    for (std::int64_t c = 0; c < os[1]; ++c)
      for (std::int64_t oh = 0; oh < os[2]; ++oh)
        for (std::int64_t ow = 0; ow < os[3]; ++ow) {
          double acc = 0.0;
          for (std::int64_t dh = 0; dh < k_; ++dh)
            for (std::int64_t dw = 0; dw < k_; ++dw)
              acc += x.at(n, c, oh * k_ + dh, ow * k_ + dw);
          y.at(n, c, oh, ow) = static_cast<float>(acc) * inv;
        }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& dy) {
  Tensor dx(cached_in_shape_);
  const float inv = 1.0f / static_cast<float>(k_ * k_);
  for (std::int64_t n = 0; n < dy.n(); ++n)
    for (std::int64_t c = 0; c < dy.c(); ++c)
      for (std::int64_t oh = 0; oh < dy.h(); ++oh)
        for (std::int64_t ow = 0; ow < dy.w(); ++ow) {
          const float g = dy.at(n, c, oh, ow) * inv;
          for (std::int64_t dh = 0; dh < k_; ++dh)
            for (std::int64_t dw = 0; dw < k_; ++dw)
              dx.at(n, c, oh * k_ + dh, ow * k_ + dw) = g;
        }
  return dx;
}

Tensor Softmax::forward(const Tensor& x, Mode mode) {
  if (x.shape().rank() != 2) {
    throw std::invalid_argument("Softmax: expected (N, K) logits");
  }
  const std::int64_t N = x.shape()[0], K = x.shape()[1];
  Tensor y(x.shape());
  for (std::int64_t n = 0; n < N; ++n) {
    double maxv = -1e300;
    for (std::int64_t k = 0; k < K; ++k)
      maxv = std::max(maxv, static_cast<double>(x[n * K + k]));
    double denom = 0.0;
    for (std::int64_t k = 0; k < K; ++k)
      denom += std::exp(static_cast<double>(x[n * K + k]) - maxv);
    for (std::int64_t k = 0; k < K; ++k)
      y[n * K + k] = static_cast<float>(
          std::exp(static_cast<double>(x[n * K + k]) - maxv) / denom);
  }
  if (mode == Mode::kTrain) cached_output_ = y;
  return y;
}

Tensor Softmax::backward(const Tensor& dy) {
  const Tensor& y = cached_output_;
  assert(!y.empty());
  const std::int64_t N = y.shape()[0], K = y.shape()[1];
  Tensor dx(y.shape());
  for (std::int64_t n = 0; n < N; ++n) {
    double dot = 0.0;
    for (std::int64_t k = 0; k < K; ++k)
      dot += static_cast<double>(dy[n * K + k]) * y[n * K + k];
    for (std::int64_t k = 0; k < K; ++k)
      dx[n * K + k] = static_cast<float>(
          y[n * K + k] * (static_cast<double>(dy[n * K + k]) - dot));
  }
  return dx;
}

}  // namespace adcnn::nn
