// Regularization / probability layers rounding out the operator set:
// Dropout (inverted, train-only), AvgPool2d, and Softmax (inference heads).
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

/// Inverted dropout: active only in kTrain; identity at inference, so it is
/// trivially FDSP-safe.
class Dropout final : public Layer {
 public:
  Dropout(double p, Rng& rng, std::string name = "dropout");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }
  std::string name() const override { return name_; }

  double p() const { return p_; }

 private:
  double p_;
  Rng rng_;
  std::string name_;
  std::vector<float> mask_;  // 0 or 1/(1-p)
};

/// Non-overlapping average pooling.
class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::int64_t kernel, std::string name = "avgpool");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::string name() const override { return name_; }

 private:
  std::int64_t k_;
  std::string name_;
  Shape cached_in_shape_;
};

/// Row-wise softmax over (N, K) logits. Backward implements the full
/// Jacobian product (for completeness; training heads normally use the
/// fused softmax-CE loss instead).
class Softmax final : public Layer {
 public:
  explicit Softmax(std::string name = "softmax") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override { return in; }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Tensor cached_output_;
};

}  // namespace adcnn::nn
