#include "nn/scratch.hpp"

namespace adcnn::nn {

namespace detail {

std::atomic<std::int64_t> g_scratch_bytes{0};
std::atomic<std::uint64_t> g_shrink_epoch{0};

}  // namespace detail

void shrink_scratch() {
  detail::g_shrink_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t scratch_bytes() {
  return detail::g_scratch_bytes.load(std::memory_order_relaxed);
}

}  // namespace adcnn::nn
