// Thread-local compute scratch with global byte accounting and lazy
// shrink, shared by every layer that needs per-thread work buffers
// (conv im2col/col2im, int8 quantize planes, linear int8 quantize/
// transpose buffers).
//
// Buffers are thread-local (not layer members) because eval-mode forward
// runs concurrently on every ConvNodeWorker thread; each thread amortizes
// one allocation across all layers/calls. Capacity is globally accounted
// (scratch_bytes) and trimmed back to the current need the first time a
// thread touches it after shrink_scratch() bumps the epoch — a shrink
// request cannot free other threads' buffers directly, so it is applied
// lazily where the buffer lives. With dynamic batching the per-call need
// varies with the achieved batch size, so the lazy shrink is what keeps a
// one-off max_batch burst from pinning high-water scratch for the rest of
// the run.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace adcnn::nn {

namespace detail {

extern std::atomic<std::int64_t> g_scratch_bytes;
extern std::atomic<std::uint64_t> g_shrink_epoch;

}  // namespace detail

template <typename T>
class ScratchBuffer {
 public:
  ~ScratchBuffer() {
    detail::g_scratch_bytes.fetch_add(-accounted_, std::memory_order_relaxed);
  }

  T* acquire(std::size_t need) {
    const std::uint64_t epoch =
        detail::g_shrink_epoch.load(std::memory_order_relaxed);
    if (epoch != epoch_) {
      epoch_ = epoch;
      if (buf_.capacity() > need) std::vector<T>().swap(buf_);
    }
    if (buf_.size() < need) {
      buf_.resize(need);
      const std::int64_t now =
          static_cast<std::int64_t>(buf_.capacity() * sizeof(T));
      detail::g_scratch_bytes.fetch_add(now - accounted_,
                                        std::memory_order_relaxed);
      accounted_ = now;
    }
    return buf_.data();
  }

 private:
  std::vector<T> buf_;
  std::int64_t accounted_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Ask every compute thread to trim its thread-local scratch back down to
/// the next call's actual need (applied lazily, on each thread's next
/// acquire). The streaming pipeline calls this between batches so one
/// large image or batch can't pin high-water scratch for the rest of the
/// run.
void shrink_scratch();

/// Total live bytes across all threads' scratch buffers — exported as the
/// nn.scratch_bytes metric.
std::int64_t scratch_bytes();

}  // namespace adcnn::nn
