#include "nn/sequential.hpp"

#include <cassert>

namespace adcnn::nn {

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor cur = x;
  for (auto& layer : layers_) {
    if (layer->is_noop()) continue;
    cur = layer->forward(cur, mode);
  }
  return cur;
}

Tensor Sequential::backward(const Tensor& dy) {
  Tensor cur = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    cur = (*it)->backward(cur);
  return cur;
}

Shape Sequential::out_shape(const Shape& in) const {
  Shape cur = in;
  for (const auto& layer : layers_) cur = layer->out_shape(cur);
  return cur;
}

std::int64_t Sequential::flops(const Shape& in) const {
  Shape cur = in;
  std::int64_t total = 0;
  for (const auto& layer : layers_) {
    total += layer->flops(cur);
    cur = layer->out_shape(cur);
  }
  return total;
}

void Sequential::collect_params(std::vector<Param*>& out) {
  for (auto& layer : layers_) layer->collect_params(out);
}

void Sequential::collect_buffers(std::vector<Tensor*>& out) {
  for (auto& layer : layers_) layer->collect_buffers(out);
}

Residual::Residual(Sequential body, LayerPtr projection, std::string name)
    : body_(std::move(body)), projection_(std::move(projection)),
      name_(std::move(name)) {}

Shape Residual::out_shape(const Shape& in) const {
  return body_.out_shape(in);
}

std::int64_t Residual::flops(const Shape& in) const {
  std::int64_t total = body_.flops(in);
  if (projection_) total += projection_->flops(in);
  total += out_shape(in).numel();  // elementwise add + relu
  return total;
}

Tensor Residual::forward(const Tensor& x, Mode mode) {
  Tensor main = body_.forward(x, mode);
  Tensor skip = projection_ ? projection_->forward(x, mode) : x;
  assert(main.shape() == skip.shape());
  main.add_(skip);
  const bool train = (mode == Mode::kTrain);
  if (train) relu_mask_.assign(static_cast<std::size_t>(main.numel()), 0);
  for (std::int64_t i = 0; i < main.numel(); ++i) {
    const bool pos = main[i] > 0.0f;
    if (!pos) main[i] = 0.0f;
    if (train) relu_mask_[static_cast<std::size_t>(i)] = pos;
  }
  return main;
}

Tensor Residual::backward(const Tensor& dy) {
  Tensor g(dy.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i)
    g[i] = relu_mask_[static_cast<std::size_t>(i)] ? dy[i] : 0.0f;
  Tensor dx = body_.backward(g);
  if (projection_) {
    dx.add_(projection_->backward(g));
  } else {
    dx.add_(g);
  }
  return dx;
}

void Residual::collect_params(std::vector<Param*>& out) {
  body_.collect_params(out);
  if (projection_) projection_->collect_params(out);
}

void Residual::collect_buffers(std::vector<Tensor*>& out) {
  body_.collect_buffers(out);
  if (projection_) projection_->collect_buffers(out);
}

}  // namespace adcnn::nn
