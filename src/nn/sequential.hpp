// Layer containers: Sequential and Residual (ResNet basic block).
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::string name) : name_(std::move(name)) {}

  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  void add(LayerPtr layer) { layers_.push_back(std::move(layer)); }
  template <typename L, typename... Args>
  L* emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& at(std::size_t i) { return *layers_[i]; }
  const Layer& at(std::size_t i) const { return *layers_[i]; }
  std::vector<LayerPtr>& layers() { return layers_; }

  /// Move all layers out (used by FDSP model surgery).
  std::vector<LayerPtr> take_layers() { return std::move(layers_); }

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override;
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;

 private:
  std::vector<LayerPtr> layers_;
  std::string name_ = "sequential";
};

/// y = ReLU(body(x) + shortcut(x)); shortcut is identity or a projection
/// (1x1 conv + BN) when the body changes shape — Figure 2(b)/(c) of the
/// paper.
class Residual final : public Layer {
 public:
  Residual(Sequential body, LayerPtr projection, std::string name = "res");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override;
  std::string name() const override { return name_; }
  void collect_params(std::vector<Param*>& out) override;
  void collect_buffers(std::vector<Tensor*>& out) override;

  /// The optimizer pass (nn/optimize.hpp) recurses into the branches to
  /// fold BN / fuse activations inside residual blocks.
  Sequential& body() { return body_; }
  Layer* projection() { return projection_.get(); }

 private:
  Sequential body_;
  LayerPtr projection_;  // nullptr = identity shortcut
  std::string name_;
  std::vector<unsigned char> relu_mask_;
};

}  // namespace adcnn::nn
