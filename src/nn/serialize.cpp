#include "nn/serialize.hpp"

#include <cstring>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace adcnn::nn {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'C', 'N'};
constexpr std::uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

void save_state(Model& model, const std::string& path) {
  const std::vector<float> state = model.state();
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("save_state: cannot open " + path);
  const std::uint64_t count = state.size();
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4 ||
      std::fwrite(&kVersion, sizeof kVersion, 1, f.get()) != 1 ||
      std::fwrite(&count, sizeof count, 1, f.get()) != 1 ||
      std::fwrite(state.data(), sizeof(float), state.size(), f.get()) !=
          state.size()) {
    throw std::runtime_error("save_state: short write to " + path);
  }
}

void load_state(Model& model, const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("load_state: cannot open " + path);
  char magic[4] = {};
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("load_state: bad magic in " + path);
  }
  if (std::fread(&version, sizeof version, 1, f.get()) != 1 ||
      version != kVersion) {
    throw std::runtime_error("load_state: unsupported version in " + path);
  }
  if (std::fread(&count, sizeof count, 1, f.get()) != 1) {
    throw std::runtime_error("load_state: truncated header in " + path);
  }
  std::vector<float> state(count);
  if (std::fread(state.data(), sizeof(float), count, f.get()) != count) {
    throw std::runtime_error("load_state: truncated payload in " + path);
  }
  model.load_state(state);  // validates the count against the model
}

}  // namespace adcnn::nn
