// Model weight file I/O. Format: magic "ADCN" | u32 version | u64 float
// count | raw little-endian fp32 values (the Model::state() flattening:
// parameters in layer order, then BatchNorm running statistics).
//
// Architecture is deliberately NOT encoded: load into a model produced by
// the same builder, exactly like the Conv nodes and Central node loading
// their halves of the retrained weights in §6.1.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace adcnn::nn {

void save_state(Model& model, const std::string& path);

/// Throws std::runtime_error on I/O failure, bad magic, or a float count
/// that does not match the model.
void load_state(Model& model, const std::string& path);

}  // namespace adcnn::nn
