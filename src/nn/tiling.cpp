#include "nn/tiling.hpp"

#include <stdexcept>

namespace adcnn::nn {

TileSplit::TileSplit(std::int64_t rows, std::int64_t cols, std::string name)
    : rows_(rows), cols_(cols), name_(std::move(name)) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("TileSplit: bad grid");
}

Shape TileSplit::out_shape(const Shape& in) const {
  if (in.rank() != 4 || in[2] % rows_ != 0 || in[3] % cols_ != 0) {
    throw std::invalid_argument(name_ + ": input " + in.to_string() +
                                " not divisible by grid " +
                                std::to_string(rows_) + "x" +
                                std::to_string(cols_));
  }
  return Shape{in[0] * rows_ * cols_, in[1], in[2] / rows_, in[3] / cols_};
}

Tensor TileSplit::split(const Tensor& x, std::int64_t rows, std::int64_t cols) {
  const std::int64_t N = x.n(), C = x.c(), H = x.h(), W = x.w();
  const std::int64_t th = H / rows, tw = W / cols;
  Tensor out(Shape{N * rows * cols, C, th, tw});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < cols; ++c) {
        const Tensor tile = x.crop(n, 1, r * th, th, c * tw, tw);
        out.paste(tile.reshaped(Shape{1, C, th, tw}), (n * rows + r) * cols + c,
                  0, 0);
      }
  return out;
}

Tensor TileSplit::merge(const Tensor& tiles, std::int64_t rows,
                        std::int64_t cols) {
  const std::int64_t NT = tiles.n(), C = tiles.c(), th = tiles.h(),
                     tw = tiles.w();
  if (NT % (rows * cols) != 0) {
    throw std::invalid_argument("TileSplit::merge: batch not a multiple of "
                                "grid size");
  }
  const std::int64_t N = NT / (rows * cols);
  Tensor out(Shape{N, C, th * rows, tw * cols});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < cols; ++c) {
        const Tensor tile =
            tiles.crop((n * rows + r) * cols + c, 1, 0, th, 0, tw);
        out.paste(tile, n, r * th, c * tw);
      }
  return out;
}

Tensor TileSplit::forward(const Tensor& x, Mode mode) {
  (void)mode;
  out_shape(x.shape());  // validates divisibility
  return split(x, rows_, cols_);
}

Tensor TileSplit::backward(const Tensor& dy) {
  return merge(dy, rows_, cols_);
}

TileMerge::TileMerge(std::int64_t rows, std::int64_t cols, std::string name)
    : rows_(rows), cols_(cols), name_(std::move(name)) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("TileMerge: bad grid");
}

Shape TileMerge::out_shape(const Shape& in) const {
  if (in.rank() != 4 || in[0] % (rows_ * cols_) != 0) {
    throw std::invalid_argument(name_ + ": batch " + in.to_string() +
                                " not a multiple of grid size");
  }
  return Shape{in[0] / (rows_ * cols_), in[1], in[2] * rows_, in[3] * cols_};
}

Tensor TileMerge::forward(const Tensor& x, Mode mode) {
  (void)mode;
  return TileSplit::merge(x, rows_, cols_);
}

Tensor TileMerge::backward(const Tensor& dy) {
  return TileSplit::split(dy, rows_, cols_);
}

}  // namespace adcnn::nn
