// FDSP tiling layers (§3.2 of the paper).
//
// TileSplit reshapes (N,C,H,W) into a batch of r*c independent tiles
// (N*r*c, C, H/r, W/c). Because every layer in this engine zero-pads each
// batch sample independently, running the separable layer blocks on the
// tile batch is *exactly* the paper's Fully Decomposable Spatial Partition:
// cross-tile pixels are replaced by zero padding and no halo exchange
// happens. TileMerge stitches the grid back together before the
// non-separable suffix. Both are differentiable, so the same code path
// serves FDSP-aware retraining (Algorithm 1) and distributed inference.
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

/// Row-major tile order: tile t covers grid cell (t / cols, t % cols);
/// sample n's tiles occupy batch slots [n*r*c, (n+1)*r*c).
class TileSplit final : public Layer {
 public:
  TileSplit(std::int64_t rows, std::int64_t cols,
            std::string name = "tile_split");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override {
    (void)in;
    return 0;
  }
  std::string name() const override { return name_; }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

  /// Static helpers shared with the runtime (which splits/merges without a
  /// Layer object).
  static Tensor split(const Tensor& x, std::int64_t rows, std::int64_t cols);
  static Tensor merge(const Tensor& tiles, std::int64_t rows,
                      std::int64_t cols);

 private:
  std::int64_t rows_, cols_;
  std::string name_;
};

class TileMerge final : public Layer {
 public:
  TileMerge(std::int64_t rows, std::int64_t cols,
            std::string name = "tile_merge");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override;
  std::int64_t flops(const Shape& in) const override {
    (void)in;
    return 0;
  }
  std::string name() const override { return name_; }

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

 private:
  std::int64_t rows_, cols_;
  std::string name_;
};

}  // namespace adcnn::nn
