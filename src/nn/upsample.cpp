#include "nn/upsample.hpp"

#include <stdexcept>

namespace adcnn::nn {

UpsampleNearest::UpsampleNearest(std::int64_t factor, std::string name)
    : factor_(factor), name_(std::move(name)) {
  if (factor < 1) throw std::invalid_argument("UpsampleNearest: factor < 1");
}

Tensor UpsampleNearest::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kTrain) cached_in_shape_ = x.shape();
  const std::int64_t N = x.n(), C = x.c(), H = x.h(), W = x.w();
  Tensor y(out_shape(x.shape()));
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t h = 0; h < H * factor_; ++h)
        for (std::int64_t w = 0; w < W * factor_; ++w)
          y.at(n, c, h, w) = x.at(n, c, h / factor_, w / factor_);
  return y;
}

Tensor UpsampleNearest::backward(const Tensor& dy) {
  Tensor dx = Tensor::zeros(cached_in_shape_);
  const std::int64_t N = dy.n(), C = dy.c(), H = dy.h(), W = dy.w();
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t c = 0; c < C; ++c)
      for (std::int64_t h = 0; h < H; ++h)
        for (std::int64_t w = 0; w < W; ++w)
          dx.at(n, c, h / factor_, w / factor_) += dy.at(n, c, h, w);
  return dx;
}

}  // namespace adcnn::nn
