// Nearest-neighbour spatial upsampling, used by the FCN-style segmentation
// head to restore full resolution after the downsampling trunk.
#pragma once

#include "nn/layer.hpp"

namespace adcnn::nn {

class UpsampleNearest final : public Layer {
 public:
  explicit UpsampleNearest(std::int64_t factor, std::string name = "upsample");

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& dy) override;
  Shape out_shape(const Shape& in) const override {
    return Shape{in[0], in[1], in[2] * factor_, in[3] * factor_};
  }
  std::string name() const override { return name_; }

 private:
  std::int64_t factor_;
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace adcnn::nn
