#include "obs/critical_path.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/json.hpp"

namespace adcnn::obs {

namespace {

struct Node {
  const Span* span = nullptr;
  std::vector<int> children;       // indices, sorted by begin_ns
  std::int64_t subtree_end = 0;    // max end_ns over the whole subtree
};

std::int64_t compute_subtree_end(std::vector<Node>& nodes, int i, int depth) {
  Node& n = nodes[static_cast<std::size_t>(i)];
  if (n.subtree_end != 0) return n.subtree_end;
  std::int64_t e = n.span->end_ns;
  // Corrupt parent links could form a cycle; a depth cap turns that into a
  // truncated (still useful) attribution instead of a stack overflow.
  if (depth < 64) {
    for (const int c : n.children)
      e = std::max(e, compute_subtree_end(nodes, c, depth + 1));
  }
  n.subtree_end = e;
  return e;
}

struct Attribution {
  std::vector<StageTime> stages;  // ordered by first appearance
  std::unordered_map<std::string, std::size_t> index;

  void add(const char* name, std::int64_t ns) {
    if (ns <= 0) return;
    const auto [it, fresh] = index.try_emplace(name, stages.size());
    if (fresh) stages.push_back(StageTime{name, 0.0, 0.0});
    stages[it->second].seconds += static_cast<double>(ns) / 1e9;
  }
};

/// Decompose [from, to] of node i: descend into whichever begun child
/// subtree extends furthest (the gating chain); gaps covered by no child
/// subtree are the node's own stage time.
void attribute(const std::vector<Node>& nodes, int i, std::int64_t from,
               std::int64_t to, int depth, Attribution* out) {
  const Node& n = nodes[static_cast<std::size_t>(i)];
  std::int64_t cursor = from;
  while (cursor < to) {
    int gating = -1;
    std::int64_t next_begin = to;
    if (depth < 64) {
      for (const int c : n.children) {
        const Node& ch = nodes[static_cast<std::size_t>(c)];
        if (ch.subtree_end <= cursor || ch.span->begin_ns >= to) continue;
        if (ch.span->begin_ns <= cursor) {
          if (gating < 0 ||
              ch.subtree_end >
                  nodes[static_cast<std::size_t>(gating)].subtree_end) {
            gating = c;
          }
        } else {
          next_begin = std::min(next_begin, ch.span->begin_ns);
        }
      }
    }
    if (gating >= 0) {
      const std::int64_t child_to = std::min(
          nodes[static_cast<std::size_t>(gating)].subtree_end, to);
      attribute(nodes, gating, cursor, child_to, depth + 1, out);
      cursor = child_to;
    } else {
      // No begun child subtree is pending: this stretch is the node's own
      // stage (compute inside a leaf, queue/deadline wait inside gather).
      out->add(n.span->name, next_begin - cursor);
      cursor = next_begin;
    }
  }
}

}  // namespace

double CriticalPathReport::stage_seconds(const std::string& name) const {
  for (const auto& s : stages)
    if (s.stage == name) return s.seconds;
  return 0.0;
}

std::string CriticalPathReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("image_id", image_id);
  w.kv("total_s", total_s);
  w.kv("attributed_s", attributed_s);
  w.kv("coverage", coverage());
  w.kv("dominant_stage", dominant_stage);
  w.key("stages").begin_array();
  for (const auto& s : stages) {
    w.begin_object();
    w.kv("stage", s.stage).kv("seconds", s.seconds).kv("fraction", s.fraction);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CriticalPathReport critical_path(const std::vector<Span>& spans,
                                 std::int64_t image_id) {
  CriticalPathReport report;
  report.image_id = image_id;

  std::vector<Node> nodes;
  std::unordered_map<std::int64_t, int> by_id;
  for (const Span& s : spans) {
    if (s.image_id != image_id || s.id == 0) continue;
    by_id.emplace(s.id, static_cast<int>(nodes.size()));  // first id wins
    nodes.push_back(Node{&s, {}, 0});
  }
  if (nodes.empty()) return report;

  std::vector<int> top_level;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Span& s = *nodes[i].span;
    const auto it = s.parent != 0 ? by_id.find(s.parent) : by_id.end();
    if (it != by_id.end() && it->second != static_cast<int>(i)) {
      nodes[static_cast<std::size_t>(it->second)].children.push_back(
          static_cast<int>(i));
    } else {
      // True roots and orphans (parent evicted from the ring) surface here.
      top_level.push_back(static_cast<int>(i));
    }
  }

  // Root = the widest top-level span (the per-image "infer" span when it
  // survived); every other top-level span overlapping it is adopted so
  // ring-evicted parents degrade the tree instead of hiding whole chains.
  int root = top_level.front();
  for (const int i : top_level) {
    const Node& a = nodes[static_cast<std::size_t>(i)];
    const Node& b = nodes[static_cast<std::size_t>(root)];
    if (a.span->end_ns - a.span->begin_ns > b.span->end_ns - b.span->begin_ns)
      root = i;
  }
  for (const int i : top_level) {
    if (i == root) continue;
    const Span& s = *nodes[static_cast<std::size_t>(i)].span;
    const Span& r = *nodes[static_cast<std::size_t>(root)].span;
    if (s.begin_ns < r.end_ns && s.end_ns > r.begin_ns)
      nodes[static_cast<std::size_t>(root)].children.push_back(i);
  }

  for (auto& n : nodes) {
    std::sort(n.children.begin(), n.children.end(), [&](int a, int b) {
      return nodes[static_cast<std::size_t>(a)].span->begin_ns <
             nodes[static_cast<std::size_t>(b)].span->begin_ns;
    });
  }
  compute_subtree_end(nodes, root, 0);

  const Span& rs = *nodes[static_cast<std::size_t>(root)].span;
  report.total_s = static_cast<double>(rs.end_ns - rs.begin_ns) / 1e9;

  Attribution attr;
  attribute(nodes, root, rs.begin_ns, rs.end_ns, 0, &attr);
  report.stages = std::move(attr.stages);
  for (auto& s : report.stages) {
    report.attributed_s += s.seconds;
    if (report.total_s > 0.0) s.fraction = s.seconds / report.total_s;
  }
  const auto dominant = std::max_element(
      report.stages.begin(), report.stages.end(),
      [](const StageTime& a, const StageTime& b) {
        return a.seconds < b.seconds;
      });
  if (dominant != report.stages.end()) report.dominant_stage = dominant->stage;
  return report;
}

}  // namespace adcnn::obs
