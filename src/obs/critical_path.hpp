// Critical-path analysis over one image's causal span tree.
//
// Spans (see trace.hpp) form a tree per image via their id/parent links:
// the "infer" root covers submit-to-output, its central-thread children
// (partition, allocate, scatter, gather_wait, zero_fill, suffix) partition
// the root's own timeline, and each scatter-time downlink span roots a
// cross-thread chain (downlink → tile → conv_compute → compress → uplink)
// whose extent reaches into the gather window. This is a *causal* tree, not
// a nesting tree — a child may begin after its parent span ended.
//
// critical_path() decomposes the root's wall interval [begin, end] into
// named stage segments by always descending into the *gating* subtree: at
// every instant, of the child subtrees already begun and not yet exhausted,
// the one whose subtree extends furthest is the one the image is actually
// waiting on. Time inside a span not covered by any child subtree is
// attributed to that span's own stage name (e.g. gather_wait self time =
// waiting on the results channel after the slowest chain's uplink landed).
// The decomposition covers the whole root interval by construction, so
// attributed_s ≈ total_s; the per-stage split is the profiling signal an
// online partition planner searches against (which stage to shrink: grid
// size vs cut point vs compression setting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace adcnn::obs {

struct StageTime {
  std::string stage;      // span name the time is attributed to
  double seconds = 0.0;   // total along the critical path
  double fraction = 0.0;  // seconds / report.total_s
};

struct CriticalPathReport {
  std::int64_t image_id = -1;
  double total_s = 0.0;       // root span wall time
  double attributed_s = 0.0;  // sum over stages (≈ total_s)
  std::string dominant_stage; // stage with the most attributed time
  /// Aggregated per stage name, ordered by first appearance on the path.
  std::vector<StageTime> stages;

  double coverage() const {
    return total_s > 0.0 ? attributed_s / total_s : 0.0;
  }
  double stage_seconds(const std::string& name) const;
  std::string to_json() const;
};

/// Analyze one image's span tree. `spans` may hold many images (pass a
/// TraceRecorder::spans() dump); only spans with the given image_id are
/// considered. Returns a report with total_s == 0 when the image has no
/// spans (e.g. the tracer was detached or the ring already evicted them).
CriticalPathReport critical_path(const std::vector<Span>& spans,
                                 std::int64_t image_id);

}  // namespace adcnn::obs
