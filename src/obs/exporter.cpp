#include "obs/exporter.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace adcnn::obs {

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Instrument names use
/// dots ("central.latency_s"); map anything illegal to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "adcnn_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_number(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
  } else if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out += buf;
  }
}

void line(std::string& out, const std::string& name, double v) {
  out += name;
  out.push_back(' ');
  append_number(out, v);
  out.push_back('\n');
}

void line(std::string& out, const std::string& name, std::int64_t v) {
  out += name;
  out.push_back(' ');
  out += std::to_string(v);
  out.push_back('\n');
}

/// Atomic publish: write to `<path>.tmp`, then rename over the target so a
/// concurrent reader sees either the old or the new file, never a torn one.
bool write_file_atomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

bool append_file(const std::string& path, const std::string& body,
                 bool truncate) {
  std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

TelemetryExporter::TelemetryExporter(MetricsRegistry& registry,
                                     ExporterConfig cfg)
    : registry_(registry), cfg_(std::move(cfg)) {
  if (cfg_.period_s > 0.0) {
    thread_ = std::thread([this] { run(); });
  }
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::stop() {
  {
    std::lock_guard lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  export_now();  // final flush so even a short run leaves one sample behind
}

void TelemetryExporter::run() {
  const auto period = std::chrono::duration<double>(cfg_.period_s);
  std::unique_lock lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    export_now();
    lock.lock();
  }
}

void TelemetryExporter::export_now() {
  const MetricsSnapshot snap = registry_.snapshot();
  const std::int64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed);
  if (!cfg_.prometheus_path.empty()) {
    write_file_atomic(cfg_.prometheus_path, to_prometheus(snap));
  }
  if (!cfg_.jsonl_path.empty()) {
    append_file(cfg_.jsonl_path, jsonl_line(snap),
                cfg_.truncate_jsonl && tick == 0);
  }
}

std::string TelemetryExporter::to_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    line(out, n, v);
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    line(out, n, v);
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.counts[i];
      out += n + "_bucket{le=\"";
      append_number(out, h.upper_bounds[i]);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    line(out, n + "_sum", h.sum);
    line(out, n + "_count", h.count);
  }
  for (const auto& [name, q] : snap.quantiles) {
    const std::string n = prom_name(name);
    out += "# TYPE " + n + " summary\n";
    const std::pair<const char*, double> qs[] = {{"0.5", q.window.p50},
                                                 {"0.9", q.window.p90},
                                                 {"0.99", q.window.p99},
                                                 {"0.999", q.window.p999}};
    for (const auto& [label, v] : qs) {
      out += n + "{quantile=\"" + label + "\"} ";
      append_number(out, v);
      out.push_back('\n');
    }
    line(out, n + "_sum", q.total.sum);
    line(out, n + "_count", q.total.count);
  }
  return out;
}

std::string TelemetryExporter::jsonl_line(const MetricsSnapshot& snap) {
  const double ts_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonWriter w;
  w.begin_object();
  w.kv("ts_s", ts_s);
  w.key("counters").begin_object();
  for (const auto& [name, v] : snap.counters) w.kv(name, v);
  w.end_object();
  {
    // Per-tick counter deltas: rate-of-change without consumer-side state.
    std::lock_guard lock(mu_);
    w.key("counter_deltas").begin_object();
    for (const auto& [name, v] : snap.counters) {
      const auto it = prev_counters_.find(name);
      w.kv(name, it == prev_counters_.end() ? v : v - it->second);
    }
    w.end_object();
    prev_counters_ = snap.counters;
  }
  w.key("gauges").begin_object();
  for (const auto& [name, v] : snap.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count).kv("sum", h.sum).kv("mean", h.mean());
    w.end_object();
  }
  w.end_object();
  w.key("quantiles").begin_object();
  for (const auto& [name, q] : snap.quantiles) {
    w.key(name).begin_object();
    w.kv("count", q.total.count).kv("window_count", q.window.count);
    w.kv("p50", q.window.p50).kv("p90", q.window.p90);
    w.kv("p99", q.window.p99).kv("p999", q.window.p999);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  std::string out = w.take();
  out.push_back('\n');
  return out;
}

}  // namespace adcnn::obs
