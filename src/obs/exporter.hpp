// Background telemetry exporter.
//
// A TelemetryExporter owns one thread that wakes every `period_s`, snapshots
// a MetricsRegistry, and publishes two artifacts:
//
//  * Prometheus text exposition at `prometheus_path`, written atomically
//    (tmp + rename) so a scraper reading mid-write never sees a torn file.
//    Counters map to `counter` (with an `_total` suffix), gauges to `gauge`,
//    fixed-bucket histograms to `histogram` (cumulative `le` buckets), and
//    windowed quantile instruments to `summary` (`quantile` labels over the
//    sliding window, cumulative `_sum`/`_count`).
//
//  * An append-only JSONL time series at `jsonl_path`: one object per tick
//    with a wall-clock timestamp, raw values, and per-tick counter deltas
//    (rates without scraper-side state).
//
// Either path may be empty to disable that output. stop() (or destruction)
// joins the thread after one final flush, so short-lived runs still export
// at least one sample. export_now() is also callable directly — with
// period_s <= 0 no thread starts and the exporter is purely manual.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace adcnn::obs {

struct ExporterConfig {
  double period_s = 1.0;        // <= 0: no background thread (manual mode)
  std::string prometheus_path;  // empty: skip Prometheus output
  std::string jsonl_path;       // empty: skip JSONL output
  bool truncate_jsonl = true;   // start a fresh series instead of appending
};

class TelemetryExporter {
 public:
  /// The registry must outlive the exporter. Starts the background thread
  /// immediately when cfg.period_s > 0.
  TelemetryExporter(MetricsRegistry& registry, ExporterConfig cfg);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Stop the background thread after one final export. Idempotent.
  void stop();

  /// Snapshot and write both outputs now (also used by the thread).
  void export_now();

  /// Export cycles completed (background + manual).
  std::int64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }

  const ExporterConfig& config() const { return cfg_; }

  /// Render a snapshot in Prometheus text exposition format (version 0.0.4).
  static std::string to_prometheus(const MetricsSnapshot& snap);

 private:
  void run();
  std::string jsonl_line(const MetricsSnapshot& snap);

  MetricsRegistry& registry_;
  ExporterConfig cfg_;
  std::atomic<std::int64_t> ticks_{0};

  std::mutex mu_;  // guards stop_ for the cv, and prev_counters_/first tick
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::map<std::string, std::int64_t> prev_counters_;
  std::thread thread_;
};

}  // namespace adcnn::obs
