// Minimal JSON writer for telemetry exports. Emits RFC 8259 output
// (string escaping, finite-number handling); no parsing, no DOM — the
// telemetry subsystem only ever serializes.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace adcnn::obs {

inline void json_escape_into(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Control chars: C0 block plus DEL (0x7F), which some strict
        // consumers reject raw even though RFC 8259 tolerates it.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) == 0x7F) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Streaming writer producing compact JSON. Keys/values must be emitted
/// in a valid order (the writer tracks comma placement, not grammar).
class JsonWriter {
 public:
  /// Return the document and reset the writer for reuse.
  std::string take() {
    std::string out = std::move(out_);
    out_.clear();  // moved-from is valid-but-unspecified; make it empty
    pending_value_ = false;
    return out;
  }
  const std::string& str() const { return out_; }

  JsonWriter& begin_object() { open('{'); return *this; }
  JsonWriter& end_object() { close('}'); return *this; }
  JsonWriter& begin_array() { open('['); return *this; }
  JsonWriter& end_array() { close(']'); return *this; }

  JsonWriter& key(std::string_view k) {
    comma();
    json_escape_into(out_, k);
    out_.push_back(':');
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    json_escape_into(out_, v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v) {
    comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {  // JSON has no inf/nan
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    out_ += buf;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // directly after a key: no separator
    }
    if (!out_.empty() && out_.back() != '{' && out_.back() != '[' &&
        out_.back() != ':') {
      out_.push_back(',');
    }
  }
  void open(char c) {
    comma();
    out_.push_back(c);
  }
  void close(char c) {
    pending_value_ = false;
    out_.push_back(c);
  }

  std::string out_;
  bool pending_value_ = false;
};

}  // namespace adcnn::obs
