#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace adcnn::obs {

std::int64_t HistogramSnapshot::bucket_total() const {
  std::int64_t total = 0;
  for (const auto c : counts) total += c;
  return total;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_bounds();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  if (n == 0) {  // first observation seeds min/max
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double m = min_.load(std::memory_order_relaxed);
  while (v < m &&
         !min_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
  m = max_.load(std::memory_order_relaxed);
  while (v > m &&
         !max_.compare_exchange_weak(m, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.upper_bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> Histogram::default_latency_bounds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

QuantileHistogram& MetricsRegistry::quantile_histogram(
    const std::string& name, QuantileHistogram::Config cfg) {
  std::lock_guard lock(mu_);
  auto& slot = quantiles_[name];
  if (!slot) slot = std::make_unique<QuantileHistogram>(cfg);
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  for (const auto& [name, q] : quantiles_) s.quantiles[name] = q->snapshot();
  return s;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count).kv("sum", h.sum).kv("min", h.min).kv("max", h.max);
    w.key("upper_bounds").begin_array();
    for (const auto b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (const auto c : h.counts) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.key("quantiles").begin_object();
  for (const auto& [name, q] : quantiles) {
    const auto stats = [&w](const char* key, const QuantileStats& st) {
      w.key(key).begin_object();
      w.kv("count", st.count).kv("sum", st.sum);
      w.kv("p50", st.p50).kv("p90", st.p90);
      w.kv("p99", st.p99).kv("p999", st.p999);
      w.end_object();
    };
    w.key(name).begin_object();
    stats("total", q.total);
    stats("window", q.window);
    w.kv("window_seconds", q.window_seconds);
    w.kv("min", q.total.min).kv("max", q.total.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.take();
}

}  // namespace adcnn::obs
