// Lock-cheap metrics: named counters, gauges, and fixed-bucket histograms.
//
// Hot-path writes are single relaxed atomic RMWs (no locks, no allocation).
// The registry mutex is taken only when an instrument is first looked up by
// name — call sites resolve once and cache the reference — and when a
// snapshot is taken. Instrument references stay valid for the registry's
// lifetime (node-stable storage).
//
// Snapshots are taken while writers may still be running; per-instrument
// values are individually atomic but the snapshot as a whole is not a
// consistent cut (standard Prometheus-style semantics).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/quantile.hpp"

namespace adcnn::obs {

/// Monotonically increasing integer.
class Counter {
 public:
  void add(std::int64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Instantaneous double value (queue depths, EMA speeds, ratios).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
#if defined(__cpp_lib_atomic_float)
    v_.fetch_add(d, std::memory_order_relaxed);
#else
    // Bounded CAS: under heavy contention with concurrent set() callers a
    // bare retry loop can spin pathologically; yield between rounds so the
    // winner's store becomes visible, and never spin more than a handful
    // of rounds per yield.
    double cur = v_.load(std::memory_order_relaxed);
    for (int spin = 0;
         !v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed);
         ++spin) {
      if (spin >= 16) {
        std::this_thread::yield();
        spin = 0;
      }
    }
#endif
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> upper_bounds;   // bucket i counts v <= upper_bounds[i]
  std::vector<std::int64_t> counts;   // upper_bounds.size() + 1 (last = +inf)
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
  std::int64_t bucket_total() const;
};

/// Fixed-bucket histogram. Bounds are set at construction; observe() is a
/// branch-light scan plus relaxed atomic increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;
  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;

  /// Default seconds-scale latency buckets: 100us .. 30s, roughly 1-3-10.
  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;  // bounds_.size()+1
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, QuantileSnapshot> quantiles;
  std::string to_json() const;
};

/// Name -> instrument registry. Thread-safe; instruments are created on
/// first use and never removed.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation; later lookups of the same
  /// name return the existing histogram regardless of bounds.
  Histogram& histogram(const std::string& name, std::vector<double> bounds =
                                                    std::vector<double>());
  /// Windowed quantile instrument (p50/p90/p99/p999 over a sliding window).
  /// `cfg` applies only on first creation, like histogram bounds.
  QuantileHistogram& quantile_histogram(
      const std::string& name,
      QuantileHistogram::Config cfg = QuantileHistogram::Config{});

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileHistogram>> quantiles_;
};

}  // namespace adcnn::obs
