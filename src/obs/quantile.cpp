#include "obs/quantile.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace adcnn::obs {

QuantileHistogram::QuantileHistogram(Config cfg) : cfg_(cfg) {
  if (!(cfg_.min_value > 0.0) || !(cfg_.max_value > cfg_.min_value)) {
    throw std::invalid_argument(
        "QuantileHistogram: need 0 < min_value < max_value");
  }
  if (cfg_.sub_bucket_bits < 1 || cfg_.sub_bucket_bits > 16) {
    throw std::invalid_argument(
        "QuantileHistogram: sub_bucket_bits out of [1, 16]");
  }
  if (cfg_.epochs < 2 || !(cfg_.epoch_seconds > 0.0)) {
    throw std::invalid_argument(
        "QuantileHistogram: need epochs >= 2 and epoch_seconds > 0");
  }
  inv_min_ = 1.0 / cfg_.min_value;
  max_scaled_ = cfg_.max_value * inv_min_;
  const int octaves =
      static_cast<int>(std::ceil(std::log2(max_scaled_))) + 1;
  nbuckets_ = (static_cast<std::size_t>(octaves)
               << static_cast<unsigned>(cfg_.sub_bucket_bits)) +
              1;  // +1: dedicated underflow/clamp bucket at index 0

  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(nbuckets_);
  for (std::size_t i = 0; i < nbuckets_; ++i) buckets_[i].store(0);
  const std::size_t E = static_cast<std::size_t>(cfg_.epochs);
  epoch_buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(E * nbuckets_);
  for (std::size_t i = 0; i < E * nbuckets_; ++i) epoch_buckets_[i].store(0);
  epoch_count_ = std::make_unique<std::atomic<std::int64_t>[]>(E);
  epoch_sum_ = std::make_unique<std::atomic<double>[]>(E);
  for (std::size_t e = 0; e < E; ++e) {
    epoch_count_[e].store(0);
    epoch_sum_[e].store(0.0);
  }
  origin_ = std::chrono::steady_clock::now();
}

std::size_t QuantileHistogram::bucket_index(double v) const noexcept {
  // NaN and v <= min_value collapse into the clamp bucket at index 0.
  if (!(v > cfg_.min_value)) return 0;
  const double scaled = std::min(v * inv_min_, max_scaled_);  // >= 1
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(scaled);
  const int exp = static_cast<int>((bits >> 52) & 0x7ff) - 1023;  // floor log2
  const unsigned sb = static_cast<unsigned>(cfg_.sub_bucket_bits);
  const std::uint64_t mant =
      (bits >> (52 - sb)) & ((std::uint64_t{1} << sb) - 1);
  const std::size_t idx =
      1 + ((static_cast<std::size_t>(exp) << sb) | mant);
  return std::min(idx, nbuckets_ - 1);
}

double QuantileHistogram::bucket_value(std::size_t idx) const noexcept {
  if (idx == 0) return cfg_.min_value;
  const unsigned sb = static_cast<unsigned>(cfg_.sub_bucket_bits);
  const std::size_t linear = idx - 1;
  const std::size_t exp = linear >> sb;
  const std::size_t mant = linear & ((std::size_t{1} << sb) - 1);
  const double sub = static_cast<double>(1u << sb);
  // Midpoint of the bucket [2^e * (1 + m/sub), 2^e * (1 + (m+1)/sub)).
  const double lo = std::ldexp(1.0 + static_cast<double>(mant) / sub,
                               static_cast<int>(exp));
  const double hi = std::ldexp(1.0 + (static_cast<double>(mant) + 1.0) / sub,
                               static_cast<int>(exp));
  return std::min(cfg_.max_value, cfg_.min_value * 0.5 * (lo + hi));
}

std::int64_t QuantileHistogram::current_epoch() const noexcept {
  const auto dt = std::chrono::steady_clock::now() - origin_;
  return static_cast<std::int64_t>(
      std::chrono::duration<double>(dt).count() / cfg_.epoch_seconds);
}

void QuantileHistogram::rotate_if_stale() const noexcept {
  const std::int64_t cur = current_epoch();
  if (cur == epoch_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(rotate_mu_);
  const std::int64_t seen = epoch_.load(std::memory_order_relaxed);
  if (cur <= seen) return;
  const auto E = static_cast<std::int64_t>(cfg_.epochs);
  // Clear every epoch slot that fell out of the window (all of them if the
  // histogram sat idle for longer than one full ring revolution).
  const std::int64_t steps = std::min(cur - seen, E);
  for (std::int64_t s = 1; s <= steps; ++s) {
    const auto slot = static_cast<std::size_t>((seen + s) % E);
    for (std::size_t i = 0; i < nbuckets_; ++i)
      epoch_buckets_[slot * nbuckets_ + i].store(0, std::memory_order_relaxed);
    epoch_count_[slot].store(0, std::memory_order_relaxed);
    epoch_sum_[slot].store(0.0, std::memory_order_relaxed);
  }
  epoch_.store(cur, std::memory_order_release);
}

void QuantileHistogram::observe(double v) noexcept {
  rotate_if_stale();
  const std::size_t idx = bucket_index(v);
  const double clamped =
      std::isnan(v) ? cfg_.min_value
                    : std::clamp(v, cfg_.min_value, cfg_.max_value);

  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
#if defined(__cpp_lib_atomic_float)
  sum_.fetch_add(clamped, std::memory_order_relaxed);
#else
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + clamped,
                                     std::memory_order_relaxed)) {
  }
#endif
  if (n == 0) {
    min_.store(clamped, std::memory_order_relaxed);
    max_.store(clamped, std::memory_order_relaxed);
  } else {
    double m = min_.load(std::memory_order_relaxed);
    while (clamped < m &&
           !min_.compare_exchange_weak(m, clamped,
                                       std::memory_order_relaxed)) {
    }
    m = max_.load(std::memory_order_relaxed);
    while (clamped > m &&
           !max_.compare_exchange_weak(m, clamped,
                                       std::memory_order_relaxed)) {
    }
  }

  const auto slot = static_cast<std::size_t>(
      epoch_.load(std::memory_order_relaxed) %
      static_cast<std::int64_t>(cfg_.epochs));
  epoch_buckets_[slot * nbuckets_ + idx].fetch_add(1,
                                                   std::memory_order_relaxed);
  epoch_count_[slot].fetch_add(1, std::memory_order_relaxed);
#if defined(__cpp_lib_atomic_float)
  epoch_sum_[slot].fetch_add(clamped, std::memory_order_relaxed);
#else
  double es = epoch_sum_[slot].load(std::memory_order_relaxed);
  while (!epoch_sum_[slot].compare_exchange_weak(
      es, es + clamped, std::memory_order_relaxed)) {
  }
#endif
}

QuantileStats QuantileHistogram::stats_from(
    const std::vector<std::int64_t>& counts, std::int64_t count,
    double sum) const {
  QuantileStats s;
  s.count = count;
  s.sum = sum;
  if (count <= 0) return s;
  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::int64_t>(
        std::ceil(q * static_cast<double>(count)));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= rank) return bucket_value(i);
    }
    return bucket_value(counts.size() - 1);
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  s.p999 = quantile(0.999);
  return s;
}

QuantileSnapshot QuantileHistogram::snapshot() const {
  rotate_if_stale();
  QuantileSnapshot snap;
  snap.window_seconds = cfg_.epoch_seconds * static_cast<double>(cfg_.epochs);

  std::vector<std::int64_t> total(nbuckets_, 0);
  for (std::size_t i = 0; i < nbuckets_; ++i)
    total[i] = buckets_[i].load(std::memory_order_relaxed);
  snap.total = stats_from(total, count_.load(std::memory_order_relaxed),
                          sum_.load(std::memory_order_relaxed));
  snap.total.min = min_.load(std::memory_order_relaxed);
  snap.total.max = max_.load(std::memory_order_relaxed);

  const auto E = static_cast<std::size_t>(cfg_.epochs);
  std::vector<std::int64_t> window(nbuckets_, 0);
  std::int64_t wcount = 0;
  double wsum = 0.0;
  for (std::size_t e = 0; e < E; ++e) {
    for (std::size_t i = 0; i < nbuckets_; ++i)
      window[i] += epoch_buckets_[e * nbuckets_ + i].load(
          std::memory_order_relaxed);
    wcount += epoch_count_[e].load(std::memory_order_relaxed);
    wsum += epoch_sum_[e].load(std::memory_order_relaxed);
  }
  snap.window = stats_from(window, wcount, wsum);
  return snap;
}

}  // namespace adcnn::obs
