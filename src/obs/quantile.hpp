// Log-bucketed (HDR-style) quantile histogram with a sliding-window view.
//
// observe() is lock-free on the hot path: the bucket index is derived from
// the IEEE-754 exponent and top mantissa bits of the scaled value (no libm
// call), followed by a handful of relaxed atomic increments. Each bucket
// subdivides one power-of-two octave linearly into 2^sub_bucket_bits
// sub-buckets, bounding the relative quantile error by ~2^-(sub_bucket_bits)
// (about 3% at the default 5 bits — comfortably inside the 5% target).
//
// The sliding window is N rotating epochs: every observation lands in both
// the cumulative bucket array and the current epoch's array; a reader merges
// the live epochs, so window quantiles cover roughly the last
// epochs x epoch_seconds seconds. Epoch rotation (clearing the slot that
// falls out of the window) takes a mutex, but only on the first observe or
// snapshot of a new epoch; everything else stays relaxed-atomic. A write
// racing a rotation can land in a just-cleared epoch slot — telemetry-grade
// semantics, same as the registry's non-atomic snapshot cut.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace adcnn::obs {

/// Point-in-time quantile summary over one bucket population.
struct QuantileStats {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

struct QuantileSnapshot {
  QuantileStats total;    // since construction
  QuantileStats window;   // last `epochs x epoch_seconds` (no min/max)
  double window_seconds = 0.0;  // nominal span of the window view
};

class QuantileHistogram {
 public:
  struct Config {
    /// Trackable value range; values clamp into [min_value, max_value].
    double min_value = 1e-6;
    double max_value = 1e4;
    /// Sub-buckets per octave = 2^sub_bucket_bits; relative error per
    /// bucket is about 2^-sub_bucket_bits. Valid range [1, 16].
    int sub_bucket_bits = 5;
    /// Sliding-window shape: `epochs` rotating epochs of `epoch_seconds`.
    int epochs = 8;
    double epoch_seconds = 1.0;
  };

  QuantileHistogram() : QuantileHistogram(Config{}) {}
  explicit QuantileHistogram(Config cfg);

  /// Record one value (clamped into the configured range; NaN clamps to
  /// min_value). Lock-free except when it is the first write of an epoch.
  void observe(double v) noexcept;

  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Cumulative + windowed quantiles. Rotates stale epochs first, so a
  /// window with no recent observations reads as empty.
  QuantileSnapshot snapshot() const;

  const Config& config() const { return cfg_; }

  /// Default window for latency-style instruments: p50..p999 over ~10s.
  static Config default_latency_config() { return Config{}; }

 private:
  std::size_t bucket_index(double v) const noexcept;
  double bucket_value(std::size_t idx) const noexcept;
  std::int64_t current_epoch() const noexcept;
  void rotate_if_stale() const noexcept;
  QuantileStats stats_from(const std::vector<std::int64_t>& counts,
                           std::int64_t count, double sum) const;

  Config cfg_;
  std::size_t nbuckets_ = 0;
  double inv_min_ = 0.0;
  double max_scaled_ = 0.0;

  // Cumulative population.
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};

  // Epoch ring: epochs_ * nbuckets_ bucket slots plus per-epoch count/sum.
  std::unique_ptr<std::atomic<std::int64_t>[]> epoch_buckets_;
  std::unique_ptr<std::atomic<std::int64_t>[]> epoch_count_;
  std::unique_ptr<std::atomic<double>[]> epoch_sum_;
  std::chrono::steady_clock::time_point origin_;
  mutable std::atomic<std::int64_t> epoch_{0};
  mutable std::mutex rotate_mu_;
};

}  // namespace adcnn::obs
