#include "obs/slo.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace adcnn::obs {

SloMonitor::SloMonitor(SloConfig cfg, MetricsRegistry* registry) : cfg_(cfg) {
  if (cfg_.window < 1) {
    throw std::invalid_argument("SloMonitor: window must be >= 1");
  }
  if (cfg_.min_samples < 1 || cfg_.min_samples > cfg_.window) {
    throw std::invalid_argument(
        "SloMonitor: min_samples must be in [1, window]");
  }
  if (cfg_.sustain < 1) {
    throw std::invalid_argument("SloMonitor: sustain must be >= 1");
  }
  if (cfg_.metric_prefix.empty()) {
    throw std::invalid_argument("SloMonitor: metric_prefix must be non-empty");
  }
  ring_.assign(static_cast<std::size_t>(cfg_.window), Outcome::kOk);
  if (registry) {
    const std::string& p = cfg_.metric_prefix;
    miss_rate_gauge_ = &registry->gauge(p + ".miss_rate");
    shed_rate_gauge_ = &registry->gauge(p + ".shed_rate");
    in_violation_gauge_ = &registry->gauge(p + ".in_violation");
    violations_counter_ = &registry->counter(p + ".violations");
    registry->gauge(p + ".target_miss_rate").set(cfg_.max_miss_rate);
    registry->gauge(p + ".target_latency_s").set(cfg_.target_latency_s);
  }
}

void SloMonitor::on_violation(Callback cb) {
  std::lock_guard lock(mu_);
  callback_ = std::move(cb);
}

double SloMonitor::miss_rate_locked() const {
  const std::int64_t served =
      static_cast<std::int64_t>(filled_) - window_sheds_;
  return served > 0
             ? static_cast<double>(window_misses_) / static_cast<double>(served)
             : 0.0;
}

double SloMonitor::shed_rate_locked() const {
  return filled_ > 0 ? static_cast<double>(window_sheds_) /
                           static_cast<double>(filled_)
                     : 0.0;
}

void SloMonitor::push(Outcome o, Event* fire, double* rate) {
  Callback cb;
  {
    std::lock_guard lock(mu_);
    if (filled_ == ring_.size()) {
      const Outcome old = ring_[head_];
      if (old == Outcome::kMiss) --window_misses_;
      if (old == Outcome::kShed) --window_sheds_;
    } else {
      ++filled_;
    }
    ring_[head_] = o;
    head_ = (head_ + 1) % ring_.size();
    if (o == Outcome::kMiss) ++window_misses_;
    if (o == Outcome::kShed) ++window_sheds_;

    const double miss = miss_rate_locked();
    *rate = miss;
    if (miss_rate_gauge_) miss_rate_gauge_->set(miss);
    if (shed_rate_gauge_) shed_rate_gauge_->set(shed_rate_locked());

    if (static_cast<std::int64_t>(filled_) >= cfg_.min_samples) {
      if (miss > cfg_.max_miss_rate) {
        if (breach_streak_ < cfg_.sustain) ++breach_streak_;
        if (!in_violation_ && breach_streak_ >= cfg_.sustain) {
          in_violation_ = true;
          ++violations_;
          *fire = Event::kViolation;
          cb = callback_;
          if (violations_counter_) violations_counter_->add(1);
        }
      } else {
        breach_streak_ = 0;
        if (in_violation_ &&
            miss <= cfg_.recover_factor * cfg_.max_miss_rate) {
          in_violation_ = false;
          *fire = Event::kRecovery;
          cb = callback_;
        }
      }
    }
    if (in_violation_gauge_)
      in_violation_gauge_->set(in_violation_ ? 1.0 : 0.0);
  }
  if (cb) cb(*fire, *rate);
}

void SloMonitor::record_latency(double latency_s, bool deadline_missed) {
  const bool miss =
      deadline_missed ||
      (cfg_.target_latency_s > 0.0 && latency_s > cfg_.target_latency_s);
  Event fire{};
  double rate = 0.0;
  push(miss ? Outcome::kMiss : Outcome::kOk, &fire, &rate);
}

void SloMonitor::record_shed() {
  Event fire{};
  double rate = 0.0;
  push(Outcome::kShed, &fire, &rate);
}

double SloMonitor::miss_rate() const {
  std::lock_guard lock(mu_);
  return miss_rate_locked();
}

double SloMonitor::shed_rate() const {
  std::lock_guard lock(mu_);
  return shed_rate_locked();
}

bool SloMonitor::in_violation() const {
  std::lock_guard lock(mu_);
  return in_violation_;
}

std::int64_t SloMonitor::violations() const {
  std::lock_guard lock(mu_);
  return violations_;
}

std::int64_t SloMonitor::samples() const {
  std::lock_guard lock(mu_);
  return static_cast<std::int64_t>(filled_);
}

}  // namespace adcnn::obs
