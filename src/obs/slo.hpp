// SLO watchdog: rolling deadline-miss and shed rates checked against a
// configured target, with a callback on sustained violation.
//
// The monitor is fed per-image outcomes (latency + whether the cluster
// zero-filled past its deadline) and admission rejections (sheds). It keeps
// a fixed-size ring of recent outcomes; the miss rate is evaluated over
// that window after every sample, and once it stays above the target for
// `sustain` consecutive evaluations the registered callback fires exactly
// once per violation episode. This is the hook a batched-serving admission
// controller consumes: tighten admission on violation, relax on recovery.
//
// Thread-safe; callbacks run on the recording thread, outside the monitor's
// lock (a callback may call back into the monitor's accessors).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace adcnn::obs {

class Counter;
class Gauge;
class MetricsRegistry;

struct SloConfig {
  /// Per-image latency objective (seconds); a sample misses when its
  /// latency exceeds this or the cluster zero-filled at its deadline.
  /// <= 0 disables the latency check (deadline misses still count).
  double target_latency_s = 0.0;
  /// Rolling miss-rate ceiling; the watchdog trips above this.
  double max_miss_rate = 0.01;
  /// Rolling window, in samples (latency outcomes + sheds).
  int window = 256;
  /// No verdicts before this many samples are in the window.
  int min_samples = 32;
  /// Consecutive breaching evaluations before the callback fires.
  int sustain = 3;
  /// A violation episode ends once miss_rate <= recover_factor * max.
  double recover_factor = 0.8;
  /// Metric name prefix (default "slo"). Per-tenant monitors pass e.g.
  /// "slo.tenant.0" so each tenant exports its own gauge family instead
  /// of all monitors fighting over the fixed slo.* names.
  std::string metric_prefix = "slo";
};

class SloMonitor {
 public:
  /// `kViolation` fires once when `sustain` consecutive evaluations breach;
  /// `kRecovery` fires once when the rate falls back under the hysteresis
  /// threshold.
  enum class Event { kViolation, kRecovery };
  using Callback = std::function<void(Event, double miss_rate)>;

  /// When `registry` is non-null the monitor exports slo.miss_rate,
  /// slo.shed_rate, slo.in_violation and slo.target_miss_rate gauges plus a
  /// slo.violations counter; the registry must outlive the monitor.
  explicit SloMonitor(SloConfig cfg, MetricsRegistry* registry = nullptr);

  /// Register the violation/recovery hook (replaces any previous one).
  void on_violation(Callback cb);

  /// One served image: `deadline_missed` marks a cluster-level T_L expiry
  /// (tiles zero-filled) independent of the latency objective.
  void record_latency(double latency_s, bool deadline_missed = false);

  /// One admission rejection (load shed before entering the cluster).
  void record_shed();

  double miss_rate() const;   // misses / served, over the window
  double shed_rate() const;   // sheds / (served + sheds), over the window
  bool in_violation() const;
  std::int64_t violations() const;  // episodes begun since construction
  std::int64_t samples() const;     // window occupancy
  const SloConfig& config() const { return cfg_; }

 private:
  enum class Outcome : std::uint8_t { kOk, kMiss, kShed };
  /// Push one outcome, update rates/gauges, and run the violation state
  /// machine. Returns the event to fire, if any.
  void push(Outcome o, Event* fire, double* rate);

  double miss_rate_locked() const;
  double shed_rate_locked() const;

  SloConfig cfg_;
  mutable std::mutex mu_;
  std::vector<Outcome> ring_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  std::int64_t window_misses_ = 0;
  std::int64_t window_sheds_ = 0;
  int breach_streak_ = 0;
  bool in_violation_ = false;
  std::int64_t violations_ = 0;
  Callback callback_;

  Gauge* miss_rate_gauge_ = nullptr;
  Gauge* shed_rate_gauge_ = nullptr;
  Gauge* in_violation_gauge_ = nullptr;
  Counter* violations_counter_ = nullptr;
};

}  // namespace adcnn::obs
