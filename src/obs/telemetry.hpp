// Telemetry wiring: the compile-time ADCNN_OBS guard and the null-sink
// handle the runtime threads carry.
//
// Instrumentation sites follow one pattern:
//
//   if constexpr (obs::kEnabled) {            // compiled out entirely when
//     if (telemetry_.metrics) ...             // cmake -DADCNN_OBS=OFF
//   }
//
// so a disabled build pays nothing and an enabled build with no sinks
// attached (the default) pays one predicted branch per site.
#pragma once

namespace adcnn::obs {

class MetricsRegistry;
class TraceRecorder;

#ifdef ADCNN_OBS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Nullable sink pair passed by value through the runtime. Both pointers
/// null (the default) is the null sink: every instrumentation site is a
/// no-op. The pointed-to objects must outlive whatever they are attached
/// to (EdgeCluster, TileCodec, links).
struct Telemetry {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;

  bool active() const { return kEnabled && (metrics || trace); }
};

}  // namespace adcnn::obs
