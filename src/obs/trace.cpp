#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace adcnn::obs {

void TraceRecorder::bump_dropped_counter() { dropped_counter_->add(1); }

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<Span> snap = spans();
  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const Span& s : snap) {
    w.begin_object();
    w.kv("name", s.name).kv("cat", s.cat).kv("ph", "X");
    // Chrome ts/dur are microseconds; keep ns resolution as fractions.
    w.kv("ts", static_cast<double>(s.begin_ns) / 1e3);
    w.kv("dur", static_cast<double>(s.end_ns - s.begin_ns) / 1e3);
    w.kv("pid", 0).kv("tid", s.tid);
    w.key("args").begin_object();
    w.kv("image_id", s.image_id).kv("tile_id", s.tile_id);
    w.kv("span_id", s.id).kv("parent_id", s.parent);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string TraceRecorder::to_csv() const {
  const std::vector<Span> snap = spans();
  std::string out =
      "name,cat,tid,begin_us,end_us,dur_us,image_id,tile_id,id,parent\n";
  char line[320];
  for (const Span& s : snap) {
    std::snprintf(line, sizeof(line),
                  "%s,%s,%d,%.3f,%.3f,%.3f,%lld,%lld,%lld,%lld\n", s.name,
                  s.cat, s.tid, static_cast<double>(s.begin_ns) / 1e3,
                  static_cast<double>(s.end_ns) / 1e3,
                  static_cast<double>(s.end_ns - s.begin_ns) / 1e3,
                  static_cast<long long>(s.image_id),
                  static_cast<long long>(s.tile_id),
                  static_cast<long long>(s.id),
                  static_cast<long long>(s.parent));
    out += line;
  }
  return out;
}

}  // namespace adcnn::obs
