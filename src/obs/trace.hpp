// Span tracing for the threaded runtime.
//
// A span is one timed stage of the pipeline (partition, downlink,
// conv_compute, compress, uplink, gather_wait, zero_fill, suffix, ...)
// annotated with a logical thread id (0 = Central node, k+1 = Conv node k)
// and the (image_id, tile_id) pair it worked on. Timestamps come from one
// steady_clock origin per recorder, so spans from all threads share a
// timeline.
//
// Causality: every span carries a recorder-unique id and a parent id, so
// one image's scatter → downlink → conv_compute → compress → uplink →
// gather → suffix chain forms a tree even though it crosses threads.
// Within a thread the parent is inherited from a thread-local span stack;
// across threads it is propagated explicitly (TileTask.parent_span carries
// the downlink span's id to the worker). critical_path.hpp consumes the
// tree.
//
// Memory: the recorder is a bounded ring. Once `capacity` spans are held,
// each record() overwrites the oldest span and bumps dropped_spans()
// (mirrored into the trace.dropped_spans counter when attached) — a
// long-running streaming server keeps the freshest window instead of
// growing without limit.
//
// Exports: Chrome trace_event JSON ("X" complete events — load in
// chrome://tracing or https://ui.perfetto.dev) and a flat CSV timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace adcnn::obs {

class Counter;

struct Span {
  const char* name = "";  // stage name; string literals only
  const char* cat = "";   // category for trace viewers (== taxonomy family)
  int tid = 0;            // 0 = Central, k+1 = Conv node k
  std::int64_t begin_ns = 0;  // offset from the recorder's origin
  std::int64_t end_ns = 0;
  std::int64_t image_id = -1;
  std::int64_t tile_id = -1;
  std::int64_t id = 0;      // recorder-unique span id; 0 = unassigned
  std::int64_t parent = 0;  // parent span id; 0 = root
};

/// ScopedSpan parent sentinel: inherit the thread-local current span.
inline constexpr std::int64_t kInheritParent = -1;

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1),
        origin_(std::chrono::steady_clock::now()) {}

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  /// Allocate a recorder-unique span id (for spans assembled by hand or
  /// propagated across threads before they are recorded).
  std::int64_t new_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void record(const Span& span) {
    std::lock_guard lock(mu_);
    if (spans_.size() < capacity_) {
      spans_.push_back(span);
      return;
    }
    spans_[head_] = span;  // ring overwrite of the oldest span
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    if constexpr (kEnabled) {
      if (dropped_counter_) bump_dropped_counter();
    }
  }

  /// Spans in record order (oldest surviving first).
  std::vector<Span> spans() const {
    std::lock_guard lock(mu_);
    std::vector<Span> out;
    out.reserve(spans_.size());
    for (std::size_t i = 0; i < spans_.size(); ++i)
      out.push_back(spans_[(head_ + i) % spans_.size()]);
    return out;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return spans_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Spans overwritten because the ring was full.
  std::int64_t dropped_spans() const {
    std::lock_guard lock(mu_);
    return dropped_;
  }

  /// Mirror ring overwrites into a metrics counter (trace.dropped_spans).
  /// Attach before the recorder is shared between threads.
  void attach_telemetry(Counter* dropped) { dropped_counter_ = dropped; }

  void clear() {
    std::lock_guard lock(mu_);
    spans_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  /// Chrome trace_event JSON (the {"traceEvents": [...]} wrapper form).
  std::string to_chrome_json() const;
  /// CSV: name,cat,tid,begin_us,end_us,dur_us,image_id,tile_id,id,parent
  std::string to_csv() const;

 private:
  void bump_dropped_counter();  // out of line: Counter is incomplete here

  std::size_t capacity_;
  std::chrono::steady_clock::time_point origin_;
  std::atomic<std::int64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::size_t head_ = 0;  // oldest span once the ring is full
  std::int64_t dropped_ = 0;
  Counter* dropped_counter_ = nullptr;
};

namespace detail {
/// Thread-local causal context: the innermost open ScopedSpan's id.
inline thread_local std::int64_t t_current_span = 0;
}  // namespace detail

/// The innermost open span on this thread (0 = none). New ScopedSpans
/// inherit it as their parent unless one is passed explicitly.
inline std::int64_t current_span_id() { return detail::t_current_span; }

/// RAII span: opens at construction, records at destruction. Inert when
/// the recorder is null or ADCNN_OBS is compiled out (zero work, and the
/// optimizer drops the object entirely).
class ScopedSpan {
 public:
  /// `parent`: kInheritParent (default) nests under this thread's innermost
  /// open span; 0 forces a root; any other value links an explicit parent
  /// (the cross-thread case, e.g. a worker parenting under the downlink
  /// span id carried by its TileTask).
  ScopedSpan(TraceRecorder* rec, const char* name, const char* cat, int tid,
             std::int64_t image_id = -1, std::int64_t tile_id = -1,
             std::int64_t parent = kInheritParent) {
    if constexpr (kEnabled) {
      if (rec) {
        rec_ = rec;
        span_.name = name;
        span_.cat = cat;
        span_.tid = tid;
        span_.image_id = image_id;
        span_.tile_id = tile_id;
        span_.id = rec->new_span_id();
        span_.parent =
            parent == kInheritParent ? detail::t_current_span : parent;
        prev_current_ = detail::t_current_span;
        detail::t_current_span = span_.id;
        span_.begin_ns = rec->now_ns();
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id (0 when inert) — propagate it to children on other
  /// threads.
  std::int64_t id() const {
    if constexpr (kEnabled) return span_.id;
    return 0;
  }

  /// Close early (before scope exit); idempotent.
  void end() {
    if constexpr (kEnabled) {
      if (rec_) {
        span_.end_ns = rec_->now_ns();
        rec_->record(span_);
        rec_ = nullptr;
        detail::t_current_span = prev_current_;
      }
    }
  }

  ~ScopedSpan() { end(); }

 private:
  TraceRecorder* rec_ = nullptr;
  Span span_;
  std::int64_t prev_current_ = 0;
};

}  // namespace adcnn::obs
