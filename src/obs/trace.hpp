// Span tracing for the threaded runtime.
//
// A span is one timed stage of the pipeline (partition, downlink,
// conv_compute, compress, uplink, gather_wait, zero_fill, suffix, ...)
// annotated with a logical thread id (0 = Central node, k+1 = Conv node k)
// and the (image_id, tile_id) pair it worked on. Timestamps come from one
// steady_clock origin per recorder, so spans from all threads share a
// timeline.
//
// Exports: Chrome trace_event JSON ("X" complete events — load in
// chrome://tracing or https://ui.perfetto.dev) and a flat CSV timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace adcnn::obs {

struct Span {
  const char* name = "";  // stage name; string literals only
  const char* cat = "";   // category for trace viewers (== taxonomy family)
  int tid = 0;            // 0 = Central, k+1 = Conv node k
  std::int64_t begin_ns = 0;  // offset from the recorder's origin
  std::int64_t end_ns = 0;
  std::int64_t image_id = -1;
  std::int64_t tile_id = -1;
};

class TraceRecorder {
 public:
  TraceRecorder() : origin_(std::chrono::steady_clock::now()) {}

  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  void record(const Span& span) {
    std::lock_guard lock(mu_);
    spans_.push_back(span);
  }

  std::vector<Span> spans() const {
    std::lock_guard lock(mu_);
    return spans_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return spans_.size();
  }

  void clear() {
    std::lock_guard lock(mu_);
    spans_.clear();
  }

  /// Chrome trace_event JSON (the {"traceEvents": [...]} wrapper form).
  std::string to_chrome_json() const;
  /// CSV: name,cat,tid,begin_us,end_us,dur_us,image_id,tile_id
  std::string to_csv() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// RAII span: opens at construction, records at destruction. Inert when
/// the recorder is null or ADCNN_OBS is compiled out (zero work, and the
/// optimizer drops the object entirely).
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* rec, const char* name, const char* cat, int tid,
             std::int64_t image_id = -1, std::int64_t tile_id = -1) {
    if constexpr (kEnabled) {
      if (rec) {
        rec_ = rec;
        span_.name = name;
        span_.cat = cat;
        span_.tid = tid;
        span_.image_id = image_id;
        span_.tile_id = tile_id;
        span_.begin_ns = rec->now_ns();
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close early (before scope exit); idempotent.
  void end() {
    if constexpr (kEnabled) {
      if (rec_) {
        span_.end_ns = rec_->now_ns();
        rec_->record(span_);
        rec_ = nullptr;
      }
    }
  }

  ~ScopedSpan() { end(); }

 private:
  TraceRecorder* rec_ = nullptr;
  Span span_;
};

}  // namespace adcnn::obs
