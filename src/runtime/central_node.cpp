#include "runtime/central_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "nn/tiling.hpp"
#include "obs/json.hpp"

namespace adcnn::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

std::string InferStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("image_id", image_id);
  w.kv("tiles_total", tiles_total);
  w.kv("tiles_missing", tiles_missing);
  w.kv("deadline_s", deadline_s);
  w.kv("deadline_slack_s", deadline_slack_s);
  w.kv("elapsed_s", elapsed_s);
  w.key("stages").begin_object();
  w.kv("partition_s", stages.partition_s);
  w.kv("allocate_s", stages.allocate_s);
  w.kv("scatter_s", stages.scatter_s);
  w.kv("gather_s", stages.gather_s);
  w.kv("zero_fill_s", stages.zero_fill_s);
  w.kv("suffix_s", stages.suffix_s);
  w.kv("sum_s", stages.sum());
  w.end_object();
  w.key("per_node").begin_array();
  for (std::size_t k = 0; k < assigned.size(); ++k) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(k));
    w.kv("assigned", assigned[k]);
    w.kv("returned", k < returned.size() ? returned[k] : 0);
    w.kv("missed", k < missed.size() ? missed[k] : 0);
    if (k < speeds.size()) w.kv("speed", speeds[k]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CentralNode::CentralNode(core::PartitionedModel& model,
                         const compress::TileCodec* codec,
                         std::vector<Channel<TileTask>*> inboxes,
                         Channel<TileResult>* results,
                         std::vector<SimulatedLink*> downlinks,
                         CentralConfig cfg)
    : model_(model), codec_(codec), inboxes_(std::move(inboxes)),
      results_(results), downlinks_(std::move(downlinks)), cfg_(cfg),
      collector_(static_cast<int>(inboxes_.size()), cfg.gamma,
                 cfg.initial_speed),
      tile_out_shape_(model.tile_output_shape()) {
  if (inboxes_.empty() || inboxes_.size() != downlinks_.size()) {
    throw std::invalid_argument("CentralNode: inbox/link count mismatch");
  }
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      obs_.images = &m->counter("central.images");
      obs_.tiles_total = &m->counter("central.tiles_total");
      obs_.tiles_missing = &m->counter("central.tiles_missing");
      obs_.elapsed_s = &m->histogram("central.infer_elapsed_s");
      obs_.gather_s = &m->histogram("central.gather_s");
      obs_.total_speed = &m->gauge("stats.total_speed");
      for (std::size_t k = 0; k < inboxes_.size(); ++k)
        obs_.node_speed.push_back(
            &m->gauge("stats.node_speed." + std::to_string(k)));
    }
  }
}

Tensor CentralNode::infer(const Tensor& image, InferStats* stats) {
  const auto t0 = Clock::now();
  const std::int64_t image_id = next_image_id_++;
  const int K = static_cast<int>(inboxes_.size());
  obs::TraceRecorder* tracer = cfg_.telemetry.trace;
  obs::ScopedSpan infer_span(tracer, "infer", "image", 0, image_id);

  // --- Input partition block: FDSP split. --------------------------------
  obs::ScopedSpan partition_span(tracer, "partition", "partition", 0,
                                 image_id);
  const Tensor tiles =
      nn::TileSplit::split(image, model_.grid.rows, model_.grid.cols);
  const std::int64_t T = tiles.n();
  partition_span.end();
  const auto t_partitioned = Clock::now();

  // --- Algorithm 3: allocate tiles against the running s_k. --------------
  obs::ScopedSpan allocate_span(tracer, "allocate", "allocate", 0, image_id);
  core::AllocRequest req;
  req.speeds = collector_.speeds();
  req.capacity_tiles.assign(static_cast<std::size_t>(K), cfg_.capacity_tiles);
  req.tiles = T;
  std::vector<std::int64_t> counts = core::allocate_tiles(req);

  // Recovery probe: periodically lend one tile to starved nodes so a node
  // whose s_k collapsed (failure/throttle) can prove it recovered.
  if (cfg_.probe_interval > 0 && image_id % cfg_.probe_interval == 0) {
    for (int k = 0; k < K; ++k) {
      if (counts[static_cast<std::size_t>(k)] > 0) continue;
      const auto donor = std::max_element(counts.begin(), counts.end());
      if (*donor > 1) {
        --*donor;
        ++counts[static_cast<std::size_t>(k)];
      }
    }
  }

  // Expand per-node counts into a per-tile node assignment (round-robin
  // over nodes weighted by their quota, so consecutive tiles interleave).
  std::vector<int> owner(static_cast<std::size_t>(T), 0);
  {
    std::vector<std::int64_t> left = counts;
    std::int64_t t = 0;
    while (t < T) {
      for (int k = 0; k < K && t < T; ++k) {
        if (left[static_cast<std::size_t>(k)] > 0) {
          --left[static_cast<std::size_t>(k)];
          owner[static_cast<std::size_t>(t++)] = k;
        }
      }
    }
  }
  allocate_span.end();
  const auto t_allocated = Clock::now();

  // --- Scatter: transmit each tile to its Conv node. ----------------------
  const std::int64_t C = tiles.c(), th = tiles.h(), tw = tiles.w();
  for (std::int64_t t = 0; t < T; ++t) {
    obs::ScopedSpan downlink_span(tracer, "downlink", "downlink", 0, image_id,
                                  t);
    TileTask task;
    task.image_id = image_id;
    task.tile_id = t;
    task.shape = Shape{1, C, th, tw};
    const Tensor one = tiles.crop(t, 1, 0, th, 0, tw);
    task.payload.resize(static_cast<std::size_t>(one.numel()) * sizeof(float));
    std::memcpy(task.payload.data(), one.data(), task.payload.size());
    const int k = owner[static_cast<std::size_t>(t)];
    downlinks_[static_cast<std::size_t>(k)]->transmit(task.wire_bytes());
    inboxes_[static_cast<std::size_t>(k)]->send(std::move(task));
  }
  const auto t_scattered = Clock::now();

  // --- Gather with the T_L deadline (Algorithm 2's timer). ---------------
  obs::ScopedSpan gather_span(tracer, "gather_wait", "gather_wait", 0,
                              image_id);
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(cfg_.deadline_s);
  Tensor gathered = Tensor::zeros(Shape{T, tile_out_shape_[1],
                                        tile_out_shape_[2],
                                        tile_out_shape_[3]});
  std::vector<bool> have(static_cast<std::size_t>(T), false);
  std::vector<std::int64_t> returned(static_cast<std::size_t>(K), 0);
  std::int64_t received = 0;
  while (received < T) {
    auto result = results_->receive_until(
        std::chrono::time_point_cast<Clock::duration>(deadline));
    if (!result) break;  // deadline or closed: proceed with zeros
    if (result->image_id != image_id) continue;  // stale late result
    if (result->tile_id < 0 || result->tile_id >= T ||
        have[static_cast<std::size_t>(result->tile_id)])
      continue;
    const Tensor out =
        codec_ ? codec_->decode(result->payload, tile_out_shape_)
               : compress::decode_raw(result->payload, tile_out_shape_);
    gathered.paste(out.reshaped(Shape{1, tile_out_shape_[1],
                                      tile_out_shape_[2],
                                      tile_out_shape_[3]}),
                   result->tile_id, 0, 0);
    have[static_cast<std::size_t>(result->tile_id)] = true;
    ++returned[static_cast<std::size_t>(result->node_id)];
    ++received;
  }
  gather_span.end();
  const auto t_gathered = Clock::now();
  const double deadline_slack_s =
      std::chrono::duration<double>(deadline - t_gathered).count();

  // --- Zero-fill accounting: which tiles stay at their zero init. ---------
  std::vector<std::int64_t> missed(static_cast<std::size_t>(K), 0);
  auto t_zero_filled = t_gathered;
  if (received < T) {
    obs::ScopedSpan zero_span(tracer, "zero_fill", "zero_fill", 0, image_id);
    for (std::int64_t t = 0; t < T; ++t) {
      if (!have[static_cast<std::size_t>(t)])
        ++missed[static_cast<std::size_t>(owner[static_cast<std::size_t>(t)])];
    }
    zero_span.end();
    t_zero_filled = Clock::now();
  }

  // --- Algorithm 2: fold per-node counts into s_k. ------------------------
  // Nodes that were assigned no tiles keep their previous estimate (a node
  // with zero quota returning zero results carries no information).
  for (int k = 0; k < K; ++k) {
    if (counts[static_cast<std::size_t>(k)] > 0)
      collector_.record_node(k, returned[static_cast<std::size_t>(k)]);
  }

  // --- Merge and run the later layers. ------------------------------------
  obs::ScopedSpan suffix_span(tracer, "suffix", "suffix", 0, image_id);
  const Tensor merged =
      nn::TileSplit::merge(gathered, model_.grid.rows, model_.grid.cols);
  Tensor output = model_.model.forward_range(merged, model_.suffix_begin(),
                                             model_.suffix_end());
  suffix_span.end();
  const auto t_done = Clock::now();

  if constexpr (obs::kEnabled) {
    if (obs_.images) {
      obs_.images->add(1);
      obs_.tiles_total->add(T);
      obs_.tiles_missing->add(T - received);
      obs_.elapsed_s->observe(seconds_between(t0, t_done));
      obs_.gather_s->observe(seconds_between(t_scattered, t_gathered));
      obs_.total_speed->set(collector_.total_speed());
      for (int k = 0; k < K; ++k)
        obs_.node_speed[static_cast<std::size_t>(k)]->set(
            collector_.speed(k));
    }
  }

  if (stats) {
    stats->image_id = image_id;
    stats->tiles_total = T;
    stats->tiles_missing = T - received;
    stats->assigned = counts;
    stats->returned = returned;
    stats->missed = missed;
    stats->speeds = collector_.speeds();
    stats->deadline_s = cfg_.deadline_s;
    stats->deadline_slack_s = deadline_slack_s;
    stats->stages.partition_s = seconds_between(t0, t_partitioned);
    stats->stages.allocate_s = seconds_between(t_partitioned, t_allocated);
    stats->stages.scatter_s = seconds_between(t_allocated, t_scattered);
    stats->stages.gather_s = seconds_between(t_scattered, t_gathered);
    stats->stages.zero_fill_s = seconds_between(t_gathered, t_zero_filled);
    stats->stages.suffix_s = seconds_between(t_zero_filled, t_done);
    stats->elapsed_s = seconds_between(t0, t_done);
  }
  return output;
}

}  // namespace adcnn::runtime
