#include "runtime/central_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "nn/tiling.hpp"
#include "obs/json.hpp"

namespace adcnn::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

std::string InferStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("image_id", image_id);
  w.kv("tiles_total", tiles_total);
  w.kv("tiles_missing", tiles_missing);
  w.kv("tiles_retried", tiles_retried);
  w.kv("tiles_recovered", tiles_recovered);
  w.kv("decode_errors", decode_errors);
  w.kv("stale_results", stale_results);
  w.kv("deadline_s", deadline_s);
  w.kv("deadline_slack_s", deadline_slack_s);
  w.kv("elapsed_s", elapsed_s);
  w.key("stages").begin_object();
  w.kv("partition_s", stages.partition_s);
  w.kv("allocate_s", stages.allocate_s);
  w.kv("scatter_s", stages.scatter_s);
  w.kv("gather_s", stages.gather_s);
  w.kv("zero_fill_s", stages.zero_fill_s);
  w.kv("suffix_s", stages.suffix_s);
  w.kv("sum_s", stages.sum());
  w.end_object();
  w.key("per_node").begin_array();
  for (std::size_t k = 0; k < assigned.size(); ++k) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(k));
    w.kv("assigned", assigned[k]);
    w.kv("returned", k < returned.size() ? returned[k] : 0);
    w.kv("missed", k < missed.size() ? missed[k] : 0);
    w.kv("quarantined",
         static_cast<std::int64_t>(k < quarantined.size() && quarantined[k]));
    if (k < speeds.size()) w.kv("speed", speeds[k]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CentralNode::CentralNode(core::PartitionedModel& model,
                         const compress::TileCodec* codec,
                         std::vector<Channel<TileTask>*> inboxes,
                         Channel<TileResult>* results,
                         std::vector<SimulatedLink*> downlinks,
                         CentralConfig cfg)
    : model_(model), codec_(codec), inboxes_(std::move(inboxes)),
      results_(results), downlinks_(std::move(downlinks)), cfg_(cfg),
      collector_(static_cast<int>(inboxes_.size()), cfg.gamma,
                 cfg.initial_speed),
      tile_out_shape_(model.tile_output_shape()),
      quarantined_(inboxes_.size(), false),
      consecutive_missed_(inboxes_.size(), 0) {
  if (inboxes_.empty() || inboxes_.size() != downlinks_.size()) {
    throw std::invalid_argument("CentralNode: inbox/link count mismatch");
  }
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      obs_.images = &m->counter("central.images");
      obs_.tiles_total = &m->counter("central.tiles_total");
      obs_.tiles_missing = &m->counter("central.tiles_missing");
      obs_.retry_dispatched = &m->counter("central.retry.dispatched");
      obs_.retry_recovered = &m->counter("central.retry.recovered");
      obs_.retry_rounds = &m->counter("central.retry.rounds");
      obs_.decode_errors = &m->counter("central.decode_errors");
      obs_.stale_results = &m->counter("central.stale_results");
      obs_.quarantine_events = &m->counter("central.quarantine.events");
      obs_.quarantine_active = &m->gauge("central.quarantine.active");
      obs_.elapsed_s = &m->histogram("central.infer_elapsed_s");
      obs_.gather_s = &m->histogram("central.gather_s");
      obs_.total_speed = &m->gauge("stats.total_speed");
      for (std::size_t k = 0; k < inboxes_.size(); ++k)
        obs_.node_speed.push_back(
            &m->gauge("stats.node_speed." + std::to_string(k)));
    }
  }
}

Tensor CentralNode::infer(const Tensor& image, InferStats* stats) {
  const auto t0 = Clock::now();
  const std::int64_t image_id = next_image_id_++;
  const int K = static_cast<int>(inboxes_.size());
  obs::TraceRecorder* tracer = cfg_.telemetry.trace;
  obs::ScopedSpan infer_span(tracer, "infer", "image", 0, image_id);

  // --- Input partition block: FDSP split. --------------------------------
  obs::ScopedSpan partition_span(tracer, "partition", "partition", 0,
                                 image_id);
  const Tensor tiles =
      nn::TileSplit::split(image, model_.grid.rows, model_.grid.cols);
  const std::int64_t T = tiles.n();
  partition_span.end();
  const auto t_partitioned = Clock::now();

  // --- Algorithm 3: allocate tiles against the running s_k. --------------
  obs::ScopedSpan allocate_span(tracer, "allocate", "allocate", 0, image_id);
  core::AllocRequest req;
  req.speeds = collector_.speeds();
  req.capacity_tiles.assign(static_cast<std::size_t>(K), cfg_.capacity_tiles);
  req.tiles = T;
  // Quarantine circuit breaker: an excluded node gets zero capacity so
  // Algorithm 3 cannot route tiles to it (only the recovery probe below
  // may still reach it). Skip the exclusion when the healthy nodes could
  // not hold every tile — a suspect node beats a failed allocation.
  if (cfg_.quarantine_after > 0) {
    std::int64_t healthy_capacity = 0;
    for (int k = 0; k < K; ++k) {
      if (!quarantined_[static_cast<std::size_t>(k)])
        healthy_capacity += std::min(cfg_.capacity_tiles, T);
    }
    if (healthy_capacity >= T) {
      for (int k = 0; k < K; ++k) {
        if (quarantined_[static_cast<std::size_t>(k)])
          req.capacity_tiles[static_cast<std::size_t>(k)] = 0;
      }
    }
  }
  std::vector<std::int64_t> counts = core::allocate_tiles(req);

  // Recovery probe: periodically lend one tile to starved nodes so a node
  // whose s_k collapsed (failure/throttle) can prove it recovered. This is
  // also the only path by which a quarantined node receives work — a
  // returned probe lifts the quarantine below.
  if (cfg_.probe_interval > 0 && image_id % cfg_.probe_interval == 0) {
    for (int k = 0; k < K; ++k) {
      if (counts[static_cast<std::size_t>(k)] > 0) continue;
      const auto donor = std::max_element(counts.begin(), counts.end());
      if (*donor > 1) {
        --*donor;
        ++counts[static_cast<std::size_t>(k)];
      }
    }
  }

  // Expand per-node counts into a per-tile node assignment (round-robin
  // over nodes weighted by their quota, so consecutive tiles interleave).
  std::vector<int> owner(static_cast<std::size_t>(T), 0);
  {
    std::vector<std::int64_t> left = counts;
    std::int64_t t = 0;
    while (t < T) {
      for (int k = 0; k < K && t < T; ++k) {
        if (left[static_cast<std::size_t>(k)] > 0) {
          --left[static_cast<std::size_t>(k)];
          owner[static_cast<std::size_t>(t++)] = k;
        }
      }
    }
  }
  allocate_span.end();
  const auto t_allocated = Clock::now();

  // --- Drain stale results left over from previous images. ----------------
  // A straggler or an injected delay can land a result after its image's
  // deadline fired; without draining, those messages accumulate in the
  // channel across infer() calls and every later gather wades through them.
  std::int64_t stale = 0;
  while (results_->try_receive()) ++stale;

  // --- Scatter: transmit each tile to its Conv node. ----------------------
  const std::int64_t C = tiles.c(), th = tiles.h(), tw = tiles.w();
  std::int64_t retried = 0;
  const auto send_tile = [&](std::int64_t t, int k, std::int32_t attempt) {
    obs::ScopedSpan downlink_span(tracer, attempt == 0 ? "downlink" : "retry",
                                  attempt == 0 ? "downlink" : "retry", 0,
                                  image_id, t);
    TileTask task;
    task.image_id = image_id;
    task.tile_id = t;
    task.attempt = attempt;
    task.shape = Shape{1, C, th, tw};
    const Tensor one = tiles.crop(t, 1, 0, th, 0, tw);
    task.payload.resize(static_cast<std::size_t>(one.numel()) * sizeof(float));
    std::memcpy(task.payload.data(), one.data(), task.payload.size());
    const auto fate =
        downlinks_[static_cast<std::size_t>(k)]->transmit_message(
            task.wire_bytes(), image_id, t, attempt, &task.payload);
    if (fate.drop) return;  // lost on the air; retry/zero-fill covers it
    inboxes_[static_cast<std::size_t>(k)]->send(std::move(task));
  };
  for (std::int64_t t = 0; t < T; ++t) {
    send_tile(t, owner[static_cast<std::size_t>(t)], 0);
  }
  const auto t_scattered = Clock::now();

  // --- Gather with the T_L deadline (Algorithm 2's timer). ---------------
  obs::ScopedSpan gather_span(tracer, "gather_wait", "gather_wait", 0,
                              image_id);
  const auto gather_start = Clock::now();
  const auto deadline =
      gather_start + std::chrono::duration<double>(cfg_.deadline_s);
  Tensor gathered = Tensor::zeros(Shape{T, tile_out_shape_[1],
                                        tile_out_shape_[2],
                                        tile_out_shape_[3]});
  std::vector<bool> have(static_cast<std::size_t>(T), false);
  std::vector<std::int64_t> returned(static_cast<std::size_t>(K), 0);
  std::vector<std::int64_t> dispatched = counts;  // primary + retry sends
  std::int64_t received = 0;
  std::int64_t recovered = 0;
  std::int64_t decode_errors = 0;
  int retry_rounds = 0;
  const bool retry_on = cfg_.retry.enabled && cfg_.retry.max_rounds > 0;
  // Round i fires at at_fraction of T_L, with later rounds splitting the
  // remaining slack evenly — the retry budget always spends inside T_L.
  const auto retry_due = [&](int round) {
    const double f = cfg_.retry.at_fraction +
                     (1.0 - cfg_.retry.at_fraction) *
                         static_cast<double>(round) /
                         static_cast<double>(cfg_.retry.max_rounds);
    return gather_start + std::chrono::duration<double>(
                              cfg_.deadline_s * std::clamp(f, 0.0, 1.0));
  };
  while (received < T) {
    auto wake = deadline;
    if (retry_on && retry_rounds < cfg_.retry.max_rounds) {
      wake = std::min(wake, retry_due(retry_rounds));
    }
    auto result = results_->receive_until(
        std::chrono::time_point_cast<Clock::duration>(wake));
    if (!result) {
      if (results_->closed()) break;  // torn down: proceed with zeros
      const auto now = Clock::now();
      if (now >= deadline) break;  // T_L fired: zero-fill the rest
      if (retry_on && retry_rounds < cfg_.retry.max_rounds &&
          now >= retry_due(retry_rounds)) {
        // --- Bounded re-dispatch: send still-missing tiles to the fastest
        // non-quarantined nodes with spare capacity. Tiles avoid their
        // original owner when an alternative exists (it just missed); the
        // have[] bitmap deduplicates a late primary racing its retry.
        ++retry_rounds;
        std::vector<int> targets;
        for (int k = 0; k < K; ++k) {
          if (!quarantined_[static_cast<std::size_t>(k)] &&
              dispatched[static_cast<std::size_t>(k)] < cfg_.capacity_tiles)
            targets.push_back(k);
        }
        std::stable_sort(targets.begin(), targets.end(),
                         [&](int a, int b) {
                           return collector_.speed(a) > collector_.speed(b);
                         });
        if (targets.empty()) continue;
        std::size_t rr = 0;
        for (std::int64_t t = 0; t < T; ++t) {
          if (have[static_cast<std::size_t>(t)]) continue;
          int k = targets[rr++ % targets.size()];
          if (k == owner[static_cast<std::size_t>(t)] && targets.size() > 1)
            k = targets[rr++ % targets.size()];
          send_tile(t, k, retry_rounds);
          ++dispatched[static_cast<std::size_t>(k)];
          ++retried;
        }
      }
      continue;
    }
    if (result->image_id != image_id) {  // stale late result
      ++stale;
      continue;
    }
    if (result->tile_id < 0 || result->tile_id >= T || result->node_id < 0 ||
        result->node_id >= K) {  // malformed header
      ++decode_errors;
      continue;
    }
    if (have[static_cast<std::size_t>(result->tile_id)]) continue;  // dup
    try {
      const Tensor out =
          codec_ ? codec_->decode(result->payload, tile_out_shape_)
                 : compress::decode_raw(result->payload, tile_out_shape_);
      gathered.paste(out.reshaped(Shape{1, tile_out_shape_[1],
                                        tile_out_shape_[2],
                                        tile_out_shape_[3]}),
                     result->tile_id, 0, 0);
    } catch (const std::exception&) {
      // Corruption-tolerant decode: a malformed payload is counted and
      // dropped; the retry path (or zero-fill) covers the tile.
      ++decode_errors;
      continue;
    }
    have[static_cast<std::size_t>(result->tile_id)] = true;
    ++received;
    if (result->attempt == 0) {
      ++returned[static_cast<std::size_t>(result->node_id)];
    } else {
      ++recovered;
    }
  }
  gather_span.end();
  const auto t_gathered = Clock::now();
  const double deadline_slack_s =
      std::chrono::duration<double>(deadline - t_gathered).count();

  // --- Zero-fill / miss accounting. ---------------------------------------
  // missed[k] counts primary assignments node k failed to return within
  // T_L — a tile recovered via retry still counts against its owner, so
  // Algorithm 2 keeps an honest view of the node. Zero-filled tiles are
  // the globally missing ones (T - received).
  std::vector<std::int64_t> missed(static_cast<std::size_t>(K), 0);
  for (int k = 0; k < K; ++k) {
    missed[static_cast<std::size_t>(k)] =
        counts[static_cast<std::size_t>(k)] -
        returned[static_cast<std::size_t>(k)];
  }
  auto t_zero_filled = t_gathered;
  if (received < T) {
    obs::ScopedSpan zero_span(tracer, "zero_fill", "zero_fill", 0, image_id);
    zero_span.end();
    t_zero_filled = Clock::now();
  }

  // --- Algorithm 2: fold per-node counts into s_k. ------------------------
  // Nodes that were assigned no tiles keep their previous estimate (a node
  // with zero quota returning zero results carries no information).
  for (int k = 0; k < K; ++k) {
    if (counts[static_cast<std::size_t>(k)] > 0)
      collector_.record_node(k, returned[static_cast<std::size_t>(k)]);
  }

  // --- Quarantine circuit breaker bookkeeping. ----------------------------
  // Any returned tile (including a probe) lifts the quarantine; a node
  // whose whole assignment missed for quarantine_after consecutive images
  // trips it.
  std::int64_t quarantine_active = 0;
  for (int k = 0; k < K; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (returned[ks] > 0) {
      consecutive_missed_[ks] = 0;
      quarantined_[ks] = false;
    } else if (counts[ks] > 0) {
      ++consecutive_missed_[ks];
      if (cfg_.quarantine_after > 0 && !quarantined_[ks] &&
          consecutive_missed_[ks] >= cfg_.quarantine_after) {
        quarantined_[ks] = true;
        if constexpr (obs::kEnabled) {
          if (obs_.quarantine_events) obs_.quarantine_events->add(1);
        }
      }
    }
    quarantine_active += quarantined_[ks];
  }

  // --- Merge and run the later layers. ------------------------------------
  obs::ScopedSpan suffix_span(tracer, "suffix", "suffix", 0, image_id);
  const Tensor merged =
      nn::TileSplit::merge(gathered, model_.grid.rows, model_.grid.cols);
  Tensor output = model_.model.forward_range(merged, model_.suffix_begin(),
                                             model_.suffix_end());
  suffix_span.end();
  const auto t_done = Clock::now();

  if constexpr (obs::kEnabled) {
    if (obs_.images) {
      obs_.images->add(1);
      obs_.tiles_total->add(T);
      obs_.tiles_missing->add(T - received);
      if (retried > 0) obs_.retry_dispatched->add(retried);
      if (recovered > 0) obs_.retry_recovered->add(recovered);
      if (retry_rounds > 0) obs_.retry_rounds->add(retry_rounds);
      if (decode_errors > 0) obs_.decode_errors->add(decode_errors);
      if (stale > 0) obs_.stale_results->add(stale);
      obs_.quarantine_active->set(static_cast<double>(quarantine_active));
      obs_.elapsed_s->observe(seconds_between(t0, t_done));
      obs_.gather_s->observe(seconds_between(t_scattered, t_gathered));
      obs_.total_speed->set(collector_.total_speed());
      for (int k = 0; k < K; ++k)
        obs_.node_speed[static_cast<std::size_t>(k)]->set(
            collector_.speed(k));
    }
  }

  if (stats) {
    stats->image_id = image_id;
    stats->tiles_total = T;
    stats->tiles_missing = T - received;
    stats->assigned = counts;
    stats->returned = returned;
    stats->missed = missed;
    stats->quarantined = quarantined_;
    stats->tiles_retried = retried;
    stats->tiles_recovered = recovered;
    stats->decode_errors = decode_errors;
    stats->stale_results = stale;
    stats->speeds = collector_.speeds();
    stats->deadline_s = cfg_.deadline_s;
    stats->deadline_slack_s = deadline_slack_s;
    stats->stages.partition_s = seconds_between(t0, t_partitioned);
    stats->stages.allocate_s = seconds_between(t_partitioned, t_allocated);
    stats->stages.scatter_s = seconds_between(t_allocated, t_scattered);
    stats->stages.gather_s = seconds_between(t_scattered, t_gathered);
    stats->stages.zero_fill_s = seconds_between(t_gathered, t_zero_filled);
    stats->stages.suffix_s = seconds_between(t_zero_filled, t_done);
    stats->elapsed_s = seconds_between(t0, t_done);
  }
  return output;
}

}  // namespace adcnn::runtime
