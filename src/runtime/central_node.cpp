#include "runtime/central_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "nn/tiling.hpp"

namespace adcnn::runtime {

CentralNode::CentralNode(core::PartitionedModel& model,
                         const compress::TileCodec* codec,
                         std::vector<Channel<TileTask>*> inboxes,
                         Channel<TileResult>* results,
                         std::vector<SimulatedLink*> downlinks,
                         CentralConfig cfg)
    : model_(model), codec_(codec), inboxes_(std::move(inboxes)),
      results_(results), downlinks_(std::move(downlinks)), cfg_(cfg),
      collector_(static_cast<int>(inboxes_.size()), cfg.gamma,
                 cfg.initial_speed),
      tile_out_shape_(model.tile_output_shape()) {
  if (inboxes_.empty() || inboxes_.size() != downlinks_.size()) {
    throw std::invalid_argument("CentralNode: inbox/link count mismatch");
  }
}

Tensor CentralNode::infer(const Tensor& image, InferStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t image_id = next_image_id_++;
  const int K = static_cast<int>(inboxes_.size());

  // --- Input partition block: FDSP split. --------------------------------
  const Tensor tiles =
      nn::TileSplit::split(image, model_.grid.rows, model_.grid.cols);
  const std::int64_t T = tiles.n();

  // --- Algorithm 3: allocate tiles against the running s_k. --------------
  core::AllocRequest req;
  req.speeds = collector_.speeds();
  req.capacity_tiles.assign(static_cast<std::size_t>(K), cfg_.capacity_tiles);
  req.tiles = T;
  std::vector<std::int64_t> counts = core::allocate_tiles(req);

  // Recovery probe: periodically lend one tile to starved nodes so a node
  // whose s_k collapsed (failure/throttle) can prove it recovered.
  if (cfg_.probe_interval > 0 && image_id % cfg_.probe_interval == 0) {
    for (int k = 0; k < K; ++k) {
      if (counts[static_cast<std::size_t>(k)] > 0) continue;
      const auto donor = std::max_element(counts.begin(), counts.end());
      if (*donor > 1) {
        --*donor;
        ++counts[static_cast<std::size_t>(k)];
      }
    }
  }

  // Expand per-node counts into a per-tile node assignment (round-robin
  // over nodes weighted by their quota, so consecutive tiles interleave).
  std::vector<int> owner(static_cast<std::size_t>(T), 0);
  {
    std::vector<std::int64_t> left = counts;
    std::int64_t t = 0;
    while (t < T) {
      for (int k = 0; k < K && t < T; ++k) {
        if (left[static_cast<std::size_t>(k)] > 0) {
          --left[static_cast<std::size_t>(k)];
          owner[static_cast<std::size_t>(t++)] = k;
        }
      }
    }
  }

  // --- Scatter: transmit each tile to its Conv node. ----------------------
  const std::int64_t C = tiles.c(), th = tiles.h(), tw = tiles.w();
  for (std::int64_t t = 0; t < T; ++t) {
    TileTask task;
    task.image_id = image_id;
    task.tile_id = t;
    task.shape = Shape{1, C, th, tw};
    const Tensor one = tiles.crop(t, 1, 0, th, 0, tw);
    task.payload.resize(static_cast<std::size_t>(one.numel()) * sizeof(float));
    std::memcpy(task.payload.data(), one.data(), task.payload.size());
    const int k = owner[static_cast<std::size_t>(t)];
    downlinks_[static_cast<std::size_t>(k)]->transmit(task.wire_bytes());
    inboxes_[static_cast<std::size_t>(k)]->send(std::move(task));
  }

  // --- Gather with the T_L deadline (Algorithm 2's timer). ---------------
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(cfg_.deadline_s);
  Tensor gathered = Tensor::zeros(Shape{T, tile_out_shape_[1],
                                        tile_out_shape_[2],
                                        tile_out_shape_[3]});
  std::vector<bool> have(static_cast<std::size_t>(T), false);
  std::vector<std::int64_t> returned(static_cast<std::size_t>(K), 0);
  std::int64_t received = 0;
  while (received < T) {
    auto result = results_->receive_until(
        std::chrono::time_point_cast<std::chrono::steady_clock::duration>(
            deadline));
    if (!result) break;  // deadline or closed: proceed with zeros
    if (result->image_id != image_id) continue;  // stale late result
    if (result->tile_id < 0 || result->tile_id >= T ||
        have[static_cast<std::size_t>(result->tile_id)])
      continue;
    const Tensor out =
        codec_ ? codec_->decode(result->payload, tile_out_shape_)
               : compress::decode_raw(result->payload, tile_out_shape_);
    gathered.paste(out.reshaped(Shape{1, tile_out_shape_[1],
                                      tile_out_shape_[2],
                                      tile_out_shape_[3]}),
                   result->tile_id, 0, 0);
    have[static_cast<std::size_t>(result->tile_id)] = true;
    ++returned[static_cast<std::size_t>(result->node_id)];
    ++received;
  }

  // --- Algorithm 2: fold per-node counts into s_k. ------------------------
  // Nodes that were assigned no tiles keep their previous estimate (a node
  // with zero quota returning zero results carries no information).
  for (int k = 0; k < K; ++k) {
    if (counts[static_cast<std::size_t>(k)] > 0)
      collector_.record_node(k, returned[static_cast<std::size_t>(k)]);
  }

  // --- Merge and run the later layers. ------------------------------------
  const Tensor merged =
      nn::TileSplit::merge(gathered, model_.grid.rows, model_.grid.cols);
  Tensor output = model_.model.forward_range(merged, model_.suffix_begin(),
                                             model_.suffix_end());

  if (stats) {
    stats->tiles_total = T;
    stats->tiles_missing = T - received;
    stats->assigned = counts;
    stats->returned = returned;
    stats->elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return output;
}

}  // namespace adcnn::runtime
