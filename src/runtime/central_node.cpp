#include "runtime/central_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "nn/tiling.hpp"
#include "obs/critical_path.hpp"
#include "obs/json.hpp"

namespace adcnn::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}
}  // namespace

double RetryPolicy::backoff_s(int round, std::uint64_t key) const {
  if (backoff_base_s <= 0.0) return 0.0;
  double b = backoff_base_s;
  for (int i = 0; i < round && b < backoff_cap_s; ++i) b *= 2.0;
  b = std::min(b, backoff_cap_s);
  if (jitter > 0.0) {
    // Uniform in [-jitter, +jitter), keyed by (key, round): stateless, so
    // the schedule is reproducible per key yet decorrelated across keys.
    const std::uint64_t h =
        splitmix64(key * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(round));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    b *= 1.0 + jitter * (2.0 * u - 1.0);
  }
  return b;
}

std::string InferStats::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("image_id", image_id);
  w.kv("tiles_total", tiles_total);
  w.kv("tiles_missing", tiles_missing);
  w.kv("tiles_retried", tiles_retried);
  w.kv("tiles_recovered", tiles_recovered);
  w.kv("decode_errors", decode_errors);
  w.kv("stale_results", stale_results);
  w.kv("deadline_s", deadline_s);
  w.kv("deadline_slack_s", deadline_slack_s);
  w.kv("elapsed_s", elapsed_s);
  w.key("stages").begin_object();
  w.kv("partition_s", stages.partition_s);
  w.kv("allocate_s", stages.allocate_s);
  w.kv("scatter_s", stages.scatter_s);
  w.kv("gather_s", stages.gather_s);
  w.kv("zero_fill_s", stages.zero_fill_s);
  w.kv("suffix_s", stages.suffix_s);
  w.kv("sum_s", stages.sum());
  w.end_object();
  w.key("per_node").begin_array();
  for (std::size_t k = 0; k < assigned.size(); ++k) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(k));
    w.kv("assigned", assigned[k]);
    w.kv("returned", k < returned.size() ? returned[k] : 0);
    w.kv("missed", k < missed.size() ? missed[k] : 0);
    w.kv("quarantined",
         static_cast<std::int64_t>(k < quarantined.size() && quarantined[k]));
    if (k < speeds.size()) w.kv("speed", speeds[k]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

CentralNode::CentralNode(core::PartitionedModel& model,
                         const compress::TileCodec* codec,
                         std::vector<Channel<TileTask>*> inboxes,
                         Channel<TileResult>* results,
                         std::vector<Transport*> downlinks,
                         CentralConfig cfg)
    : model_(model), codec_(codec), inboxes_(std::move(inboxes)),
      results_(results), downlinks_(std::move(downlinks)), cfg_(cfg),
      collector_(static_cast<int>(inboxes_.size()), cfg.gamma,
                 cfg.initial_speed),
      tile_out_shape_(model.tile_output_shape()),
      quarantined_(inboxes_.size(), false),
      consecutive_missed_(inboxes_.size(), 0) {
  if (inboxes_.empty() || inboxes_.size() != downlinks_.size()) {
    throw std::invalid_argument("CentralNode: inbox/link count mismatch");
  }
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      obs_.images = &m->counter("central.images");
      obs_.tiles_total = &m->counter("central.tiles_total");
      obs_.tiles_missing = &m->counter("central.tiles_missing");
      obs_.retry_dispatched = &m->counter("central.retry.dispatched");
      obs_.retry_recovered = &m->counter("central.retry.recovered");
      obs_.retry_rounds = &m->counter("central.retry.rounds");
      obs_.decode_errors = &m->counter("central.decode_errors");
      obs_.stale_results = &m->counter("central.stale_results");
      obs_.quarantine_events = &m->counter("central.quarantine.events");
      obs_.quarantine_active = &m->gauge("central.quarantine.active");
      obs_.in_flight = &m->gauge("central.in_flight");
      obs_.elapsed_s = &m->histogram("central.infer_elapsed_s");
      obs_.gather_s = &m->histogram("central.gather_s");
      obs_.latency_q = &m->quantile_histogram("central.latency_q");
      obs_.gather_q = &m->quantile_histogram("central.gather_q");
      if (cfg_.critical_path_interval > 0 && cfg_.telemetry.trace) {
        obs_.cp_coverage = &m->gauge("critical_path.coverage");
        obs_.cp_total_s = &m->gauge("critical_path.total_s");
      }
      obs_.total_speed = &m->gauge("stats.total_speed");
      for (std::size_t k = 0; k < inboxes_.size(); ++k)
        obs_.node_speed.push_back(
            &m->gauge("stats.node_speed." + std::to_string(k)));
    }
  }
}

void CentralNode::send_tile(const ImageJob& job, std::int64_t t, int k,
                            std::int32_t attempt, std::int64_t parent_span) {
  obs::TraceRecorder* tracer = cfg_.telemetry.trace;
  obs::ScopedSpan downlink_span(tracer, attempt == 0 ? "downlink" : "retry",
                                attempt == 0 ? "downlink" : "retry", 0,
                                job.image_id, t, parent_span);
  const std::int64_t C = job.tiles.c(), th = job.tiles.h(),
                     tw = job.tiles.w();
  TileTask task;
  task.image_id = job.image_id;
  task.tile_id = t;
  task.attempt = attempt;
  task.parent_span = downlink_span.id();  // causal link across the wire
  task.shape = Shape{1, C, th, tw};
  const Tensor one = job.tiles.crop(t, 1, 0, th, 0, tw);
  task.payload.resize(static_cast<std::size_t>(one.numel()) * sizeof(float));
  std::memcpy(task.payload.data(), one.data(), task.payload.size());
  const auto fate = downlinks_[static_cast<std::size_t>(k)]->transmit_message(
      task.wire_bytes(), job.image_id, t, attempt, &task.payload);
  if (fate.drop) return;  // lost on the air; retry/zero-fill covers it
  if constexpr (obs::kEnabled) {
    if (tracer) task.enqueue_ns = tracer->now_ns();
  }
  inboxes_[static_cast<std::size_t>(k)]->send(std::move(task));
}

std::int64_t CentralNode::begin_image(const Tensor& image) {
  return begin_stacked(image, 1);
}

std::int64_t CentralNode::begin_batch(const std::vector<Tensor>& images) {
  if (images.empty()) {
    throw std::invalid_argument("CentralNode::begin_batch: empty batch");
  }
  if (images.size() == 1) return begin_stacked(images[0], 1);
  const Shape& s0 = images[0].shape();
  for (const Tensor& img : images) {
    if (img.shape() != s0) {
      throw std::invalid_argument(
          "CentralNode::begin_batch: mixed image shapes in one batch");
    }
  }
  // Stack (1,C,H,W) images into (N,C,H,W); TileSplit::split on the stack
  // yields exactly the concatenation of each image's own tiles
  // (image-major), so every tile's bytes match the unbatched path.
  const std::int64_t N = static_cast<std::int64_t>(images.size());
  Tensor stacked(Shape{N, s0[1], s0[2], s0[3]});
  const std::size_t per =
      static_cast<std::size_t>(s0.numel()) * sizeof(float);
  for (std::int64_t n = 0; n < N; ++n) {
    std::memcpy(reinterpret_cast<char*>(stacked.data()) +
                    static_cast<std::size_t>(n) * per,
                images[static_cast<std::size_t>(n)].data(), per);
  }
  return begin_stacked(stacked, N);
}

std::int64_t CentralNode::begin_stacked(const Tensor& stacked,
                                        std::int64_t batch) {
  const auto t0 = Clock::now();
  const int K = static_cast<int>(inboxes_.size());
  obs::TraceRecorder* tracer = cfg_.telemetry.trace;

  auto job = std::make_unique<ImageJob>();
  job->t0 = t0;
  job->batch = batch;
  if constexpr (obs::kEnabled) {
    if (tracer) {
      job->infer_begin_ns = tracer->now_ns();
      // Pre-allocate the ids of the two manually-recorded spans so every
      // child can name its parent before the parent itself is recorded.
      job->root_span = tracer->new_span_id();
      job->gather_span = tracer->new_span_id();
    }
  }
  {
    std::lock_guard lock(mu_);
    job->image_id = next_image_id_++;
  }
  const std::int64_t image_id = job->image_id;

  // --- Input partition block: FDSP split. --------------------------------
  obs::ScopedSpan partition_span(tracer, "partition", "partition", 0,
                                 image_id, -1, job->root_span);
  job->tiles =
      nn::TileSplit::split(stacked, model_.grid.rows, model_.grid.cols);
  const std::int64_t T = job->tiles.n();
  job->tiles_total = T;
  partition_span.end();
  job->t_partitioned = Clock::now();

  // --- Algorithm 3: allocate tiles against the running s_k. --------------
  obs::ScopedSpan allocate_span(tracer, "allocate", "allocate", 0, image_id,
                                -1, job->root_span);
  {
    std::lock_guard lock(mu_);
    core::AllocRequest req;
    req.speeds = collector_.speeds();
    req.capacity_tiles.assign(static_cast<std::size_t>(K),
                              cfg_.capacity_tiles);
    req.tiles = T;
    // Quarantine circuit breaker: an excluded node gets zero capacity so
    // Algorithm 3 cannot route tiles to it (only the recovery probe below
    // may still reach it). Skip the exclusion when the healthy nodes could
    // not hold every tile — a suspect node beats a failed allocation.
    // (Checked on the flags, not quarantine_after: a transport liveness
    // hint via mark_node_down() excludes even with the automatic breaker
    // disabled.)
    const bool any_quarantined =
        std::find(quarantined_.begin(), quarantined_.end(), true) !=
        quarantined_.end();
    if (any_quarantined) {
      std::int64_t healthy_capacity = 0;
      for (int k = 0; k < K; ++k) {
        if (!quarantined_[static_cast<std::size_t>(k)])
          healthy_capacity += std::min(cfg_.capacity_tiles, T);
      }
      if (healthy_capacity >= T) {
        for (int k = 0; k < K; ++k) {
          if (quarantined_[static_cast<std::size_t>(k)])
            req.capacity_tiles[static_cast<std::size_t>(k)] = 0;
        }
      }
    }
    job->counts = core::allocate_tiles(req);

    // Recovery probe: periodically lend one tile to starved nodes so a node
    // whose s_k collapsed (failure/throttle) can prove it recovered. This is
    // also the only path by which a quarantined node receives work — a
    // returned probe lifts the quarantine below.
    if (cfg_.probe_interval > 0 && image_id % cfg_.probe_interval == 0) {
      for (int k = 0; k < K; ++k) {
        if (job->counts[static_cast<std::size_t>(k)] > 0) continue;
        const auto donor =
            std::max_element(job->counts.begin(), job->counts.end());
        if (*donor > 1) {
          --*donor;
          ++job->counts[static_cast<std::size_t>(k)];
        }
      }
    }
  }

  // Expand per-node counts into a per-tile node assignment (round-robin
  // over nodes weighted by their quota, so consecutive tiles interleave).
  job->owner.assign(static_cast<std::size_t>(T), 0);
  {
    std::vector<std::int64_t> left = job->counts;
    std::int64_t t = 0;
    while (t < T) {
      for (int k = 0; k < K && t < T; ++k) {
        if (left[static_cast<std::size_t>(k)] > 0) {
          --left[static_cast<std::size_t>(k)];
          job->owner[static_cast<std::size_t>(t++)] = k;
        }
      }
    }
  }

  // Gather-side state, initialized before the job becomes routable.
  job->gathered = Tensor::zeros(Shape{T, tile_out_shape_[1],
                                      tile_out_shape_[2], tile_out_shape_[3]});
  job->have.assign(static_cast<std::size_t>(T), false);
  job->returned.assign(static_cast<std::size_t>(K), 0);
  job->dispatched = job->counts;
  allocate_span.end();
  job->t_allocated = Clock::now();

  // Register for result routing before the first tile leaves: a fast node
  // may answer while the scatter is still in progress.
  ImageJob* raw = job.get();
  {
    std::lock_guard lock(mu_);
    inflight_.emplace(image_id, std::move(job));
    if constexpr (obs::kEnabled) {
      if (obs_.in_flight)
        obs_.in_flight->set(static_cast<double>(inflight_.size()));
    }
  }
  inflight_cv_.notify_all();

  // --- Scatter: transmit each tile to its Conv node. ----------------------
  obs::ScopedSpan scatter_span(tracer, "scatter", "scatter", 0, image_id, -1,
                               raw->root_span);
  for (std::int64_t t = 0; t < T; ++t) {
    send_tile(*raw, t, raw->owner[static_cast<std::size_t>(t)], 0,
              scatter_span.id());
  }
  scatter_span.end();
  const auto t_scattered = Clock::now();
  if constexpr (obs::kEnabled) {
    if (tracer) raw->gather_begin_ns = tracer->now_ns();
  }
  {
    // Publish the deadline: T_L counts from the last transmitted tile.
    std::lock_guard lock(mu_);
    raw->t_scattered = t_scattered;
    raw->deadline =
        t_scattered + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(cfg_.deadline_s));
    raw->scatter_done = true;
  }
  return image_id;
}

CentralNode::Clock::time_point CentralNode::retry_due(const ImageJob& job,
                                                      int round) const {
  // Round i fires at at_fraction of T_L, with later rounds splitting the
  // remaining slack evenly — the retry budget always spends inside T_L.
  // Any configured backoff is added on top (keyed by image id so
  // concurrent images desynchronize); a retry pushed past the deadline
  // never fires.
  const double f = cfg_.retry.at_fraction +
                   (1.0 - cfg_.retry.at_fraction) * static_cast<double>(round) /
                       static_cast<double>(cfg_.retry.max_rounds);
  const double due_s =
      cfg_.deadline_s * std::clamp(f, 0.0, 1.0) +
      cfg_.retry.backoff_s(round, static_cast<std::uint64_t>(job.image_id));
  return job.t_scattered + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(due_s));
}

void CentralNode::complete_gather_locked(ImageJob& job,
                                         Clock::time_point now) {
  const int K = static_cast<int>(inboxes_.size());
  job.gather_done = true;
  job.t_gathered = now;
  job.deadline_slack_s =
      std::chrono::duration<double>(job.deadline - now).count();

  // missed[k] counts primary assignments node k failed to return within
  // T_L — a tile recovered via retry still counts against its owner, so
  // Algorithm 2 keeps an honest view of the node.
  job.missed.assign(static_cast<std::size_t>(K), 0);
  for (int k = 0; k < K; ++k) {
    job.missed[static_cast<std::size_t>(k)] =
        job.counts[static_cast<std::size_t>(k)] -
        job.returned[static_cast<std::size_t>(k)];
  }

  // --- Algorithm 2: fold per-node counts into s_k. ------------------------
  // Nodes that were assigned no tiles keep their previous estimate (a node
  // with zero quota returning zero results carries no information).
  for (int k = 0; k < K; ++k) {
    if (job.counts[static_cast<std::size_t>(k)] > 0)
      collector_.record_node(k, job.returned[static_cast<std::size_t>(k)]);
  }

  // --- Quarantine circuit breaker bookkeeping. ----------------------------
  // Any returned tile (including a probe) lifts the quarantine; a node
  // whose whole assignment missed for quarantine_after consecutive images
  // trips it.
  std::int64_t quarantine_active = 0;
  for (int k = 0; k < K; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    if (job.returned[ks] > 0) {
      consecutive_missed_[ks] = 0;
      quarantined_[ks] = false;
    } else if (job.counts[ks] > 0) {
      ++consecutive_missed_[ks];
      if (cfg_.quarantine_after > 0 && !quarantined_[ks] &&
          consecutive_missed_[ks] >= cfg_.quarantine_after) {
        quarantined_[ks] = true;
        if constexpr (obs::kEnabled) {
          if (obs_.quarantine_events) obs_.quarantine_events->add(1);
        }
      }
    }
    quarantine_active += quarantined_[ks];
  }

  // Stale results drained since the last completion are attributed here so
  // every discarded message shows up in exactly one report.
  job.stale_results += pending_stale_;
  pending_stale_ = 0;

  job.quarantined = quarantined_;
  job.speeds = collector_.speeds();

  if constexpr (obs::kEnabled) {
    obs::TraceRecorder* tracer = cfg_.telemetry.trace;
    if (tracer && job.gather_begin_ns >= 0) {
      obs::Span span;
      span.name = "gather_wait";
      span.cat = "gather_wait";
      span.tid = 0;
      span.image_id = job.image_id;
      span.begin_ns = job.gather_begin_ns;
      span.end_ns = tracer->now_ns();
      span.id = job.gather_span;
      span.parent = job.root_span;
      tracer->record(span);
    }
    if (obs_.images) {
      obs_.images->add(1);
      obs_.tiles_total->add(job.tiles_total);
      obs_.tiles_missing->add(job.tiles_total - job.received);
      if (job.retried > 0) obs_.retry_dispatched->add(job.retried);
      if (job.recovered > 0) obs_.retry_recovered->add(job.recovered);
      if (job.retry_rounds > 0) obs_.retry_rounds->add(job.retry_rounds);
      if (job.decode_errors > 0) obs_.decode_errors->add(job.decode_errors);
      if (job.stale_results > 0) obs_.stale_results->add(job.stale_results);
      obs_.quarantine_active->set(static_cast<double>(quarantine_active));
      obs_.gather_s->observe(seconds_between(job.t_scattered, job.t_gathered));
      obs_.gather_q->observe(seconds_between(job.t_scattered, job.t_gathered));
      obs_.total_speed->set(collector_.total_speed());
      for (int k = 0; k < K; ++k)
        obs_.node_speed[static_cast<std::size_t>(k)]->set(collector_.speed(k));
    }
  }
}

std::vector<std::unique_ptr<CentralNode::ImageJob>> CentralNode::pump_gather(
    Clock::time_point until) {
  const int K = static_cast<int>(inboxes_.size());
  std::vector<std::unique_ptr<ImageJob>> done;
  struct RetrySend {
    ImageJob* job;
    std::int64_t tile;
    int node;
    std::int32_t attempt;
    std::int64_t parent_span;
  };
  std::vector<RetrySend> resend;
  const bool retry_on = cfg_.retry.enabled && cfg_.retry.max_rounds > 0;

  for (;;) {
    resend.clear();
    const bool closed = results_->closed();
    auto now = Clock::now();
    Clock::time_point wake = until;
    {
      std::lock_guard lock(mu_);
      for (auto it = inflight_.begin(); it != inflight_.end();) {
        ImageJob& job = *it->second;
        // A job completes only once its scatter finished: received == T
        // implies every tile came back, and the deadline clock does not
        // even start until the last tile left.
        const bool complete =
            job.scatter_done && (job.received >= job.tiles_total ||
                                 now >= job.deadline || closed);
        if (complete) {
          complete_gather_locked(job, now);
          done.push_back(std::move(it->second));
          it = inflight_.erase(it);
          continue;
        }
        if (!job.scatter_done) {
          // Mid-scatter: poll briefly so the published deadline (or a
          // final result racing the scatter tail) is picked up promptly.
          wake = std::min(wake, now + std::chrono::milliseconds(1));
          ++it;
          continue;
        }
        wake = std::min(wake, job.deadline);
        if (retry_on && job.retry_rounds < cfg_.retry.max_rounds) {
          const auto due = retry_due(job, job.retry_rounds);
          if (now >= due) {
            // --- Bounded re-dispatch: send still-missing tiles to the
            // fastest non-quarantined nodes with spare capacity. Tiles
            // avoid their original owner when an alternative exists (it
            // just missed); the have[] bitmap deduplicates a late primary
            // racing its retry.
            ++job.retry_rounds;
            std::vector<int> targets;
            for (int k = 0; k < K; ++k) {
              if (!quarantined_[static_cast<std::size_t>(k)] &&
                  job.dispatched[static_cast<std::size_t>(k)] <
                      cfg_.capacity_tiles)
                targets.push_back(k);
            }
            std::stable_sort(targets.begin(), targets.end(),
                             [&](int a, int b) {
                               return collector_.speed(a) >
                                      collector_.speed(b);
                             });
            if (!targets.empty()) {
              std::size_t rr = 0;
              for (std::int64_t t = 0; t < job.tiles_total; ++t) {
                if (job.have[static_cast<std::size_t>(t)]) continue;
                int k = targets[rr++ % targets.size()];
                if (k == job.owner[static_cast<std::size_t>(t)] &&
                    targets.size() > 1)
                  k = targets[rr++ % targets.size()];
                resend.push_back(
                    {&job, t, k, job.retry_rounds, job.gather_span});
                ++job.dispatched[static_cast<std::size_t>(k)];
                ++job.retried;
              }
            }
            if (job.retry_rounds < cfg_.retry.max_rounds)
              wake = std::min(wake, retry_due(job, job.retry_rounds));
          } else {
            wake = std::min(wake, due);
          }
        }
        ++it;
      }
      if constexpr (obs::kEnabled) {
        if (obs_.in_flight)
          obs_.in_flight->set(static_cast<double>(inflight_.size()));
      }
    }

    // Transmit retries outside the lock: links model airtime with real
    // sleeps, and the dispatcher needs the lock to admit the next image.
    for (const auto& rs : resend) {
      send_tile(*rs.job, rs.tile, rs.node, rs.attempt, rs.parent_span);
    }

    if (!done.empty()) return done;
    now = Clock::now();
    if (now >= until) return done;
    if (closed) {
      // Every scatter_done job was completed above, so anything left is
      // mid-scatter. receive_until would return immediately on a closed
      // channel, so sleep instead until the dispatcher publishes the
      // scatter (or bail out if nothing is in flight).
      bool any_inflight;
      {
        std::lock_guard lock(mu_);
        any_inflight = !inflight_.empty();
      }
      if (!any_inflight) return done;
      std::this_thread::sleep_until(std::min(wake, until));
      continue;
    }

    auto result = results_->receive_until(std::min(wake, until));
    if (!result) continue;  // timeout/close: loop re-evaluates every job

    // --- Route one result to its in-flight image by image_id. -------------
    ImageJob* job = nullptr;
    {
      std::lock_guard lock(mu_);
      const auto it = inflight_.find(result->image_id);
      if (it == inflight_.end()) {
        // No owning image in flight: a straggler or injected delay landed
        // after its image's deadline fired (or a hostile id) — drain it.
        ++pending_stale_;
        continue;
      }
      job = it->second.get();
    }
    // Gather-side fields are pump-thread-owned, so the heavy decode/paste
    // runs without the lock.
    if (result->tile_id < 0 || result->tile_id >= job->tiles_total ||
        result->node_id < 0 || result->node_id >= K) {  // malformed header
      ++job->decode_errors;
      continue;
    }
    if (job->have[static_cast<std::size_t>(result->tile_id)]) continue;  // dup
    try {
      const Tensor out =
          codec_ ? codec_->decode(result->payload, tile_out_shape_)
                 : compress::decode_raw(result->payload, tile_out_shape_);
      job->gathered.paste(out.reshaped(Shape{1, tile_out_shape_[1],
                                             tile_out_shape_[2],
                                             tile_out_shape_[3]}),
                          result->tile_id, 0, 0);
    } catch (const std::exception&) {
      // Corruption-tolerant decode: a malformed payload is counted and
      // dropped; the retry path (or zero-fill) covers the tile.
      ++job->decode_errors;
      continue;
    }
    job->have[static_cast<std::size_t>(result->tile_id)] = true;
    ++job->received;
    if (result->attempt == 0) {
      ++job->returned[static_cast<std::size_t>(result->node_id)];
    } else {
      ++job->recovered;
    }
  }
}

Tensor CentralNode::finish_image(std::unique_ptr<ImageJob> job,
                                 InferStats* stats) {
  if (job->batch != 1) {
    throw std::logic_error(
        "CentralNode::finish_image: batched job needs finish_batch");
  }
  auto outputs = finish_batch(std::move(job), stats);
  return std::move(outputs.front());
}

std::vector<Tensor> CentralNode::finish_batch(std::unique_ptr<ImageJob> job,
                                              InferStats* stats) {
  obs::TraceRecorder* tracer = cfg_.telemetry.trace;

  // --- Zero-fill accounting: gathered was zero-initialized, so missing
  // tiles are already blank — this stage only marks the event.
  auto t_zero_filled = job->t_gathered;
  if (job->received < job->tiles_total) {
    obs::ScopedSpan zero_span(tracer, "zero_fill", "zero_fill", 0,
                              job->image_id, -1, job->root_span);
    zero_span.end();
    t_zero_filled = Clock::now();
  }

  // --- Merge and run the later layers. ------------------------------------
  obs::ScopedSpan suffix_span(tracer, "suffix", "suffix", 0, job->image_id,
                              -1, job->root_span);
  const Tensor merged =
      nn::TileSplit::merge(job->gathered, model_.grid.rows, model_.grid.cols);
  Tensor output = model_.model.forward_range(merged, model_.suffix_begin(),
                                             model_.suffix_end());
  suffix_span.end();
  const auto t_done = Clock::now();

  if constexpr (obs::kEnabled) {
    if (tracer && job->infer_begin_ns >= 0) {
      obs::Span span;
      span.name = "infer";
      span.cat = "image";
      span.tid = 0;
      span.image_id = job->image_id;
      span.begin_ns = job->infer_begin_ns;
      span.end_ns = tracer->now_ns();
      span.id = job->root_span;
      tracer->record(span);
    }
    if (obs_.elapsed_s) {
      obs_.elapsed_s->observe(seconds_between(job->t0, t_done));
      obs_.latency_q->observe(seconds_between(job->t0, t_done));
    }
    // Periodic critical-path decomposition: which stage gated this image.
    // Exported as a per-stage dominant counter plus a coverage gauge; the
    // interval keeps the trace-ring snapshot off the steady-state path.
    if (obs_.cp_coverage && cfg_.critical_path_interval > 0 &&
        job->image_id % cfg_.critical_path_interval == 0) {
      const auto report =
          obs::critical_path(tracer->spans(), job->image_id);
      if (report.total_s > 0.0 && !report.dominant_stage.empty()) {
        obs_.cp_coverage->set(report.coverage());
        obs_.cp_total_s->set(report.total_s);
        cfg_.telemetry.metrics
            ->counter("critical_path.dominant." + report.dominant_stage)
            .add(1);
      }
    }
  }

  if (stats) {
    stats->image_id = job->image_id;
    stats->tiles_total = job->tiles_total;
    stats->tiles_missing = job->tiles_total - job->received;
    stats->assigned = job->counts;
    stats->returned = job->returned;
    stats->missed = job->missed;
    stats->quarantined = job->quarantined;
    stats->tiles_retried = job->retried;
    stats->tiles_recovered = job->recovered;
    stats->decode_errors = job->decode_errors;
    stats->stale_results = job->stale_results;
    stats->speeds = job->speeds;
    stats->deadline_s = cfg_.deadline_s;
    stats->deadline_slack_s = job->deadline_slack_s;
    stats->stages.partition_s = seconds_between(job->t0, job->t_partitioned);
    stats->stages.allocate_s =
        seconds_between(job->t_partitioned, job->t_allocated);
    stats->stages.scatter_s =
        seconds_between(job->t_allocated, job->t_scattered);
    stats->stages.gather_s =
        seconds_between(job->t_scattered, job->t_gathered);
    stats->stages.zero_fill_s =
        seconds_between(job->t_gathered, t_zero_filled);
    stats->stages.suffix_s = seconds_between(t_zero_filled, t_done);
    stats->elapsed_s = seconds_between(job->t0, t_done);
  }

  // --- Demux: slice the batched suffix output back per image. -------------
  // The output is contiguous with the batch outermost, so sample n is the
  // flat range [n*per, (n+1)*per) regardless of rank (classifier (N, cls)
  // and dense (N, C, H, W) heads alike).
  std::vector<Tensor> outputs;
  outputs.reserve(static_cast<std::size_t>(job->batch));
  if (job->batch == 1) {
    outputs.push_back(std::move(output));
    return outputs;
  }
  std::vector<std::int64_t> dims = output.shape().dims();
  dims[0] = 1;
  const Shape one(dims);
  const std::size_t per =
      static_cast<std::size_t>(one.numel()) * sizeof(float);
  for (std::int64_t n = 0; n < job->batch; ++n) {
    Tensor y(one);
    std::memcpy(y.data(),
                reinterpret_cast<const char*>(output.data()) +
                    static_cast<std::size_t>(n) * per,
                per);
    outputs.push_back(std::move(y));
  }
  return outputs;
}

bool CentralNode::wait_for_inflight(Clock::time_point until) {
  std::unique_lock lock(mu_);
  // A single (non-predicated) wait: any wake() notify returns control to
  // the caller so it can re-check its own stop condition instead of
  // sitting out the full timeout during shutdown.
  if (inflight_.empty()) inflight_cv_.wait_until(lock, until);
  return !inflight_.empty();
}

void CentralNode::wake() {
  std::lock_guard lock(mu_);
  inflight_cv_.notify_all();
}

std::size_t CentralNode::in_flight() const {
  std::lock_guard lock(mu_);
  return inflight_.size();
}

void CentralNode::mark_node_down(int k) {
  if (k < 0 || k >= static_cast<int>(inboxes_.size())) return;
  std::lock_guard lock(mu_);
  const auto ks = static_cast<std::size_t>(k);
  if (!quarantined_[ks]) {
    quarantined_[ks] = true;
    if constexpr (obs::kEnabled) {
      if (obs_.quarantine_events) obs_.quarantine_events->add(1);
    }
  }
}

void CentralNode::mark_node_up(int k) {
  if (k < 0 || k >= static_cast<int>(inboxes_.size())) return;
  std::lock_guard lock(mu_);
  const auto ks = static_cast<std::size_t>(k);
  quarantined_[ks] = false;
  consecutive_missed_[ks] = 0;
}

Tensor CentralNode::infer(const Tensor& image, InferStats* stats) {
  const std::int64_t image_id = begin_image(image);
  std::unique_ptr<ImageJob> mine;
  while (!mine) {
    auto completed = pump_gather(Clock::now() + std::chrono::hours(1));
    for (auto& job : completed) {
      if (job->image_id == image_id) mine = std::move(job);
      // Any other completed job would mean infer() ran concurrently with a
      // streaming server — a documented contract violation; its output is
      // dropped here rather than misdelivered.
    }
    if (!mine && completed.empty() && results_->closed() &&
        in_flight() == 0) {
      throw std::runtime_error(
          "CentralNode::infer: results channel closed mid-image");
    }
  }
  return finish_image(std::move(mine), stats);
}

}  // namespace adcnn::runtime
