// Central node (Figure 8): input partition block, statistics collection
// (Algorithm 2), tile allocation (Algorithm 3), deadline handling with
// zero-fill, and later-layer computation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "compress/pipeline.hpp"
#include "core/allocate.hpp"
#include "core/fdsp.hpp"
#include "core/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/channel.hpp"
#include "runtime/link.hpp"
#include "runtime/message.hpp"

namespace adcnn::runtime {

/// Bounded retry/re-dispatch of still-missing tiles inside the T_L window
/// (self-healing extension over the paper's zero-fill-only deadline). A
/// tile lost to a flaky link or a dying node is re-sent to the fastest
/// non-quarantined nodes with spare capacity while deadline slack remains;
/// duplicates are deduplicated by the gather's have[] bitmap.
struct RetryPolicy {
  bool enabled = true;
  /// First re-dispatch fires once this fraction of T_L has elapsed with
  /// tiles still missing; later rounds split the remaining window evenly.
  double at_fraction = 0.5;
  /// Retry budget: at most this many re-dispatch rounds per image.
  int max_rounds = 2;
};

struct CentralConfig {
  /// T_L — how long to wait for intermediate results after the last tile
  /// of an image has been transmitted (wall-clock seconds).
  double deadline_s = 5.0;
  double gamma = 0.9;          // Algorithm 2 decay
  double initial_speed = 1.0;  // s_k seed
  std::int64_t capacity_tiles =
      std::numeric_limits<std::int64_t>::max();  // H_k / M
  /// Recovery probing (extension over the paper): every `probe_interval`
  /// images, a node that would receive no tiles is handed one probe tile
  /// so a recovered node can rebuild its s_k. Without this, a node whose
  /// EMA collapsed stays starved forever even after it heals. 0 disables.
  int probe_interval = 8;
  RetryPolicy retry;
  /// Quarantine circuit breaker: a node whose assigned tiles all miss the
  /// deadline for this many consecutive images is excluded from Algorithm 3
  /// allocation until a recovery probe returns (composing with
  /// `probe_interval`), rather than relying solely on the EMA decaying
  /// toward zero. 0 disables.
  int quarantine_after = 3;
  /// Null sinks by default; see obs/telemetry.hpp.
  obs::Telemetry telemetry;
};

/// Wall-clock seconds spent in each sequential stage of one infer() call.
/// The stages partition the call, so sum() tracks InferStats::elapsed_s
/// (modulo bookkeeping between the clock reads).
struct StageTimings {
  double partition_s = 0.0;  // FDSP tile split
  double allocate_s = 0.0;   // Algorithm 3 + probe + owner expansion
  double scatter_s = 0.0;    // downlink transmit + enqueue, all tiles
  double gather_s = 0.0;     // waiting on results until done or T_L
  double zero_fill_s = 0.0;  // missing-tile accounting at the deadline
  double suffix_s = 0.0;     // tile merge + later-layer forward
  double sum() const {
    return partition_s + allocate_s + scatter_s + gather_s + zero_fill_s +
           suffix_s;
  }
};

/// Per-inference report: counts, per-node outcome, Algorithm 2 state and
/// stage timings, serializable as one JSON document consumed by bench/
/// and examples/ alike.
struct InferStats {
  std::int64_t image_id = -1;
  std::int64_t tiles_total = 0;
  std::int64_t tiles_missing = 0;       // zero-filled at the deadline
  std::vector<std::int64_t> assigned;   // tiles sent per node
  /// Primary-dispatch results within T_L per node (retry completions are
  /// tracked in tiles_recovered so Algorithm 2 only ever credits a node
  /// for its own assignment).
  std::vector<std::int64_t> returned;
  std::vector<std::int64_t> missed;     // assigned - returned per node
  /// Per-node circuit-breaker state after this image (see
  /// CentralConfig::quarantine_after).
  std::vector<bool> quarantined;
  std::int64_t tiles_retried = 0;    // re-dispatches sent within T_L
  std::int64_t tiles_recovered = 0;  // missing tiles filled by a retry
  std::int64_t decode_errors = 0;    // malformed results dropped in gather
  std::int64_t stale_results = 0;    // previous-image results discarded
  std::vector<double> speeds;           // s_k after Algorithm 2's update
  double deadline_s = 0.0;              // the T_L in force
  /// Seconds left before T_L when gathering finished; <= 0 means the
  /// deadline fired and tiles_missing tiles were zero-filled.
  double deadline_slack_s = 0.0;
  StageTimings stages;
  double elapsed_s = 0.0;

  std::string to_json() const;
};

class CentralNode {
 public:
  /// Channels/links are owned by the cluster harness; `codec` null means
  /// Conv nodes send raw fp32 (must match the workers' configuration).
  CentralNode(core::PartitionedModel& model, const compress::TileCodec* codec,
              std::vector<Channel<TileTask>*> inboxes,
              Channel<TileResult>* results,
              std::vector<SimulatedLink*> downlinks, CentralConfig cfg);

  /// End-to-end inference for one image (1, C, H, W): partition, allocate,
  /// scatter, gather with deadline, zero-fill, run the suffix.
  Tensor infer(const Tensor& image, InferStats* stats = nullptr);

  const core::StatsCollector& collector() const { return collector_; }

 private:
  core::PartitionedModel& model_;
  const compress::TileCodec* codec_;
  std::vector<Channel<TileTask>*> inboxes_;
  Channel<TileResult>* results_;
  std::vector<SimulatedLink*> downlinks_;
  CentralConfig cfg_;
  core::StatsCollector collector_;
  Shape tile_out_shape_;
  std::int64_t next_image_id_ = 0;
  // Quarantine circuit breaker state (central thread only).
  std::vector<bool> quarantined_;
  std::vector<int> consecutive_missed_;

  // Cached instruments (null when no metrics sink is attached).
  struct CentralMetrics {
    obs::Counter* images = nullptr;
    obs::Counter* tiles_total = nullptr;
    obs::Counter* tiles_missing = nullptr;
    obs::Counter* retry_dispatched = nullptr;
    obs::Counter* retry_recovered = nullptr;
    obs::Counter* retry_rounds = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* stale_results = nullptr;
    obs::Counter* quarantine_events = nullptr;
    obs::Gauge* quarantine_active = nullptr;
    obs::Histogram* elapsed_s = nullptr;
    obs::Histogram* gather_s = nullptr;
    obs::Gauge* total_speed = nullptr;
    std::vector<obs::Gauge*> node_speed;
  } obs_;
};

}  // namespace adcnn::runtime
