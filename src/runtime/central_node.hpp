// Central node (Figure 8): input partition block, statistics collection
// (Algorithm 2), tile allocation (Algorithm 3), deadline handling with
// zero-fill, and later-layer computation.
//
// The stages are reentrant per-image functions keyed by image id, so any
// number of images can be in flight at once: begin_image() partitions,
// allocates and scatters one image and registers it for result routing;
// pump_gather() demultiplexes incoming results by image_id across every
// in-flight image (firing retries and expiring deadlines per image); and
// finish_image() merges the tiles and runs the central suffix. infer() is
// the sequential composition (one image in flight); StreamingServer
// (runtime/pipeline.hpp) drives the same stages from three threads to
// overlap scatter/compute/gather/suffix across images.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <vector>

#include "compress/pipeline.hpp"
#include "core/allocate.hpp"
#include "core/fdsp.hpp"
#include "core/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/channel.hpp"
#include "runtime/link.hpp"
#include "runtime/message.hpp"

namespace adcnn::runtime {

/// Bounded retry/re-dispatch of still-missing tiles inside the T_L window
/// (self-healing extension over the paper's zero-fill-only deadline). A
/// tile lost to a flaky link or a dying node is re-sent to the fastest
/// non-quarantined nodes with spare capacity while deadline slack remains;
/// duplicates are deduplicated by the gather's have[] bitmap.
struct RetryPolicy {
  bool enabled = true;
  /// First re-dispatch fires once this fraction of T_L has elapsed with
  /// tiles still missing; later rounds split the remaining window evenly.
  double at_fraction = 0.5;
  /// Retry budget: at most this many re-dispatch rounds per image.
  int max_rounds = 2;
  /// Capped exponential backoff added on top of the fractional schedule
  /// (round i waits an extra min(cap, base * 2^i), +/- jitter). The default
  /// base of 0 keeps the original schedule; over real sockets a non-zero
  /// base desynchronizes retry storms across images and reconnecting
  /// peers. Backoff spends deadline slack: a retry pushed past T_L simply
  /// never fires (zero-fill covers the tile).
  double backoff_base_s = 0.0;
  double backoff_cap_s = 1.0;
  /// Fraction of the backoff randomized symmetrically (0 = deterministic).
  double jitter = 0.1;

  /// Deterministic backoff for 0-based `round`: capped exponential with a
  /// +/- jitter drawn from a stateless hash of `key`, so concurrent
  /// retriers (images, reconnecting links) desynchronize without sharing
  /// an RNG stream and a seeded run stays reproducible.
  double backoff_s(int round, std::uint64_t key = 0) const;
};

struct CentralConfig {
  /// T_L — how long to wait for intermediate results after the last tile
  /// of an image has been transmitted (wall-clock seconds).
  double deadline_s = 5.0;
  double gamma = 0.9;          // Algorithm 2 decay
  double initial_speed = 1.0;  // s_k seed
  std::int64_t capacity_tiles =
      std::numeric_limits<std::int64_t>::max();  // H_k / M
  /// Recovery probing (extension over the paper): every `probe_interval`
  /// images, a node that would receive no tiles is handed one probe tile
  /// so a recovered node can rebuild its s_k. Without this, a node whose
  /// EMA collapsed stays starved forever even after it heals. 0 disables.
  int probe_interval = 8;
  RetryPolicy retry;
  /// Quarantine circuit breaker: a node whose assigned tiles all miss the
  /// deadline for this many consecutive images is excluded from Algorithm 3
  /// allocation until a recovery probe returns (composing with
  /// `probe_interval`), rather than relying solely on the EMA decaying
  /// toward zero. 0 disables.
  int quarantine_after = 3;
  /// Run the critical-path analyzer (obs/critical_path.hpp) on every Nth
  /// finished image and export critical_path.* metrics (dominant-stage
  /// counters, coverage). Needs both telemetry sinks attached; each run
  /// snapshots the trace ring, so keep the interval coarse. 0 disables.
  int critical_path_interval = 16;
  /// Null sinks by default; see obs/telemetry.hpp.
  obs::Telemetry telemetry;
};

/// Wall-clock seconds spent in each sequential stage of one infer() call.
/// The stages partition the call, so sum() tracks InferStats::elapsed_s
/// (modulo bookkeeping between the clock reads). Under streaming the same
/// fields measure the per-image stage durations, which overlap across
/// images — their sum can then exceed the per-image wall latency share.
struct StageTimings {
  double partition_s = 0.0;  // FDSP tile split
  double allocate_s = 0.0;   // Algorithm 3 + probe + owner expansion
  double scatter_s = 0.0;    // downlink transmit + enqueue, all tiles
  double gather_s = 0.0;     // waiting on results until done or T_L
  double zero_fill_s = 0.0;  // missing-tile accounting at the deadline
  double suffix_s = 0.0;     // tile merge + later-layer forward
  double sum() const {
    return partition_s + allocate_s + scatter_s + gather_s + zero_fill_s +
           suffix_s;
  }
};

/// Per-inference report: counts, per-node outcome, Algorithm 2 state and
/// stage timings, serializable as one JSON document consumed by bench/
/// and examples/ alike.
struct InferStats {
  std::int64_t image_id = -1;
  std::int64_t tiles_total = 0;
  std::int64_t tiles_missing = 0;       // zero-filled at the deadline
  std::vector<std::int64_t> assigned;   // tiles sent per node
  /// Primary-dispatch results within T_L per node (retry completions are
  /// tracked in tiles_recovered so Algorithm 2 only ever credits a node
  /// for its own assignment).
  std::vector<std::int64_t> returned;
  std::vector<std::int64_t> missed;     // assigned - returned per node
  /// Per-node circuit-breaker state after this image (see
  /// CentralConfig::quarantine_after).
  std::vector<bool> quarantined;
  std::int64_t tiles_retried = 0;    // re-dispatches sent within T_L
  std::int64_t tiles_recovered = 0;  // missing tiles filled by a retry
  std::int64_t decode_errors = 0;    // malformed results dropped in gather
  std::int64_t stale_results = 0;    // dead-image results discarded
  std::vector<double> speeds;           // s_k after Algorithm 2's update
  double deadline_s = 0.0;              // the T_L in force
  /// Seconds left before T_L when gathering finished; <= 0 means the
  /// deadline fired and tiles_missing tiles were zero-filled.
  double deadline_slack_s = 0.0;
  StageTimings stages;
  double elapsed_s = 0.0;

  std::string to_json() const;
};

class CentralNode {
 public:
  using Clock = std::chrono::steady_clock;

  /// One image's pipeline state, created by begin_image() and routed by
  /// image id until finish_image() consumes it. Gather-side fields (have,
  /// gathered, returned, ...) are owned by the single pump thread;
  /// scatter-side fields are written by the dispatching thread before
  /// `scatter_done` is published under the node's mutex.
  struct ImageJob {
    std::int64_t image_id = -1;
    /// Images coalesced into this job by begin_batch(); 1 for begin_image.
    /// tiles_total = batch * grid tiles, image-major (sample n's tiles sit
    /// at slots [n*r*c, (n+1)*r*c)) — the demux key finish_batch() uses to
    /// slice the batched suffix output back per image.
    std::int64_t batch = 1;
    std::int64_t tiles_total = 0;  // batch * T
    Tensor tiles;                  // (batch*T, C, th, tw) input tiles
    std::vector<std::int64_t> counts;  // Algorithm 3 primary allocation
    std::vector<int> owner;            // tile -> node
    // Gather state (pump thread only).
    Tensor gathered;
    std::vector<bool> have;
    std::vector<std::int64_t> returned;
    std::vector<std::int64_t> dispatched;  // primary + retry sends per node
    std::int64_t received = 0;
    std::int64_t recovered = 0;
    std::int64_t retried = 0;
    std::int64_t decode_errors = 0;
    std::int64_t stale_results = 0;  // dead-image results drained meanwhile
    int retry_rounds = 0;
    // Published by the dispatcher under the node mutex once the last tile
    // has been transmitted; the deadline clock starts here.
    bool scatter_done = false;
    bool gather_done = false;
    Clock::time_point t0, t_partitioned, t_allocated, t_scattered;
    Clock::time_point deadline;  // valid once scatter_done
    Clock::time_point t_gathered;
    std::int64_t infer_begin_ns = -1;   // trace-relative span anchors
    std::int64_t gather_begin_ns = -1;
    std::int64_t root_span = 0;    // pre-allocated id of the "infer" span
    std::int64_t gather_span = 0;  // pre-allocated id of "gather_wait"
    double deadline_slack_s = 0.0;
    // Completion snapshots taken when the gather finished (Algorithm 2 and
    // quarantine state folded), so stats are consistent under streaming.
    std::vector<std::int64_t> missed;
    std::vector<bool> quarantined;
    std::vector<double> speeds;
  };

  /// Channels/links are owned by the cluster harness; `codec` null means
  /// Conv nodes send raw fp32 (must match the workers' configuration).
  CentralNode(core::PartitionedModel& model, const compress::TileCodec* codec,
              std::vector<Channel<TileTask>*> inboxes,
              Channel<TileResult>* results,
              std::vector<Transport*> downlinks, CentralConfig cfg);

  /// End-to-end inference for one image (1, C, H, W): partition, allocate,
  /// scatter, gather with deadline, zero-fill, run the suffix. Must not be
  /// called concurrently with a StreamingServer driving the same node.
  Tensor infer(const Tensor& image, InferStats* stats = nullptr);

  // --- Streaming stage API (see runtime/pipeline.hpp). Thread contract:
  // all begin_image() calls from one dispatcher thread, all pump_gather()
  // calls from one gather thread; infer() plays both roles itself.

  /// Partition + allocate + scatter one image and register it for result
  /// routing. Returns the image id (the routing key).
  std::int64_t begin_image(const Tensor& image);

  /// Batched variant: coalesce N same-shape (1,C,H,W) images into ONE
  /// in-flight job whose tiles tensor stacks every image's FDSP tiles
  /// image-major. Scatter/compute/gather then operate on the whole batch
  /// (one allocation pass, one deadline, one merged suffix forward), and
  /// finish_batch() demuxes per-image outputs. Bit-identical to N
  /// sequential begin_image() calls: tile contents are unchanged, the
  /// prefix runs per tile, and the batched suffix GEMMs accumulate
  /// per-sample in the same order as batch 1.
  std::int64_t begin_batch(const std::vector<Tensor>& images);

  /// Route pending results to their in-flight images, fire due retries and
  /// expire deadlines. Blocks until at least one image finishes its gather
  /// or `until` passes; finished jobs (Algorithm 2 folded, unregistered)
  /// are returned in completion order.
  std::vector<std::unique_ptr<ImageJob>> pump_gather(Clock::time_point until);

  /// Zero-fill accounting, tile merge and the central suffix for a
  /// gather-finished job; fills `stats` like infer() does. The job must
  /// hold a single image (batch == 1); batched jobs go to finish_batch().
  Tensor finish_image(std::unique_ptr<ImageJob> job,
                      InferStats* stats = nullptr);

  /// Batched finish: merge the gathered (batch*T, ...) tiles, run ONE
  /// batched suffix forward over the (batch, C', H', W') merged tensor,
  /// and slice the output back into one tensor per image (in begin_batch
  /// submission order). `stats` reports the whole batch as one entry
  /// (tiles_total = batch * T).
  std::vector<Tensor> finish_batch(std::unique_ptr<ImageJob> job,
                                   InferStats* stats = nullptr);

  /// Block until at least one image is in flight, `until` passes, or
  /// wake() is called. Returns true when in-flight work exists (lets a
  /// gather thread idle). May return false early — callers re-check their
  /// own stop condition and loop.
  bool wait_for_inflight(Clock::time_point until);

  /// Nudge a wait_for_inflight() caller to return and re-check its stop
  /// condition (used by a streaming server shutting its gather thread).
  void wake();

  /// Images begun but not yet returned by pump_gather().
  std::size_t in_flight() const;

  /// Liveness hint from a transport layer: a down node is quarantined
  /// immediately (excluded from Algorithm 3 allocation and from retry
  /// targeting) instead of waiting quarantine_after consecutive missed
  /// images. mark_node_up() lifts the hint (a returned tile, e.g. a
  /// recovery probe, also lifts it) — on reconnect the node rejoins
  /// allocation and its EMA rebuilds through the probe path.
  void mark_node_down(int k);
  void mark_node_up(int k);

  const core::StatsCollector& collector() const { return collector_; }

 private:
  /// Shared partition/allocate/scatter body: `stacked` is (batch, C, H, W)
  /// and becomes one in-flight job of batch * r * c tiles.
  std::int64_t begin_stacked(const Tensor& stacked, std::int64_t batch);
  /// `parent_span` is the causal parent of the downlink/retry span (the
  /// scatter span for primaries, gather_wait for retries).
  void send_tile(const ImageJob& job, std::int64_t t, int k,
                 std::int32_t attempt, std::int64_t parent_span);
  /// Fold one finished gather into Algorithm 2 + quarantine state and
  /// snapshot the results into the job. Caller holds mu_.
  void complete_gather_locked(ImageJob& job, Clock::time_point now);
  Clock::time_point retry_due(const ImageJob& job, int round) const;

  core::PartitionedModel& model_;
  const compress::TileCodec* codec_;
  std::vector<Channel<TileTask>*> inboxes_;
  Channel<TileResult>* results_;
  std::vector<Transport*> downlinks_;
  CentralConfig cfg_;
  core::StatsCollector collector_;
  Shape tile_out_shape_;

  /// Guards the scheduler state shared between the dispatcher and pump
  /// roles: image ids, Algorithm 2 speeds, quarantine flags, the in-flight
  /// registry and each job's scatter_done/deadline handoff.
  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;
  std::int64_t next_image_id_ = 0;
  std::map<std::int64_t, std::unique_ptr<ImageJob>> inflight_;
  std::vector<bool> quarantined_;
  std::vector<int> consecutive_missed_;
  /// Stale results drained while no owning image was in flight; attributed
  /// to the next image that completes (pump thread only).
  std::int64_t pending_stale_ = 0;

  // Cached instruments (null when no metrics sink is attached).
  struct CentralMetrics {
    obs::Counter* images = nullptr;
    obs::Counter* tiles_total = nullptr;
    obs::Counter* tiles_missing = nullptr;
    obs::Counter* retry_dispatched = nullptr;
    obs::Counter* retry_recovered = nullptr;
    obs::Counter* retry_rounds = nullptr;
    obs::Counter* decode_errors = nullptr;
    obs::Counter* stale_results = nullptr;
    obs::Counter* quarantine_events = nullptr;
    obs::Gauge* quarantine_active = nullptr;
    obs::Gauge* in_flight = nullptr;
    obs::Histogram* elapsed_s = nullptr;
    obs::Histogram* gather_s = nullptr;
    obs::QuantileHistogram* latency_q = nullptr;
    obs::QuantileHistogram* gather_q = nullptr;
    obs::Gauge* cp_coverage = nullptr;
    obs::Gauge* cp_total_s = nullptr;
    obs::Gauge* total_speed = nullptr;
    std::vector<obs::Gauge*> node_speed;
  } obs_;
};

}  // namespace adcnn::runtime
