// Blocking MPMC channel — the message-passing primitive connecting the
// Central node and Conv-node workers (an in-process analogue of MPI-style
// point-to-point sends). Closing wakes all receivers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace adcnn::runtime {

template <typename T>
class Channel {
 public:
  /// Telemetry: mirror the queue depth into `g` (and count enqueues into
  /// `sent`) on every send/receive. Null detaches. Attach before the
  /// channel is shared between threads.
  void attach_telemetry(obs::Gauge* depth, obs::Counter* sent = nullptr) {
    depth_gauge_ = depth;
    sent_counter_ = sent;
  }

  /// Enqueue; returns false if the channel is closed.
  bool send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
      if constexpr (obs::kEnabled) {
        if (depth_gauge_) depth_gauge_->add(1.0);
        if (sent_counter_) sent_counter_->add(1);
      }
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Block until an item, the deadline, or close. nullopt on timeout/close.
  std::optional<T> receive_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    return pop_locked();
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    if constexpr (obs::kEnabled) {
      if (depth_gauge_) depth_gauge_->add(-1.0);
    }
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* sent_counter_ = nullptr;
};

}  // namespace adcnn::runtime
