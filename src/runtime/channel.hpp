// Blocking MPMC channel — the message-passing primitive connecting the
// Central node and Conv-node workers (an in-process analogue of MPI-style
// point-to-point sends). Closing wakes all receivers.
//
// Capacity: a channel built with capacity > 0 is bounded — send() blocks
// while the queue is full (backpressure on the producer) and try_push()
// fails fast, counting the rejection, so a stalled consumer can never grow
// the queue without bound. The default (capacity 0) is unbounded and
// preserves the original behavior.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace adcnn::runtime {

template <typename T>
class Channel {
 public:
  Channel() = default;
  /// `capacity` 0 means unbounded.
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  /// Telemetry: mirror the queue depth into `depth` (and count enqueues
  /// into `sent`, try_push rejections into `dropped`, blocking sends that
  /// had to wait into `blocked`; `depth_q` records the post-enqueue depth
  /// distribution so queue pressure has quantiles, not just a spot value).
  /// Null detaches. Attach before the channel is shared between threads.
  void attach_telemetry(obs::Gauge* depth, obs::Counter* sent = nullptr,
                        obs::Counter* dropped = nullptr,
                        obs::Counter* blocked = nullptr,
                        obs::QuantileHistogram* depth_q = nullptr) {
    depth_gauge_ = depth;
    sent_counter_ = sent;
    dropped_counter_ = dropped;
    blocked_counter_ = blocked;
    depth_quantile_ = depth_q;
  }

  /// Enqueue; blocks while a bounded channel is full. Returns false if the
  /// channel is (or becomes, while waiting) closed.
  bool send(T value) {
    {
      std::unique_lock lock(mutex_);
      if (capacity_ > 0 && !closed_ && queue_.size() >= capacity_) {
        ++blocked_;
        if constexpr (obs::kEnabled) {
          if (blocked_counter_) blocked_counter_->add(1);
        }
        send_cv_.wait(lock, [&] {
          return closed_ || queue_.size() < capacity_;
        });
      }
      if (closed_) return false;
      push_locked(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Non-blocking enqueue: false when the channel is closed or full (a
  /// full rejection is counted as dropped — the caller is shedding load).
  bool try_push(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      if (capacity_ > 0 && queue_.size() >= capacity_) {
        ++dropped_;
        if constexpr (obs::kEnabled) {
          if (dropped_counter_) dropped_counter_->add(1);
        }
        return false;
      }
      push_locked(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Block until an item, the deadline, or close. nullopt on timeout/close.
  std::optional<T> receive_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    return pop_locked();
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    send_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// try_push rejections since construction.
  std::int64_t dropped() const {
    std::lock_guard lock(mutex_);
    return dropped_;
  }

  /// send() calls that had to wait for space since construction.
  std::int64_t blocked() const {
    std::lock_guard lock(mutex_);
    return blocked_;
  }

 private:
  void push_locked(T value) {
    queue_.push_back(std::move(value));
    if constexpr (obs::kEnabled) {
      if (depth_gauge_) depth_gauge_->add(1.0);
      if (sent_counter_) sent_counter_->add(1);
      if (depth_quantile_)
        depth_quantile_->observe(static_cast<double>(queue_.size()));
    }
  }

  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    if (capacity_ > 0) send_cv_.notify_one();
    if constexpr (obs::kEnabled) {
      if (depth_gauge_) depth_gauge_->add(-1.0);
    }
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;       // receivers wait here
  std::condition_variable send_cv_;  // bounded-channel senders wait here
  std::deque<T> queue_;
  std::size_t capacity_ = 0;  // 0 = unbounded
  bool closed_ = false;
  std::int64_t dropped_ = 0;
  std::int64_t blocked_ = 0;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* sent_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  obs::Counter* blocked_counter_ = nullptr;
  obs::QuantileHistogram* depth_quantile_ = nullptr;
};

}  // namespace adcnn::runtime
