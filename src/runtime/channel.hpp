// Blocking MPMC channel — the message-passing primitive connecting the
// Central node and Conv-node workers (an in-process analogue of MPI-style
// point-to-point sends). Closing wakes all receivers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace adcnn::runtime {

template <typename T>
class Channel {
 public:
  /// Enqueue; returns false if the channel is closed.
  bool send(T value) {
    {
      std::lock_guard lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the channel is closed and drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Block until an item, the deadline, or close. nullopt on timeout/close.
  std::optional<T> receive_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    cv_.wait_until(lock, deadline,
                   [&] { return !queue_.empty() || closed_; });
    return pop_locked();
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    return pop_locked();
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  std::optional<T> pop_locked() {
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace adcnn::runtime
