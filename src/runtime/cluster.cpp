#include "runtime/cluster.hpp"

#include <stdexcept>

#include "nn/optimize.hpp"

namespace adcnn::runtime {

EdgeCluster::EdgeCluster(core::PartitionedModel& model,
                         const ClusterConfig& cfg) {
  if (cfg.num_nodes < 1) {
    throw std::invalid_argument("EdgeCluster: need at least one Conv node");
  }
  if (!cfg.node_precision.empty() &&
      static_cast<int>(cfg.node_precision.size()) != cfg.num_nodes) {
    throw std::invalid_argument(
        "EdgeCluster: node_precision must be empty or have num_nodes "
        "entries");
  }
  const auto node_precision = [&](int k) {
    return cfg.node_precision.empty()
               ? cfg.precision
               : cfg.node_precision[static_cast<std::size_t>(k)];
  };
  bool any_int8 = cfg.precision == nn::Precision::kInt8;
  for (int k = 0; k < cfg.num_nodes; ++k) {
    any_int8 = any_int8 || node_precision(k) == nn::Precision::kInt8;
  }
  if (cfg.optimize_model || any_int8) {
    // Single-threaded here, before any worker exists: the packed panels
    // and folded weights become read-only shared state for the workers.
    // int8 needs the optimized graph so calibration sees the fused
    // clipped-ReLU bounds (and the eval-only caveats already apply).
    nn::optimize_for_inference(model.model);
  }
  if (any_int8) {
    if (cfg.int8_calibration.empty()) {
      throw std::invalid_argument(
          "EdgeCluster: int8 precision requires int8_calibration tensors "
          "(nn::prepare_int8 derives the activation grids from them)");
    }
    nn::prepare_int8(model.model, cfg.int8_calibration);
    model.precision = 1;
  }
  if (cfg.compress && model.clip_range <= 0.0f) {
    throw std::invalid_argument(
        "EdgeCluster: compression requires a clipped-ReLU range on the "
        "model (apply_fdsp with clipped_relu=true)");
  }
  if (cfg.compress) codec_.emplace(model.clip_range, model.bits);
  if (!cfg.fault_plan.trivial()) {
    faults_ = std::make_unique<FaultInjector>(cfg.fault_plan, cfg.telemetry);
  }

  // Resolve shared telemetry instruments once; links of one direction
  // aggregate into one counter pair, inbox channels into one depth gauge.
  obs::Counter* down_bytes = nullptr;
  obs::Counter* down_transfers = nullptr;
  obs::Counter* up_bytes = nullptr;
  obs::Counter* up_transfers = nullptr;
  obs::Gauge* inbox_depth = nullptr;
  obs::Counter* inbox_sent = nullptr;
  obs::Counter* inbox_dropped = nullptr;
  obs::Counter* inbox_blocked = nullptr;
  obs::QuantileHistogram* inbox_depth_q = nullptr;
  obs::Gauge* results_depth = nullptr;
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg.telemetry.metrics) {
      down_bytes = &m->counter("link.downlink_bytes");
      down_transfers = &m->counter("link.downlink_transfers");
      up_bytes = &m->counter("link.uplink_bytes");
      up_transfers = &m->counter("link.uplink_transfers");
      inbox_depth = &m->gauge("chan.inbox_depth");
      inbox_sent = &m->counter("chan.inbox_sent");
      inbox_dropped = &m->counter("chan.dropped");
      inbox_blocked = &m->counter("chan.blocked");
      // Queue-depth distribution in tiles: count-like range, coarse window.
      obs::QuantileHistogram::Config depth_cfg;
      depth_cfg.min_value = 0.5;
      depth_cfg.max_value = 1e6;
      inbox_depth_q = &m->quantile_histogram("chan.inbox_depth_q", depth_cfg);
      results_depth = &m->gauge("chan.results_depth");
      if (codec_) codec_->attach_telemetry(m);
    }
    if (cfg.telemetry.trace && cfg.telemetry.metrics) {
      cfg.telemetry.trace->attach_telemetry(
          &cfg.telemetry.metrics->counter("trace.dropped_spans"));
    }
  }
  results_.attach_telemetry(results_depth);

  std::vector<Channel<TileTask>*> inbox_ptrs;
  std::vector<Transport*> downlink_ptrs;
  for (int k = 0; k < cfg.num_nodes; ++k) {
    downlinks_.push_back(std::make_unique<SimulatedLink>(
        cfg.bandwidth_bps, cfg.latency_s, cfg.time_scale));
    uplinks_.push_back(std::make_unique<SimulatedLink>(
        cfg.bandwidth_bps, cfg.latency_s, cfg.time_scale));
    downlinks_.back()->attach_telemetry(down_bytes, down_transfers);
    uplinks_.back()->attach_telemetry(up_bytes, up_transfers);
    if (faults_) {
      downlinks_.back()->attach_faults(faults_.get(),
                                       FaultInjector::Direction::kDownlink, k);
      uplinks_.back()->attach_faults(faults_.get(),
                                     FaultInjector::Direction::kUplink, k);
    }
    inboxes_.push_back(std::make_unique<Channel<TileTask>>(cfg.inbox_capacity));
    inboxes_.back()->attach_telemetry(inbox_depth, inbox_sent, inbox_dropped,
                                      inbox_blocked, inbox_depth_q);
    inbox_ptrs.push_back(inboxes_.back().get());
    downlink_ptrs.push_back(downlinks_.back().get());
  }

  const compress::TileCodec* codec = codec_ ? &*codec_ : nullptr;
  for (int k = 0; k < cfg.num_nodes; ++k) {
    workers_.push_back(std::make_unique<ConvNodeWorker>(
        k, model, codec, *inboxes_[static_cast<std::size_t>(k)], results_,
        *uplinks_[static_cast<std::size_t>(k)], cfg.telemetry,
        faults_.get(), node_precision(k), cfg.node_batching));
  }

  CentralConfig central_cfg;
  central_cfg.deadline_s = cfg.deadline_s;
  central_cfg.gamma = cfg.gamma;
  central_cfg.initial_speed = cfg.initial_speed;
  central_cfg.capacity_tiles = cfg.capacity_tiles;
  central_cfg.probe_interval = cfg.probe_interval;
  central_cfg.retry = cfg.retry;
  central_cfg.quarantine_after = cfg.quarantine_after;
  central_cfg.critical_path_interval = cfg.critical_path_interval;
  central_cfg.telemetry = cfg.telemetry;
  central_ = std::make_unique<CentralNode>(model, codec, inbox_ptrs, &results_,
                                           downlink_ptrs, central_cfg);

  if constexpr (obs::kEnabled) {
    if (cfg.telemetry.metrics && cfg.exporter.period_s > 0.0 &&
        (!cfg.exporter.prometheus_path.empty() ||
         !cfg.exporter.jsonl_path.empty())) {
      exporter_ = std::make_unique<obs::TelemetryExporter>(
          *cfg.telemetry.metrics, cfg.exporter);
    }
  }
}

EdgeCluster::~EdgeCluster() {
  // The exporter stops first (final flush) while every instrument is still
  // alive and the counters have settled.
  exporter_.reset();
  // Mark workers dead first so they discard any backlog instead of
  // draining it (a throttled node may hold seconds of queued tiles).
  for (auto& worker : workers_) worker->kill();
  for (auto& inbox : inboxes_) inbox->close();
  results_.close();
  workers_.clear();  // joins threads
}

}  // namespace adcnn::runtime
