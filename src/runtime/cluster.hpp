// EdgeCluster: RAII harness wiring one Central node to N Conv-node worker
// threads over simulated links — the in-process realization of Figure 1(b).
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include <vector>

#include "nn/gemm.hpp"
#include "obs/exporter.hpp"
#include "obs/telemetry.hpp"
#include "runtime/central_node.hpp"
#include "runtime/conv_node.hpp"

namespace adcnn::runtime {

struct ClusterConfig {
  int num_nodes = 4;
  double bandwidth_bps = 87.72e6;  // the paper's WiFi measurement
  double latency_s = 0.0;
  /// Scales modelled link delays into real sleeps; 0 = functional mode
  /// (no sleeping), 1 = real time.
  double time_scale = 0.0;
  double deadline_s = 5.0;  // T_L
  double gamma = 0.9;
  double initial_speed = 1.0;
  std::int64_t capacity_tiles = std::numeric_limits<std::int64_t>::max();
  /// Recovery-probe period (see CentralConfig::probe_interval); 0 = off.
  int probe_interval = 8;
  /// Self-healing gather (see CentralConfig::retry).
  RetryPolicy retry;
  /// Circuit breaker (see CentralConfig::quarantine_after); 0 = off.
  int quarantine_after = 3;
  /// Bound on each Conv node's inbox queue (tiles awaiting compute).
  /// Scatter then blocks when a node's backlog hits the bound —
  /// backpressure toward the Central node instead of unbounded buffering
  /// on a stalled worker. 0 (default) = unbounded, the original behavior.
  std::size_t inbox_capacity = 0;
  /// Worker-side tile coalescing: queued same-shape tiles are stacked into
  /// one batched prefix forward per NodeBatchConfig (time-or-size
  /// triggered). Default max_batch 1 = tile-at-a-time, the original
  /// behavior. Batched outputs stay bit-identical per tile.
  NodeBatchConfig node_batching;
  /// Deterministic chaos script applied to links and workers; the default
  /// (trivial) plan injects nothing and allocates no injector.
  FaultPlan fault_plan;
  /// Apply the §4 compression pipeline (requires the model to carry a
  /// clipped-ReLU range); false sends raw fp32 intermediate results.
  bool compress = true;
  /// Run nn::optimize_for_inference on the model before serving: folds
  /// BatchNorm into conv weights, fuses ReLU/clipped-ReLU into GEMM
  /// epilogues and prepacks all weights (shared read-only across worker
  /// threads). Off by default because the optimized graph is eval-only —
  /// leave it off if the same Model object is retrained afterwards. BN
  /// folding shifts outputs by ~1e-6 relative; reference outputs computed
  /// from the same PartitionedModel after construction stay consistent.
  bool optimize_model = false;
  /// Compute precision for the Conv-node prefix (the Central node's suffix
  /// always runs fp32). kInt8 implies optimize_model and requires
  /// int8_calibration; the model is calibrated once (nn::prepare_int8)
  /// before any worker starts, then each worker thread opts into the
  /// quantized kernels via a ScopedInt8Compute scope.
  nn::Precision precision = nn::Precision::kFp32;
  /// Per-node override of `precision` (empty = uniform). Size must equal
  /// num_nodes; mixing lets a deployment keep weak devices on int8 while
  /// accurate nodes stay fp32 over the same shared model.
  std::vector<nn::Precision> node_precision;
  /// Calibration inputs for prepare_int8, full model input shape with the
  /// batch dim (e.g. {1, C, H, W}). Required when any node runs kInt8.
  std::vector<Tensor> int8_calibration;
  /// Telemetry sinks threaded through every component (Central node,
  /// workers, links, channels, codec). The pointed-to registry/recorder
  /// must outlive the cluster. Null sinks (default) record nothing.
  obs::Telemetry telemetry;
  /// Periodic critical-path export interval (see
  /// CentralConfig::critical_path_interval). 0 disables.
  int critical_path_interval = 16;
  /// Background telemetry exporter over `telemetry.metrics`. Started when
  /// a metrics sink is attached, period_s > 0 and at least one output path
  /// is set; stopped (with a final flush) in the cluster destructor.
  obs::ExporterConfig exporter;
};

class EdgeCluster {
 public:
  EdgeCluster(core::PartitionedModel& model, const ClusterConfig& cfg);
  ~EdgeCluster();

  EdgeCluster(const EdgeCluster&) = delete;
  EdgeCluster& operator=(const EdgeCluster&) = delete;

  Tensor infer(const Tensor& image, InferStats* stats = nullptr) {
    return central_->infer(image, stats);
  }

  int num_nodes() const { return static_cast<int>(workers_.size()); }
  ConvNodeWorker& node(int k) { return *workers_[checked(k, "node")]; }
  CentralNode& central() { return *central_; }
  SimulatedLink& downlink(int k) { return *downlinks_[checked(k, "downlink")]; }
  SimulatedLink& uplink(int k) { return *uplinks_[checked(k, "uplink")]; }
  /// Null unless the config carried a non-trivial FaultPlan.
  FaultInjector* faults() { return faults_.get(); }
  /// Null unless the config enabled the background exporter.
  obs::TelemetryExporter* exporter() { return exporter_.get(); }

 private:
  /// Bounds-check a node index; out-of-range k was silent UB before.
  std::size_t checked(int k, const char* what) const {
    if (k < 0 || k >= num_nodes()) {
      throw std::out_of_range("EdgeCluster::" + std::string(what) + "(" +
                              std::to_string(k) + "): cluster has " +
                              std::to_string(num_nodes()) + " nodes");
    }
    return static_cast<std::size_t>(k);
  }

  std::optional<compress::TileCodec> codec_;
  // Declared before the links/workers that hold raw pointers into it, so
  // it outlives them during destruction.
  std::unique_ptr<FaultInjector> faults_;
  std::vector<std::unique_ptr<SimulatedLink>> downlinks_;
  std::vector<std::unique_ptr<SimulatedLink>> uplinks_;
  std::vector<std::unique_ptr<Channel<TileTask>>> inboxes_;
  Channel<TileResult> results_;
  std::vector<std::unique_ptr<ConvNodeWorker>> workers_;
  std::unique_ptr<CentralNode> central_;
  std::unique_ptr<obs::TelemetryExporter> exporter_;
};

}  // namespace adcnn::runtime
