#include "runtime/conv_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <optional>
#include <vector>

namespace adcnn::runtime {

ConvNodeWorker::ConvNodeWorker(int id, core::PartitionedModel& model,
                               const compress::TileCodec* codec,
                               Channel<TileTask>& inbox,
                               Channel<TileResult>& outbox,
                               Transport& uplink, obs::Telemetry telemetry,
                               FaultInjector* faults, nn::Precision precision,
                               NodeBatchConfig batching)
    : id_(id), model_(model), codec_(codec), inbox_(inbox), outbox_(outbox),
      uplink_(uplink), telemetry_(telemetry), faults_(faults),
      precision_(precision), batching_(batching),
      thread_([this] { run(); }) {}

ConvNodeWorker::~ConvNodeWorker() {
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void ConvNodeWorker::process_group(std::vector<TileTask>& group, double limit,
                                   const NodeMetrics& m) {
  obs::TraceRecorder* tracer = telemetry_.trace;
  const int tid = id_ + 1;  // logical trace lane; 0 is the Central node
  const std::int64_t B = static_cast<std::int64_t>(group.size());
  if (B == 0) return;

  // A tile must never take the worker thread down: a corrupted payload
  // that makes decode/compute/encode throw abandons the group (counted),
  // and the Central node's retry/zero-fill covers the missing results.
  try {
    const auto start = std::chrono::steady_clock::now();

    if constexpr (obs::kEnabled) {
      if (tracer && m.queue_wait_q) {
        for (const TileTask& t : group) {
          if (t.enqueue_ns > 0) {
            m.queue_wait_q->observe(
                static_cast<double>(tracer->now_ns() - t.enqueue_ns) / 1e9);
          }
        }
      }
    }

    // A single-tile group (the unbatched default) keeps the classic causal
    // shape: the tile span wraps compute, parented under the downlink span
    // whose id rode the wire. A batched group's shared compute instead
    // parents directly under the first tile's downlink span — one forward
    // genuinely serves many tiles, so it cannot sit inside any one tile.
    std::optional<obs::ScopedSpan> single_span;
    if (B == 1) {
      single_span.emplace(tracer, "tile", "tile", tid, group.front().image_id,
                          group.front().tile_id, group.front().parent_span);
    }

    // Stack the group into one (B, C, th, tw) tensor and run a single
    // batched prefix forward — the conv engine parallelizes over the
    // batch dim, and per-sample GEMM accumulation keeps each tile's
    // output bit-identical to a one-at-a-time forward.
    obs::ScopedSpan compute_span(tracer, "conv_compute", "conv_compute", tid,
                                 group.front().image_id,
                                 B == 1 ? group.front().tile_id : -1,
                                 B == 1 ? obs::kInheritParent
                                        : group.front().parent_span);
    const Shape& s = group.front().shape;
    Tensor stacked(Shape{B, s[1], s[2], s[3]});
    const std::size_t per = group.front().payload.size();
    for (std::int64_t b = 0; b < B; ++b) {
      std::memcpy(reinterpret_cast<char*>(stacked.data()) +
                      static_cast<std::size_t>(b) * per,
                  group[static_cast<std::size_t>(b)].payload.data(), per);
    }
    Tensor out = model_.model.forward_range(stacked, model_.prefix_begin(),
                                            model_.prefix_end());
    compute_span.end();
    if constexpr (obs::kEnabled) {
      if (m.compute_hist) {
        const double compute_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        m.compute_hist->observe(compute_s);
        m.compute_q->observe(compute_s);
      }
      if (m.batch_q) m.batch_q->observe(static_cast<double>(B));
    }

    const std::int64_t oc = out.c(), oh = out.h(), ow = out.w();
    for (std::int64_t b = 0; b < B; ++b) {
      TileTask& task = group[static_cast<std::size_t>(b)];
      // Under batching each tile still gets its own span (parented under
      // its downlink span) covering the demux/encode/ship tail; in the
      // single-tile case `single_span` is already open and wraps the whole
      // task, so the compress/uplink children nest under it.
      std::optional<obs::ScopedSpan> tile_span;
      if (B > 1) {
        tile_span.emplace(tracer, "tile", "tile", tid, task.image_id,
                          task.tile_id, task.parent_span);
      }
      obs::ScopedSpan compress_span(tracer, "compress", "compress", tid,
                                    task.image_id, task.tile_id);
      TileResult result;
      result.image_id = task.image_id;
      result.tile_id = task.tile_id;
      result.node_id = id_;
      result.attempt = task.attempt;
      result.shape = Shape{1, oc, oh, ow};
      const Tensor one = B == 1 ? std::move(out) : out.crop(b, 1, 0, oh, 0, ow);
      result.payload =
          codec_ ? codec_->encode(one) : compress::encode_raw(one);
      compress_span.end();

      // Emulate a slower CPU: stretch this tile's share of the batched
      // compute phase (the group ran under the tightest limit present).
      if (limit < 1.0) {
        const auto elapsed =
            (std::chrono::steady_clock::now() - start) / B;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                elapsed * (1.0 / limit - 1.0)));
      }

      obs::ScopedSpan uplink_span(tracer, "uplink", "uplink", tid,
                                  task.image_id, task.tile_id);
      const auto fate =
          uplink_.transmit_message(result.wire_bytes(), task.image_id,
                                   task.tile_id, task.attempt,
                                   &result.payload);
      tiles_processed_.fetch_add(1);
      if constexpr (obs::kEnabled) {
        if (m.tiles) m.tiles->add(1);
      }
      if (!fate.drop) outbox_.send(std::move(result));
      uplink_span.end();
    }
  } catch (const std::exception&) {
    task_errors_.fetch_add(1);
    if constexpr (obs::kEnabled) {
      if (m.errors) m.errors->add(1);
    }
  }
}

void ConvNodeWorker::run() {
  // Thread-local opt-in: while this scope lives, every calibrated
  // conv/linear this thread forwards runs the quantized engine; fp32
  // workers sharing the same model never see it.
  std::optional<nn::ScopedInt8Compute> int8_scope;
  if (precision_ == nn::Precision::kInt8) int8_scope.emplace();

  NodeMetrics m;
  if constexpr (obs::kEnabled) {
    if (auto* reg = telemetry_.metrics) {
      m.tiles = &reg->counter("node.tiles_processed." + std::to_string(id_));
      m.errors = &reg->counter("node.task_errors");
      m.decode = &reg->counter("node.decode_errors");
      m.compute_hist = &reg->histogram("node.conv_compute_s");
      m.compute_q = &reg->quantile_histogram("node.compute_q");
      m.queue_wait_q = &reg->quantile_histogram("node.queue_wait_q");
      if (batching_.max_batch > 1)
        m.batch_q = &reg->quantile_histogram("node.batch_q");
    }
  }

  std::vector<TileTask> pending;
  while (true) {
    auto first = inbox_.receive();
    if (!first || first->shutdown) return;
    pending.clear();
    pending.push_back(std::move(*first));

    // Time-or-size coalescing: drain whatever is already queued, then wait
    // out the remainder of max_wait_us for stragglers — a lone tile ships
    // after one short wait, a burst fills the batch immediately.
    bool saw_shutdown = false;
    if (batching_.max_batch > 1) {
      const auto batch_deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(batching_.max_wait_us);
      while (static_cast<int>(pending.size()) < batching_.max_batch) {
        auto more = inbox_.try_receive();
        if (!more) more = inbox_.receive_until(batch_deadline);
        if (!more) break;  // timeout or closed: run what we have
        if (more->shutdown) {
          saw_shutdown = true;
          break;
        }
        pending.push_back(std::move(*more));
      }
    }

    // Per-task admission: manual kill()/set_cpu_limit() and the scripted
    // fault plan compose per (node, image) — a dead task is swallowed
    // silently without sinking its batchmates, and the group runs under
    // the tightest cpu limit any member carries.
    std::vector<TileTask> live;
    live.reserve(pending.size());
    double limit = cpu_limit_.load();
    const bool manual_dead = dead_.load();
    for (TileTask& task : pending) {
      bool task_dead = manual_dead;
      if (faults_) {
        const auto scripted = faults_->node_state(id_, task.image_id);
        task_dead = task_dead || scripted.dead;
        limit = std::min(limit, scripted.cpu_limit);
      }
      if (task_dead) continue;  // failed node: swallow work silently
      const std::size_t want =
          static_cast<std::size_t>(task.shape.numel()) * sizeof(float);
      if (task.payload.size() != want) {
        // A truncated/padded payload (downlink corruption) must be treated
        // as corrupt, not silently run on a partially-filled tensor. The
        // Central node's retry/zero-fill covers the missing result.
        decode_errors_.fetch_add(1);
        if constexpr (obs::kEnabled) {
          if (m.decode) m.decode->add(1);
        }
        continue;
      }
      live.push_back(std::move(task));
    }

    // Same-shape runs share one batched forward; a shape change splits the
    // group (preserving arrival order) since tiles of different geometry
    // cannot stack.
    std::size_t i = 0;
    while (i < live.size()) {
      std::size_t j = i + 1;
      while (j < live.size() && live[j].shape == live[i].shape) ++j;
      std::vector<TileTask> group(
          std::make_move_iterator(live.begin() + static_cast<std::ptrdiff_t>(i)),
          std::make_move_iterator(live.begin() + static_cast<std::ptrdiff_t>(j)));
      process_group(group, limit, m);
      i = j;
    }
    if (saw_shutdown) return;
  }
}

}  // namespace adcnn::runtime
