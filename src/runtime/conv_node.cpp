#include "runtime/conv_node.hpp"

#include <chrono>
#include <cstring>

namespace adcnn::runtime {

ConvNodeWorker::ConvNodeWorker(int id, core::PartitionedModel& model,
                               const compress::TileCodec* codec,
                               Channel<TileTask>& inbox,
                               Channel<TileResult>& outbox,
                               SimulatedLink& uplink)
    : id_(id), model_(model), codec_(codec), inbox_(inbox), outbox_(outbox),
      uplink_(uplink), thread_([this] { run(); }) {}

ConvNodeWorker::~ConvNodeWorker() {
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void ConvNodeWorker::run() {
  while (true) {
    auto task = inbox_.receive();
    if (!task || task->shutdown) return;
    if (dead_.load()) continue;  // failed node: swallow work silently

    const auto start = std::chrono::steady_clock::now();

    // Decode the raw fp32 tile.
    Tensor tile(task->shape);
    std::memcpy(tile.data(), task->payload.data(),
                std::min(task->payload.size(),
                         static_cast<std::size_t>(tile.numel()) *
                             sizeof(float)));

    // Run the separable prefix (includes clipped ReLU / fake-quant layers).
    Tensor out = model_.model.forward_range(tile, model_.prefix_begin(),
                                            model_.prefix_end());

    TileResult result;
    result.image_id = task->image_id;
    result.tile_id = task->tile_id;
    result.node_id = id_;
    result.shape = out.shape();
    result.payload = codec_ ? codec_->encode(out) : compress::encode_raw(out);

    // Emulate a slower CPU: stretch the compute phase.
    const double limit = cpu_limit_.load();
    if (limit < 1.0) {
      const auto elapsed = std::chrono::steady_clock::now() - start;
      std::this_thread::sleep_for(
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              elapsed * (1.0 / limit - 1.0)));
    }

    uplink_.transmit(result.wire_bytes());
    tiles_processed_.fetch_add(1);
    outbox_.send(std::move(result));
  }
}

}  // namespace adcnn::runtime
