#include "runtime/conv_node.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <optional>

namespace adcnn::runtime {

ConvNodeWorker::ConvNodeWorker(int id, core::PartitionedModel& model,
                               const compress::TileCodec* codec,
                               Channel<TileTask>& inbox,
                               Channel<TileResult>& outbox,
                               Transport& uplink, obs::Telemetry telemetry,
                               FaultInjector* faults, nn::Precision precision)
    : id_(id), model_(model), codec_(codec), inbox_(inbox), outbox_(outbox),
      uplink_(uplink), telemetry_(telemetry), faults_(faults),
      precision_(precision), thread_([this] { run(); }) {}

ConvNodeWorker::~ConvNodeWorker() {
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void ConvNodeWorker::run() {
  // Thread-local opt-in: while this scope lives, every calibrated
  // conv/linear this thread forwards runs the quantized engine; fp32
  // workers sharing the same model never see it.
  std::optional<nn::ScopedInt8Compute> int8_scope;
  if (precision_ == nn::Precision::kInt8) int8_scope.emplace();

  const int tid = id_ + 1;  // logical trace lane; 0 is the Central node
  obs::TraceRecorder* tracer = telemetry_.trace;
  obs::Counter* tiles_counter = nullptr;
  obs::Counter* errors_counter = nullptr;
  obs::Counter* decode_counter = nullptr;
  obs::Histogram* compute_hist = nullptr;
  obs::QuantileHistogram* compute_q = nullptr;
  obs::QuantileHistogram* queue_wait_q = nullptr;
  if constexpr (obs::kEnabled) {
    if (auto* m = telemetry_.metrics) {
      tiles_counter =
          &m->counter("node.tiles_processed." + std::to_string(id_));
      errors_counter = &m->counter("node.task_errors");
      decode_counter = &m->counter("node.decode_errors");
      compute_hist = &m->histogram("node.conv_compute_s");
      compute_q = &m->quantile_histogram("node.compute_q");
      queue_wait_q = &m->quantile_histogram("node.queue_wait_q");
    }
  }

  while (true) {
    auto task = inbox_.receive();
    if (!task || task->shutdown) return;

    // Manual kill()/set_cpu_limit() and the scripted fault plan compose:
    // the node is dead if either says so, throttled to the tighter limit.
    bool dead = dead_.load();
    double limit = cpu_limit_.load();
    if (faults_) {
      const auto scripted = faults_->node_state(id_, task->image_id);
      dead = dead || scripted.dead;
      limit = std::min(limit, scripted.cpu_limit);
    }
    if (dead) continue;  // failed node: swallow work silently

    // A tile must never take the worker thread down: a corrupted payload
    // that makes decode/compute/encode throw is abandoned (counted), and
    // the Central node's retry/zero-fill covers the missing result.
    try {
      // The tile span parents under the downlink span whose id rode the
      // wire, stitching this thread's chain into the image's causal tree.
      obs::ScopedSpan tile_span(tracer, "tile", "tile", tid, task->image_id,
                                task->tile_id, task->parent_span);
      if constexpr (obs::kEnabled) {
        if (queue_wait_q && tracer && task->enqueue_ns > 0) {
          queue_wait_q->observe(
              static_cast<double>(tracer->now_ns() - task->enqueue_ns) / 1e9);
        }
      }
      const auto start = std::chrono::steady_clock::now();

      // Decode the raw fp32 tile and run the separable prefix (includes
      // clipped ReLU / fake-quant layers).
      obs::ScopedSpan compute_span(tracer, "conv_compute", "conv_compute",
                                   tid, task->image_id, task->tile_id);
      Tensor tile(task->shape);
      const std::size_t want =
          static_cast<std::size_t>(tile.numel()) * sizeof(float);
      if (task->payload.size() != want) {
        // A truncated/padded payload (downlink corruption) must be treated
        // as corrupt, not silently run on a partially-filled tensor. The
        // Central node's retry/zero-fill covers the missing result.
        decode_errors_.fetch_add(1);
        if constexpr (obs::kEnabled) {
          if (decode_counter) decode_counter->add(1);
        }
        continue;
      }
      std::memcpy(tile.data(), task->payload.data(), want);
      Tensor out = model_.model.forward_range(tile, model_.prefix_begin(),
                                              model_.prefix_end());
      compute_span.end();
      if constexpr (obs::kEnabled) {
        if (compute_hist) {
          const double compute_s =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
          compute_hist->observe(compute_s);
          compute_q->observe(compute_s);
        }
      }

      obs::ScopedSpan compress_span(tracer, "compress", "compress", tid,
                                    task->image_id, task->tile_id);
      TileResult result;
      result.image_id = task->image_id;
      result.tile_id = task->tile_id;
      result.node_id = id_;
      result.attempt = task->attempt;
      result.shape = out.shape();
      result.payload =
          codec_ ? codec_->encode(out) : compress::encode_raw(out);
      compress_span.end();

      // Emulate a slower CPU: stretch the compute phase.
      if (limit < 1.0) {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                elapsed * (1.0 / limit - 1.0)));
      }

      obs::ScopedSpan uplink_span(tracer, "uplink", "uplink", tid,
                                  task->image_id, task->tile_id);
      const auto fate =
          uplink_.transmit_message(result.wire_bytes(), task->image_id,
                                   task->tile_id, task->attempt,
                                   &result.payload);
      tiles_processed_.fetch_add(1);
      if constexpr (obs::kEnabled) {
        if (tiles_counter) tiles_counter->add(1);
      }
      if (!fate.drop) outbox_.send(std::move(result));
      uplink_span.end();
    } catch (const std::exception&) {
      task_errors_.fetch_add(1);
      if constexpr (obs::kEnabled) {
        if (errors_counter) errors_counter->add(1);
      }
    }
  }
}

}  // namespace adcnn::runtime
