// Conv-node worker: receives input tiles, runs the separable prefix,
// compresses the result and ships it to the Central node (steps 2-3 of
// Figure 8). One worker per simulated edge device; each runs on its own
// thread and shares the (eval-mode, read-only) partitioned model.
#pragma once

#include <atomic>
#include <thread>

#include "compress/pipeline.hpp"
#include "core/fdsp.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "runtime/channel.hpp"
#include "runtime/faults.hpp"
#include "runtime/link.hpp"
#include "runtime/message.hpp"

namespace adcnn::runtime {

/// Time-or-size batch coalescing of a worker's inbox: after the first tile
/// arrives, up to max_batch - 1 more tiles are drained (waiting at most
/// max_wait_us for stragglers) and same-shape runs are stacked into ONE
/// batched prefix forward — the conv engine parallelizes over the batch
/// dim, so queued tiles ride a single packed-GEMM pass instead of paying
/// per-call dispatch each. max_batch <= 1 keeps the original
/// tile-at-a-time behavior. Outputs are encoded and shipped per tile, so
/// the wire protocol and the Central gather are unchanged, and per-sample
/// GEMM accumulation keeps batched results bit-identical to unbatched.
struct NodeBatchConfig {
  int max_batch = 1;
  std::int64_t max_wait_us = 200;
};

class ConvNodeWorker {
 public:
  /// `model` must outlive the worker; its prefix range is executed in eval
  /// mode only (thread-safe, see nn/model.hpp). `codec` may be null to
  /// send raw fp32 results (the "without pruning" baseline of Fig. 12).
  /// `telemetry` sinks (null by default) must outlive the worker; spans
  /// are emitted with logical tid = id + 1 (0 is the Central node).
  /// `faults` (optional, must outlive the worker) scripts crash/stall
  /// windows by image id on top of the manual kill()/set_cpu_limit() knobs.
  /// `precision` kInt8 runs the prefix through the quantized conv engine
  /// (the model must have been calibrated with nn::prepare_int8 first);
  /// the scope is this worker's thread only, so nodes of both precisions
  /// can share one model.
  /// `batching` coalesces queued same-shape tiles into batched prefix
  /// forwards (see NodeBatchConfig); the default is unbatched.
  ConvNodeWorker(int id, core::PartitionedModel& model,
                 const compress::TileCodec* codec, Channel<TileTask>& inbox,
                 Channel<TileResult>& outbox, Transport& uplink,
                 obs::Telemetry telemetry = {},
                 FaultInjector* faults = nullptr,
                 nn::Precision precision = nn::Precision::kFp32,
                 NodeBatchConfig batching = {});
  ~ConvNodeWorker();

  ConvNodeWorker(const ConvNodeWorker&) = delete;
  ConvNodeWorker& operator=(const ConvNodeWorker&) = delete;

  int id() const { return id_; }
  nn::Precision precision() const { return precision_; }
  std::int64_t tiles_processed() const { return tiles_processed_.load(); }
  /// Tiles abandoned because processing threw (e.g. a corrupted input
  /// payload); the Central node's retry/zero-fill covers the gap.
  std::int64_t task_errors() const { return task_errors_.load(); }

  /// Tasks rejected before compute because the payload size did not match
  /// the declared tile shape (also counted under the `node.decode_errors`
  /// metric). Running such a tile would silently compute on a
  /// partially-filled tensor.
  std::int64_t decode_errors() const { return decode_errors_.load(); }

  /// Artificial CPU throttle in (0, 1]; 1 = full speed. Emulates the
  /// paper's CPUlimit-based degradation (Fig. 15) by sleeping
  /// (1/limit - 1) x compute-time after each tile.
  void set_cpu_limit(double limit) { cpu_limit_.store(limit); }

  /// Stop accepting work even before the inbox closes (node failure).
  void kill() { dead_.store(true); }

  /// Undo kill(): the node starts serving tiles again. Algorithm 2 only
  /// learns about the recovery once a probe tile reaches it (see
  /// CentralConfig::probe_interval).
  void revive() { dead_.store(false); }

 private:
  void run();
  /// Instruments cached once by run(); batching needs them across helper
  /// calls.
  struct NodeMetrics {
    obs::Counter* tiles = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* decode = nullptr;
    obs::Histogram* compute_hist = nullptr;
    obs::QuantileHistogram* compute_q = nullptr;
    obs::QuantileHistogram* queue_wait_q = nullptr;
    obs::QuantileHistogram* batch_q = nullptr;
  };
  /// Run one same-shape group of live tiles through a single batched
  /// prefix forward and ship each result.
  void process_group(std::vector<TileTask>& group, double limit,
                     const NodeMetrics& m);

  int id_;
  core::PartitionedModel& model_;
  const compress::TileCodec* codec_;
  Channel<TileTask>& inbox_;
  Channel<TileResult>& outbox_;
  Transport& uplink_;
  obs::Telemetry telemetry_;
  FaultInjector* faults_;
  nn::Precision precision_;
  NodeBatchConfig batching_;
  std::atomic<double> cpu_limit_{1.0};
  std::atomic<bool> dead_{false};
  std::atomic<std::int64_t> tiles_processed_{0};
  std::atomic<std::int64_t> task_errors_{0};
  std::atomic<std::int64_t> decode_errors_{0};
  std::thread thread_;
};

}  // namespace adcnn::runtime
