#include "runtime/faults.hpp"

#include <algorithm>

#include "tensor/rng.hpp"

namespace adcnn::runtime {

namespace {

// Decision salts: independent streams for each fault kind over the same
// message key.
constexpr std::uint64_t kSaltDrop = 0xD409;
constexpr std::uint64_t kSaltCorrupt = 0xC043;
constexpr std::uint64_t kSaltDelay = 0xDE1A;
constexpr std::uint64_t kSaltMangle = 0x3A47;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t decision_hash(std::uint64_t seed, std::uint64_t salt,
                            FaultInjector::Direction dir, int node,
                            std::int64_t image_id, std::int64_t tile_id,
                            std::int32_t attempt) {
  std::uint64_t h = seed;
  h = mix(h, salt);
  h = mix(h, static_cast<std::uint64_t>(dir));
  h = mix(h, static_cast<std::uint64_t>(node));
  h = mix(h, static_cast<std::uint64_t>(image_id));
  h = mix(h, static_cast<std::uint64_t>(tile_id));
  h = mix(h, static_cast<std::uint64_t>(attempt));
  return splitmix64(h);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool FaultPlan::trivial() const {
  const auto quiet_links = [](const std::vector<LinkFaultSpec>& links) {
    return std::all_of(links.begin(), links.end(),
                       [](const LinkFaultSpec& s) { return s.quiet(); });
  };
  return quiet_links(downlink) && quiet_links(uplink) &&
         std::all_of(nodes.begin(), nodes.end(),
                     [](const NodeFaultSpec& s) { return s.quiet(); });
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Telemetry telemetry)
    : plan_(std::move(plan)) {
  if constexpr (obs::kEnabled) {
    if (auto* m = telemetry.metrics) {
      obs_.dropped = &m->counter("faults.dropped");
      obs_.corrupted = &m->counter("faults.corrupted");
      obs_.delayed = &m->counter("faults.delayed");
    }
  }
}

const LinkFaultSpec* FaultInjector::link_spec(Direction dir, int node) const {
  const auto& specs =
      dir == Direction::kDownlink ? plan_.downlink : plan_.uplink;
  if (node < 0 || static_cast<std::size_t>(node) >= specs.size()) return nullptr;
  return &specs[static_cast<std::size_t>(node)];
}

double FaultInjector::draw(std::uint64_t salt, Direction dir, int node,
                           std::int64_t image_id, std::int64_t tile_id,
                           std::int32_t attempt) const {
  return to_unit(
      decision_hash(plan_.seed, salt, dir, node, image_id, tile_id, attempt));
}

FaultInjector::LinkFate FaultInjector::link_fate(Direction dir, int node,
                                                 std::int64_t image_id,
                                                 std::int64_t tile_id,
                                                 std::int32_t attempt) {
  LinkFate fate;
  const LinkFaultSpec* spec = link_spec(dir, node);
  if (!spec || spec->quiet()) return fate;
  fate.drop = spec->drop_prob > 0.0 &&
              draw(kSaltDrop, dir, node, image_id, tile_id, attempt) <
                  spec->drop_prob;
  fate.corrupt = !fate.drop && spec->corrupt_prob > 0.0 &&
                 draw(kSaltCorrupt, dir, node, image_id, tile_id, attempt) <
                     spec->corrupt_prob;
  if (spec->delay_prob > 0.0 && spec->delay_s > 0.0 &&
      draw(kSaltDelay, dir, node, image_id, tile_id, attempt) <
          spec->delay_prob) {
    fate.delay_s = spec->delay_s;
  }
  if (fate.drop) ++dropped_;
  if (fate.corrupt) ++corrupted_;
  if (fate.delay_s > 0.0) ++delayed_;
  if constexpr (obs::kEnabled) {
    if (obs_.dropped) {
      if (fate.drop) obs_.dropped->add(1);
      if (fate.corrupt) obs_.corrupted->add(1);
      if (fate.delay_s > 0.0) obs_.delayed->add(1);
    }
  }
  return fate;
}

FaultInjector::NodeState FaultInjector::node_state(int node,
                                                   std::int64_t image_id) const {
  NodeState state;
  if (node < 0 || static_cast<std::size_t>(node) >= plan_.nodes.size()) {
    return state;
  }
  const NodeFaultSpec& spec = plan_.nodes[static_cast<std::size_t>(node)];
  state.dead = spec.crash_at_image >= 0 && image_id >= spec.crash_at_image &&
               (spec.recover_at_image < 0 || image_id < spec.recover_at_image);
  if (spec.stall_at_image >= 0 && image_id >= spec.stall_at_image &&
      (spec.stall_until_image < 0 || image_id < spec.stall_until_image)) {
    state.cpu_limit = spec.stall_cpu_limit;
  }
  return state;
}

void FaultInjector::corrupt_payload(std::vector<std::uint8_t>& payload,
                                    Direction dir, int node,
                                    std::int64_t image_id,
                                    std::int64_t tile_id,
                                    std::int32_t attempt) const {
  if (payload.empty()) return;
  const std::uint64_t h = decision_hash(plan_.seed, kSaltMangle, dir, node,
                                        image_id, tile_id, attempt);
  // Shorten the payload so every length-checked decode path (raw fp32 size
  // match, codec payload bound) rejects it, and flip the first byte so a
  // leading varint header is mangled too.
  payload.resize(payload.size() - 1 - h % (payload.size() / 3 + 1));
  if (!payload.empty()) {
    payload[0] ^= static_cast<std::uint8_t>(0x80 | ((h >> 8) & 0x7F));
  }
}

}  // namespace adcnn::runtime
