// Deterministic, seed-driven fault injection for the threaded runtime.
//
// A FaultPlan scripts per-link message drop/corruption/extra-delay
// probabilities and per-node crash/stall/recover schedules keyed by image
// id, so a test or example can declare "node 2 dies at image 10, uplink 1
// drops 30% of results" in one struct. The FaultInjector turns the plan
// into per-message decisions that depend only on
// (seed, direction, node, image_id, tile_id, attempt) — a stateless hash,
// never a shared RNG stream — so a seeded chaos run is bit-deterministic
// regardless of thread scheduling. Re-dispatched tiles carry a new attempt
// number and therefore draw an independent decision, modelling independent
// transmission trials over the same lossy link.
//
// Hook points: SimulatedLink::transmit_message consults the injector for
// link fates, ConvNodeWorker consults node_state for scripted crash/stall
// windows, and EdgeCluster wires one injector through the whole harness
// (ClusterConfig::fault_plan).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace adcnn::runtime {

/// Per-direction message faults on one node's link. Probabilities are
/// evaluated independently per (image, tile, attempt) message.
struct LinkFaultSpec {
  double drop_prob = 0.0;     // message vanishes in transit
  double corrupt_prob = 0.0;  // payload mangled (truncated + header flip)
  double delay_prob = 0.0;    // message stalled by delay_s
  /// Wall-clock seconds a delayed message is held back, applied as a real
  /// sleep even in functional mode (time_scale = 0): an injected stall is
  /// a fault, not part of the bandwidth model.
  double delay_s = 0.0;

  bool quiet() const {
    return drop_prob <= 0.0 && corrupt_prob <= 0.0 &&
           (delay_prob <= 0.0 || delay_s <= 0.0);
  }
};

/// Scripted lifecycle of one Conv node, keyed by image id. A node is dead
/// for image ids in [crash_at_image, recover_at_image) and throttled to
/// stall_cpu_limit for ids in [stall_at_image, stall_until_image); -1
/// bounds mean "never" (crash/stall) or "forever" (recover/until).
struct NodeFaultSpec {
  std::int64_t crash_at_image = -1;
  std::int64_t recover_at_image = -1;
  std::int64_t stall_at_image = -1;
  std::int64_t stall_until_image = -1;
  double stall_cpu_limit = 1.0;

  bool quiet() const { return crash_at_image < 0 && stall_at_image < 0; }
};

/// One struct declaring every fault in a chaos run. Vectors are indexed by
/// node id; nodes beyond a vector's size have no faults of that kind.
struct FaultPlan {
  std::uint64_t seed = 0x5EED;
  std::vector<LinkFaultSpec> downlink;  // Central -> node k input tiles
  std::vector<LinkFaultSpec> uplink;    // node k -> Central results
  std::vector<NodeFaultSpec> nodes;

  /// True when the plan injects nothing (the default), so the cluster can
  /// skip creating an injector entirely.
  bool trivial() const;
};

class FaultInjector {
 public:
  enum class Direction { kDownlink = 0, kUplink = 1 };

  /// Fate of one message; drop and corrupt are mutually exclusive (a
  /// dropped message never reaches a decoder).
  struct LinkFate {
    bool drop = false;
    bool corrupt = false;
    double delay_s = 0.0;
  };

  /// Scripted node condition while serving one image.
  struct NodeState {
    bool dead = false;
    double cpu_limit = 1.0;
  };

  explicit FaultInjector(FaultPlan plan, obs::Telemetry telemetry = {});

  /// Decide one message's fate. Pure in the plan seed and the message key;
  /// the only side effect is fault accounting (counters/metrics).
  LinkFate link_fate(Direction dir, int node, std::int64_t image_id,
                     std::int64_t tile_id, std::int32_t attempt);

  NodeState node_state(int node, std::int64_t image_id) const;

  /// Deterministically mangle a payload for a corrupt fate: truncate it
  /// (guaranteeing any length-checked decode rejects it) and flip a header
  /// byte. Keyed the same way as the fate decision.
  void corrupt_payload(std::vector<std::uint8_t>& payload, Direction dir,
                       int node, std::int64_t image_id, std::int64_t tile_id,
                       std::int32_t attempt) const;

  const FaultPlan& plan() const { return plan_; }
  std::int64_t dropped() const { return dropped_.load(); }
  std::int64_t corrupted() const { return corrupted_.load(); }
  std::int64_t delayed() const { return delayed_.load(); }

 private:
  const LinkFaultSpec* link_spec(Direction dir, int node) const;
  /// Uniform [0, 1) draw keyed by (seed, salt, dir, node, image, tile,
  /// attempt) — stateless, so concurrent callers cannot perturb it.
  double draw(std::uint64_t salt, Direction dir, int node,
              std::int64_t image_id, std::int64_t tile_id,
              std::int32_t attempt) const;

  FaultPlan plan_;
  std::atomic<std::int64_t> dropped_{0};
  std::atomic<std::int64_t> corrupted_{0};
  std::atomic<std::int64_t> delayed_{0};
  struct FaultMetrics {
    obs::Counter* dropped = nullptr;
    obs::Counter* corrupted = nullptr;
    obs::Counter* delayed = nullptr;
  } obs_;
};

}  // namespace adcnn::runtime
