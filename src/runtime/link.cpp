#include "runtime/link.hpp"

#include <chrono>
#include <thread>

namespace adcnn::runtime {

void SimulatedLink::transmit(std::size_t bytes) {
  bytes_sent_ += bytes;
  ++transfers_;
  if constexpr (obs::kEnabled) {
    if (obs_bytes_) obs_bytes_->add(static_cast<std::int64_t>(bytes));
    if (obs_transfers_) obs_transfers_->add(1);
  }
  if (time_scale_ <= 0.0) return;
  const double seconds = transfer_seconds(bytes) * time_scale_;
  std::lock_guard lock(busy_);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

FaultInjector::LinkFate SimulatedLink::transmit_message(
    std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
    std::int32_t attempt, std::vector<std::uint8_t>* payload) {
  FaultInjector::LinkFate fate;
  if (faults_) {
    fate = faults_->link_fate(fault_dir_, fault_node_, image_id, tile_id,
                              attempt);
  }
  transmit(bytes);
  if (fate.corrupt && payload) {
    faults_->corrupt_payload(*payload, fault_dir_, fault_node_, image_id,
                             tile_id, attempt);
  }
  if (fate.delay_s > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(fate.delay_s));
  }
  return fate;
}

}  // namespace adcnn::runtime
