#include "runtime/link.hpp"

#include <chrono>
#include <thread>

namespace adcnn::runtime {

void SimulatedLink::transmit(std::size_t bytes) {
  bytes_sent_ += bytes;
  ++transfers_;
  if constexpr (obs::kEnabled) {
    if (obs_bytes_) obs_bytes_->add(static_cast<std::int64_t>(bytes));
    if (obs_transfers_) obs_transfers_->add(1);
  }
  if (time_scale_ <= 0.0) return;
  const double seconds = transfer_seconds(bytes) * time_scale_;
  std::lock_guard lock(busy_);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace adcnn::runtime
