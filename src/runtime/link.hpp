// Bandwidth/latency-modelled point-to-point link for the threaded runtime.
//
// transmit(bytes) blocks the sender for latency + bytes/bandwidth (scaled
// by time_scale; 0 disables sleeping so functional tests run at full
// speed) and serializes concurrent transfers, like a half-duplex radio.
// Byte counters feed the communication-overhead measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

namespace adcnn::runtime {

class SimulatedLink {
 public:
  SimulatedLink(double bandwidth_bps, double latency_s,
                double time_scale = 0.0)
      : bandwidth_bps_(bandwidth_bps), latency_s_(latency_s),
        time_scale_(time_scale) {}

  /// Block for the modelled transfer duration and account the bytes.
  void transmit(std::size_t bytes);

  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t transfers() const { return transfers_.load(); }

  /// Telemetry: also account bytes/transfers into registry counters (may
  /// be shared by several links, e.g. one pair per direction). Null
  /// detaches. Attach before the link carries concurrent traffic.
  void attach_telemetry(obs::Counter* bytes, obs::Counter* transfers) {
    obs_bytes_ = bytes;
    obs_transfers_ = transfers;
  }

  /// Modelled (unscaled) seconds a transfer of `bytes` takes.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s_ + static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

 private:
  double bandwidth_bps_;
  double latency_s_;
  double time_scale_;
  std::mutex busy_;  // one transfer at a time
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> transfers_{0};
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_transfers_ = nullptr;
};

}  // namespace adcnn::runtime
