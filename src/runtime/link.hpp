// Message transports between the Central node and Conv nodes.
//
// Transport is the abstract per-(direction, node) carrier the runtime talks
// to: transmit_message() accounts one message's bytes and consults the
// fault injector for its fate. SimulatedLink is the in-process
// implementation (bandwidth/latency model with real sleeps); net::SocketLink
// implements the same interface over a TCP/Unix-domain connection, so fault
// injection and byte telemetry work identically on both.
//
// transmit(bytes) blocks the sender for latency + bytes/bandwidth (scaled
// by time_scale; 0 disables sleeping so functional tests run at full
// speed) and serializes concurrent transfers, like a half-duplex radio.
// Byte counters feed the communication-overhead measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/faults.hpp"

namespace adcnn::runtime {

/// Abstract one-direction message carrier toward (or from) one Conv node.
///
/// Thread contract for the attach hooks: both must run before the transport
/// carries any traffic (implementations throw std::logic_error otherwise) —
/// the injector/counter pointers are read without synchronization on the
/// transmit path, so a concurrent attach would be a data race.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Account one runtime message and decide its fate. Byte accounting
  /// happens regardless of the fate (a lost packet still occupied the
  /// medium); a corrupt fate mangles `payload` in place when it is
  /// non-null; a drop fate is returned for the caller to honour (the
  /// transport only carries bytes — the message object stays with the
  /// sender).
  virtual FaultInjector::LinkFate transmit_message(
      std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
      std::int32_t attempt, std::vector<std::uint8_t>* payload = nullptr) = 0;

  /// Fault injection: subsequent transmit_message() calls consult the
  /// injector for this (direction, node) endpoint. Null detaches.
  virtual void attach_faults(FaultInjector* injector,
                             FaultInjector::Direction dir, int node) = 0;

  /// Telemetry: also account bytes/transfers into registry counters (may
  /// be shared by several transports, e.g. one pair per direction). Null
  /// detaches.
  virtual void attach_telemetry(obs::Counter* bytes,
                                obs::Counter* transfers) = 0;

  virtual std::uint64_t bytes_sent() const = 0;
  virtual std::uint64_t transfers() const = 0;
};

class SimulatedLink : public Transport {
 public:
  SimulatedLink(double bandwidth_bps, double latency_s,
                double time_scale = 0.0)
      : bandwidth_bps_(bandwidth_bps), latency_s_(latency_s),
        time_scale_(time_scale) {}

  /// Block for the modelled transfer duration and account the bytes.
  void transmit(std::size_t bytes);

  void attach_faults(FaultInjector* injector, FaultInjector::Direction dir,
                     int node) override {
    check_quiescent("attach_faults");
    faults_ = injector;
    fault_dir_ = dir;
    fault_node_ = node;
  }

  /// transmit() plus fault injection for one runtime message. An injected
  /// delay is a real wall-clock sleep on top of the modelled transfer.
  FaultInjector::LinkFate transmit_message(
      std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
      std::int32_t attempt, std::vector<std::uint8_t>* payload = nullptr)
      override;

  std::uint64_t bytes_sent() const override { return bytes_sent_.load(); }
  std::uint64_t transfers() const override { return transfers_.load(); }

  void attach_telemetry(obs::Counter* bytes, obs::Counter* transfers) override {
    check_quiescent("attach_telemetry");
    obs_bytes_ = bytes;
    obs_transfers_ = transfers;
  }

  /// Modelled (unscaled) seconds a transfer of `bytes` takes.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s_ + static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

 private:
  /// Attaching after the link carried traffic was a silent data race (the
  /// transmit path reads the hook pointers unsynchronized); make the
  /// footgun loud instead.
  void check_quiescent(const char* what) const {
    if (transfers_.load() != 0) {
      throw std::logic_error(std::string("SimulatedLink::") + what +
                             ": attach after the link carried traffic "
                             "(attach hooks before first transmit)");
    }
  }

  double bandwidth_bps_;
  double latency_s_;
  double time_scale_;
  std::mutex busy_;  // one transfer at a time
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> transfers_{0};
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_transfers_ = nullptr;
  FaultInjector* faults_ = nullptr;
  FaultInjector::Direction fault_dir_ = FaultInjector::Direction::kDownlink;
  int fault_node_ = -1;
};

}  // namespace adcnn::runtime
