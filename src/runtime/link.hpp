// Bandwidth/latency-modelled point-to-point link for the threaded runtime.
//
// transmit(bytes) blocks the sender for latency + bytes/bandwidth (scaled
// by time_scale; 0 disables sleeping so functional tests run at full
// speed) and serializes concurrent transfers, like a half-duplex radio.
// Byte counters feed the communication-overhead measurements.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/faults.hpp"

namespace adcnn::runtime {

class SimulatedLink {
 public:
  SimulatedLink(double bandwidth_bps, double latency_s,
                double time_scale = 0.0)
      : bandwidth_bps_(bandwidth_bps), latency_s_(latency_s),
        time_scale_(time_scale) {}

  /// Block for the modelled transfer duration and account the bytes.
  void transmit(std::size_t bytes);

  /// Fault injection: subsequent transmit_message() calls consult the
  /// injector for this (direction, node) endpoint. Null detaches. Attach
  /// before the link carries traffic.
  void attach_faults(FaultInjector* injector, FaultInjector::Direction dir,
                     int node) {
    faults_ = injector;
    fault_dir_ = dir;
    fault_node_ = node;
  }

  /// transmit() plus fault injection for one runtime message. Airtime and
  /// byte accounting happen regardless of the fate (a lost packet still
  /// occupied the radio); an injected delay is a real wall-clock sleep on
  /// top of the modelled transfer. A corrupt fate mangles `payload` in
  /// place when it is non-null; a drop fate is returned for the caller to
  /// honour (the link only carries bytes — the message object stays with
  /// the sender).
  FaultInjector::LinkFate transmit_message(
      std::size_t bytes, std::int64_t image_id, std::int64_t tile_id,
      std::int32_t attempt, std::vector<std::uint8_t>* payload = nullptr);

  std::uint64_t bytes_sent() const { return bytes_sent_.load(); }
  std::uint64_t transfers() const { return transfers_.load(); }

  /// Telemetry: also account bytes/transfers into registry counters (may
  /// be shared by several links, e.g. one pair per direction). Null
  /// detaches. Attach before the link carries concurrent traffic.
  void attach_telemetry(obs::Counter* bytes, obs::Counter* transfers) {
    obs_bytes_ = bytes;
    obs_transfers_ = transfers;
  }

  /// Modelled (unscaled) seconds a transfer of `bytes` takes.
  double transfer_seconds(std::size_t bytes) const {
    return latency_s_ + static_cast<double>(bytes) * 8.0 / bandwidth_bps_;
  }

 private:
  double bandwidth_bps_;
  double latency_s_;
  double time_scale_;
  std::mutex busy_;  // one transfer at a time
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> transfers_{0};
  obs::Counter* obs_bytes_ = nullptr;
  obs::Counter* obs_transfers_ = nullptr;
  FaultInjector* faults_ = nullptr;
  FaultInjector::Direction fault_dir_ = FaultInjector::Direction::kDownlink;
  int fault_node_ = -1;
};

}  // namespace adcnn::runtime
