#include "runtime/message.hpp"

#include <stdexcept>

#include "compress/rle.hpp"  // varint helpers

namespace adcnn::runtime {

namespace {

using compress::get_varint;
using compress::put_varint;

void put_shape(std::vector<std::uint8_t>& out, const Shape& shape) {
  put_varint(out, static_cast<std::uint64_t>(shape.rank()));
  for (std::int64_t i = 0; i < shape.rank(); ++i)
    put_varint(out, static_cast<std::uint64_t>(shape[i]));
}

Shape get_shape(std::span<const std::uint8_t> in, std::size_t& pos) {
  const std::uint64_t rank = get_varint(in, pos);
  if (rank > 8) throw std::invalid_argument("get_shape: absurd rank");
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = static_cast<std::int64_t>(get_varint(in, pos));
  return Shape(std::move(dims));
}

void put_bytes(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> bytes) {
  put_varint(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> get_bytes(std::span<const std::uint8_t> in,
                                    std::size_t& pos) {
  const std::uint64_t n = get_varint(in, pos);
  if (pos + n > in.size()) {
    throw std::invalid_argument("get_bytes: truncated payload");
  }
  std::vector<std::uint8_t> bytes(in.begin() + static_cast<std::ptrdiff_t>(pos),
                                  in.begin() +
                                      static_cast<std::ptrdiff_t>(pos + n));
  pos += n;
  return bytes;
}

}  // namespace

std::size_t TileTask::wire_bytes() const { return serialize(*this).size(); }
std::size_t TileResult::wire_bytes() const { return serialize(*this).size(); }

std::vector<std::uint8_t> serialize(const TileTask& task) {
  std::vector<std::uint8_t> out;
  out.reserve(task.payload.size() + 24);
  put_varint(out, static_cast<std::uint64_t>(task.image_id));
  put_varint(out, static_cast<std::uint64_t>(task.tile_id));
  out.push_back(task.shutdown ? 1 : 0);
  put_shape(out, task.shape);
  put_bytes(out, task.payload);
  return out;
}

TileTask deserialize_task(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  TileTask task;
  task.image_id = static_cast<std::int64_t>(get_varint(wire, pos));
  task.tile_id = static_cast<std::int64_t>(get_varint(wire, pos));
  if (pos >= wire.size()) throw std::invalid_argument("task: truncated");
  task.shutdown = wire[pos++] != 0;
  task.shape = get_shape(wire, pos);
  task.payload = get_bytes(wire, pos);
  return task;
}

std::vector<std::uint8_t> serialize(const TileResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(result.payload.size() + 24);
  put_varint(out, static_cast<std::uint64_t>(result.image_id));
  put_varint(out, static_cast<std::uint64_t>(result.tile_id));
  put_varint(out, static_cast<std::uint64_t>(result.node_id));
  put_shape(out, result.shape);
  put_bytes(out, result.payload);
  return out;
}

TileResult deserialize_result(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  TileResult result;
  result.image_id = static_cast<std::int64_t>(get_varint(wire, pos));
  result.tile_id = static_cast<std::int64_t>(get_varint(wire, pos));
  result.node_id = static_cast<int>(get_varint(wire, pos));
  result.shape = get_shape(wire, pos);
  result.payload = get_bytes(wire, pos);
  return result;
}

}  // namespace adcnn::runtime
