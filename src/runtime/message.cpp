#include "runtime/message.hpp"

#include <stdexcept>

#include "compress/rle.hpp"  // varint helpers

namespace adcnn::runtime {

namespace {

using compress::get_varint;
using compress::put_varint;

// Adversarial-input bounds: a corrupted or hostile wire buffer may carry
// arbitrary varints, so every length-like field is range-checked before it
// feeds an allocation, a multiply, or a pointer offset.
constexpr std::uint64_t kMaxDim = 1ull << 30;        // per-axis sanity bound
constexpr std::uint64_t kMaxElements = 1ull << 40;   // total tensor elements

void put_shape(std::vector<std::uint8_t>& out, const Shape& shape) {
  put_varint(out, static_cast<std::uint64_t>(shape.rank()));
  for (std::int64_t i = 0; i < shape.rank(); ++i)
    put_varint(out, static_cast<std::uint64_t>(shape[i]));
}

Shape get_shape(std::span<const std::uint8_t> in, std::size_t& pos) {
  const std::uint64_t rank = get_varint(in, pos);
  if (rank > 8) throw std::invalid_argument("get_shape: absurd rank");
  std::vector<std::int64_t> dims(rank);
  std::uint64_t numel = 1;
  for (auto& d : dims) {
    const std::uint64_t v = get_varint(in, pos);
    if (v > kMaxDim) throw std::invalid_argument("get_shape: dim out of range");
    if (v != 0 && numel > kMaxElements / v) {
      throw std::invalid_argument("get_shape: element count overflow");
    }
    numel *= v;
    d = static_cast<std::int64_t>(v);
  }
  return Shape(std::move(dims));
}

void put_bytes(std::vector<std::uint8_t>& out,
               std::span<const std::uint8_t> bytes) {
  put_varint(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> get_bytes(std::span<const std::uint8_t> in,
                                    std::size_t& pos) {
  const std::uint64_t n = get_varint(in, pos);
  // Compare against the remaining length — `pos + n` could wrap around on
  // a hostile length prefix and sail past the bound.
  if (n > in.size() - pos) {
    throw std::invalid_argument("get_bytes: truncated payload");
  }
  std::vector<std::uint8_t> bytes(in.begin() + static_cast<std::ptrdiff_t>(pos),
                                  in.begin() +
                                      static_cast<std::ptrdiff_t>(pos + n));
  pos += n;
  return bytes;
}

}  // namespace

std::size_t TileTask::wire_bytes() const { return serialize(*this).size(); }
std::size_t TileResult::wire_bytes() const { return serialize(*this).size(); }

std::vector<std::uint8_t> serialize(const TileTask& task) {
  std::vector<std::uint8_t> out;
  out.reserve(task.payload.size() + 24);
  put_varint(out, static_cast<std::uint64_t>(task.image_id));
  put_varint(out, static_cast<std::uint64_t>(task.tile_id));
  put_varint(out, static_cast<std::uint64_t>(task.attempt));
  put_varint(out, static_cast<std::uint64_t>(task.parent_span));
  out.push_back(task.shutdown ? 1 : 0);
  put_shape(out, task.shape);
  put_bytes(out, task.payload);
  return out;
}

TileTask deserialize_task(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  TileTask task;
  task.image_id = static_cast<std::int64_t>(get_varint(wire, pos));
  task.tile_id = static_cast<std::int64_t>(get_varint(wire, pos));
  task.attempt = static_cast<std::int32_t>(get_varint(wire, pos));
  task.parent_span = static_cast<std::int64_t>(get_varint(wire, pos));
  if (pos >= wire.size()) throw std::invalid_argument("task: truncated");
  task.shutdown = wire[pos++] != 0;
  task.shape = get_shape(wire, pos);
  task.payload = get_bytes(wire, pos);
  if (pos != wire.size()) throw std::invalid_argument("task: trailing bytes");
  return task;
}

std::vector<std::uint8_t> serialize(const TileResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(result.payload.size() + 24);
  put_varint(out, static_cast<std::uint64_t>(result.image_id));
  put_varint(out, static_cast<std::uint64_t>(result.tile_id));
  put_varint(out, static_cast<std::uint64_t>(result.node_id));
  put_varint(out, static_cast<std::uint64_t>(result.attempt));
  put_shape(out, result.shape);
  put_bytes(out, result.payload);
  return out;
}

TileResult deserialize_result(std::span<const std::uint8_t> wire) {
  std::size_t pos = 0;
  TileResult result;
  result.image_id = static_cast<std::int64_t>(get_varint(wire, pos));
  result.tile_id = static_cast<std::int64_t>(get_varint(wire, pos));
  result.node_id = static_cast<int>(get_varint(wire, pos));
  result.attempt = static_cast<std::int32_t>(get_varint(wire, pos));
  result.shape = get_shape(wire, pos);
  result.payload = get_bytes(wire, pos);
  if (pos != wire.size()) {
    throw std::invalid_argument("result: trailing bytes");
  }
  return result;
}

}  // namespace adcnn::runtime
