// Wire messages between the Central node and Conv nodes (Figure 8).
//
// Every tile task / result carries the (image ID, tile ID) pair the paper
// uses to match intermediate results to inputs. Payloads are opaque byte
// vectors (raw fp32 for input tiles, TileCodec output for results).
// serialize()/deserialize() define the exact on-wire format so the link
// layer's byte accounting matches what a socket transport would carry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace adcnn::runtime {

struct TileTask {
  std::int64_t image_id = 0;
  std::int64_t tile_id = 0;
  std::int32_t attempt = 0;           // 0 = primary dispatch, >0 = retry
  std::int64_t parent_span = 0;       // causal trace parent (downlink span)
  Shape shape;                        // (1, C, th, tw) of the payload
  std::vector<std::uint8_t> payload;  // raw fp32 tile pixels
  bool shutdown = false;              // poison pill for worker threads
  std::int64_t enqueue_ns = 0;        // local-only: inbox queue-wait clock

  std::size_t wire_bytes() const;
};

struct TileResult {
  std::int64_t image_id = 0;
  std::int64_t tile_id = 0;
  int node_id = 0;
  std::int32_t attempt = 0;           // copied from the task that produced it
  Shape shape;                        // (1, C', th', tw') of decoded output
  std::vector<std::uint8_t> payload;  // TileCodec-compressed prefix output

  std::size_t wire_bytes() const;
};

std::vector<std::uint8_t> serialize(const TileTask& task);
TileTask deserialize_task(std::span<const std::uint8_t> wire);

std::vector<std::uint8_t> serialize(const TileResult& result);
TileResult deserialize_result(std::span<const std::uint8_t> wire);

}  // namespace adcnn::runtime
