#include "runtime/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/conv.hpp"
#include "nn/gemm.hpp"
#include "nn/scratch.hpp"

namespace adcnn::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}
}  // namespace

StreamingServer::StreamingServer(CentralNode& central, StreamingConfig cfg)
    : central_(central), cfg_(std::move(cfg)), finish_(0) {
  if (cfg_.max_in_flight < 1) {
    throw std::invalid_argument("StreamingServer: max_in_flight must be >= 1");
  }
  if (cfg_.batching.max_batch < 1) {
    throw std::invalid_argument("StreamingServer: max_batch must be >= 1");
  }
  if (cfg_.batching.max_wait_us < 0) {
    throw std::invalid_argument("StreamingServer: max_wait_us must be >= 0");
  }
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      obs_.in_flight = &m->gauge("pipeline.in_flight");
      obs_.queue_depth = &m->gauge("pipeline.queue_depth");
      obs_.images = &m->counter("pipeline.images");
      obs_.shed = &m->counter("pipeline.shed");
      obs_.latency_s = &m->histogram("pipeline.latency_s");
      obs_.latency_q = &m->quantile_histogram("pipeline.latency_q");
      obs_.overlap_s = &m->gauge("stage.overlap_s");
      obs_.scratch_bytes = &m->gauge("nn.scratch_bytes");
      obs_.pack_hits = &m->gauge("gemm.pack_hits");
      obs_.pack_misses = &m->gauge("gemm.pack_misses");
      obs_.pack_bytes = &m->gauge("gemm.pack_bytes");
      if (cfg_.batching.max_batch > 1) {
        // Achieved batch sizes are small integers; lower the quantile range
        // floor so size-1 batches land in a bucket of their own.
        obs::QuantileHistogram::Config size_cfg;
        size_cfg.min_value = 0.5;
        size_cfg.max_value = 4096.0;
        obs_.batch_size_q = &m->quantile_histogram("batch.size_q", size_cfg);
        obs_.batch_wait_q = &m->quantile_histogram("batch.wait_q");
        obs_.batch_occupancy = &m->gauge("batch.occupancy");
      }
    }
  }
  if (cfg_.slo.target_latency_s > 0.0) {
    slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo, cfg_.telemetry.metrics);
  }

  // Tenant table: explicit configs, or one implicit tenant carrying the
  // legacy queue_capacity knob so the single-tenant API is unchanged.
  std::vector<TenantConfig> tenant_cfgs = cfg_.tenants;
  if (tenant_cfgs.empty()) {
    TenantConfig def;
    def.queue_capacity = cfg_.queue_capacity;
    tenant_cfgs.push_back(def);
  }
  tenants_.reserve(tenant_cfgs.size());
  for (const TenantConfig& tc : tenant_cfgs) {
    if (!(tc.weight > 0.0)) {
      throw std::invalid_argument("StreamingServer: tenant \"" + tc.name +
                                  "\" needs a positive weight");
    }
    TenantState st;
    st.cfg = tc;
    if (tc.slo.target_latency_s > 0.0) {
      obs::SloConfig sc = tc.slo;
      sc.metric_prefix = "slo.tenant." + tc.name;
      st.slo = std::make_unique<obs::SloMonitor>(sc, cfg_.telemetry.metrics);
    }
    if constexpr (obs::kEnabled) {
      if (auto* m = cfg_.telemetry.metrics) {
        const std::string p = "pipeline.tenant." + tc.name;
        st.submitted = &m->counter(p + ".submitted");
        st.shed = &m->counter(p + ".shed");
        st.queue_depth = &m->gauge(p + ".queue_depth");
      }
    }
    tenants_.push_back(std::move(st));
  }

  if constexpr (obs::kEnabled) {
    if (cfg_.telemetry.metrics && cfg_.exporter.period_s > 0.0 &&
        (!cfg_.exporter.prometheus_path.empty() ||
         !cfg_.exporter.jsonl_path.empty())) {
      exporter_ = std::make_unique<obs::TelemetryExporter>(
          *cfg_.telemetry.metrics, cfg_.exporter);
    }
  }
  dispatcher_ = std::thread(&StreamingServer::dispatch_loop, this);
  gather_ = std::thread(&StreamingServer::gather_loop, this);
  suffix_ = std::thread(&StreamingServer::suffix_loop, this);
}

StreamingServer::~StreamingServer() { close(); }

StreamingServer::TenantState& StreamingServer::checked_tenant(int tenant) {
  if (tenant < 0 || tenant >= num_tenants()) {
    throw std::out_of_range("StreamingServer: tenant " +
                            std::to_string(tenant) + " of " +
                            std::to_string(num_tenants()));
  }
  return tenants_[static_cast<std::size_t>(tenant)];
}

obs::SloMonitor* StreamingServer::tenant_slo(int tenant) {
  return checked_tenant(tenant).slo.get();
}

std::int64_t StreamingServer::tenant_shed(int tenant) const {
  auto& self = const_cast<StreamingServer&>(*this);
  const TenantState& t = self.checked_tenant(tenant);
  std::lock_guard lock(mu_);
  return t.shed_total;
}

std::int64_t StreamingServer::submit(int tenant, Tensor image) {
  TenantState& t = checked_tenant(tenant);
  const Clock::time_point t_submit = Clock::now();
  std::int64_t ticket;
  {
    std::unique_lock lock(mu_);
    if (closed_) throw std::runtime_error("StreamingServer: closed");
    if (t.cfg.queue_capacity > 0) {
      // Bounded queue: backpressure the producer rather than shed.
      submit_cv_.wait(lock, [&] {
        return closed_ || t.queue.size() < t.cfg.queue_capacity;
      });
      if (closed_) throw std::runtime_error("StreamingServer: closed");
    }
    ticket = next_ticket_++;
    pending_.emplace(ticket, Pending{});
    t.queue.push_back(SubmitItem{ticket, tenant, std::move(image), t_submit});
    ++queued_total_;
    if constexpr (obs::kEnabled) {
      if (t.submitted) {
        t.submitted->add(1);
        t.queue_depth->set(static_cast<double>(t.queue.size()));
        obs_.queue_depth->set(static_cast<double>(queued_total_));
      }
    }
  }
  input_cv_.notify_one();
  return ticket;
}

std::optional<std::int64_t> StreamingServer::try_submit(int tenant,
                                                        Tensor image) {
  TenantState& t = checked_tenant(tenant);
  const Clock::time_point t_submit = Clock::now();
  std::int64_t ticket;
  {
    std::unique_lock lock(mu_);
    if (closed_) throw std::runtime_error("StreamingServer: closed");
    std::size_t cap = t.cfg.queue_capacity;
    if (cap > 0 && t.slo && t.slo->in_violation()) {
      // Violation episode: admit against half the bound, so the overloaded
      // tenant drains its backlog instead of refilling it.
      cap = std::max<std::size_t>(1, cap / 2);
    }
    if (cap > 0 && t.queue.size() >= cap) {
      lock.unlock();
      // Full queue: shed at admission, before the cluster sees the image.
      shed_item(t, nullptr, "admission");
      return std::nullopt;
    }
    ticket = next_ticket_++;
    pending_.emplace(ticket, Pending{});
    t.queue.push_back(SubmitItem{ticket, tenant, std::move(image), t_submit});
    ++queued_total_;
    if constexpr (obs::kEnabled) {
      if (t.submitted) {
        t.submitted->add(1);
        t.queue_depth->set(static_cast<double>(t.queue.size()));
        obs_.queue_depth->set(static_cast<double>(queued_total_));
      }
    }
  }
  input_cv_.notify_one();
  return ticket;
}

void StreamingServer::shed_item(TenantState& tenant, SubmitItem* item,
                                const char* why) {
  {
    std::lock_guard lock(mu_);
    ++tenant.shed_total;
  }
  if constexpr (obs::kEnabled) {
    if (obs_.shed) obs_.shed->add(1);
    if (tenant.shed) tenant.shed->add(1);
  }
  // Monitors record outside mu_: their violation callbacks run on this
  // thread and may call back into the server's accessors.
  if (slo_) slo_->record_shed();
  if (tenant.slo) tenant.slo->record_shed();
  if (item) {
    Pending p;
    p.error = std::make_exception_ptr(std::runtime_error(
        std::string("shed: ") + why + " (tenant " + tenant.cfg.name + ")"));
    p.latency_s = seconds_since(item->t_submit, Clock::now());
    deliver(item->ticket, std::move(p));
  }
}

Tensor StreamingServer::wait(std::int64_t ticket, InferStats* stats,
                             double* latency_s) {
  Pending p;
  {
    std::unique_lock lock(mu_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      throw std::invalid_argument(
          "StreamingServer::wait: unknown or already redeemed ticket");
    }
    ready_cv_.wait(lock, [&] { return it->second.ready; });
    p = std::move(it->second);
    pending_.erase(it);
  }
  if (p.error) std::rethrow_exception(p.error);
  if (stats) *stats = p.stats;
  if (latency_s) *latency_s = p.latency_s;
  return std::move(p.output);
}

int StreamingServer::active() const {
  std::lock_guard lock(mu_);
  return active_;
}

void StreamingServer::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  input_cv_.notify_all();
  submit_cv_.notify_all();
  // Exporter first: a final flush while the counters still move is fine
  // (snapshot semantics), and it must not outlive the instruments below.
  exporter_.reset();
  // Order matters: the dispatcher drains every already-queued submit (its
  // loop exits only once closed AND empty), so by the time it joins, every
  // ticket has an image in flight or a shed/error delivery; the gather
  // thread then pumps the registry dry before honoring stop; closing the
  // finish queue lets the suffix thread drain its backlog and exit. Every
  // ticket ends delivered.
  if (dispatcher_.joinable()) dispatcher_.join();
  stop_gather_.store(true);
  central_.wake();  // interrupt an idle wait_for_inflight promptly
  if (gather_.joinable()) gather_.join();
  finish_.close();
  if (suffix_.joinable()) suffix_.join();
}

void StreamingServer::dispatch_loop() {
  const int max_batch = cfg_.batching.max_batch;
  for (;;) {
    std::vector<SubmitItem> batch;
    // Deadline sheds popped this round: (tenant index, item), resolved
    // outside mu_ because shedding feeds the SLO monitors.
    std::vector<std::pair<std::size_t, SubmitItem>> sheds;
    Clock::time_point assemble_start;
    {
      std::unique_lock lock(mu_);
      input_cv_.wait(lock, [&] { return queued_total_ > 0 || closed_; });
      if (queued_total_ == 0) break;  // closed and drained
      // Admission: hold a permit per active image. Permits release at
      // output delivery, so depth 1 reproduces sequential scheduling.
      // Deliveries keep happening while we wait (gather/suffix run until
      // this thread joins in close()), so the wait always terminates.
      permit_cv_.wait(lock, [&] { return active_ < cfg_.max_in_flight; });
      const int budget = std::min(max_batch, cfg_.max_in_flight - active_);
      assemble_start = Clock::now();
      const auto batch_deadline =
          assemble_start + std::chrono::microseconds(cfg_.batching.max_wait_us);
      while (static_cast<int>(batch.size()) < budget) {
        if (queued_total_ == 0) {
          // Time-or-size: with a partial batch in hand, linger for
          // stragglers until the deadline; a full batch or an unbatched
          // server dispatches immediately.
          if (batch.empty() || max_batch <= 1 || closed_) break;
          if (Clock::now() >= batch_deadline) break;
          input_cv_.wait_until(lock, batch_deadline);
          continue;
        }
        // Weighted-fair pick: the non-empty tenant with the minimum
        // stride-scheduling pass; ties resolve to the lowest index.
        std::size_t best = tenants_.size();
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
          if (tenants_[i].queue.empty()) continue;
          if (best == tenants_.size() ||
              tenants_[i].pass < tenants_[best].pass) {
            best = i;
          }
        }
        TenantState& t = tenants_[best];
        SubmitItem item = std::move(t.queue.front());
        t.queue.pop_front();
        --queued_total_;
        t.pass += 1.0 / t.cfg.weight;
        if constexpr (obs::kEnabled) {
          if (t.queue_depth) {
            t.queue_depth->set(static_cast<double>(t.queue.size()));
            obs_.queue_depth->set(static_cast<double>(queued_total_));
          }
        }
        // Deadline-aware shed: while THIS tenant's monitor is in violation,
        // a queued image already past shed_wait_frac of its latency target
        // cannot meet the SLO anyway — drop it instead of wasting a batch
        // slot. Other tenants' queues are untouched.
        bool doomed = false;
        if (t.slo && t.cfg.slo.target_latency_s > 0.0 &&
            t.slo->in_violation()) {
          const double waited = seconds_since(item.t_submit, Clock::now());
          doomed = waited > t.cfg.shed_wait_frac * t.cfg.slo.target_latency_s;
        }
        ++active_;  // uniform permit accounting; deliver() releases
        if (doomed) {
          sheds.emplace_back(best, std::move(item));
        } else {
          batch.push_back(std::move(item));
        }
      }
      if (!batch.empty() && !dispatched_any_) {
        dispatched_any_ = true;
        t_first_dispatch_ = Clock::now();
      }
      if constexpr (obs::kEnabled) {
        if (obs_.in_flight) obs_.in_flight->set(static_cast<double>(active_));
      }
    }
    submit_cv_.notify_all();  // queue space freed
    for (auto& [ti, item] : sheds) {
      shed_item(tenants_[ti], &item, "deadline");
    }
    if (batch.empty()) continue;
    if constexpr (obs::kEnabled) {
      if (obs_.batch_size_q) {
        obs_.batch_size_q->observe(static_cast<double>(batch.size()));
        obs_.batch_wait_q->observe(seconds_since(assemble_start, Clock::now()));
        obs_.batch_occupancy->set(static_cast<double>(batch.size()) /
                                  static_cast<double>(max_batch));
      }
    }
    try {
      std::vector<Tensor> images;
      images.reserve(batch.size());
      for (SubmitItem& it : batch) images.push_back(std::move(it.image));
      const std::int64_t image_id = central_.begin_batch(images);
      {
        std::lock_guard lock(mu_);
        std::vector<BatchEntry>& entries = batch_of_[image_id];
        entries.reserve(batch.size());
        for (const SubmitItem& it : batch) {
          entries.push_back(BatchEntry{it.ticket, it.tenant, it.t_submit});
        }
      }
      ready_cv_.notify_all();  // the suffix thread may be waiting on the map
    } catch (...) {
      // begin_batch failed (e.g. infeasible allocation): nothing entered
      // the cluster, so deliver the error straight to every ticket.
      for (const SubmitItem& it : batch) {
        Pending p;
        p.error = std::current_exception();
        p.latency_s = seconds_since(it.t_submit, Clock::now());
        deliver(it.ticket, std::move(p));
      }
    }
  }
}

void StreamingServer::gather_loop() {
  for (;;) {
    if (central_.in_flight() == 0) {
      if (stop_gather_.load()) break;
      central_.wait_for_inflight(Clock::now() +
                                 std::chrono::milliseconds(50));
      continue;
    }
    auto done =
        central_.pump_gather(Clock::now() + std::chrono::milliseconds(100));
    for (auto& job : done) finish_.send(std::move(job));
  }
}

void StreamingServer::suffix_loop() {
  for (;;) {
    auto item = finish_.receive();
    if (!item) break;  // closed and drained
    std::unique_ptr<CentralNode::ImageJob> job = std::move(*item);
    const std::int64_t image_id = job->image_id;
    std::vector<BatchEntry> entries;
    {
      // The dispatcher records image_id -> tickets right after begin_batch
      // returns; a fast gather can deliver the job here first, so wait for
      // the mapping (bounded, in case of a leaked job during teardown).
      std::unique_lock lock(mu_);
      bool mapped = ready_cv_.wait_for(
          lock, std::chrono::seconds(5),
          [&] { return batch_of_.count(image_id) > 0; });
      if (!mapped) continue;  // orphan job: drop rather than deadlock
      const auto it = batch_of_.find(image_id);
      entries = std::move(it->second);
      batch_of_.erase(it);
    }
    std::vector<Tensor> outputs;
    InferStats stats;
    std::exception_ptr error;
    try {
      outputs = central_.finish_batch(std::move(job), &stats);
    } catch (...) {
      error = std::current_exception();
    }
    const Clock::time_point t_done = Clock::now();
    // Between batches: let compute threads trim im2col scratch back to the
    // working-set size (a one-off large batch would otherwise pin its
    // high-water allocation on every thread forever), and publish the
    // packed-weight cache traffic.
    nn::shrink_scratch();
    if constexpr (obs::kEnabled) {
      if (obs_.scratch_bytes) {
        obs_.scratch_bytes->set(static_cast<double>(nn::scratch_bytes()));
      }
      if (obs_.pack_hits) {
        obs_.pack_hits->set(static_cast<double>(nn::gemm_pack_hits()));
        obs_.pack_misses->set(static_cast<double>(nn::gemm_pack_misses()));
        obs_.pack_bytes->set(static_cast<double>(nn::gemm_pack_bytes()));
      }
    }
    // Demux: finish_batch emits outputs in submission order, entry i gets
    // output i. The shared stats describe the whole batch job.
    for (std::size_t i = 0; i < entries.size(); ++i) {
      Pending p;
      p.stats = stats;
      if (error) {
        p.error = error;
      } else {
        p.output = std::move(outputs[i]);
      }
      p.latency_s = seconds_since(entries[i].t_submit, t_done);
      TenantState& t = tenants_[static_cast<std::size_t>(entries[i].tenant)];
      if (t.slo && !p.error) {
        t.slo->record_latency(p.latency_s, p.stats.tiles_missing > 0);
      }
      deliver(entries[i].ticket, std::move(p));
    }
  }
}

void StreamingServer::deliver(std::int64_t ticket, Pending pending) {
  pending.ready = true;
  // Feed the SLO watchdog outside mu_: its violation callback runs on this
  // thread and may legitimately call back into the server's accessors.
  if (slo_ && !pending.error) {
    slo_->record_latency(pending.latency_s, pending.stats.tiles_missing > 0);
  }
  {
    std::lock_guard lock(mu_);
    if (!pending.error) {
      // stage.overlap_s: cumulative per-image stage seconds beyond the
      // server's busy wall time — the pipelining win. ~0 at depth 1.
      stage_seconds_total_ += pending.stats.stages.sum();
      if constexpr (obs::kEnabled) {
        if (obs_.overlap_s && dispatched_any_) {
          const double wall = std::chrono::duration<double>(
                                  Clock::now() - t_first_dispatch_)
                                  .count();
          obs_.overlap_s->set(std::max(0.0, stage_seconds_total_ - wall));
        }
      }
    }
    --active_;
    if constexpr (obs::kEnabled) {
      if (obs_.in_flight) obs_.in_flight->set(static_cast<double>(active_));
      // Delivered outputs only: sheds and errors resolve tickets too, but
      // would distort the latency distribution.
      if (obs_.images && !pending.error) {
        obs_.images->add(1);
        obs_.latency_s->observe(pending.latency_s);
        obs_.latency_q->observe(pending.latency_s);
      }
    }
    const auto it = pending_.find(ticket);
    if (it != pending_.end()) it->second = std::move(pending);
  }
  ready_cv_.notify_all();
  permit_cv_.notify_all();
}

}  // namespace adcnn::runtime
