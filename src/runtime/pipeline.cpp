#include "runtime/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/conv.hpp"
#include "nn/gemm.hpp"

namespace adcnn::runtime {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

StreamingServer::StreamingServer(CentralNode& central, StreamingConfig cfg)
    : central_(central), cfg_(cfg), input_(cfg.queue_capacity), finish_(0) {
  if (cfg_.max_in_flight < 1) {
    throw std::invalid_argument("StreamingServer: max_in_flight must be >= 1");
  }
  if constexpr (obs::kEnabled) {
    if (auto* m = cfg_.telemetry.metrics) {
      obs_.in_flight = &m->gauge("pipeline.in_flight");
      obs_.queue_depth = &m->gauge("pipeline.queue_depth");
      obs_.images = &m->counter("pipeline.images");
      obs_.shed = &m->counter("pipeline.shed");
      obs_.latency_s = &m->histogram("pipeline.latency_s");
      obs_.latency_q = &m->quantile_histogram("pipeline.latency_q");
      obs_.overlap_s = &m->gauge("stage.overlap_s");
      obs_.scratch_bytes = &m->gauge("nn.scratch_bytes");
      obs_.pack_hits = &m->gauge("gemm.pack_hits");
      obs_.pack_misses = &m->gauge("gemm.pack_misses");
      obs_.pack_bytes = &m->gauge("gemm.pack_bytes");
      input_.attach_telemetry(obs_.queue_depth);
    }
  }
  if (cfg_.slo.target_latency_s > 0.0) {
    slo_ = std::make_unique<obs::SloMonitor>(cfg_.slo, cfg_.telemetry.metrics);
  }
  if constexpr (obs::kEnabled) {
    if (cfg_.telemetry.metrics && cfg_.exporter.period_s > 0.0 &&
        (!cfg_.exporter.prometheus_path.empty() ||
         !cfg_.exporter.jsonl_path.empty())) {
      exporter_ = std::make_unique<obs::TelemetryExporter>(
          *cfg_.telemetry.metrics, cfg_.exporter);
    }
  }
  dispatcher_ = std::thread(&StreamingServer::dispatch_loop, this);
  gather_ = std::thread(&StreamingServer::gather_loop, this);
  suffix_ = std::thread(&StreamingServer::suffix_loop, this);
}

StreamingServer::~StreamingServer() { close(); }

std::int64_t StreamingServer::submit(Tensor image) {
  std::int64_t ticket;
  Clock::time_point t_submit = Clock::now();
  {
    std::lock_guard lock(mu_);
    if (closed_) throw std::runtime_error("StreamingServer: closed");
    ticket = next_ticket_++;
    pending_.emplace(ticket, Pending{});
  }
  if (!input_.send(SubmitItem{ticket, std::move(image), t_submit})) {
    std::lock_guard lock(mu_);
    pending_.erase(ticket);
    throw std::runtime_error("StreamingServer: closed");
  }
  return ticket;
}

std::optional<std::int64_t> StreamingServer::try_submit(Tensor image) {
  std::int64_t ticket;
  Clock::time_point t_submit = Clock::now();
  {
    std::lock_guard lock(mu_);
    if (closed_) throw std::runtime_error("StreamingServer: closed");
    ticket = next_ticket_++;
    pending_.emplace(ticket, Pending{});
  }
  if (!input_.try_push(SubmitItem{ticket, std::move(image), t_submit})) {
    {
      std::lock_guard lock(mu_);
      pending_.erase(ticket);
      if (closed_) throw std::runtime_error("StreamingServer: closed");
    }
    // Full queue: the image is shed at admission, before the cluster sees
    // it. The SLO monitor treats sheds as their own outcome class.
    if constexpr (obs::kEnabled) {
      if (obs_.shed) obs_.shed->add(1);
    }
    if (slo_) slo_->record_shed();
    return std::nullopt;
  }
  return ticket;
}

Tensor StreamingServer::wait(std::int64_t ticket, InferStats* stats,
                             double* latency_s) {
  Pending p;
  {
    std::unique_lock lock(mu_);
    const auto it = pending_.find(ticket);
    if (it == pending_.end()) {
      throw std::invalid_argument(
          "StreamingServer::wait: unknown or already redeemed ticket");
    }
    ready_cv_.wait(lock, [&] { return it->second.ready; });
    p = std::move(it->second);
    pending_.erase(it);
  }
  if (p.error) std::rethrow_exception(p.error);
  if (stats) *stats = p.stats;
  if (latency_s) *latency_s = p.latency_s;
  return std::move(p.output);
}

int StreamingServer::active() const {
  std::lock_guard lock(mu_);
  return active_;
}

void StreamingServer::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  // Exporter first: a final flush while the counters still move is fine
  // (snapshot semantics), and it must not outlive the instruments below.
  exporter_.reset();
  // Order matters: the dispatcher drains every already-queued submit (a
  // closed Channel still hands out its backlog), so by the time it joins,
  // every ticket has an image in flight; the gather thread then pumps the
  // registry dry before honoring stop; closing the finish queue lets the
  // suffix thread drain its backlog and exit. Every ticket ends delivered.
  input_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
  stop_gather_.store(true);
  central_.wake();  // interrupt an idle wait_for_inflight promptly
  if (gather_.joinable()) gather_.join();
  finish_.close();
  if (suffix_.joinable()) suffix_.join();
}

void StreamingServer::dispatch_loop() {
  for (;;) {
    auto item = input_.receive();
    if (!item) break;  // closed and drained
    {
      // Admission: hold a permit per active image. Permits release at
      // output delivery, so depth 1 reproduces sequential scheduling.
      std::unique_lock lock(mu_);
      permit_cv_.wait(lock, [&] { return active_ < cfg_.max_in_flight; });
      ++active_;
      if (!dispatched_any_) {
        dispatched_any_ = true;
        t_first_dispatch_ = Clock::now();
      }
      if constexpr (obs::kEnabled) {
        if (obs_.in_flight) obs_.in_flight->set(static_cast<double>(active_));
      }
    }
    try {
      const std::int64_t image_id = central_.begin_image(item->image);
      {
        std::lock_guard lock(mu_);
        ticket_of_.emplace(image_id,
                           std::make_pair(item->ticket, item->t_submit));
      }
      ready_cv_.notify_all();  // the suffix thread may be waiting on the map
    } catch (...) {
      // begin_image failed (e.g. infeasible allocation): nothing entered
      // the cluster, so deliver the error straight to the ticket.
      Pending p;
      p.error = std::current_exception();
      p.latency_s =
          std::chrono::duration<double>(Clock::now() - item->t_submit).count();
      deliver(item->ticket, std::move(p));
    }
  }
}

void StreamingServer::gather_loop() {
  for (;;) {
    if (central_.in_flight() == 0) {
      if (stop_gather_.load()) break;
      central_.wait_for_inflight(Clock::now() +
                                 std::chrono::milliseconds(50));
      continue;
    }
    auto done =
        central_.pump_gather(Clock::now() + std::chrono::milliseconds(100));
    for (auto& job : done) finish_.send(std::move(job));
  }
}

void StreamingServer::suffix_loop() {
  for (;;) {
    auto item = finish_.receive();
    if (!item) break;  // closed and drained
    std::unique_ptr<CentralNode::ImageJob> job = std::move(*item);
    const std::int64_t image_id = job->image_id;
    std::int64_t ticket = -1;
    Clock::time_point t_submit;
    {
      // The dispatcher records image_id -> ticket right after begin_image
      // returns; a fast gather can deliver the job here first, so wait for
      // the mapping (bounded, in case of a leaked job during teardown).
      std::unique_lock lock(mu_);
      bool mapped = ready_cv_.wait_for(
          lock, std::chrono::seconds(5),
          [&] { return ticket_of_.count(image_id) > 0; });
      if (!mapped) continue;  // orphan job: drop rather than deadlock
      const auto it = ticket_of_.find(image_id);
      ticket = it->second.first;
      t_submit = it->second.second;
      ticket_of_.erase(it);
    }
    Pending p;
    try {
      p.output = central_.finish_image(std::move(job), &p.stats);
    } catch (...) {
      p.error = std::current_exception();
    }
    p.latency_s =
        std::chrono::duration<double>(Clock::now() - t_submit).count();
    // Between images: let compute threads trim im2col scratch back to the
    // working-set size (a one-off large image would otherwise pin its
    // high-water allocation on every thread forever), and publish the
    // packed-weight cache traffic.
    nn::shrink_scratch();
    if constexpr (obs::kEnabled) {
      if (obs_.scratch_bytes) {
        obs_.scratch_bytes->set(static_cast<double>(nn::scratch_bytes()));
      }
      if (obs_.pack_hits) {
        obs_.pack_hits->set(static_cast<double>(nn::gemm_pack_hits()));
        obs_.pack_misses->set(static_cast<double>(nn::gemm_pack_misses()));
        obs_.pack_bytes->set(static_cast<double>(nn::gemm_pack_bytes()));
      }
    }
    deliver(ticket, std::move(p));
  }
}

void StreamingServer::deliver(std::int64_t ticket, Pending pending) {
  pending.ready = true;
  // Feed the SLO watchdog outside mu_: its violation callback runs on this
  // thread and may legitimately call back into the server's accessors.
  if (slo_ && !pending.error) {
    slo_->record_latency(pending.latency_s, pending.stats.tiles_missing > 0);
  }
  {
    std::lock_guard lock(mu_);
    if (!pending.error) {
      // stage.overlap_s: cumulative per-image stage seconds beyond the
      // server's busy wall time — the pipelining win. ~0 at depth 1.
      stage_seconds_total_ += pending.stats.stages.sum();
      if constexpr (obs::kEnabled) {
        if (obs_.overlap_s && dispatched_any_) {
          const double wall = std::chrono::duration<double>(
                                  Clock::now() - t_first_dispatch_)
                                  .count();
          obs_.overlap_s->set(std::max(0.0, stage_seconds_total_ - wall));
        }
      }
    }
    --active_;
    if constexpr (obs::kEnabled) {
      if (obs_.in_flight) obs_.in_flight->set(static_cast<double>(active_));
      if (obs_.images) obs_.images->add(1);
      if (obs_.latency_s) {
        obs_.latency_s->observe(pending.latency_s);
        obs_.latency_q->observe(pending.latency_s);
      }
    }
    const auto it = pending_.find(ticket);
    if (it != pending_.end()) it->second = std::move(pending);
  }
  ready_cv_.notify_all();
  permit_cv_.notify_one();
}

}  // namespace adcnn::runtime
