// Streaming pipelined serving on top of CentralNode's per-image stage API.
//
// A StreamingServer keeps up to `max_in_flight` images simultaneously
// active and overlaps the stages across them: image i's central suffix
// runs on a dedicated suffix thread while image i+1's tiles are being
// gathered and image i+2's tiles are being scattered. Three server threads
// drive the stages, honoring CentralNode's thread contract (one dispatcher,
// one pump):
//
//   submit(image) ─▶ [tenant queues] ─▶ dispatcher ── begin_batch ──▶ cluster
//                  (bounded = backpressure │ (weighted-fair dequeue, batch
//                   or shed per tenant)    │  coalescing, deadline shed)
//                                          ▼
//   cluster results ─▶ gather thread ── pump_gather ──▶ [finish queue]
//                      (demux by image_id, retries, deadlines)  │
//                                                               ▼
//   wait(ticket) ◀── [ready table] ◀── suffix thread ── finish_batch
//                                      (zero-fill, merge, batched suffix
//                                       GEMMs, per-ticket demux)
//
// Dynamic batching: with cfg.batching.max_batch > 1 the dispatcher
// coalesces queued images (time-or-size triggered: a full batch dispatches
// immediately, a partial one after max_wait_us) into ONE begin_batch call,
// so the FDSP scatter, the workers' prefix and the central suffix all
// operate on N-image tensors; finish_batch slices the batched output back
// to per-ticket futures. Outputs stay bit-identical to sequential infer()
// — per-sample GEMM accumulation is batch-size invariant.
//
// Multi-tenant admission: each tenant owns a bounded queue and an optional
// SLO monitor. The dispatcher drains queues by stride scheduling (pick the
// minimum virtual `pass`, advance by 1/weight — deterministic weighted
// fairness), and a tenant blowing its latency budget sheds ITS OWN queued
// images (those already past shed_wait_frac of the target while the
// tenant's monitor is in violation) without touching other tenants.
//
// Admission: the dispatcher holds a permit per active image and releases
// it only when the image's output has been delivered, so max_in_flight = 1
// with batching off reproduces the sequential infer() schedule exactly
// (same Algorithm 2 update ordering, same retry/quarantine behavior).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "runtime/central_node.hpp"
#include "runtime/channel.hpp"

namespace adcnn::runtime {

/// Dynamic-batcher trigger: the dispatcher collects up to max_batch queued
/// images per dispatch, waiting at most max_wait_us for stragglers once
/// the first image is picked. max_batch 1 (default) dispatches one image
/// per begin call — the original streaming behavior.
struct BatchConfig {
  int max_batch = 1;
  std::int64_t max_wait_us = 500;
};

/// One tenant's admission contract. When StreamingConfig::tenants is empty
/// the server runs a single implicit tenant fed by the legacy
/// queue_capacity/slo fields.
struct TenantConfig {
  std::string name = "default";
  /// Weighted-fair share of dispatch slots (stride scheduling: the tenant
  /// advances its virtual time by 1/weight per dequeued image).
  double weight = 1.0;
  /// Per-tenant queue bound; submit() blocks while full (backpressure),
  /// try_submit() sheds. 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Per-tenant SLO. Active when target_latency_s > 0: deliveries feed the
  /// monitor (exported under slo.tenant.<name>.*), and while the monitor
  /// is in violation (a) try_submit() admits against a halved queue bound
  /// and (b) queued images already past shed_wait_frac * target_latency_s
  /// are shed at dispatch — only this tenant pays for its overload.
  obs::SloConfig slo;
  /// Fraction of target_latency_s a queued image may age before the
  /// dispatcher sheds it during a violation episode.
  double shed_wait_frac = 0.5;
};

struct StreamingConfig {
  /// Maximum images simultaneously active (admitted but output not yet
  /// delivered). 1 reproduces the sequential schedule.
  int max_in_flight = 2;
  /// Input queue bound for the implicit single tenant; submit() blocks
  /// while full. 0 = unbounded. Ignored when `tenants` is set.
  std::size_t queue_capacity = 0;
  /// Dynamic batching of queued images into batched cluster calls.
  BatchConfig batching;
  /// Multi-tenant queues; empty = one implicit tenant (queue_capacity +
  /// the legacy `slo` below).
  std::vector<TenantConfig> tenants;
  /// Null sinks by default. Emits pipeline.in_flight, pipeline.queue_depth,
  /// pipeline.images, pipeline.latency_s, stage.overlap_s and (when
  /// batching) batch.size_q / batch.wait_q / batch.occupancy.
  obs::Telemetry telemetry;
  /// Server-wide SLO watchdog over delivered images (see obs/slo.hpp).
  /// Enabled when target_latency_s > 0: every delivery feeds the monitor
  /// (deadline zero-fills count as misses) and shed images count as sheds.
  /// Exports slo.* via `telemetry.metrics` when attached.
  obs::SloConfig slo;
  /// Background telemetry exporter over `telemetry.metrics`; started when
  /// a metrics sink is attached, period_s > 0 and at least one output path
  /// is set. Stopped (final flush) in close().
  obs::ExporterConfig exporter;
};

/// Drives one CentralNode from three internal threads. The node must not
/// be used via infer() while a server is attached to it. submit()/wait()
/// may be called from any threads (they are externally synchronized only
/// per-ticket: one wait() per ticket).
class StreamingServer {
 public:
  StreamingServer(CentralNode& central, StreamingConfig cfg);
  ~StreamingServer();

  StreamingServer(const StreamingServer&) = delete;
  StreamingServer& operator=(const StreamingServer&) = delete;

  /// Enqueue one image for tenant 0; returns the ticket redeemed by
  /// wait(). Blocks while the tenant's bounded queue is full; throws if
  /// the server is closed.
  std::int64_t submit(Tensor image) { return submit(0, std::move(image)); }

  /// Enqueue for a specific tenant (index into cfg.tenants).
  std::int64_t submit(int tenant, Tensor image);

  /// Non-blocking admission for tenant 0: enqueue unless the bounded queue
  /// is full, in which case the image is shed (counted in pipeline.shed
  /// and fed to the SLO monitors) and nullopt returns. Throws if closed.
  std::optional<std::int64_t> try_submit(Tensor image) {
    return try_submit(0, std::move(image));
  }

  /// Non-blocking admission for a specific tenant. While the tenant's SLO
  /// monitor is in violation the effective queue bound is halved, so an
  /// overloaded tenant is pushed back harder without starving the others.
  std::optional<std::int64_t> try_submit(int tenant, Tensor image);

  /// Block until `ticket`'s output is ready and return it. Fills `stats`
  /// like infer() does and `latency_s` with the submit-to-ready wall time.
  /// Rethrows any exception the image's processing raised; an image shed
  /// at dispatch rethrows a std::runtime_error whose message starts with
  /// "shed:". Each ticket can be waited on exactly once.
  Tensor wait(std::int64_t ticket, InferStats* stats = nullptr,
              double* latency_s = nullptr);

  /// Stop accepting work, drain every in-flight image and join the server
  /// threads. Outputs already produced stay redeemable via wait().
  /// Idempotent; the destructor calls it.
  void close();

  /// Images admitted whose output has not yet been delivered.
  int active() const;

  int num_tenants() const { return static_cast<int>(tenants_.size()); }

  /// The server-wide SLO watchdog; null unless cfg.slo.target_latency_s
  /// > 0. Register violation callbacks here.
  obs::SloMonitor* slo() { return slo_.get(); }

  /// Tenant `t`'s SLO monitor; null unless that tenant's config enables
  /// one. Throws on an out-of-range index.
  obs::SloMonitor* tenant_slo(int tenant);

  /// Images shed for tenant `t` (admission rejections + dispatch-time
  /// deadline sheds).
  std::int64_t tenant_shed(int tenant) const;

  /// The background exporter; null unless enabled by the config.
  obs::TelemetryExporter* exporter() { return exporter_.get(); }

 private:
  struct SubmitItem {
    std::int64_t ticket;
    int tenant;
    Tensor image;
    std::chrono::steady_clock::time_point t_submit;
  };
  struct Pending {
    bool ready = false;
    Tensor output;
    InferStats stats;
    double latency_s = 0.0;
    std::exception_ptr error;
  };
  /// One admitted batch member, recorded under image_id for the suffix
  /// thread's demux.
  struct BatchEntry {
    std::int64_t ticket;
    int tenant;
    std::chrono::steady_clock::time_point t_submit;
  };
  struct TenantState {
    TenantConfig cfg;
    std::deque<SubmitItem> queue;
    /// Stride-scheduling virtual time; the dispatcher picks the non-empty
    /// tenant with the minimum pass and advances it by 1/weight.
    double pass = 0.0;
    std::int64_t shed_total = 0;
    std::unique_ptr<obs::SloMonitor> slo;
    obs::Counter* submitted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  void dispatch_loop();
  void gather_loop();
  void suffix_loop();
  void deliver(std::int64_t ticket, Pending pending);
  /// Shed one queued image (dispatch-time deadline shed or try_submit
  /// rejection): counts it for the tenant + server and, for `item`
  /// non-null, resolves its ticket with a "shed:" error.
  void shed_item(TenantState& tenant, SubmitItem* item, const char* why);
  TenantState& checked_tenant(int tenant);

  CentralNode& central_;
  StreamingConfig cfg_;
  Channel<std::unique_ptr<CentralNode::ImageJob>> finish_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;   // wait() sleeps here
  std::condition_variable permit_cv_;  // dispatcher waits for a free permit
  std::condition_variable input_cv_;   // dispatcher waits for queued work
  std::condition_variable submit_cv_;  // producers wait for queue space
  std::int64_t next_ticket_ = 0;
  int active_ = 0;
  bool closed_ = false;
  std::vector<TenantState> tenants_;
  std::size_t queued_total_ = 0;
  std::map<std::int64_t, Pending> pending_;
  /// image_id -> the batch's members (submission order = the order
  /// finish_batch emits outputs), written by the dispatcher before results
  /// can reach the finish queue, erased by the suffix thread.
  std::map<std::int64_t, std::vector<BatchEntry>> batch_of_;
  std::chrono::steady_clock::time_point t_first_dispatch_;
  bool dispatched_any_ = false;
  double stage_seconds_total_ = 0.0;  // Σ per-image stage sums (overlap calc)

  std::atomic<bool> stop_gather_{false};
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::TelemetryExporter> exporter_;
  std::thread dispatcher_;
  std::thread gather_;
  std::thread suffix_;

  struct PipelineMetrics {
    obs::Gauge* in_flight = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* images = nullptr;
    obs::Counter* shed = nullptr;         // admission + dispatch sheds
    obs::Histogram* latency_s = nullptr;
    obs::QuantileHistogram* latency_q = nullptr;
    obs::Gauge* overlap_s = nullptr;
    obs::QuantileHistogram* batch_size_q = nullptr;  // achieved batch sizes
    obs::QuantileHistogram* batch_wait_q = nullptr;  // assemble wall time
    obs::Gauge* batch_occupancy = nullptr;  // achieved / max_batch
    obs::Gauge* scratch_bytes = nullptr;  // nn.scratch_bytes
    obs::Gauge* pack_hits = nullptr;      // gemm.pack_hits (process-wide)
    obs::Gauge* pack_misses = nullptr;    // gemm.pack_misses
    obs::Gauge* pack_bytes = nullptr;     // gemm.pack_bytes resident
  } obs_;
};

}  // namespace adcnn::runtime
