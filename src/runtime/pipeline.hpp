// Streaming pipelined serving on top of CentralNode's per-image stage API.
//
// A StreamingServer keeps up to `max_in_flight` images simultaneously
// active and overlaps the stages across them: image i's central suffix
// runs on a dedicated suffix thread while image i+1's tiles are being
// gathered and image i+2's tiles are being scattered. Three server threads
// drive the stages, honoring CentralNode's thread contract (one dispatcher,
// one pump):
//
//   submit(image) ─▶ [input queue] ─▶ dispatcher ── begin_image ──▶ cluster
//                  (bounded = backpressure)  │ (partition/allocate/scatter)
//                                            ▼
//   cluster results ─▶ gather thread ── pump_gather ──▶ [finish queue]
//                      (demux by image_id, retries, deadlines)  │
//                                                               ▼
//   wait(ticket) ◀── [ready table] ◀── suffix thread ── finish_image
//                                      (zero-fill, merge, suffix GEMMs)
//
// Admission: the dispatcher holds a permit per active image and releases
// it only when the image's output has been delivered, so max_in_flight = 1
// reproduces the sequential infer() schedule exactly (same Algorithm 2
// update ordering, same retry/quarantine behavior). The input queue can be
// bounded independently (`queue_capacity`), in which case submit() blocks —
// backpressure on the producer rather than unbounded buffering.
//
// Outputs are bit-identical to sequential infer() on a fault-free cluster:
// tile placement only decides *where* a tile is computed, and the GEMM
// engine is bit-deterministic across thread counts.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/telemetry.hpp"
#include "runtime/central_node.hpp"
#include "runtime/channel.hpp"

namespace adcnn::runtime {

struct StreamingConfig {
  /// Maximum images simultaneously active (admitted but output not yet
  /// delivered). 1 reproduces the sequential schedule.
  int max_in_flight = 2;
  /// Input queue bound; submit() blocks while full. 0 = unbounded.
  std::size_t queue_capacity = 0;
  /// Null sinks by default. Emits pipeline.in_flight, pipeline.queue_depth,
  /// pipeline.images, pipeline.latency_s and stage.overlap_s.
  obs::Telemetry telemetry;
  /// SLO watchdog over delivered images (see obs/slo.hpp). Enabled when
  /// target_latency_s > 0: every delivery feeds the monitor (deadline
  /// zero-fills count as misses) and try_submit() rejections count as
  /// sheds. Exports slo.* via `telemetry.metrics` when attached.
  obs::SloConfig slo;
  /// Background telemetry exporter over `telemetry.metrics`; started when
  /// a metrics sink is attached, period_s > 0 and at least one output path
  /// is set. Stopped (final flush) in close().
  obs::ExporterConfig exporter;
};

/// Drives one CentralNode from three internal threads. The node must not
/// be used via infer() while a server is attached to it. submit()/wait()
/// may be called from any threads (they are externally synchronized only
/// per-ticket: one wait() per ticket).
class StreamingServer {
 public:
  StreamingServer(CentralNode& central, StreamingConfig cfg);
  ~StreamingServer();

  StreamingServer(const StreamingServer&) = delete;
  StreamingServer& operator=(const StreamingServer&) = delete;

  /// Enqueue one image; returns the ticket redeemed by wait(). Blocks while
  /// a bounded input queue is full; throws if the server is closed.
  std::int64_t submit(Tensor image);

  /// Non-blocking admission: enqueue unless the bounded input queue is
  /// full, in which case the image is shed (counted in pipeline.shed and
  /// fed to the SLO monitor) and nullopt returns. Throws if closed.
  std::optional<std::int64_t> try_submit(Tensor image);

  /// Block until `ticket`'s output is ready and return it. Fills `stats`
  /// like infer() does and `latency_s` with the submit-to-ready wall time.
  /// Rethrows any exception the image's processing raised. Each ticket can
  /// be waited on exactly once.
  Tensor wait(std::int64_t ticket, InferStats* stats = nullptr,
              double* latency_s = nullptr);

  /// Stop accepting work, drain every in-flight image and join the server
  /// threads. Outputs already produced stay redeemable via wait().
  /// Idempotent; the destructor calls it.
  void close();

  /// Images admitted whose output has not yet been delivered.
  int active() const;

  /// The SLO watchdog; null unless cfg.slo.target_latency_s > 0. Register
  /// violation callbacks here.
  obs::SloMonitor* slo() { return slo_.get(); }

  /// The background exporter; null unless enabled by the config.
  obs::TelemetryExporter* exporter() { return exporter_.get(); }

 private:
  struct SubmitItem {
    std::int64_t ticket;
    Tensor image;
    std::chrono::steady_clock::time_point t_submit;
  };
  struct Pending {
    bool ready = false;
    Tensor output;
    InferStats stats;
    double latency_s = 0.0;
    std::exception_ptr error;
  };

  void dispatch_loop();
  void gather_loop();
  void suffix_loop();
  void deliver(std::int64_t ticket, Pending pending);

  CentralNode& central_;
  StreamingConfig cfg_;
  Channel<SubmitItem> input_;
  Channel<std::unique_ptr<CentralNode::ImageJob>> finish_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;   // wait() sleeps here
  std::condition_variable permit_cv_;  // dispatcher waits for a free permit
  std::int64_t next_ticket_ = 0;
  int active_ = 0;
  bool closed_ = false;
  std::map<std::int64_t, Pending> pending_;
  /// image_id -> (ticket, submit time), written by the dispatcher before
  /// results can reach the finish queue, erased by the suffix thread.
  std::map<std::int64_t,
           std::pair<std::int64_t, std::chrono::steady_clock::time_point>>
      ticket_of_;
  std::chrono::steady_clock::time_point t_first_dispatch_;
  bool dispatched_any_ = false;
  double stage_seconds_total_ = 0.0;  // Σ per-image stage sums (overlap calc)

  std::atomic<bool> stop_gather_{false};
  std::unique_ptr<obs::SloMonitor> slo_;
  std::unique_ptr<obs::TelemetryExporter> exporter_;
  std::thread dispatcher_;
  std::thread gather_;
  std::thread suffix_;

  struct PipelineMetrics {
    obs::Gauge* in_flight = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* images = nullptr;
    obs::Counter* shed = nullptr;         // try_submit rejections
    obs::Histogram* latency_s = nullptr;
    obs::QuantileHistogram* latency_q = nullptr;
    obs::Gauge* overlap_s = nullptr;
    obs::Gauge* scratch_bytes = nullptr;  // nn.scratch_bytes
    obs::Gauge* pack_hits = nullptr;      // gemm.pack_hits (process-wide)
    obs::Gauge* pack_misses = nullptr;    // gemm.pack_misses
    obs::Gauge* pack_bytes = nullptr;     // gemm.pack_bytes resident
  } obs_;
};

}  // namespace adcnn::runtime
