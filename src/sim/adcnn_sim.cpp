#include "sim/adcnn_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <stdexcept>

#include "core/allocate.hpp"
#include "core/stats.hpp"
#include "sim/metrics.hpp"

namespace adcnn::sim {

namespace {

/// FIFO resource: grants exclusive use in request order.
struct Resource {
  double free = 0.0;
  /// Returns the start time; advances the free horizon.
  double acquire(double ready, double duration) {
    const double start = std::max(free, ready);
    free = start + duration;
    return start;
  }
};

struct PendingStats {
  double time = 0.0;
  std::vector<std::int64_t> counts;  // per node, -1 = not assigned
};

}  // namespace

int deep_partition_blocks(const arch::ArchSpec& spec) {
  int last_spatial = 0;
  for (int b = 0; b < static_cast<int>(spec.blocks.size()); ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      if ((l.op == arch::Op::kConv || l.op == arch::Op::kMaxPool) && !l.aux &&
          l.wout > 1)
        last_spatial = b + 1;
    }
  }
  return last_spatial;
}

AdcnnSimResult simulate_adcnn(const arch::ArchSpec& spec_in,
                              const AdcnnSimConfig& cfg, int num_images) {
  arch::ArchSpec spec = spec_in;
  if (cfg.separable_override >= 0) {
    spec.separable_blocks =
        std::min(cfg.separable_override, static_cast<int>(spec.blocks.size()));
  }
  const int K = static_cast<int>(cfg.nodes.size());
  if (K < 1 || num_images < 1) {
    throw std::invalid_argument("simulate_adcnn: need nodes and images");
  }
  const std::int64_t T = cfg.grid.count();
  Rng rng(cfg.seed);

  // Per-tile costs.
  const double tile_work = prefix_tile_seconds(spec, cfg.grid, cfg.nodes[0]);
  const double suffix_work = suffix_seconds(spec, cfg.central);
  const std::int64_t input_tile_bytes = static_cast<std::int64_t>(
      static_cast<double>(spec.cin * spec.hin * spec.win) *
      cfg.input_bytes_per_pixel / static_cast<double>(T)) + 16;
  const double raw_result = static_cast<double>(spec.separable_out_bytes()) /
                            static_cast<double>(T);
  const std::int64_t result_tile_bytes = static_cast<std::int64_t>(
      raw_result * (cfg.compress ? cfg.compression_ratio : 1.0)) + 16;

  // Resources. With a shared medium one Resource carries every transfer;
  // otherwise one down/up pair per node.
  Resource medium;
  std::vector<Resource> downlinks(static_cast<std::size_t>(K));
  std::vector<Resource> uplinks(static_cast<std::size_t>(K));
  std::vector<Resource> node_cpu(static_cast<std::size_t>(K));
  Resource central_cpu;
  double send_free = 0.0;  // central may start scattering the next image
                           // as soon as the previous scatter finished

  core::StatsCollector collector(K, cfg.gamma, cfg.initial_speed);
  std::deque<PendingStats> pending;

  AdcnnSimResult out;
  out.node_busy_s.assign(static_cast<std::size_t>(K), 0.0);

  double prev_gather_done = 0.0;  // image i-1
  double prev2_finish = 0.0;      // image i-2 (pipeline-depth gate)
  for (int i = 0; i < num_images; ++i) {
    ImageRecord rec;
    // Admission per Figure 9: image i's tiles go out while image i-1's
    // suffix still runs on the Central node (t_s^{i+1} < t_a^i), but only
    // after i-1's gather so Conv-node queues stay drained; the i-2 finish
    // gate bounds the Central node's suffix queue.
    rec.partition_start =
        std::max({send_free, prev_gather_done, prev2_finish});

    // Fold in every statistics update that has landed by now (Algorithm 2
    // runs in the background; allocation sees only completed gathers).
    while (!pending.empty() && pending.front().time <= rec.partition_start) {
      for (int k = 0; k < K; ++k) {
        if (pending.front().counts[static_cast<std::size_t>(k)] >= 0)
          collector.record_node(
              k, pending.front().counts[static_cast<std::size_t>(k)]);
      }
      pending.pop_front();
    }

    // Algorithm 3.
    core::AllocRequest req;
    req.speeds = collector.speeds();
    req.tiles = T;
    rec.assigned = core::allocate_tiles(req, &rng);

    // Interleaved per-tile owner order (round-robin across quotas).
    std::vector<int> owner;
    owner.reserve(static_cast<std::size_t>(T));
    {
      std::vector<std::int64_t> left = rec.assigned;
      while (static_cast<std::int64_t>(owner.size()) < T) {
        for (int k = 0; k < K && static_cast<std::int64_t>(owner.size()) < T;
             ++k) {
          if (left[static_cast<std::size_t>(k)] > 0) {
            --left[static_cast<std::size_t>(k)];
            owner.push_back(k);
          }
        }
      }
    }

    // Phase 1 — scatter: the central node streams every tile back-to-back
    // (all of an image's downlinks precede its result uplinks on a shared
    // medium; results cannot be ready earlier anyway).
    const double tx_in = cfg.link.transfer_s(input_tile_bytes);
    const double tx_out = cfg.link.transfer_s(result_tile_bytes);
    std::vector<double> arrival(static_cast<std::size_t>(T));
    std::vector<int> tile_owner(owner);
    double send_cursor = rec.partition_start;
    for (std::int64_t t = 0; t < T; ++t) {
      const int k = owner[static_cast<std::size_t>(t)];
      Resource& down = cfg.shared_medium
                           ? medium
                           : downlinks[static_cast<std::size_t>(k)];
      const double arr = down.acquire(send_cursor, tx_in) + tx_in;
      send_cursor = arr;  // central serializes its own sends
      arrival[static_cast<std::size_t>(t)] = arr;
      out.input_bytes_total += input_tile_bytes;
    }
    rec.send_done = send_cursor;

    // Phase 2 — per-node FIFO compute (speed trace + jitter).
    std::vector<double> compute_fin(static_cast<std::size_t>(T));
    for (std::int64_t t = 0; t < T; ++t) {
      const int k = owner[static_cast<std::size_t>(t)];
      const double jitter_mult = std::exp(rng.normal(0.0, cfg.jitter));
      const double start = std::max(node_cpu[static_cast<std::size_t>(k)].free,
                                    arrival[static_cast<std::size_t>(t)]);
      const double fin = cfg.nodes[static_cast<std::size_t>(k)].finish_time(
          start, tile_work * jitter_mult);
      node_cpu[static_cast<std::size_t>(k)].free = fin;
      if (std::isfinite(fin))  // a dead node (factor 0) never finishes
        out.node_busy_s[static_cast<std::size_t>(k)] += fin - start;
      compute_fin[static_cast<std::size_t>(t)] = fin;
    }

    // Phase 3 — result uplinks. The medium grants access in the order
    // results become ready (FIFO by completion time).
    std::vector<std::int64_t> by_fin(static_cast<std::size_t>(T));
    for (std::int64_t t = 0; t < T; ++t)
      by_fin[static_cast<std::size_t>(t)] = t;
    std::sort(by_fin.begin(), by_fin.end(), [&](std::int64_t a,
                                                std::int64_t b) {
      return compute_fin[static_cast<std::size_t>(a)] <
             compute_fin[static_cast<std::size_t>(b)];
    });
    std::vector<double> return_time(static_cast<std::size_t>(T));
    for (const std::int64_t t : by_fin) {
      const double fin = compute_fin[static_cast<std::size_t>(t)];
      if (!std::isfinite(fin)) {
        return_time[static_cast<std::size_t>(t)] = fin;  // never returns
        continue;
      }
      const int k = owner[static_cast<std::size_t>(t)];
      Resource& up =
          cfg.shared_medium ? medium : uplinks[static_cast<std::size_t>(k)];
      return_time[static_cast<std::size_t>(t)] = up.acquire(fin, tx_out) +
                                                 tx_out;
      out.result_bytes_total += result_tile_bytes;
    }
    rec.input_tx_s = rec.send_done - rec.partition_start;
    rec.result_tx_s = tx_out;
    send_free = rec.send_done;  // pipelining: next image may scatter now

    // Deadline / zero-fill.
    double deadline;
    switch (cfg.anchor) {
      case DeadlineAnchor::kAfterFirstResult:
        deadline = *std::min_element(return_time.begin(), return_time.end()) +
                   cfg.t_l;
        break;
      case DeadlineAnchor::kAfterLastSend:
        deadline = rec.send_done + cfg.t_l;
        break;
      case DeadlineAnchor::kExpectedCompletion:
      default: {
        std::int64_t max_quota = 0;
        for (const auto tiles : rec.assigned)
          max_quota = std::max(max_quota, tiles);
        const double nominal_wave =
            static_cast<double>(max_quota) * tile_work + tx_out;
        deadline = std::max(rec.send_done, prev_gather_done) +
                   cfg.straggler_slack * nominal_wave + cfg.t_l;
        break;
      }
    }
    double last_counted = rec.send_done;
    std::vector<std::int64_t> counted(static_cast<std::size_t>(K), 0);
    for (std::int64_t t = 0; t < T; ++t) {
      if (return_time[static_cast<std::size_t>(t)] <= deadline) {
        ++counted[static_cast<std::size_t>(
            tile_owner[static_cast<std::size_t>(t)])];
        last_counted =
            std::max(last_counted, return_time[static_cast<std::size_t>(t)]);
      } else {
        ++rec.zero_filled;
      }
    }
    rec.gather_done = (rec.zero_filled == 0) ? last_counted : deadline;

    // Algorithm 2 update becomes visible once the gather completes.
    PendingStats update;
    update.time = rec.gather_done;
    update.counts.assign(static_cast<std::size_t>(K), -1);
    for (int k = 0; k < K; ++k) {
      if (rec.assigned[static_cast<std::size_t>(k)] > 0)
        update.counts[static_cast<std::size_t>(k)] =
            counted[static_cast<std::size_t>(k)];
    }
    pending.push_back(std::move(update));

    // Suffix on the Central node.
    const double sstart = central_cpu.acquire(rec.gather_done, 0.0);
    rec.finish = cfg.central.finish_time(sstart, suffix_work);
    central_cpu.free = rec.finish;

    rec.latency = rec.finish - rec.partition_start;
    out.zero_filled_total += rec.zero_filled;
    prev_gather_done = rec.gather_done;
    prev2_finish = out.images.empty() ? 0.0 : out.images.back().finish;
    out.images.push_back(std::move(rec));
  }

  std::vector<double> lat, tx;
  for (const auto& rec : out.images) {
    lat.push_back(rec.latency);
    tx.push_back(rec.input_tx_s + rec.result_tx_s);
  }
  out.mean_latency_s = mean(lat);
  out.ci95_s = ci95(lat);
  out.mean_transmission_s = mean(tx);
  out.mean_compute_s = out.mean_latency_s - out.mean_transmission_s;
  const double span = out.images.back().finish;
  out.throughput_ips =
      span > 0.0 ? static_cast<double>(num_images) / span : 0.0;
  out.node_energy_j.resize(static_cast<std::size_t>(K));
  for (int k = 0; k < K; ++k) {
    const auto& p = cfg.nodes[static_cast<std::size_t>(k)].power;
    const double busy = out.node_busy_s[static_cast<std::size_t>(k)];
    out.node_energy_j[static_cast<std::size_t>(k)] =
        p.active_w * busy + p.idle_w * std::max(0.0, span - busy);
  }
  return out;
}

}  // namespace adcnn::sim
