// Trace-driven discrete-event simulation of the full ADCNN pipeline
// (Figures 8 & 9): input partition, Algorithm 3 allocation driven by
// Algorithm 2 statistics, tile scatter over a (optionally shared) medium,
// FIFO per-node computation under time-varying speed traces, compressed
// result gather with the T_L deadline and zero-fill, suffix computation on
// the Central node, and send-side pipelining across consecutive images.
//
// Substitutes the paper's 9-Pi testbed (see DESIGN.md §3). One documented
// approximation: the shared medium serves image i's result uplinks before
// image i+1's tile downlinks, which leaves per-image latency exact under
// FIFO-per-image medium priority and only reorders cross-image contention.
#pragma once

#include <cstdint>
#include <vector>

#include "core/geometry.hpp"
#include "nn/archspec.hpp"
#include "sim/cost_model.hpp"
#include "tensor/rng.hpp"

namespace adcnn::sim {

enum class DeadlineAnchor {
  /// Timer starts when the last tile of the image has been transmitted
  /// (the literal reading of §6.1). Requires T_L to exceed the full
  /// compute wave.
  kAfterLastSend,
  /// Timer starts at the first intermediate result; T_L bounds the
  /// spread between the first and last result.
  kAfterFirstResult,
  /// Timer expires at straggler_slack x the nominal (full-speed) compute
  /// wave plus T_L — the only reading consistent with the paper's
  /// T_L = 30 ms against ~200 ms of computation: T_L is slack beyond the
  /// expected completion, so healthy jitter passes while a CPUlimit-
  /// throttled node (§7.3) misses and gets zero-filled. Default.
  kExpectedCompletion,
};

struct AdcnnSimConfig {
  std::vector<DeviceSpec> nodes;  // one per Conv node
  DeviceSpec central;
  LinkSpec link;
  /// true: all transfers share one half-duplex medium (WiFi-like);
  /// false: independent full-duplex links per node.
  bool shared_medium = true;
  core::TileGrid grid{8, 8};
  double t_l = 0.03;  // T_L (seconds)
  DeadlineAnchor anchor = DeadlineAnchor::kExpectedCompletion;
  /// kExpectedCompletion: tolerated slowdown factor over the nominal wave.
  double straggler_slack = 1.25;
  double gamma = 0.9;          // Algorithm 2 decay
  double initial_speed = 1.0;  // s_k seed
  /// Apply the §4 compression to intermediate results.
  bool compress = true;
  /// Wire bytes of a compressed result as a fraction of raw fp32 (Table 2
  /// measures ~0.02-0.06; default is the paper's VGG16 figure).
  double compression_ratio = 0.032;
  /// Input tiles stream as images (1 byte/pixel/channel by default).
  double input_bytes_per_pixel = 1.0;
  /// Multiplicative lognormal-ish noise on per-tile compute (sigma).
  double jitter = 0.02;
  std::uint64_t seed = 1;
  /// Overrides the spec's separable_blocks for the latency experiment
  /// (-1 = use the spec). The paper's testbed numbers (Table 3: 202.88 ms
  /// of ADCNN computation vs 1586 ms single-device VGG16) are only
  /// consistent with distributing essentially the whole conv trunk, so
  /// the Fig. 11/13/14 harnesses evaluate both the stated block counts
  /// and a deep partition (suffix = head only). See EXPERIMENTS.md.
  int separable_override = -1;

  /// K identical nodes.
  static AdcnnSimConfig uniform(int k, const DeviceSpec& node) {
    AdcnnSimConfig cfg;
    cfg.nodes.assign(static_cast<std::size_t>(k), node);
    cfg.central = node;
    return cfg;
  }
};

struct ImageRecord {
  double partition_start = 0.0;
  double send_done = 0.0;
  double gather_done = 0.0;
  double finish = 0.0;
  double latency = 0.0;
  double input_tx_s = 0.0;   // tile scatter duration
  double result_tx_s = 0.0;  // critical result's uplink time
  std::vector<std::int64_t> assigned;  // tiles per node (Fig. 15(c))
  std::int64_t zero_filled = 0;
};

struct AdcnnSimResult {
  std::vector<ImageRecord> images;
  double mean_latency_s = 0.0;
  double ci95_s = 0.0;
  double mean_transmission_s = 0.0;  // Table 3 "input/output transmission"
  double mean_compute_s = 0.0;       // Table 3 "computation"
  double throughput_ips = 0.0;       // pipelined images/second
  std::int64_t zero_filled_total = 0;
  std::vector<double> node_busy_s;     // per node, whole run
  std::vector<double> node_energy_j;   // per node, whole run (power model)
  std::int64_t input_bytes_total = 0;
  std::int64_t result_bytes_total = 0;
};

AdcnnSimResult simulate_adcnn(const arch::ArchSpec& spec,
                              const AdcnnSimConfig& cfg, int num_images);

/// Deepest FDSP partition point: one past the last block that still has
/// spatial extent (everything but the FC/global-pool head).
int deep_partition_blocks(const arch::ArchSpec& spec);

}  // namespace adcnn::sim
