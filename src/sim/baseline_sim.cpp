#include "sim/baseline_sim.hpp"

#include <cmath>

#include "sim/metrics.hpp"
#include "tensor/rng.hpp"

namespace adcnn::sim {

namespace {

BaselineResult summarize(std::vector<double> latencies, double tx,
                         double compute) {
  BaselineResult out;
  out.latencies = std::move(latencies);
  out.mean_latency_s = mean(out.latencies);
  out.ci95_s = ci95(out.latencies);
  out.transmission_s = tx;
  out.compute_s = compute;
  return out;
}

}  // namespace

BaselineResult simulate_single_device(const arch::ArchSpec& spec,
                                      const DeviceSpec& dev, double jitter,
                                      std::uint64_t seed, int num_images) {
  Rng rng(seed);
  const double base = total_seconds(spec, dev);
  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(num_images));
  for (int i = 0; i < num_images; ++i)
    lat.push_back(base * std::exp(rng.normal(0.0, jitter)));
  const double m = mean(lat);
  return summarize(std::move(lat), 0.0, m);
}

BaselineResult simulate_remote_cloud(const arch::ArchSpec& spec,
                                     const CloudConfig& cfg, double jitter,
                                     std::uint64_t seed, int num_images) {
  Rng rng(seed);
  const std::int64_t upload = static_cast<std::int64_t>(
      static_cast<double>(spec.cin * spec.hin * spec.win) *
      cfg.input_bytes_per_pixel);
  // Overhead scales the serialization term; propagation latency is paid
  // once per direction.
  const double tx = cfg.wan.latency_s +
                    static_cast<double>(upload) * 8.0 /
                        cfg.wan.bandwidth_bps * cfg.wan_overhead +
                    cfg.wan.transfer_s(cfg.result_bytes);
  const double compute = total_seconds(spec, cfg.cloud);
  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(num_images));
  for (int i = 0; i < num_images; ++i)
    lat.push_back((tx + compute) * std::exp(rng.normal(0.0, jitter)));
  return summarize(std::move(lat), tx, compute);
}

}  // namespace adcnn::sim
