// The paper's two reference schemes (§7.2): single-device local inference
// and remote-cloud offload.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/archspec.hpp"
#include "sim/cost_model.hpp"

namespace adcnn::sim {

struct BaselineResult {
  std::vector<double> latencies;
  double mean_latency_s = 0.0;
  double ci95_s = 0.0;
  double transmission_s = 0.0;  // mean, Table 3 breakdown
  double compute_s = 0.0;       // mean
};

/// Whole network on one edge device.
BaselineResult simulate_single_device(const arch::ArchSpec& spec,
                                      const DeviceSpec& dev, double jitter,
                                      std::uint64_t seed, int num_images);

struct CloudConfig {
  /// p3.2xlarge-class effective throughput (GPU conv stack).
  DeviceSpec cloud{.flops_per_sec = 500e9, .mem_bytes_per_sec = 200e9,
                   .power = {}, .trace = {}};
  LinkSpec wan{.bandwidth_bps = 61.30e6, .latency_s = 0.02};
  /// Effective goodput divisor covering TCP/RTT/serialization overhead on
  /// the WAN path. The paper measured 502 ms of transmission for a single
  /// 224x224 image on its 61.3 Mbps uplink — ~6.4x the raw fp32 transfer
  /// time — so that measured overhead is the default calibration.
  double wan_overhead = 6.4;
  double input_bytes_per_pixel = 4.0;  // fp32 tensor upload
  std::int64_t result_bytes = 4096;    // class scores back
};

/// Upload the input, run everything on the cloud, return the result.
BaselineResult simulate_remote_cloud(const arch::ArchSpec& spec,
                                     const CloudConfig& cfg, double jitter,
                                     std::uint64_t seed, int num_images);

}  // namespace adcnn::sim
