#include "sim/cost_model.hpp"

#include <algorithm>

namespace adcnn::sim {

std::int64_t layer_traffic_bytes(const arch::LayerSpec& l) {
  std::int64_t in = l.in_bytes();
  if (l.op == arch::Op::kConv && l.k > 1) in *= l.k * l.k;  // im2col reads
  return in + l.out_bytes() + l.param_bytes;
}

double layer_seconds(const arch::LayerSpec& l, const DeviceSpec& dev,
                     double area_fraction) {
  // Weight traffic scales with the area fraction as well: across all the
  // tiles a node processes, the weight stream amortizes to one pass per
  // image's worth of area (GEMM panels re-read weights per output panel).
  const double flops = static_cast<double>(l.flops) * area_fraction;
  const double traffic =
      static_cast<double>(layer_traffic_bytes(l)) * area_fraction;
  return flops / dev.flops_per_sec + traffic / dev.mem_bytes_per_sec;
}

double blocks_seconds(const arch::ArchSpec& spec, int begin, int end,
                      const DeviceSpec& dev, double area_fraction) {
  double total = 0.0;
  for (int b = begin; b < end && b < static_cast<int>(spec.blocks.size());
       ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers)
      total += layer_seconds(l, dev, area_fraction);
  }
  return total;
}

double total_seconds(const arch::ArchSpec& spec, const DeviceSpec& dev) {
  return blocks_seconds(spec, 0, static_cast<int>(spec.blocks.size()), dev);
}

double prefix_tile_seconds(const arch::ArchSpec& spec,
                           const core::TileGrid& grid, const DeviceSpec& dev) {
  const double frac = 1.0 / static_cast<double>(grid.count());
  return blocks_seconds(spec, 0, spec.separable_blocks, dev, frac);
}

double suffix_seconds(const arch::ArchSpec& spec, const DeviceSpec& dev) {
  return blocks_seconds(spec, spec.separable_blocks,
                        static_cast<int>(spec.blocks.size()), dev);
}

std::int64_t conv_node_memory_bytes(const arch::ArchSpec& spec,
                                    const core::TileGrid& grid,
                                    std::int64_t tiles) {
  const double frac = 1.0 / static_cast<double>(grid.count());
  std::int64_t weights = spec.prefix_param_bytes();
  std::int64_t peak_act = 0;
  for (int b = 0; b < spec.separable_blocks; ++b) {
    for (const auto& l : spec.blocks[static_cast<std::size_t>(b)].layers) {
      const auto working = static_cast<std::int64_t>(
          static_cast<double>(l.in_bytes() + l.out_bytes()) * frac);
      peak_act = std::max(peak_act, working);
    }
  }
  // Weights are shared across tiles; activations are processed one tile at
  // a time, but assigned input tiles are buffered while queued.
  const std::int64_t input_tile_bytes = static_cast<std::int64_t>(
      static_cast<double>(spec.input_bytes()) * frac);
  return weights + peak_act + tiles * input_tile_bytes;
}

}  // namespace adcnn::sim
