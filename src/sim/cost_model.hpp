// Layer/block execution-time model over full-scale ArchSpecs.
//
// t(layer) = flops / F  +  traffic / B   (roofline: compute + memory terms)
//
// traffic counts im2col-amplified ifmap reads (k^2 per input pixel for
// convs), ofmap writes and a full weight stream — which is what makes the
// *early* layers (huge activation maps) disproportionately slow on Pi-class
// devices, the effect Figure 3 of the paper measures.
#pragma once

#include "core/geometry.hpp"
#include "nn/archspec.hpp"
#include "sim/device.hpp"

namespace adcnn::sim {

struct LinkSpec {
  double bandwidth_bps = 87.72e6;  // the paper's WiFi measurement
  double latency_s = 0.0005;

  double transfer_s(std::int64_t bytes) const {
    return latency_s + static_cast<double>(bytes) * 8.0 / bandwidth_bps;
  }
};

/// Memory traffic of one layer at full spatial size (bytes).
std::int64_t layer_traffic_bytes(const arch::LayerSpec& l);

/// Execution seconds of one layer on `dev` at nominal (factor 1) speed.
/// `area_fraction` scales activation-dependent terms for FDSP tiles (a
/// 1/(r*c) tile does 1/(r*c) of the FLOPs but still streams full weights).
double layer_seconds(const arch::LayerSpec& l, const DeviceSpec& dev,
                     double area_fraction = 1.0);

/// Seconds for blocks [begin, end) of the spec.
double blocks_seconds(const arch::ArchSpec& spec, int begin, int end,
                      const DeviceSpec& dev, double area_fraction = 1.0);

/// Whole-network seconds (the single-device scheme).
double total_seconds(const arch::ArchSpec& spec, const DeviceSpec& dev);

/// Per-tile separable-prefix seconds under an r x c FDSP grid.
double prefix_tile_seconds(const arch::ArchSpec& spec,
                           const core::TileGrid& grid, const DeviceSpec& dev);

/// Central-node suffix seconds (blocks separable_blocks..end).
double suffix_seconds(const arch::ArchSpec& spec, const DeviceSpec& dev);

/// Peak per-node memory of a Conv node holding `tiles` tiles: prefix
/// weights + the largest per-tile activation working set (in + out of the
/// widest layer), Fig. 13's right plot.
std::int64_t conv_node_memory_bytes(const arch::ArchSpec& spec,
                                    const core::TileGrid& grid,
                                    std::int64_t tiles);

}  // namespace adcnn::sim
