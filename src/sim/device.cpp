#include "sim/device.hpp"

#include <limits>
#include <stdexcept>

namespace adcnn::sim {

double DeviceSpec::factor_at(double t) const {
  double f = 1.0;
  for (const auto& seg : trace) {
    if (seg.t_from <= t) {
      f = seg.factor;
    } else {
      break;
    }
  }
  return f;
}

double DeviceSpec::finish_time(double start, double work) const {
  if (work <= 0.0) return start;
  double t = start;
  double remaining = work;
  // Walk trace segments intersecting [start, inf).
  std::size_t i = 0;
  while (i < trace.size() && trace[i].t_from <= t) ++i;
  while (true) {
    const double factor = factor_at(t);
    const double seg_end = (i < trace.size())
                               ? trace[i].t_from
                               : std::numeric_limits<double>::infinity();
    if (factor <= 0.0) {
      // Device stopped; work resumes only if a later segment restarts it.
      if (i >= trace.size()) {
        return std::numeric_limits<double>::infinity();
      }
      t = seg_end;
      ++i;
      continue;
    }
    const double capacity = (seg_end - t) * factor;
    if (capacity >= remaining) return t + remaining / factor;
    remaining -= capacity;
    t = seg_end;
    ++i;
  }
}

}  // namespace adcnn::sim
