// Simulated edge device: a roofline-style compute model (FLOP throughput +
// memory bandwidth) with a piecewise-constant speed trace for heterogeneity
// and runtime degradation (the paper throttles four Pis with CPUlimit in
// §7.3), plus a two-state power model for the Fig. 13 energy accounting.
//
// Calibration: flops_per_sec/mem_bytes_per_sec default to Raspberry Pi 3B+
// class effective figures (PyTorch-era measurements put full VGG16 at
// ~1.5 s on that board), so absolute latencies land in the paper's regime.
#pragma once

#include <cstdint>
#include <vector>

namespace adcnn::sim {

struct PowerModel {
  double idle_w = 1.9;    // Pi 3B+ idling
  double active_w = 5.0;  // under full CPU load
};

/// Speed multiplier `factor` applies from time `t_from` until the next
/// segment. An implicit {0, 1.0} segment precedes everything.
struct SpeedSegment {
  double t_from = 0.0;
  double factor = 1.0;
};

struct DeviceSpec {
  double flops_per_sec = 24e9;      // effective, not peak
  double mem_bytes_per_sec = 4.0e9;
  PowerModel power;
  std::vector<SpeedSegment> trace;  // must be sorted by t_from

  /// Speed multiplier at absolute time t.
  double factor_at(double t) const;

  /// Completion time of `work` seconds-at-full-speed starting at `start`,
  /// integrating the speed trace.
  double finish_time(double start, double work) const;

  DeviceSpec throttled_after(double t, double factor) const {
    DeviceSpec d = *this;
    d.trace.push_back(SpeedSegment{t, factor});
    return d;
  }
};

}  // namespace adcnn::sim
