// Small statistics helpers for the benchmark harnesses (means and 95%
// confidence intervals, as the paper's error bars report).
#pragma once

#include <cmath>
#include <vector>

namespace adcnn::sim {

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/// Half-width of the normal-approximation 95% CI on the mean.
inline double ci95(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  return 1.96 * stddev(v) / std::sqrt(static_cast<double>(v.size()));
}

}  // namespace adcnn::sim
