#include "tensor/rng.hpp"

#include <cmath>

namespace adcnn {

double Rng::normal() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  // Box-Muller: generate two independent normals from two uniforms.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

void Rng::shuffle(std::vector<int>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace adcnn
