// Deterministic, seedable pseudo-random number generation.
//
// Everything in the library that needs randomness (weight init, synthetic
// datasets, simulation jitter) draws from Rng so that every experiment is
// reproducible from a single printed seed.
#pragma once

#include <cstdint>
#include <vector>

namespace adcnn {

/// SplitMix64 — used to expand a single seed into stream states.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Small, fast, and good enough for ML workloads;
/// NOT cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_gauss_ = false;
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (cached pair).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int>& v);

  /// Derive an independent child generator (for per-worker streams).
  Rng fork() { return Rng(next_u64() ^ 0xA5A5A5A5DEADBEEFull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace adcnn
