#include "tensor/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace adcnn {

std::int64_t Shape::numel() const {
  std::int64_t n = 1;
  for (auto d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i) os << ',';
    os << dims_[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_.numel()), fill) {}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  if (shape.numel() != static_cast<std::int64_t>(data.size())) {
    throw std::invalid_argument("Tensor::from_data: size mismatch " +
                                shape.to_string());
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) {
  assert(shape_.rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

const float& Tensor::at(std::int64_t n, std::int64_t c, std::int64_t h,
                        std::int64_t w) const {
  assert(shape_.rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (new_shape.numel() != numel()) {
    throw std::invalid_argument("Tensor::reshaped: numel mismatch " +
                                shape_.to_string() + " -> " +
                                new_shape.to_string());
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

Tensor Tensor::crop(std::int64_t n0, std::int64_t tn, std::int64_t h0,
                    std::int64_t th, std::int64_t w0, std::int64_t tw) const {
  assert(shape_.rank() == 4);
  const std::int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  if (n0 < 0 || h0 < 0 || w0 < 0 || n0 + tn > shape_[0] || h0 + th > H ||
      w0 + tw > W) {
    throw std::out_of_range("Tensor::crop: window out of range");
  }
  Tensor out(Shape{tn, C, th, tw});
  for (std::int64_t n = 0; n < tn; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (std::int64_t h = 0; h < th; ++h) {
        const float* src =
            data_.data() + (((n0 + n) * C + c) * H + (h0 + h)) * W + w0;
        float* dst = out.data_.data() + ((n * C + c) * th + h) * tw;
        std::memcpy(dst, src, static_cast<std::size_t>(tw) * sizeof(float));
      }
    }
  }
  return out;
}

void Tensor::paste(const Tensor& patch, std::int64_t n0, std::int64_t h0,
                   std::int64_t w0) {
  assert(shape_.rank() == 4 && patch.shape_.rank() == 4);
  const std::int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  const std::int64_t tn = patch.shape_[0], th = patch.shape_[2],
                     tw = patch.shape_[3];
  if (patch.shape_[1] != C || n0 + tn > shape_[0] || h0 + th > H ||
      w0 + tw > W) {
    throw std::out_of_range("Tensor::paste: window out of range");
  }
  for (std::int64_t n = 0; n < tn; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      for (std::int64_t h = 0; h < th; ++h) {
        const float* src = patch.data_.data() + ((n * C + c) * th + h) * tw;
        float* dst =
            data_.data() + (((n0 + n) * C + c) * H + (h0 + h)) * W + w0;
        std::memcpy(dst, src, static_cast<std::size_t>(tw) * sizeof(float));
      }
    }
  }
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::add_(const Tensor& other) {
  assert(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  assert(shape_ == other.shape_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float v) {
  for (auto& x : data_) x *= v;
  return *this;
}

float Tensor::sum() const {
  // Pairwise-ish accumulation via double to keep error small.
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::min() const {
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sparsity() const {
  if (data_.empty()) return 0.0;
  std::int64_t zeros = 0;
  for (float v : data_) zeros += (v == 0.0f);
  return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

float Tensor::max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.shape_ == b.shape_);
  float m = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

std::string Tensor::to_string(int max_elems) const {
  std::ostringstream os;
  os << "Tensor" << shape_.to_string() << " {";
  const std::int64_t n = std::min<std::int64_t>(numel(), max_elems);
  for (std::int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (numel() > n) os << ", ...";
  os << '}';
  return os.str();
}

}  // namespace adcnn
