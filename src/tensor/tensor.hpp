// Dense row-major float tensor, the data substrate for the whole library.
//
// Tensors are value types backed by a contiguous std::vector<float> (RAII;
// no manual memory management anywhere). Layout is row-major with the last
// dimension fastest. CNN activations use NCHW; 1-D (CharCNN) data is stored
// as NCHW with H == 1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace adcnn {

/// Tensor shape: up to 4 dimensions used in practice, but arbitrary rank is
/// supported. Stored as a small vector of extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {}

  std::int64_t rank() const { return static_cast<std::int64_t>(dims_.size()); }
  std::int64_t operator[](std::int64_t i) const { return dims_[i]; }
  std::int64_t& operator[](std::int64_t i) { return dims_[i]; }

  /// Total number of elements (1 for a rank-0 shape).
  std::int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::string to_string() const;

 private:
  std::vector<std::int64_t> dims_;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);

  /// NCHW convenience constructors.
  static Tensor zeros(Shape shape) { return Tensor(std::move(shape), 0.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// i.i.d. N(mean, stddev) entries.
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// i.i.d. U[lo, hi) entries.
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// Wrap an explicit data vector (size must match shape.numel()).
  static Tensor from_data(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::int64_t i) { return data_[i]; }
  float operator[](std::int64_t i) const { return data_[i]; }

  /// 4-D accessors (NCHW). Bounds are the caller's responsibility; asserts
  /// in debug builds.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  const float& at(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const;

  // NCHW dimension shorthands (valid only for rank-4 tensors).
  std::int64_t n() const { return shape_[0]; }
  std::int64_t c() const { return shape_[1]; }
  std::int64_t h() const { return shape_[2]; }
  std::int64_t w() const { return shape_[3]; }

  /// Reinterpret with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  /// Copy a spatial crop [h0,h0+th) x [w0,w0+tw) of one batch sample range
  /// [n0, n0+tn), all channels. Used by tiling code.
  Tensor crop(std::int64_t n0, std::int64_t tn, std::int64_t h0,
              std::int64_t th, std::int64_t w0, std::int64_t tw) const;

  /// Paste `patch` (rank-4) at offset (n0, 0, h0, w0).
  void paste(const Tensor& patch, std::int64_t n0, std::int64_t h0,
             std::int64_t w0);

  void fill(float v);
  void zero() { fill(0.0f); }

  // Elementwise in-place helpers (shapes must match for the tensor variants).
  Tensor& add_(const Tensor& other);
  Tensor& add_scaled_(const Tensor& other, float alpha);  // this += alpha*other
  Tensor& mul_(float v);

  /// Reductions.
  float sum() const;
  float min() const;
  float max() const;
  float abs_max() const;
  /// Fraction of entries equal to exactly 0.0f.
  double sparsity() const;

  /// Max over |a-b|; shapes must match.
  static float max_abs_diff(const Tensor& a, const Tensor& b);

  std::string to_string(int max_elems = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace adcnn
