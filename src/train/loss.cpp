#include "train/loss.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace adcnn::train {

namespace {

/// Softmax CE over one row of K logits with stride `stride` between class
/// entries. Returns the probability-minus-onehot gradient scaled by
/// `grad_scale` and accumulates loss/correct counters.
void row_softmax_ce(const float* logits, float* grad, std::int64_t K,
                    std::int64_t stride, int label, double grad_scale,
                    double& loss, std::int64_t& correct) {
  double maxv = -1e300;
  std::int64_t argmax = 0;
  for (std::int64_t k = 0; k < K; ++k) {
    const double v = logits[k * stride];
    if (v > maxv) {
      maxv = v;
      argmax = k;
    }
  }
  double denom = 0.0;
  for (std::int64_t k = 0; k < K; ++k)
    denom += std::exp(static_cast<double>(logits[k * stride]) - maxv);
  const double logz = std::log(denom) + maxv;
  loss += logz - static_cast<double>(logits[label * stride]);
  correct += (argmax == label);
  for (std::int64_t k = 0; k < K; ++k) {
    const double p =
        std::exp(static_cast<double>(logits[k * stride]) - logz);
    grad[k * stride] =
        static_cast<float>(grad_scale * (p - (k == label ? 1.0 : 0.0)));
  }
}

}  // namespace

LossResult softmax_ce(const Tensor& logits, std::span<const int> labels) {
  if (logits.shape().rank() != 2 ||
      logits.shape()[0] != static_cast<std::int64_t>(labels.size())) {
    throw std::invalid_argument("softmax_ce: logits/labels mismatch");
  }
  const std::int64_t N = logits.shape()[0], K = logits.shape()[1];
  LossResult out;
  out.grad = Tensor(logits.shape());
  double loss = 0.0;
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < N; ++n) {
    row_softmax_ce(logits.data() + n * K, out.grad.data() + n * K, K, 1,
                   labels[static_cast<std::size_t>(n)],
                   1.0 / static_cast<double>(N), loss, correct);
  }
  out.loss = loss / static_cast<double>(N);
  out.accuracy = static_cast<double>(correct) / static_cast<double>(N);
  return out;
}

LossResult dense_ce(const Tensor& logits, std::span<const int> labels) {
  if (logits.shape().rank() != 4) {
    throw std::invalid_argument("dense_ce: logits must be (N,K,H,W)");
  }
  const std::int64_t N = logits.n(), K = logits.c(), H = logits.h(),
                     W = logits.w();
  if (static_cast<std::int64_t>(labels.size()) != N * H * W) {
    throw std::invalid_argument("dense_ce: label count mismatch");
  }
  LossResult out;
  out.grad = Tensor(logits.shape());
  double loss = 0.0;
  std::int64_t correct = 0;
  const double scale = 1.0 / static_cast<double>(N * H * W);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t w = 0; w < W; ++w) {
        const std::int64_t base = ((n * K) * H + h) * W + w;
        row_softmax_ce(logits.data() + base, out.grad.data() + base, K, H * W,
                       labels[static_cast<std::size_t>((n * H + h) * W + w)],
                       scale, loss, correct);
      }
  out.loss = loss * scale;
  out.accuracy = static_cast<double>(correct) / static_cast<double>(N * H * W);
  return out;
}

double mean_iou(const Tensor& logits, std::span<const int> labels,
                int num_classes) {
  const std::int64_t N = logits.n(), K = logits.c(), H = logits.h(),
                     W = logits.w();
  std::vector<std::int64_t> inter(static_cast<std::size_t>(num_classes), 0);
  std::vector<std::int64_t> uni(static_cast<std::size_t>(num_classes), 0);
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t h = 0; h < H; ++h)
      for (std::int64_t w = 0; w < W; ++w) {
        std::int64_t pred = 0;
        float best = logits.at(n, 0, h, w);
        for (std::int64_t k = 1; k < K; ++k)
          if (logits.at(n, k, h, w) > best) {
            best = logits.at(n, k, h, w);
            pred = k;
          }
        const int truth =
            labels[static_cast<std::size_t>((n * H + h) * W + w)];
        if (pred == truth) {
          ++inter[static_cast<std::size_t>(truth)];
          ++uni[static_cast<std::size_t>(truth)];
        } else {
          ++uni[static_cast<std::size_t>(truth)];
          ++uni[static_cast<std::size_t>(pred)];
        }
      }
  double sum = 0.0;
  int present = 0;
  for (int k = 0; k < num_classes; ++k) {
    if (uni[static_cast<std::size_t>(k)] == 0) continue;
    sum += static_cast<double>(inter[static_cast<std::size_t>(k)]) /
           static_cast<double>(uni[static_cast<std::size_t>(k)]);
    ++present;
  }
  return present == 0 ? 0.0 : sum / present;
}

}  // namespace adcnn::train
