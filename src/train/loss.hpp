// Loss functions with analytic gradients, mean-reduced over the batch.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace adcnn::train {

struct LossResult {
  double loss = 0.0;
  Tensor grad;         // d loss / d logits
  double accuracy = 0.0;  // top-1 (classification) or per-cell (dense)
};

/// Softmax cross-entropy on (N, K) logits.
LossResult softmax_ce(const Tensor& logits, std::span<const int> labels);

/// Per-cell softmax cross-entropy on (N, K, H, W) logits against N*H*W
/// labels (segmentation masks, detection grids).
LossResult dense_ce(const Tensor& logits, std::span<const int> labels);

/// Mean intersection-over-union over classes present in the labels
/// (the paper's FCN metric).
double mean_iou(const Tensor& logits, std::span<const int> labels,
                int num_classes);

}  // namespace adcnn::train
