#include "train/optimizer.hpp"

namespace adcnn::train {

Sgd::Sgd(std::vector<nn::Param*> params, double lr, double momentum,
         double weight_decay)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (nn::Param* p : params_)
    velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Param& p = *params_[i];
    Tensor& v = velocity_[i];
    const float lr = static_cast<float>(lr_);
    const float mom = static_cast<float>(momentum_);
    const float wd = static_cast<float>(weight_decay_);
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] + wd * p.value[j];
      v[j] = mom * v[j] + g;
      p.value[j] -= lr * v[j];
    }
    p.mark_dirty();  // invalidate packed-weight caches keyed on the value
  }
}

void Sgd::zero_grad() {
  for (nn::Param* p : params_) p->zero_grad();
}

}  // namespace adcnn::train
