// SGD with momentum and decoupled weight decay.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace adcnn::train {

class Sgd {
 public:
  Sgd(std::vector<nn::Param*> params, double lr, double momentum = 0.9,
      double weight_decay = 0.0);

  void step();
  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  std::vector<nn::Param*> params_;
  std::vector<Tensor> velocity_;
  double lr_, momentum_, weight_decay_;
};

}  // namespace adcnn::train
