#include "train/progressive.hpp"

#include <algorithm>
#include <cstdio>

namespace adcnn::train {

namespace {

/// Retrain `model` until recovered or the epoch budget runs out.
StageReport run_stage(const std::string& name, nn::Model& model,
                      const data::Dataset& train_set,
                      const data::Dataset& test_set, double target,
                      const ProgressiveConfig& cfg) {
  StageReport report;
  report.stage = name;
  EvalResult eval = evaluate(model, test_set);
  report.accuracy = eval.accuracy;
  if (eval.accuracy >= target) {
    report.recovered = true;
    return report;  // modification was harmless; no retraining needed
  }
  Sgd opt(model.params(), cfg.retrain.lr, cfg.retrain.momentum,
          cfg.retrain.weight_decay);
  Rng rng(cfg.retrain.seed ^ std::hash<std::string>{}(name));
  for (int epoch = 0; epoch < cfg.max_epochs_per_stage; ++epoch) {
    train_epoch(model, train_set, opt, rng, cfg.retrain.batch);
    ++report.epochs_used;
    eval = evaluate(model, test_set);
    report.accuracy = eval.accuracy;
    if (cfg.retrain.verbose) {
      std::printf("    [%s] epoch %d: acc=%.4f (target %.4f)\n", name.c_str(),
                  report.epochs_used, eval.accuracy, target);
      std::fflush(stdout);
    }
    if (eval.accuracy >= target) {
      report.recovered = true;
      break;
    }
  }
  return report;
}

core::PartitionedModel build_stage(const std::function<nn::Model()>& build,
                                   const ProgressiveConfig& cfg,
                                   bool clipped, bool quant) {
  core::FdspOptions opt;
  opt.grid = cfg.grid;
  opt.clipped_relu = clipped;
  opt.clip_lower = cfg.clip_lower;
  opt.clip_upper = cfg.clip_upper;
  opt.quantize = quant;
  opt.bits = cfg.bits;
  return core::apply_fdsp(build(), opt);
}

}  // namespace

ProgressiveResult progressive_retrain(const std::function<nn::Model()>& build,
                                      nn::Model& original,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test_set,
                                      const ProgressiveConfig& cfg) {
  ProgressiveResult result;
  result.baseline_accuracy = evaluate(original, test_set).accuracy;
  const double target = result.baseline_accuracy - cfg.recover_margin;

  // Step 3 of Algorithm 1: apply FDSP, warm-start from M_ori, retrain.
  core::PartitionedModel m1 = build_stage(build, cfg, false, false);
  nn::Model::copy_params(original, m1.model);
  result.stages.push_back(
      run_stage("fdsp", m1.model, train_set, test_set, target, cfg));

  // Step 4: insert the clipped ReLU, warm-start from M_1.
  core::PartitionedModel m2 = build_stage(build, cfg, true, false);
  nn::Model::copy_params(m1.model, m2.model);
  result.stages.push_back(
      run_stage("clipped_relu", m2.model, train_set, test_set, target, cfg));

  // Step 5: add quantization, warm-start from M_2.
  core::PartitionedModel m3 = build_stage(build, cfg, true, true);
  nn::Model::copy_params(m2.model, m3.model);
  result.stages.push_back(
      run_stage("quantization", m3.model, train_set, test_set, target, cfg));

  result.final_model = std::move(m3);
  return result;
}

std::pair<float, float> suggest_clip_bounds(nn::Model& trained,
                                            const data::Dataset& sample,
                                            double sparsity_target,
                                            std::int64_t max_samples) {
  const std::int64_t count = std::min<std::int64_t>(max_samples, sample.size());
  const Tensor x =
      sample.images.crop(0, count, 0, sample.images.h(), 0, sample.images.w());
  const Tensor act =
      trained.forward_range(x, 0, trained.separable_end_layer());
  std::vector<float> positives;
  positives.reserve(static_cast<std::size_t>(act.numel()));
  for (std::int64_t i = 0; i < act.numel(); ++i)
    if (act[i] > 0.0f) positives.push_back(act[i]);
  if (positives.empty()) return {0.0f, 1.0f};
  std::sort(positives.begin(), positives.end());
  // The values already <= 0 are zero after the ReLU; to reach the overall
  // sparsity target we clip away the lowest positives as needed.
  const double already_zero =
      1.0 - static_cast<double>(positives.size()) /
                static_cast<double>(act.numel());
  double extra = sparsity_target - already_zero;
  extra = std::clamp(extra, 0.0, 0.95);
  const double cut = extra / std::max(1e-9, 1.0 - already_zero);
  const std::size_t a_idx = std::min(
      positives.size() - 1,
      static_cast<std::size_t>(cut * static_cast<double>(positives.size())));
  const std::size_t b_idx = std::min(
      positives.size() - 1,
      static_cast<std::size_t>(0.99 * static_cast<double>(positives.size())));
  float a = positives[a_idx];
  float b = positives[b_idx];
  if (!(b > a)) b = a + 1.0f;
  return {a, b};
}

}  // namespace adcnn::train
