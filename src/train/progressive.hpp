// Algorithm 1: progressive retraining.
//
// Starting from a converged original model M_ori, the training graph is
// modified in three small increments — FDSP tiling, clipped ReLU,
// quantization — and after each increment the model is retrained (warm-
// started from the previous stage) until the test accuracy recovers to
// within a margin of the original. The per-stage epoch counts reproduce
// Table 1; the final accuracies reproduce Figure 10.
#pragma once

#include <functional>

#include "core/fdsp.hpp"
#include "data/dataset.hpp"
#include "train/trainer.hpp"

namespace adcnn::train {

struct ProgressiveConfig {
  core::TileGrid grid;
  float clip_lower = 0.0f;
  float clip_upper = 6.0f;
  int bits = 4;
  /// Retraining budget per stage; a stage stops early once recovered.
  int max_epochs_per_stage = 8;
  /// "Recovered" means test accuracy >= baseline - recover_margin.
  double recover_margin = 0.01;
  TrainConfig retrain;  // lr etc. (epochs field ignored)
};

struct StageReport {
  std::string stage;      // "fdsp", "clipped_relu", "quantization"
  int epochs_used = 0;    // epochs actually run (0 if instantly recovered)
  double accuracy = 0.0;  // test accuracy at stage end
  bool recovered = false;
};

struct ProgressiveResult {
  core::PartitionedModel final_model;  // M_final
  std::vector<StageReport> stages;
  double baseline_accuracy = 0.0;  // M_ori test accuracy
  int total_epochs() const {
    int total = 0;
    for (const auto& stage : stages) total += stage.epochs_used;
    return total;
  }
};

/// `build` must construct a fresh untrained copy of the original topology
/// (same layer structure as `original`). `original` is M_ori, already
/// trained under the original configuration.
ProgressiveResult progressive_retrain(
    const std::function<nn::Model()>& build, nn::Model& original,
    const data::Dataset& train_set, const data::Dataset& test_set,
    const ProgressiveConfig& cfg);

/// §7.1's "coarse parameter range based on separable layer block output
/// statistics": run the trained model's separable prefix on a sample and
/// return clip bounds (a = quantile of the positive activations giving
/// roughly `sparsity_target` zeros, b = 99th percentile).
std::pair<float, float> suggest_clip_bounds(nn::Model& trained,
                                            const data::Dataset& sample,
                                            double sparsity_target = 0.5,
                                            std::int64_t max_samples = 32);

}  // namespace adcnn::train
