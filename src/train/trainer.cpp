#include "train/trainer.hpp"

#include <cstdio>
#include <numeric>

#include "train/loss.hpp"

namespace adcnn::train {

void make_batch(const data::Dataset& ds, std::span<const int> indices,
                Tensor& x, std::vector<int>& y) {
  const std::int64_t B = static_cast<std::int64_t>(indices.size());
  const std::int64_t C = ds.images.c(), H = ds.images.h(), W = ds.images.w();
  x = Tensor(Shape{B, C, H, W});
  for (std::int64_t b = 0; b < B; ++b) {
    const Tensor sample =
        ds.images.crop(indices[static_cast<std::size_t>(b)], 1, 0, H, 0, W);
    x.paste(sample, b, 0, 0);
  }
  y.clear();
  if (ds.task == data::Task::kClassify) {
    for (const int i : indices)
      y.push_back(ds.labels[static_cast<std::size_t>(i)]);
  } else {
    const std::int64_t per = ds.dense_h * ds.dense_w;
    for (const int i : indices)
      y.insert(y.end(), ds.dense.begin() + i * per,
               ds.dense.begin() + (i + 1) * per);
  }
}

namespace {

LossResult batch_loss(const data::Dataset& ds, const Tensor& logits,
                      const std::vector<int>& y) {
  return ds.task == data::Task::kClassify ? softmax_ce(logits, y)
                                          : dense_ce(logits, y);
}

}  // namespace

EvalResult evaluate(nn::Model& model, const data::Dataset& ds,
                    std::int64_t batch) {
  EvalResult out;
  const std::int64_t N = ds.size();
  double iou_weighted = 0.0;
  for (std::int64_t begin = 0; begin < N; begin += batch) {
    const std::int64_t count = std::min(batch, N - begin);
    std::vector<int> indices(static_cast<std::size_t>(count));
    std::iota(indices.begin(), indices.end(), static_cast<int>(begin));
    Tensor x;
    std::vector<int> y;
    make_batch(ds, indices, x, y);
    const Tensor logits = model.forward(x, nn::Mode::kEval);
    const LossResult r = batch_loss(ds, logits, y);
    out.loss += r.loss * static_cast<double>(count);
    out.accuracy += r.accuracy * static_cast<double>(count);
    if (ds.task == data::Task::kDense)
      iou_weighted +=
          mean_iou(logits, y, ds.num_classes) * static_cast<double>(count);
  }
  out.loss /= static_cast<double>(N);
  out.accuracy /= static_cast<double>(N);
  out.mean_iou = iou_weighted / static_cast<double>(N);
  return out;
}

double train_epoch(nn::Model& model, const data::Dataset& ds, Sgd& opt,
                   Rng& rng, std::int64_t batch) {
  const std::int64_t N = ds.size();
  std::vector<int> order(static_cast<std::size_t>(N));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  double total_loss = 0.0;
  for (std::int64_t begin = 0; begin < N; begin += batch) {
    const std::int64_t count = std::min(batch, N - begin);
    const std::span<const int> indices(order.data() + begin,
                                       static_cast<std::size_t>(count));
    Tensor x;
    std::vector<int> y;
    make_batch(ds, indices, x, y);
    opt.zero_grad();
    const Tensor logits = model.forward(x, nn::Mode::kTrain);
    const LossResult r = batch_loss(ds, logits, y);
    model.backward(r.grad);
    opt.step();
    total_loss += r.loss * static_cast<double>(count);
  }
  return total_loss / static_cast<double>(N);
}

std::vector<EvalResult> train(nn::Model& model, const data::Dataset& train_set,
                              const data::Dataset& test_set,
                              const TrainConfig& cfg) {
  Sgd opt(model.params(), cfg.lr, cfg.momentum, cfg.weight_decay);
  Rng rng(cfg.seed);
  std::vector<EvalResult> trace;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    const double loss = train_epoch(model, train_set, opt, rng, cfg.batch);
    const EvalResult eval = evaluate(model, test_set);
    if (cfg.verbose) {
      std::printf("  [%s] epoch %d: train_loss=%.4f test_acc=%.4f\n",
                  model.name.c_str(), epoch + 1, loss, eval.accuracy);
      std::fflush(stdout);
    }
    trace.push_back(eval);
  }
  return trace;
}

}  // namespace adcnn::train
