// Mini-batch training / evaluation loop over the in-memory datasets.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "train/optimizer.hpp"

namespace adcnn::train {

struct TrainConfig {
  int epochs = 5;
  std::int64_t batch = 32;
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  std::uint64_t seed = 7;
  bool verbose = false;
};

struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;   // top-1 or per-cell accuracy
  double mean_iou = 0.0;   // dense tasks only
};

/// Gather samples `indices[begin, begin+count)` into contiguous tensors.
void make_batch(const data::Dataset& ds, std::span<const int> indices,
                Tensor& x, std::vector<int>& y);

EvalResult evaluate(nn::Model& model, const data::Dataset& ds,
                    std::int64_t batch = 64);

/// One pass over the (shuffled) training set; returns mean training loss.
double train_epoch(nn::Model& model, const data::Dataset& ds, Sgd& opt,
                   Rng& rng, std::int64_t batch);

/// Full loop; returns the per-epoch test evaluation trace.
std::vector<EvalResult> train(nn::Model& model, const data::Dataset& train_set,
                              const data::Dataset& test_set,
                              const TrainConfig& cfg);

}  // namespace adcnn::train
