#include <gtest/gtest.h>

#include <cmath>

#include "core/allocate.hpp"

namespace adcnn::core {
namespace {

AllocRequest request(std::vector<double> speeds, std::int64_t tiles,
                     std::vector<std::int64_t> caps = {}) {
  AllocRequest req;
  req.speeds = std::move(speeds);
  req.tiles = tiles;
  req.capacity_tiles = std::move(caps);
  return req;
}

TEST(Allocate, UniformSpeedsSplitEvenly) {
  const auto x = allocate_tiles(request({1, 1, 1, 1}, 8));
  for (const auto n : x) EXPECT_EQ(n, 2);
}

TEST(Allocate, ProportionalToSpeed) {
  // Node 0 twice as fast -> roughly twice the tiles.
  const auto x = allocate_tiles(request({2, 1, 1}, 8));
  EXPECT_EQ(x[0], 4);
  EXPECT_EQ(x[1], 2);
  EXPECT_EQ(x[2], 2);
}

TEST(Allocate, SumEqualsTileCount) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> speeds;
    for (int k = 0; k < 5; ++k) speeds.push_back(rng.uniform(0.1, 4.0));
    const std::int64_t tiles =
        static_cast<std::int64_t>(rng.uniform_int(60)) + 1;
    const auto x = allocate_tiles(request(speeds, tiles), &rng);
    std::int64_t sum = 0;
    for (const auto n : x) sum += n;
    EXPECT_EQ(sum, tiles);
  }
}

TEST(Allocate, DeadNodeGetsNothing) {
  // Paper §6.3: if node k fails, s_k -> 0 and no tiles are assigned.
  const auto x = allocate_tiles(request({1, 0, 1}, 6));
  EXPECT_EQ(x[1], 0);
  EXPECT_EQ(x[0] + x[2], 6);
}

TEST(Allocate, CapacityBound) {
  const auto x = allocate_tiles(request({10, 1}, 8, {3, 100}));
  EXPECT_EQ(x[0], 3);  // fast node clamped by storage (M x_k <= H_k)
  EXPECT_EQ(x[1], 5);
}

TEST(Allocate, ThrowsWhenInfeasible) {
  EXPECT_THROW(allocate_tiles(request({0, 0}, 4)), std::runtime_error);
  EXPECT_THROW(allocate_tiles(request({1, 1}, 10, {4, 4})),
               std::runtime_error);
}

TEST(Allocate, GreedyMatchesBruteForceOnSmallInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<double> speeds;
    const int K = 2 + static_cast<int>(rng.uniform_int(3));
    for (int k = 0; k < K; ++k) speeds.push_back(rng.uniform(0.2, 3.0));
    const std::int64_t tiles =
        static_cast<std::int64_t>(rng.uniform_int(11)) + 1;
    const auto req = request(speeds, tiles);
    const auto greedy = allocate_tiles(req);
    const auto optimal = allocate_tiles_bruteforce(req);
    // Greedy (LPT-style on uniform machines) is optimal for unit jobs.
    EXPECT_NEAR(makespan(greedy, speeds), makespan(optimal, speeds), 1e-9)
        << "trial " << trial;
  }
}

TEST(Allocate, GreedyMatchesBruteForceOnClusteredSpeeds) {
  // Near-identical speeds maximize tie-set traffic, the regime where the
  // stale-epsilon bug lived. Random tie-breaking must never leave the
  // optimal makespan (greedy is optimal for unit jobs, so any excess
  // means a strictly-worse candidate slipped into the tie set).
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    const double base = rng.uniform(0.5, 2.0);
    std::vector<double> speeds;
    const int K = 3 + static_cast<int>(rng.uniform_int(2));
    for (int k = 0; k < K; ++k) {
      speeds.push_back(base * (1.0 + 1e-13 * static_cast<double>(
                                          rng.uniform_int(20))));
    }
    const std::int64_t tiles =
        static_cast<std::int64_t>(rng.uniform_int(12)) + 1;
    const auto req = request(speeds, tiles);
    const auto greedy = allocate_tiles(req, &rng);
    const auto optimal = allocate_tiles_bruteforce(req);
    EXPECT_LE(makespan(greedy, speeds), makespan(optimal, speeds) + 1e-10)
        << "trial " << trial;
  }
}

TEST(Allocate, TieSetExcludesStrictlyWorseCandidates) {
  // Regression for the stale-epsilon bug: candidate order B, A, C with
  // vals {m + 0.8e-12, m + 1.6e-12, m}. The old code admitted A against
  // B's value (within 1e-12) without ever lowering best_val to C's true
  // minimum, so A — 1.6e-12 worse than the minimum — stayed in the tie
  // set and could win the random tie-break. A must never be picked.
  AllocRequest req;
  req.speeds = {1.0 / (1.0 - 0.8e-12), 1.0, 1.0 / (1.0 - 1.6e-12)};
  req.tiles = 1;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto x = allocate_tiles(req, &rng);
    EXPECT_EQ(x[0] + x[1] + x[2], 1);
    EXPECT_EQ(x[1], 0) << "seed " << seed
                       << ": strictly-worse candidate won the tie-break";
  }
}

TEST(Allocate, MakespanInfinityForDeadAssigned) {
  EXPECT_TRUE(std::isinf(makespan({1, 1}, {1.0, 0.0})));
  EXPECT_EQ(makespan({2, 0}, {1.0, 0.0}), 2.0);
}

TEST(Allocate, RandomTieBreakStaysValid) {
  Rng rng(9);
  const auto x = allocate_tiles(request({1, 1, 1}, 7), &rng);
  std::int64_t sum = 0;
  for (const auto n : x) {
    sum += n;
    EXPECT_GE(n, 2);
    EXPECT_LE(n, 3);
  }
  EXPECT_EQ(sum, 7);
}

TEST(Allocate, EmptyRequestRejected) {
  EXPECT_THROW(allocate_tiles(request({}, 4)), std::invalid_argument);
  AllocRequest bad = request({1, 1}, 4, {1});
  EXPECT_THROW(allocate_tiles(bad), std::invalid_argument);
}

}  // namespace
}  // namespace adcnn::core
