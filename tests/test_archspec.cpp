#include <gtest/gtest.h>

#include "nn/archspec.hpp"

namespace adcnn::arch {
namespace {

TEST(ArchSpec, Vgg16Dimensions) {
  const ArchSpec spec = vgg16();
  EXPECT_EQ(spec.blocks.size(), 14u);  // 13 conv blocks + FC
  EXPECT_EQ(spec.separable_blocks, 7);
  // First conv: 3->64 at 224x224.
  const auto& c1 = spec.blocks[0].layers[0];
  EXPECT_EQ(c1.cout, 64);
  EXPECT_EQ(c1.hout, 224);
  // L2 ends with a pool: ofmap 112x112x64.
  EXPECT_EQ(spec.blocks[1].layers.back().hout, 112);
  // Total MACs of VGG16 are ~15.5G -> ~31G FLOPs (2x).
  EXPECT_NEAR(static_cast<double>(spec.total_flops()), 31.0e9, 2.5e9);
  // Params ~138M -> ~553MB.
  EXPECT_NEAR(static_cast<double>(spec.total_param_bytes()), 553e6, 15e6);
}

TEST(ArchSpec, Vgg16SeparableOfmap) {
  const ArchSpec spec = vgg16();
  std::int64_t c = 0, h = 0, w = 0;
  spec.separable_out_dims(c, h, w);
  // Through 7 blocks (3 pools): 28x28x256.
  EXPECT_EQ(c, 256);
  EXPECT_EQ(h, 28);
  EXPECT_EQ(w, 28);
}

TEST(ArchSpec, FcnQuotesPaperOfmap) {
  // §4 of the paper: FCN's separable ofmap is 28x28x512, "2.7x larger than
  // the input image (3x224x224x32)". 28*28*512*32 bits is 12.85 Mbit and
  // 12.85/4.82 = 2.67 — consistent with the quoted 2.7x ratio; the paper's
  // "25.7 Mbits" is an internal factor-of-2 typo.
  const ArchSpec spec = fcn32();
  std::int64_t c = 0, h = 0, w = 0;
  spec.separable_out_dims(c, h, w);
  EXPECT_EQ(c, 512);
  EXPECT_EQ(h, 28);
  EXPECT_EQ(w, 28);
  const double mbit = static_cast<double>(spec.separable_out_bytes()) * 8e-6;
  EXPECT_NEAR(mbit, 12.85, 0.1);
  EXPECT_NEAR(mbit / (static_cast<double>(spec.input_bytes()) * 8e-6), 2.67,
              0.05);
}

TEST(ArchSpec, Resnet34Structure) {
  const ArchSpec spec = resnet34();
  EXPECT_EQ(spec.blocks.size(), 18u);  // stem + 16 units + head
  EXPECT_EQ(spec.separable_blocks, 12);
  // ~3.6 GMACs -> ~7.3G FLOPs.
  EXPECT_NEAR(static_cast<double>(spec.total_flops()), 7.3e9, 1.0e9);
  // Stage transition: unit 4 (first of stage 2) halves the map to 28.
  EXPECT_EQ(spec.blocks[4].layers.back().hout, 28);
}

TEST(ArchSpec, Resnet18Structure) {
  const ArchSpec spec = resnet18();
  EXPECT_EQ(spec.blocks.size(), 10u);
  EXPECT_NEAR(static_cast<double>(spec.total_flops()), 3.6e9, 0.6e9);
}

TEST(ArchSpec, YoloStructure) {
  const ArchSpec spec = yolov2();
  EXPECT_EQ(spec.hin, 416);
  EXPECT_EQ(spec.separable_blocks, 12);
  // Darknet-19 detector is ~30-35 GFLOPs at 416x416.
  EXPECT_GT(spec.total_flops(), 25e9);
  EXPECT_LT(spec.total_flops(), 45e9);
  // Final grid is 13x13.
  EXPECT_EQ(spec.blocks.back().layers.back().hout, 13);
  EXPECT_EQ(spec.blocks.back().layers.back().cout, 125);
}

TEST(ArchSpec, CharCnnStructure) {
  const ArchSpec spec = charcnn();
  EXPECT_EQ(spec.cin, 70);
  EXPECT_EQ(spec.win, 1014);
  EXPECT_EQ(spec.separable_blocks, 4);
  // Valid convs + pool3: L1 out = (1014-7+1)/3 = 336.
  EXPECT_EQ(spec.blocks[0].layers.back().wout, 336);
  // FC input = 34 * 256.
  EXPECT_EQ(spec.blocks.back().layers[0].cin, 34 * 256);
}

TEST(ArchSpec, PrefixSuffixPartitionFlops) {
  for (const char* name : {"vgg16", "resnet34", "yolo", "fcn", "charcnn"}) {
    const ArchSpec spec = by_name(name);
    EXPECT_EQ(spec.prefix_flops() + spec.suffix_flops(), spec.total_flops())
        << name;
    EXPECT_GT(spec.prefix_flops(), 0) << name;
    EXPECT_GT(spec.suffix_flops(), 0) << name;
  }
}

TEST(ArchSpec, SpatialOpsExcludeAux) {
  const ArchSpec spec = resnet34();
  for (const auto& op : spec.spatial_ops(5)) {
    EXPECT_FALSE(op.aux);
    EXPECT_TRUE(op.op == Op::kConv || op.op == Op::kMaxPool);
  }
}

TEST(ArchSpec, ShapesChainBetweenBlocks) {
  for (const char* name : {"vgg16", "resnet18", "resnet34", "yolo", "fcn"}) {
    const ArchSpec spec = by_name(name);
    for (std::size_t b = 1; b < spec.blocks.size(); ++b) {
      const auto& prev = spec.blocks[b - 1].layers.back();
      const auto& next = spec.blocks[b].layers.front();
      if (next.op == Op::kFC || next.op == Op::kGlobalPool) continue;
      EXPECT_EQ(prev.cout, next.cin) << name << " block " << b;
      EXPECT_EQ(prev.hout, next.hin) << name << " block " << b;
    }
  }
}

TEST(ArchSpec, ByNameRejectsUnknown) {
  EXPECT_THROW(by_name("alexnet"), std::invalid_argument);
}

}  // namespace
}  // namespace adcnn::arch
