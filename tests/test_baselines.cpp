#include <gtest/gtest.h>

#include "baselines/aofl.hpp"
#include "baselines/neurosurgeon.hpp"
#include "sim/adcnn_sim.hpp"

namespace adcnn::baselines {
namespace {

TEST(Neurosurgeon, PicksBestCut) {
  const auto spec = arch::vgg16();
  const sim::DeviceSpec edge;
  const sim::CloudConfig cloud;
  const NeurosurgeonPlan best = neurosurgeon_plan(spec, edge, cloud);
  const int L = static_cast<int>(spec.all_layers().size());
  for (int cut = 0; cut <= L; cut += 7) {
    EXPECT_LE(best.latency_s,
              neurosurgeon_eval(spec, edge, cloud, cut).latency_s + 1e-12);
  }
  EXPECT_NEAR(best.edge_s + best.tx_s + best.cloud_s, best.latency_s, 1e-9);
}

TEST(Neurosurgeon, CutZeroIsCloudOnly) {
  const auto spec = arch::vgg16();
  const NeurosurgeonPlan plan =
      neurosurgeon_eval(spec, sim::DeviceSpec{}, sim::CloudConfig{}, 0);
  EXPECT_EQ(plan.edge_s, 0.0);
  EXPECT_GT(plan.tx_s, 0.0);
  EXPECT_GT(plan.cloud_s, 0.0);
}

TEST(Neurosurgeon, FullCutIsEdgeOnly) {
  const auto spec = arch::vgg16();
  const int L = static_cast<int>(spec.all_layers().size());
  const NeurosurgeonPlan plan =
      neurosurgeon_eval(spec, sim::DeviceSpec{}, sim::CloudConfig{}, L);
  EXPECT_EQ(plan.cloud_s, 0.0);
  EXPECT_EQ(plan.tx_bytes, sim::CloudConfig{}.result_bytes);
}

TEST(Neurosurgeon, TransmissionIsMajorShare) {
  // §7.4: the cut's ofmap upload dominates Neurosurgeon's latency ("67%
  // of the overall processing latencies"). Holds for the compute-heavy
  // models; ResNet34 is cheap enough on our Pi-class model that the
  // planner keeps it fully on the edge instead.
  for (const char* name : {"vgg16", "yolo"}) {
    const NeurosurgeonPlan plan = neurosurgeon_plan(
        arch::by_name(name), sim::DeviceSpec{}, sim::CloudConfig{});
    EXPECT_GT(plan.tx_s / plan.latency_s, 0.3) << name;
  }
}

TEST(Aofl, PrefersMultiBlockFusion) {
  // §7.4: early layers have cheap halos relative to their maps, so the
  // optimal round structure fuses several blocks at a time.
  const auto spec = arch::vgg16();
  const AoflPlan plan = aofl_plan(spec, core::TileGrid{2, 4},
                                  sim::DeviceSpec{}, sim::LinkSpec{});
  ASSERT_FALSE(plan.rounds.empty());
  EXPECT_GE(plan.rounds.front().end - plan.rounds.front().begin, 2);
  for (const auto& round : plan.rounds)
    EXPECT_GE(round.compute_overhead, 1.0);
}

TEST(Aofl, RoundsCoverSpatialBlocksContiguously) {
  const auto spec = arch::resnet34();
  const AoflPlan plan = aofl_plan(spec, core::TileGrid{2, 4},
                                  sim::DeviceSpec{}, sim::LinkSpec{});
  ASSERT_FALSE(plan.rounds.empty());
  EXPECT_EQ(plan.rounds.front().begin, 0);
  for (std::size_t i = 1; i < plan.rounds.size(); ++i)
    EXPECT_EQ(plan.rounds[i].begin, plan.rounds[i - 1].end);
}

TEST(Aofl, PlanBeatsSingleRoundChoices) {
  const auto spec = arch::resnet34();
  const core::TileGrid grid{2, 4};
  const AoflPlan best =
      aofl_plan(spec, grid, sim::DeviceSpec{}, sim::LinkSpec{});
  for (int fused : {1, 3, 6, 12}) {
    EXPECT_LE(best.latency_s,
              aofl_single_round(spec, grid, sim::DeviceSpec{},
                                sim::LinkSpec{}, fused)
                      .latency_s +
                  1e-12);
  }
}

TEST(Aofl, RoundComponentsSum) {
  const AoflPlan plan = aofl_single_round(
      arch::vgg16(), core::TileGrid{2, 4}, sim::DeviceSpec{},
      sim::LinkSpec{}, 5);
  ASSERT_EQ(plan.rounds.size(), 1u);
  EXPECT_NEAR(plan.rounds[0].total_s() + plan.head_s, plan.latency_s, 1e-9);
}

TEST(Aofl, DeeperSingleRoundFusionCostsMoreCompute) {
  const auto spec = arch::vgg16();
  const core::TileGrid grid{2, 4};
  double prev = 0.0;
  for (int fused : {2, 5, 9, 13}) {
    const AoflPlan plan = aofl_single_round(spec, grid, sim::DeviceSpec{},
                                            sim::LinkSpec{}, fused);
    EXPECT_GE(plan.rounds[0].compute_overhead, prev);
    prev = plan.rounds[0].compute_overhead;
  }
  EXPECT_GT(prev, 2.0);
}

TEST(Aofl, RejectsBadDepth) {
  EXPECT_THROW(aofl_single_round(arch::vgg16(), core::TileGrid{2, 4},
                                 sim::DeviceSpec{}, sim::LinkSpec{}, 0),
               std::invalid_argument);
  EXPECT_THROW(aofl_round(arch::vgg16(), core::TileGrid{2, 4},
                          sim::DeviceSpec{}, sim::LinkSpec{}, 3, 3),
               std::invalid_argument);
}

TEST(SotaOrdering, AdcnnBeatsAoflBeatsNeurosurgeon) {
  // Figure 14's headline ordering on all three models (ADCNN under the
  // deep partition the paper's testbed numbers imply).
  for (const char* name : {"vgg16", "resnet34", "yolo"}) {
    const auto spec = arch::by_name(name);
    auto cfg = sim::AdcnnSimConfig::uniform(8, sim::DeviceSpec{});
    cfg.separable_override = sim::deep_partition_blocks(spec);
    const double adcnn = simulate_adcnn(spec, cfg, 10).mean_latency_s;
    const double aofl = aofl_plan(spec, core::TileGrid{2, 4},
                                  sim::DeviceSpec{}, sim::LinkSpec{})
                            .latency_s;
    const double neuro =
        neurosurgeon_plan(spec, sim::DeviceSpec{}, sim::CloudConfig{})
            .latency_s;
    EXPECT_LT(adcnn, aofl) << name;
    EXPECT_LT(aofl, neuro) << name;
  }
}

}  // namespace
}  // namespace adcnn::baselines
