// Dynamic batching + multi-tenant admission tests: batched central jobs
// and the StreamingServer batcher must stay bit-identical to sequential
// infer(), weighted-fair dequeue must honor tenant weights, shedding must
// hit only the violating tenant, and the bounded Channel's accounting must
// survive racing producers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "runtime/channel.hpp"
#include "runtime/cluster.hpp"
#include "runtime/pipeline.hpp"

namespace adcnn::runtime {
namespace {

core::PartitionedModel make_partitioned(std::int64_t r = 2,
                                        std::int64_t c = 2) {
  Rng rng(31);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{r, c};
  opt.clipped_relu = true;
  opt.clip_lower = 0.0f;
  opt.clip_upper = 3.0f;
  opt.quantize = true;
  return core::apply_fdsp(nn::make_mini("vgg", rng, nn::MiniOptions{}), opt);
}

std::vector<Tensor> make_images(int n, std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<Tensor> images;
  for (int i = 0; i < n; ++i) {
    images.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
  }
  return images;
}

/// Sequential oracle outputs for `images` on a fresh identical cluster.
std::vector<Tensor> oracle_outputs(const std::vector<Tensor>& images,
                                   const ClusterConfig& cfg) {
  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  std::vector<Tensor> out;
  for (const auto& image : images) out.push_back(cluster.infer(image));
  return out;
}

// --- BatchedCentral: the begin_batch/finish_batch stage API -------------

/// Drive one batched job through the reentrant stage API by hand.
std::vector<Tensor> run_batch(CentralNode& central,
                              const std::vector<Tensor>& images,
                              InferStats* stats = nullptr) {
  const std::int64_t id = central.begin_batch(images);
  std::unique_ptr<CentralNode::ImageJob> job;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!job && std::chrono::steady_clock::now() < deadline) {
    auto done = central.pump_gather(std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(100));
    for (auto& j : done) {
      if (j->image_id == id) job = std::move(j);
    }
  }
  if (!job) throw std::runtime_error("run_batch: gather timed out");
  return central.finish_batch(std::move(job), stats);
}

TEST(BatchedCentral, BatchBitIdenticalToSequential) {
  const auto images = make_images(4, 13);
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  const auto oracle = oracle_outputs(images, cfg);

  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  const auto outputs = run_batch(cluster.central(), images);
  ASSERT_EQ(outputs.size(), images.size());
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_EQ(Tensor::max_abs_diff(outputs[i], oracle[i]), 0.0f)
        << "sample " << i;
  }
}

TEST(BatchedCentral, SingleImageBatchMatchesInfer) {
  const auto images = make_images(1, 17);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  const auto oracle = oracle_outputs(images, cfg);

  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  InferStats stats;
  const auto outputs = run_batch(cluster.central(), images, &stats);
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(Tensor::max_abs_diff(outputs[0], oracle[0]), 0.0f);
  EXPECT_EQ(stats.tiles_missing, 0);
}

TEST(BatchedCentral, MixedShapesRejected) {
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  EdgeCluster cluster(pm, cfg);
  Rng rng(3);
  std::vector<Tensor> mixed;
  mixed.push_back(Tensor::randn(Shape{1, 3, 32, 32}, rng));
  mixed.push_back(Tensor::randn(Shape{1, 3, 16, 16}, rng));
  EXPECT_THROW(cluster.central().begin_batch(mixed), std::invalid_argument);
  EXPECT_THROW(cluster.central().begin_batch({}), std::invalid_argument);
}

TEST(BatchedCentral, FinishImageRejectsBatchedJob) {
  const auto images = make_images(2, 19);
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  EdgeCluster cluster(pm, cfg);
  CentralNode& central = cluster.central();
  const std::int64_t id = central.begin_batch(images);
  std::unique_ptr<CentralNode::ImageJob> job;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!job && std::chrono::steady_clock::now() < deadline) {
    auto done = central.pump_gather(std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(100));
    for (auto& j : done) {
      if (j->image_id == id) job = std::move(j);
    }
  }
  ASSERT_TRUE(job != nullptr);
  EXPECT_EQ(job->batch, 2);
  EXPECT_THROW(central.finish_image(std::move(job)), std::logic_error);
}

// --- DynamicBatcher: the StreamingServer coalescing path ----------------

TEST(DynamicBatcher, BatchedServerBitIdenticalToSequential) {
  const auto images = make_images(10, 23);
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  const auto oracle = oracle_outputs(images, cfg);

  core::PartitionedModel pm = make_partitioned();
  ClusterConfig bcfg = cfg;
  bcfg.node_batching = NodeBatchConfig{4, 200};
  EdgeCluster cluster(pm, bcfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 4;
  scfg.batching = BatchConfig{4, 2000};
  StreamingServer server(cluster.central(), scfg);
  std::vector<std::int64_t> tickets;
  for (const auto& image : images) tickets.push_back(server.submit(image));
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Tensor y = server.wait(tickets[i]);
    EXPECT_EQ(Tensor::max_abs_diff(y, oracle[i]), 0.0f) << "image " << i;
  }
  server.close();
}

TEST(DynamicBatcher, TimeTriggerDispatchesLoneImage) {
  // One image with a huge max_batch: the max_wait_us deadline must fire
  // and dispatch a partial (size 1) batch instead of waiting forever.
  const auto images = make_images(1, 29);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  const auto oracle = oracle_outputs(images, cfg);

  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 8;
  scfg.batching = BatchConfig{8, 1000};
  StreamingServer server(cluster.central(), scfg);
  const auto ticket = server.submit(images[0]);
  const Tensor y = server.wait(ticket);
  EXPECT_EQ(Tensor::max_abs_diff(y, oracle[0]), 0.0f);
  server.close();
}

TEST(DynamicBatcher, CoalescesBacklogAndCapsBatchSize) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  // Build a backlog while a slow plug image holds all workers (cpu limit),
  // then verify the drained batches actually coalesced (size > 1) and
  // never exceeded max_batch.
  const auto images = make_images(9, 37);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  const auto oracle = oracle_outputs(images, cfg);

  obs::MetricsRegistry metrics;
  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 4;
  scfg.batching = BatchConfig{4, 2000};
  scfg.telemetry.metrics = &metrics;
  StreamingServer server(cluster.central(), scfg);

  for (int k = 0; k < cfg.num_nodes; ++k) cluster.node(k).set_cpu_limit(0.05);
  std::vector<std::int64_t> tickets;
  tickets.push_back(server.submit(images[0]));  // plug: occupies the cluster
  for (std::size_t i = 1; i < images.size(); ++i) {
    tickets.push_back(server.submit(images[i]));  // backlog piles up
  }
  for (int k = 0; k < cfg.num_nodes; ++k) cluster.node(k).set_cpu_limit(1.0);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const Tensor y = server.wait(tickets[i]);
    EXPECT_EQ(Tensor::max_abs_diff(y, oracle[i]), 0.0f) << "image " << i;
  }
  server.close();

  const auto snap = metrics.snapshot();
  const auto& q = snap.quantiles.at("batch.size_q").total;
  EXPECT_GT(q.count, 0);
  EXPECT_LE(q.max, 4.0);
  EXPECT_GT(q.max, 1.0) << "backlog never coalesced into a batch";
}

TEST(DynamicBatcher, RejectsInvalidBatchConfig) {
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.batching.max_batch = 0;
  EXPECT_THROW(StreamingServer(cluster.central(), scfg),
               std::invalid_argument);
  StreamingConfig scfg2;
  scfg2.batching.max_wait_us = -1;
  EXPECT_THROW(StreamingServer(cluster.central(), scfg2),
               std::invalid_argument);
}

// --- TenantAdmission: queues, weights, SLO-aware shedding ---------------

TEST(TenantAdmission, OutOfRangeTenantThrows) {
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  StreamingServer server(cluster.central(), scfg);
  auto image = make_images(1)[0];
  EXPECT_THROW(server.submit(1, image), std::out_of_range);
  EXPECT_THROW(server.try_submit(-1, image), std::out_of_range);
  EXPECT_THROW(server.tenant_slo(2), std::out_of_range);
  EXPECT_EQ(server.num_tenants(), 1);
  EXPECT_EQ(server.tenant_slo(0), nullptr);  // no SLO configured
  server.close();
}

TEST(TenantAdmission, RejectsNonPositiveWeight) {
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.tenants.resize(1);
  scfg.tenants[0].weight = 0.0;
  EXPECT_THROW(StreamingServer(cluster.central(), scfg),
               std::invalid_argument);
}

TEST(TenantAdmission, WeightedFairDequeueFavorsHeavyTenant) {
  // Plug the single permit with a slow image, enqueue tenant B's backlog
  // BEFORE tenant A's, and check the dispatcher still drains mostly A
  // first (weight 3 vs 1). image_id is assigned at begin, so it records
  // the dispatch order. A FIFO dispatcher would run all four B images
  // first.
  const auto images = make_images(9, 41);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 1;  // serialize dispatch
  scfg.tenants.resize(2);
  scfg.tenants[0].name = "heavy";
  scfg.tenants[0].weight = 3.0;
  scfg.tenants[1].name = "light";
  scfg.tenants[1].weight = 1.0;
  StreamingServer server(cluster.central(), scfg);

  for (int k = 0; k < cfg.num_nodes; ++k) cluster.node(k).set_cpu_limit(0.02);
  const auto plug = server.submit(0, images[0]);
  // While the plug holds the permit, queue 4 light-then-4 heavy images.
  std::vector<std::pair<int, std::int64_t>> tickets;  // tenant, ticket
  for (int i = 0; i < 4; ++i) {
    tickets.emplace_back(1, server.submit(1, images[1 + i]));
  }
  for (int i = 0; i < 4; ++i) {
    tickets.emplace_back(0, server.submit(0, images[5 + i]));
  }
  for (int k = 0; k < cfg.num_nodes; ++k) cluster.node(k).set_cpu_limit(1.0);

  server.wait(plug);
  std::vector<std::pair<std::int64_t, int>> order;  // image_id -> tenant
  for (const auto& [tenant, ticket] : tickets) {
    InferStats stats;
    server.wait(ticket, &stats);
    order.emplace_back(stats.image_id, tenant);
  }
  server.close();
  std::sort(order.begin(), order.end());
  // Stride scheduling at 3:1 dispatches heavy for at least 2 of the first
  // 4 post-plug slots (expected sequence H L H H H L ...); strict FIFO
  // would dispatch light for all 4.
  int heavy_first4 = 0;
  for (int i = 0; i < 4; ++i) heavy_first4 += order[i].second == 0 ? 1 : 0;
  EXPECT_GE(heavy_first4, 2);
}

TEST(TenantAdmission, BoundedQueueShedsOnlyThatTenant) {
  const int kFlood = 40;
  core::PartitionedModel pm = make_partitioned();
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 2;
  scfg.tenants.resize(2);
  scfg.tenants[0].name = "flooded";
  scfg.tenants[0].queue_capacity = 2;
  scfg.tenants[1].name = "calm";
  StreamingServer server(cluster.central(), scfg);

  const auto images = make_images(4, 43);
  std::vector<std::int64_t> accepted;
  int shed = 0;
  for (int i = 0; i < kFlood; ++i) {
    const auto t = server.try_submit(0, images[static_cast<std::size_t>(
                                            i % 4)]);
    if (t) {
      accepted.push_back(*t);
    } else {
      ++shed;
    }
  }
  const auto calm_ticket = server.try_submit(1, images[0]);
  ASSERT_TRUE(calm_ticket.has_value());  // calm tenant unaffected
  for (const auto t : accepted) server.wait(t);
  server.wait(*calm_ticket);
  server.close();

  EXPECT_EQ(shed + static_cast<int>(accepted.size()), kFlood);
  EXPECT_EQ(server.tenant_shed(0), shed);
  EXPECT_EQ(server.tenant_shed(1), 0);
}

TEST(TenantAdmission, DeadlineShedHitsOnlyViolatingTenant) {
  // Tenant "hot" has an impossible latency target; once its monitor trips,
  // its queued backlog is shed at dispatch with a "shed:" error while
  // tenant "cool" (no SLO) delivers everything, bit-exact.
  const int kHot = 30, kCool = 4;
  const auto cool_images = make_images(kCool, 47);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  const auto cool_oracle = oracle_outputs(cool_images, cfg);

  core::PartitionedModel pm = make_partitioned();
  EdgeCluster cluster(pm, cfg);
  StreamingConfig scfg;
  scfg.max_in_flight = 2;
  scfg.tenants.resize(2);
  scfg.tenants[0].name = "hot";
  scfg.tenants[0].slo.target_latency_s = 1e-6;  // every image misses
  scfg.tenants[0].slo.max_miss_rate = 0.5;
  scfg.tenants[0].slo.window = 16;
  scfg.tenants[0].slo.min_samples = 4;
  scfg.tenants[0].slo.sustain = 1;
  scfg.tenants[1].name = "cool";
  StreamingServer server(cluster.central(), scfg);
  ASSERT_NE(server.tenant_slo(0), nullptr);
  ASSERT_EQ(server.tenant_slo(1), nullptr);

  const auto hot_image = make_images(1, 53)[0];
  std::vector<std::int64_t> hot_tickets, cool_tickets;
  for (int i = 0; i < kHot; ++i) {
    hot_tickets.push_back(server.submit(0, hot_image));
  }
  for (const auto& image : cool_images) {
    cool_tickets.push_back(server.submit(1, image));
  }

  int hot_shed = 0, hot_ok = 0;
  for (const auto t : hot_tickets) {
    try {
      server.wait(t);
      ++hot_ok;
    } catch (const std::runtime_error& e) {
      ASSERT_EQ(std::string(e.what()).rfind("shed:", 0), 0u) << e.what();
      ++hot_shed;
    }
  }
  for (std::size_t i = 0; i < cool_tickets.size(); ++i) {
    const Tensor y = server.wait(cool_tickets[i]);
    EXPECT_EQ(Tensor::max_abs_diff(y, cool_oracle[i]), 0.0f);
  }
  server.close();

  EXPECT_EQ(hot_shed + hot_ok, kHot);
  EXPECT_GT(hot_shed, 0) << "violating tenant never shed its backlog";
  EXPECT_EQ(server.tenant_shed(0), hot_shed);
  EXPECT_EQ(server.tenant_shed(1), 0);
  EXPECT_GT(server.tenant_slo(0)->violations(), 0);
}

// --- ChannelStress: bounded-channel accounting under races --------------

TEST(ChannelStress, RacingProducersNeverLoseAccounting) {
  // 2 blocking senders + 2 shedding try_push producers against 2 consumers
  // on a capacity-8 channel: every send() item must arrive, every try_push
  // rejection must be counted exactly once, and the queue must never hold
  // more than its capacity.
  constexpr int kPerProducer = 2000;
  constexpr std::size_t kCapacity = 8;
  Channel<int> chan(kCapacity);

  obs::MetricsRegistry metrics;
  obs::Counter* sent = nullptr;
  obs::Counter* dropped = nullptr;
  obs::Counter* blocked = nullptr;
  if (obs::kEnabled) {
    sent = &metrics.counter("chan.inbox_sent");
    dropped = &metrics.counter("chan.dropped");
    blocked = &metrics.counter("chan.blocked");
    chan.attach_telemetry(nullptr, sent, dropped, blocked, nullptr);
  }

  std::atomic<int> pushed{0}, rejected{0}, received{0};
  std::atomic<bool> over_capacity{false};
  auto consumer = [&] {
    while (auto v = chan.receive()) {
      received.fetch_add(1);
      if (chan.size() > kCapacity) over_capacity.store(true);
    }
  };
  auto blocking_producer = [&] {
    for (int i = 0; i < kPerProducer; ++i) {
      if (chan.send(i)) pushed.fetch_add(1);
    }
  };
  auto shedding_producer = [&] {
    for (int i = 0; i < kPerProducer; ++i) {
      if (chan.try_push(i)) {
        pushed.fetch_add(1);
      } else {
        rejected.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(consumer);
  threads.emplace_back(consumer);
  threads.emplace_back(blocking_producer);
  threads.emplace_back(blocking_producer);
  threads.emplace_back(shedding_producer);
  threads.emplace_back(shedding_producer);
  threads[2].join();
  threads[3].join();
  threads[4].join();
  threads[5].join();
  chan.close();
  threads[0].join();
  threads[1].join();

  EXPECT_FALSE(over_capacity.load());
  // Blocking sends never drop; try_push accepts + rejections cover the rest.
  EXPECT_EQ(pushed.load() + rejected.load(), 4 * kPerProducer);
  EXPECT_EQ(received.load(), pushed.load());
  EXPECT_EQ(chan.dropped(), rejected.load());
  EXPECT_GE(chan.blocked(), 0);
  if (obs::kEnabled) {
    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counters.at("chan.inbox_sent"), pushed.load());
    EXPECT_EQ(snap.counters.at("chan.dropped"), chan.dropped());
    EXPECT_EQ(snap.counters.at("chan.blocked"), chan.blocked());
  }
}

TEST(ChannelStress, CloseUnblocksFullQueueSenders) {
  Channel<int> chan(1);
  ASSERT_TRUE(chan.send(0));
  std::atomic<bool> returned{false};
  std::thread sender([&] {
    chan.send(1);  // blocks: queue full
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  chan.close();
  sender.join();
  EXPECT_TRUE(returned.load());
  EXPECT_GE(chan.blocked(), 1);
}

}  // namespace
}  // namespace adcnn::runtime
