// Integration tests: the threaded Central/Conv-node cluster must reproduce
// the monolithic partitioned model's output end to end.
#include <gtest/gtest.h>

#include "core/fdsp.hpp"
#include "nn/models_mini.hpp"
#include "runtime/cluster.hpp"

namespace adcnn::runtime {
namespace {

core::PartitionedModel make_partitioned(bool compressed, std::int64_t r = 2,
                                        std::int64_t c = 2,
                                        const char* family = "vgg") {
  Rng rng(31);
  core::FdspOptions opt;
  opt.grid = core::TileGrid{r, c};
  if (compressed) {
    opt.clipped_relu = true;
    opt.clip_lower = 0.0f;
    opt.clip_upper = 3.0f;
    opt.quantize = true;
  }
  return core::apply_fdsp(nn::make_mini(family, rng, nn::MiniOptions{}), opt);
}

TEST(Cluster, DistributedMatchesMonolithicCompressed) {
  core::PartitionedModel pm = make_partitioned(true);
  Rng rng(7);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const Tensor expect = pm.model.forward(x, nn::Mode::kEval);

  ClusterConfig cfg;
  cfg.num_nodes = 3;
  EdgeCluster cluster(pm, cfg);
  const Tensor y = cluster.infer(x);
  // The fake-quant layer in the graph makes the monolithic forward
  // bit-identical to the wire codec's quantize/dequantize.
  EXPECT_LT(Tensor::max_abs_diff(y, expect), 1e-5f);
}

TEST(Cluster, DistributedMatchesMonolithicRaw) {
  core::PartitionedModel pm = make_partitioned(false);
  Rng rng(8);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const Tensor expect = pm.model.forward(x, nn::Mode::kEval);
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.compress = false;
  EdgeCluster cluster(pm, cfg);
  EXPECT_LT(Tensor::max_abs_diff(cluster.infer(x), expect), 1e-5f);
}

TEST(Cluster, CompressRequiresClipRange) {
  core::PartitionedModel pm = make_partitioned(false);
  ClusterConfig cfg;
  cfg.compress = true;
  EXPECT_THROW(EdgeCluster(pm, cfg), std::invalid_argument);
}

TEST(Cluster, EightByEightGridAcrossEightNodes) {
  core::PartitionedModel pm = make_partitioned(true, 8, 8);
  Rng rng(9);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const Tensor expect = pm.model.forward(x, nn::Mode::kEval);
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  EdgeCluster cluster(pm, cfg);
  InferStats stats;
  const Tensor y = cluster.infer(x, &stats);
  EXPECT_LT(Tensor::max_abs_diff(y, expect), 1e-5f);
  EXPECT_EQ(stats.tiles_total, 64);
  EXPECT_EQ(stats.tiles_missing, 0);
  // Even speeds -> 8 tiles per node on the first image.
  for (const auto assigned : stats.assigned) EXPECT_EQ(assigned, 8);
}

TEST(Cluster, ResNetFamilyWorks) {
  core::PartitionedModel pm = make_partitioned(true, 4, 4, "resnet");
  Rng rng(10);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  const Tensor expect = pm.model.forward(x, nn::Mode::kEval);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  EdgeCluster cluster(pm, cfg);
  EXPECT_LT(Tensor::max_abs_diff(cluster.infer(x), expect), 1e-5f);
}

TEST(Cluster, DeadNodeZeroFillsThenRoutesAround) {
  core::PartitionedModel pm = make_partitioned(true, 4, 4);
  Rng rng(11);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.deadline_s = 0.25;  // short but ample for healthy nodes
  // This test exercises the paper's bare zero-fill deadline path; with the
  // self-healing retry on, node 0 would recover node 1's tiles in-window.
  cfg.retry.enabled = false;
  EdgeCluster cluster(pm, cfg);
  cluster.node(1).kill();  // swallows tiles silently

  InferStats stats;
  cluster.infer(x, &stats);
  EXPECT_GT(stats.tiles_missing, 0);  // node 1's tiles were zero-filled
  EXPECT_EQ(stats.returned[1], 0);

  // After a few images, Algorithm 2 starves node 1 of tiles entirely.
  for (int i = 0; i < 4; ++i) cluster.infer(x, &stats);
  EXPECT_EQ(stats.assigned[1], 0);
  EXPECT_EQ(stats.tiles_missing, 0);  // all work routed to node 0
}

TEST(Cluster, ThrottledNodeGetsFewerTiles) {
  core::PartitionedModel pm = make_partitioned(true, 8, 8);
  Rng rng(12);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.deadline_s = 0.08;
  EdgeCluster cluster(pm, cfg);
  // Severe CPUlimit-style throttle: each of node 1's tiles now takes
  // hundreds of times its normal compute, so it blows the deadline.
  cluster.node(1).set_cpu_limit(0.002);

  InferStats stats;
  for (int i = 0; i < 6; ++i) cluster.infer(x, &stats);
  EXPECT_LT(stats.assigned[1], stats.assigned[0]);
}

TEST(Cluster, ByteAccountingMatchesCompression) {
  core::PartitionedModel pm = make_partitioned(true, 4, 4);
  Rng rng(13);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  EdgeCluster cluster(pm, cfg);
  cluster.infer(x);
  const std::uint64_t down = cluster.downlink(0).bytes_sent();
  const std::uint64_t up = cluster.uplink(0).bytes_sent();
  EXPECT_GT(down, 0u);
  EXPECT_GT(up, 0u);
  // Compressed intermediate results are much smaller than the raw fp32
  // ofmap (16 tiles x 32ch x 2x2 x 4B = 8 KB).
  EXPECT_LT(up, 8192u);
}

TEST(Cluster, StatsTrackSpeeds) {
  core::PartitionedModel pm = make_partitioned(true, 4, 4);
  Rng rng(14);
  const Tensor x = Tensor::randn(Shape{1, 3, 32, 32}, rng);
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  EdgeCluster cluster(pm, cfg);
  for (int i = 0; i < 3; ++i) cluster.infer(x);
  for (int k = 0; k < 4; ++k)
    EXPECT_GT(cluster.central().collector().speed(k), 1.0);
}

}  // namespace
}  // namespace adcnn::runtime
