#include <gtest/gtest.h>

#include <cmath>

#include "compress/pipeline.hpp"
#include "compress/quantizer.hpp"
#include "compress/rle.hpp"
#include "nn/activations.hpp"
#include "nn/quantize.hpp"

namespace adcnn::compress {
namespace {

TEST(Quantizer, LevelMapping) {
  Quantizer q(1.5f, 4);
  EXPECT_FLOAT_EQ(q.step(), 0.1f);
  EXPECT_EQ(q.quantize(0.0f), 0);
  EXPECT_EQ(q.quantize(-1.0f), 0);
  EXPECT_EQ(q.quantize(0.26f), 3);
  EXPECT_EQ(q.quantize(1.5f), 15);
  EXPECT_EQ(q.quantize(99.0f), 15);
  EXPECT_FLOAT_EQ(q.dequantize(3), 0.3f);
}

TEST(Quantizer, RoundTripErrorBound) {
  Rng rng(1);
  Quantizer q(2.0f, 4);
  const Tensor x = Tensor::rand(Shape{512}, rng, 0.0f, 2.0f);
  const auto levels = q.quantize_all(x.span());
  Tensor y(x.shape());
  q.dequantize_all(levels, y.span());
  EXPECT_LE(Tensor::max_abs_diff(x, y), q.step() / 2 + 1e-6f);
}

TEST(Quantizer, MatchesFakeQuantLayerExactly) {
  // The wire codec and the retraining graph must share one grid.
  Rng rng(2);
  Quantizer q(1.8f, 4);
  nn::FakeQuant layer(1.8f, 4);
  const Tensor x = Tensor::rand(Shape{256}, rng, 0.0f, 1.8f);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(q.dequantize(q.quantize(x[i])),
                    layer.quantize_value(x[i]));
  }
}

TEST(Quantizer, Validation) {
  EXPECT_THROW(Quantizer(0.0f, 4), std::invalid_argument);
  EXPECT_THROW(Quantizer(1.0f, 0), std::invalid_argument);
  EXPECT_THROW(Quantizer(1.0f, 9), std::invalid_argument);
}

TEST(Nibbles, PackUnpackRoundTrip) {
  const std::vector<std::uint8_t> levels{1, 15, 0, 7, 9};
  const auto packed = pack_nibbles(levels);
  EXPECT_EQ(packed.size(), 3u);
  EXPECT_EQ(packed[0], 0xF1);
  const auto back = unpack_nibbles(packed, levels.size());
  EXPECT_EQ(back, levels);
  EXPECT_THROW(unpack_nibbles(packed, 9), std::invalid_argument);
}

TEST(Rle4, RoundTripDense) {
  const std::vector<std::uint8_t> levels{1, 2, 3, 15, 14, 1};
  EXPECT_EQ(rle4_decode(rle4_encode(levels), levels.size()), levels);
}

TEST(Rle4, RoundTripSparse) {
  std::vector<std::uint8_t> levels(1000, 0);
  levels[3] = 7;
  levels[500] = 15;
  levels[999] = 1;
  EXPECT_EQ(rle4_decode(rle4_encode(levels), levels.size()), levels);
}

TEST(Rle4, AllZeros) {
  const std::vector<std::uint8_t> levels(257, 0);
  const auto wire = rle4_encode(levels);
  EXPECT_TRUE(wire.empty());  // trailing zeros are implicit
  EXPECT_EQ(rle4_decode(wire, levels.size()), levels);
}

TEST(Rle4, RandomRoundTripProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(2000);
    const double density = rng.uniform(0.0, 0.5);
    std::vector<std::uint8_t> levels(n, 0);
    for (auto& v : levels)
      if (rng.uniform() < density)
        v = static_cast<std::uint8_t>(1 + rng.uniform_int(15));
    EXPECT_EQ(rle4_decode(rle4_encode(levels), n), levels) << trial;
  }
}

TEST(Rle4, CompressesSparseStreams) {
  std::vector<std::uint8_t> levels(10000, 0);
  for (std::size_t i = 0; i < levels.size(); i += 100) levels[i] = 5;
  const auto wire = rle4_encode(levels);
  EXPECT_LT(wire.size(), levels.size() / 10);
}

TEST(Rle4, RejectsWideLevels) {
  const std::vector<std::uint8_t> levels{16};
  EXPECT_THROW(rle4_encode(levels), std::invalid_argument);
}

TEST(RleVarint, RoundTripProperty) {
  Rng rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.uniform_int(3000);
    std::vector<std::uint8_t> levels(n, 0);
    for (auto& v : levels)
      if (rng.uniform() < 0.1)
        v = static_cast<std::uint8_t>(1 + rng.uniform_int(255));
    EXPECT_EQ(rle_varint_decode(rle_varint_encode(levels), n), levels);
  }
}

TEST(RleVarint, AdversarialHugeRunBoundedBeforeAllocation) {
  // A varint encoding a run of ~2^62 zeros used to be materialized into
  // the output vector BEFORE the count check — an unbounded allocation
  // from a few payload bytes. The run must be validated against the
  // remaining budget first.
  std::vector<std::uint8_t> payload;
  put_varint(payload, std::uint64_t{1} << 62);
  payload.push_back(7);  // value byte so the run is "well-formed"
  EXPECT_THROW(rle_varint_decode(payload, 16), std::invalid_argument);

  // Maximum 64-bit run: count - out.size() arithmetic must not wrap.
  payload.clear();
  put_varint(payload, ~std::uint64_t{0});
  payload.push_back(1);
  EXPECT_THROW(rle_varint_decode(payload, 1024), std::invalid_argument);

  // A run that exactly fills the budget leaves no room for its value byte.
  payload.clear();
  put_varint(payload, 4);
  payload.push_back(3);
  EXPECT_THROW(rle_varint_decode(payload, 4), std::invalid_argument);

  // Boundary sanity: run + value landing exactly on count still decodes.
  payload.clear();
  put_varint(payload, 4);
  payload.push_back(3);
  const auto out = rle_varint_decode(payload, 5);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0, 0, 0, 0, 3}));
}

TEST(Varint, RoundTrip) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0);
  put_varint(buf, 127);
  put_varint(buf, 128);
  put_varint(buf, 300);
  put_varint(buf, 0xFFFFFFFFFFull);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), 0u);
  EXPECT_EQ(get_varint(buf, pos), 127u);
  EXPECT_EQ(get_varint(buf, pos), 128u);
  EXPECT_EQ(get_varint(buf, pos), 300u);
  EXPECT_EQ(get_varint(buf, pos), 0xFFFFFFFFFFull);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, TruncationDetected) {
  std::vector<std::uint8_t> buf{0x80};  // continuation with no next byte
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(buf, pos), std::invalid_argument);
}

TEST(TileCodec, RoundTripOnQuantGrid) {
  // Values already on the quantization grid decode exactly.
  Rng rng(5);
  TileCodec codec(2.0f, 4);
  Tensor x(Shape{1, 4, 8, 8});
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const auto level = static_cast<std::uint8_t>(rng.uniform_int(16));
    x[i] = codec.quantizer().dequantize(
        rng.uniform() < 0.7 ? 0 : level);
  }
  const auto wire = codec.encode(x);
  const Tensor y = codec.decode(wire, x.shape());
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
}

TEST(TileCodec, StageSizesConsistent) {
  Rng rng(6);
  TileCodec codec(1.0f, 4);
  Tensor x(Shape{1, 8, 16, 16});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = rng.uniform() < 0.9 ? 0.0f : static_cast<float>(rng.uniform());
  StageSizes sizes;
  const auto wire = codec.encode(x, &sizes);
  EXPECT_EQ(sizes.raw_bytes, x.numel() * 4);
  EXPECT_EQ(sizes.quant_packed_bytes, x.numel() / 2);
  EXPECT_EQ(sizes.encoded_bytes, static_cast<std::int64_t>(wire.size()));
  EXPECT_LT(sizes.encoded_bytes, sizes.quant_packed_bytes);
  EXPECT_LT(sizes.encoded_bytes, sizes.raw_bytes / 8);
}

TEST(TileCodec, DecodeValidatesShape) {
  TileCodec codec(1.0f, 4);
  const Tensor x = Tensor::zeros(Shape{1, 2, 4, 4});
  const auto wire = codec.encode(x);
  EXPECT_THROW(codec.decode(wire, Shape{1, 2, 4, 5}), std::invalid_argument);
}

TEST(TileCodec, NonFourBitFallsBackToVarint) {
  Rng rng(7);
  TileCodec codec(1.0f, 6);
  Tensor x = Tensor::rand(Shape{128}, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (rng.uniform() < 0.8) x[i] = 0.0f;
  const auto wire = codec.encode(x);
  const Tensor y = codec.decode(wire, x.shape());
  EXPECT_LE(Tensor::max_abs_diff(x, y),
            codec.quantizer().step() / 2 + 1e-6f);
}

TEST(ClippedReluQuantizer, ClipBoundsMapToExtremeCodes) {
  // §4 contract: the quantizer grid spans exactly the clipped-ReLU output
  // range [0, b - a]. Inputs sitting exactly on the clip bounds must land
  // on the extreme codes — a at code 0, b at the top code — and survive
  // the RLE wire round trip bit-exactly.
  const float a = 0.5f, b = 3.5f;
  nn::ClippedReLU relu(a, b);
  Quantizer q(relu.range(), 4);

  Tensor x(Shape{1, 1, 2, 4});
  x[0] = a;                      // exactly the lower bound
  x[1] = b;                      // exactly the upper bound
  x[2] = a - 1.0f;               // below the band
  x[3] = b + 1.0f;               // above the band
  x[4] = std::nextafter(a, b);   // just inside the band
  x[5] = std::nextafter(b, a);
  x[6] = (a + b) / 2.0f;
  x[7] = 0.0f;
  const Tensor y = relu.forward(x, nn::Mode::kEval);
  EXPECT_EQ(y[0], 0.0f);           // x == a -> bottom of the range
  EXPECT_EQ(y[1], relu.range());   // x == b -> top of the range
  EXPECT_EQ(y[3], relu.range());   // clipped to the top

  const auto levels = q.quantize_all(y.span());
  EXPECT_EQ(levels[0], 0);   // code 0 is reserved for zero
  EXPECT_EQ(levels[1], 15);  // top code
  EXPECT_EQ(levels[2], 0);
  EXPECT_EQ(levels[3], 15);
  EXPECT_GE(levels[4], 0);   // inside the band: any valid code
  EXPECT_LE(levels[5], 15);

  // RLE wire round trip of the extreme codes is bit-exact.
  const auto decoded = rle4_decode(rle4_encode(levels), levels.size());
  EXPECT_EQ(decoded, levels);

  // The full TileCodec path is idempotent at the bounds: decode(encode(y))
  // lands on grid values that re-encode to the identical byte stream.
  TileCodec codec(relu.range(), 4);
  const auto wire = codec.encode(y);
  const Tensor once = codec.decode(wire, y.shape());
  EXPECT_EQ(once[0], q.dequantize(0));
  EXPECT_EQ(once[1], q.dequantize(15));
  const auto wire2 = codec.encode(once);
  EXPECT_EQ(wire2, wire);
  const Tensor twice = codec.decode(wire2, y.shape());
  EXPECT_EQ(Tensor::max_abs_diff(once, twice), 0.0f);
}

TEST(RawCodec, RoundTrip) {
  Rng rng(8);
  const Tensor x = Tensor::randn(Shape{2, 3, 4, 4}, rng);
  const auto wire = encode_raw(x);
  EXPECT_EQ(wire.size(), static_cast<std::size_t>(x.numel()) * 4);
  const Tensor y = decode_raw(wire, x.shape());
  EXPECT_EQ(Tensor::max_abs_diff(x, y), 0.0f);
  EXPECT_THROW(decode_raw(wire, Shape{5}), std::invalid_argument);
}

}  // namespace
}  // namespace adcnn::compress
