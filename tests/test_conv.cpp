#include <gtest/gtest.h>

#include "nn/conv.hpp"

namespace adcnn::nn {
namespace {

/// Direct (non-im2col) reference convolution.
Tensor ref_conv(const Tensor& x, const Tensor& w, const Tensor* bias,
                std::int64_t sh, std::int64_t sw, std::int64_t ph,
                std::int64_t pw) {
  const std::int64_t N = x.n(), C = x.c(), H = x.h(), W = x.w();
  const std::int64_t F = w.n(), kh = w.h(), kw = w.w();
  const std::int64_t HO = (H + 2 * ph - kh) / sh + 1;
  const std::int64_t WO = (W + 2 * pw - kw) / sw + 1;
  Tensor y(Shape{N, F, HO, WO});
  for (std::int64_t n = 0; n < N; ++n)
    for (std::int64_t f = 0; f < F; ++f)
      for (std::int64_t oh = 0; oh < HO; ++oh)
        for (std::int64_t ow = 0; ow < WO; ++ow) {
          double acc = bias ? (*bias)[f] : 0.0;
          for (std::int64_t c = 0; c < C; ++c)
            for (std::int64_t dh = 0; dh < kh; ++dh)
              for (std::int64_t dw = 0; dw < kw; ++dw) {
                const std::int64_t ih = oh * sh - ph + dh;
                const std::int64_t iw = ow * sw - pw + dw;
                if (ih < 0 || ih >= H || iw < 0 || iw >= W) continue;
                acc += static_cast<double>(x.at(n, c, ih, iw)) *
                       w.at(f, c, dh, dw);
              }
          y.at(n, f, oh, ow) = static_cast<float>(acc);
        }
  return y;
}

struct ConvCase {
  std::int64_t n, c, h, w, f, k, stride, pad;
  bool bias;
};

class ConvForward : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvForward, MatchesDirectConvolution) {
  const ConvCase p = GetParam();
  Rng rng(3);
  Conv2d conv(p.c, p.f, p.k, p.stride, p.pad, p.bias, rng);
  if (p.bias) {
    for (std::int64_t i = 0; i < p.f; ++i)
      conv.bias().value[i] = static_cast<float>(rng.normal());
  }
  const Tensor x = Tensor::randn(Shape{p.n, p.c, p.h, p.w}, rng);
  const Tensor y = conv.forward(x, Mode::kEval);
  const Tensor expect =
      ref_conv(x, conv.weight().value, p.bias ? &conv.bias().value : nullptr,
               p.stride, p.stride, p.pad, p.pad);
  ASSERT_EQ(y.shape(), expect.shape());
  EXPECT_LT(Tensor::max_abs_diff(y, expect), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ConvForward,
    ::testing::Values(ConvCase{1, 1, 5, 5, 1, 3, 1, 1, false},
                      ConvCase{2, 3, 8, 8, 4, 3, 1, 1, false},
                      ConvCase{1, 2, 9, 9, 3, 3, 2, 1, true},
                      ConvCase{2, 4, 6, 6, 2, 1, 1, 0, true},
                      ConvCase{1, 3, 7, 5, 2, 3, 1, 0, false},
                      ConvCase{3, 2, 4, 4, 5, 3, 1, 1, true}));

TEST(Conv2d, OutShape) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  EXPECT_EQ(conv.out_shape(Shape{2, 3, 16, 16}), (Shape{2, 8, 16, 16}));
  Conv2d strided(3, 8, 3, 2, 1, false, rng);
  EXPECT_EQ(strided.out_shape(Shape{1, 3, 16, 16}), (Shape{1, 8, 8, 8}));
  EXPECT_THROW(conv.out_shape(Shape{1, 4, 16, 16}), std::invalid_argument);
}

TEST(Conv2d, RejectsInputSmallerThanKernel) {
  // An FDSP tile smaller than the receptive field used to return a
  // non-positive hout/wout and silently corrupt downstream shapes.
  Rng rng(2);
  Conv2d conv(3, 8, 5, 1, 0, false, rng);  // 5x5, no padding
  EXPECT_THROW(conv.out_shape(Shape{1, 3, 4, 4}), std::invalid_argument);
  EXPECT_THROW(conv.out_shape(Shape{1, 3, 8, 4}), std::invalid_argument);
  EXPECT_THROW(conv.forward(Tensor::zeros(Shape{1, 3, 2, 2}), Mode::kEval),
               std::invalid_argument);
  // Exactly the receptive field is the smallest legal tile.
  EXPECT_EQ(conv.out_shape(Shape{1, 3, 5, 5}), (Shape{1, 8, 1, 1}));
  // Padding counts toward the effective input extent.
  Conv2d padded(3, 8, 5, 1, 2, false, rng);
  EXPECT_EQ(padded.out_shape(Shape{1, 3, 1, 1}), (Shape{1, 8, 1, 1}));
}

TEST(Conv2d, FlopsCount) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, false, rng);
  // 2 * out_elems * cin * k * k = 2 * (1*8*4*4) * 3 * 9
  EXPECT_EQ(conv.flops(Shape{1, 3, 4, 4}), 2 * 8 * 16 * 27);
}

TEST(Conv2d, RectangularKernel1d) {
  // CharCNN-style conv: kh = 1, kw = 3 on (N, C, 1, L) input.
  Rng rng(4);
  Conv2d conv(4, 6, 1, 3, 1, 1, 0, 1, false, rng, "conv1d");
  const Tensor x = Tensor::randn(Shape{2, 4, 1, 10}, rng);
  const Tensor y = conv.forward(x, Mode::kEval);
  EXPECT_EQ(y.shape(), (Shape{2, 6, 1, 10}));
}

TEST(Conv2d, ZeroPaddingIsPerSample) {
  // The FDSP cornerstone: convolving a batch of 2 tiles equals convolving
  // each tile separately — padding never leaks across batch entries.
  Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, false, rng);
  const Tensor batch = Tensor::randn(Shape{2, 2, 4, 4}, rng);
  const Tensor joint = conv.forward(batch, Mode::kEval);
  const Tensor a = conv.forward(batch.crop(0, 1, 0, 4, 0, 4), Mode::kEval);
  const Tensor b = conv.forward(batch.crop(1, 1, 0, 4, 0, 4), Mode::kEval);
  EXPECT_LT(Tensor::max_abs_diff(joint.crop(0, 1, 0, 4, 0, 4), a), 1e-6f);
  EXPECT_LT(Tensor::max_abs_diff(joint.crop(1, 1, 0, 4, 0, 4), b), 1e-6f);
}

TEST(Conv2d, ParamsCollected) {
  Rng rng(1);
  Conv2d with_bias(3, 8, 3, 1, 1, true, rng);
  Conv2d no_bias(3, 8, 3, 1, 1, false, rng);
  EXPECT_EQ(with_bias.params().size(), 2u);
  EXPECT_EQ(no_bias.params().size(), 1u);
  EXPECT_EQ(with_bias.params()[0]->value.shape(), (Shape{8, 3, 3, 3}));
}

}  // namespace
}  // namespace adcnn::nn
